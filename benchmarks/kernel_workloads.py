"""Shared measurement workloads for the simulation-kernel benchmark.

One module defines every timed workload so the recorded pre-change
baseline (``benchmarks/output/kernel_baseline.json``) and the live
benchmark (``test_bench_kernel.py``) measure exactly the same thing.
All workloads use only the public kernel API that existed before the
fast path landed — ``schedule_at``/``schedule_in``, ``run_until``/
``run_all``, handle cancellation — so the same code times both the old
and the new kernel.

Sizes are scaled down by ``REPRO_BENCH_QUICK=1`` (the CI perf-smoke
job) where only generous sanity floors are asserted; full-size runs
are what the recorded trajectory pins.
"""

from __future__ import annotations

import gc
import os
import resource
import time
from typing import Dict

from repro.common import LEGIT, ClientRef
from repro.scenarios.case_a import CaseAConfig, run_case_a
from repro.sim.clock import DAY
from repro.sim.events import EventLoop
from repro.stream.sessionizer import StreamSessionizer
from repro.web.logs import LogEntry


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def _scaled(full: int, quick: int) -> int:
    return quick if quick_mode() else full


def peak_rss_mb() -> float:
    """High-water resident set size of this process, in MiB.

    ``ru_maxrss`` is kilobytes on Linux (bytes on macOS; we only run
    benchmarks on Linux CI so the KiB reading is what gets pinned).
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


# -- kernel ------------------------------------------------------------------


def kernel_dispatch_workload() -> Dict[str, float]:
    """Pre-schedule a large batch, drain it: pure schedule+dispatch cost."""
    n = _scaled(300_000, 30_000)
    loop = EventLoop()
    callback = (lambda: None)
    started = time.perf_counter()
    for i in range(n):
        loop.schedule_at(i * 1e-3, callback)
    scheduled = time.perf_counter()
    loop.run_all()
    finished = time.perf_counter()
    assert loop.events_processed == n
    return {
        "events": float(n),
        "schedule_seconds": scheduled - started,
        "dispatch_seconds": finished - scheduled,
        "events_per_sec": n / (finished - started),
    }


def kernel_reschedule_workload() -> Dict[str, float]:
    """Self-rescheduling actors: the pattern every Process runs."""
    actors = _scaled(1_000, 200)
    horizon = float(_scaled(600, 120))
    loop = EventLoop()

    def make_actor(index: int):
        gap = 1.0 + (index % 7) * 0.5

        def act() -> None:
            if loop.now + gap <= horizon:
                loop.schedule_in(gap, act)

        return act

    for index in range(actors):
        loop.schedule_at(index * 1e-4, make_actor(index))
    started = time.perf_counter()
    loop.run_until(horizon)
    elapsed = time.perf_counter() - started
    return {
        "events": float(loop.events_processed),
        "events_per_sec": loop.events_processed / elapsed,
    }


def kernel_cancel_workload() -> Dict[str, float]:
    """Schedule-and-cancel churn: hold timers, rotation timers.

    Keeps one long-lived far-future event per slot and repeatedly
    replaces it (cancel + reschedule) the way TTL sweeps do.  Reports
    the final heap length so the compaction satellite can pin it.
    """
    slots = _scaled(2_000, 400)
    rounds = _scaled(100, 20)
    loop = EventLoop()
    callback = (lambda: None)
    handles = [
        loop.schedule_at(1e9 + i, callback) for i in range(slots)
    ]
    started = time.perf_counter()
    for round_index in range(rounds):
        for i in range(slots):
            handles[i].cancel()
            handles[i] = loop.schedule_at(
                1e9 + round_index + i, callback
            )
    elapsed = time.perf_counter() - started
    churned = slots * rounds
    return {
        "events": float(churned),
        "events_per_sec": churned / elapsed,
        "final_heap_len": float(len(loop._heap)),
        "final_pending": float(loop.pending),
    }


# -- end-to-end --------------------------------------------------------------


def case_a_config() -> CaseAConfig:
    if quick_mode():
        return CaseAConfig(
            visitor_rate_per_hour=5.0,
            attack_start=1 * DAY,
            cap_at=None,
            departure_time=3 * DAY,
            target_capacity=120,
            attacker_target_seats=60,
        )
    return CaseAConfig()


def case_a_workload() -> Dict[str, float]:
    """Full Case A scenario: the number every later PR defends."""
    config = case_a_config()
    started = time.perf_counter()
    result = run_case_a(config)
    elapsed = time.perf_counter() - started
    events = result.world.loop.events_processed
    return {
        "wall_seconds": elapsed,
        "events": float(events),
        "events_per_sec": events / elapsed,
        "log_entries": float(len(result.world.app.log)),
    }


# -- streaming ---------------------------------------------------------------


def _synthetic_clients(count: int):
    return [
        ClientRef(
            ip_address=f"10.0.{i // 256}.{i % 256}",
            ip_country="FR",
            ip_residential=True,
            fingerprint_id=f"fp-{i:05d}",
            user_agent="bench",
            profile_id=f"user-{i:05d}",
            actor=f"bench-{i:05d}",
            actor_class=LEGIT,
        )
        for i in range(count)
    ]


def stream_sessionize_workload() -> Dict[str, float]:
    """Push a synthetic entry stream through the incremental sessionizer."""
    n = _scaled(200_000, 20_000)
    clients = _synthetic_clients(500)
    n_clients = len(clients)
    sessionizer = StreamSessionizer()
    entries = [
        LogEntry(
            time=i * 0.05,
            method="GET",
            path="/search",
            status=200,
            client=clients[i % n_clients],
        )
        for i in range(n)
    ]
    observe = sessionizer.observe
    started = time.perf_counter()
    for entry in entries:
        observe(entry)
    sessionizer.flush()
    elapsed = time.perf_counter() - started
    return {
        "events": float(n),
        "events_per_sec": n / elapsed,
    }


ALL_WORKLOADS = {
    "kernel_dispatch": kernel_dispatch_workload,
    "kernel_reschedule": kernel_reschedule_workload,
    "kernel_cancel": kernel_cancel_workload,
    "case_a": case_a_workload,
    "stream_sessionize": stream_sessionize_workload,
}


def default_rounds() -> int:
    return 3 if quick_mode() else 7


def measure_workload(name: str, rounds: int = 0) -> Dict[str, float]:
    """Run one workload ``rounds`` times and report the median round.

    Median, not best: the CI boxes (and the machine the baseline was
    recorded on) share cores, so single rounds swing by 10-20%.  The
    median round is robust to both slow outliers (a background process
    stole the core) and fast outliers (the box briefly had it alone);
    comparing medians is what makes a recorded baseline comparable to
    a rerun days later.  The whole metrics dict of the median round is
    reported so derived numbers (heap length, wall seconds) stay
    internally consistent.
    """
    rounds = rounds or default_rounds()
    runs = sorted(
        (ALL_WORKLOADS[name]() for _ in range(rounds)),
        key=lambda run: run["events_per_sec"],
    )
    result = dict(runs[len(runs) // 2])
    result["rounds"] = float(rounds)
    result["events_per_sec_best"] = runs[-1]["events_per_sec"]
    return result


def run_all_workloads(rounds: int = 0) -> Dict[str, Dict[str, float]]:
    """Median-of-``rounds`` measurement of every workload, plus RSS.

    Live objects are frozen out of the cyclic GC for the duration:
    when the whole benchmark suite runs front-to-back, module-scoped
    fixtures from earlier benchmarks keep millions of objects alive,
    and every generation-2 collection inside a timed loop rescans all
    of them — turning a kernel measurement into a GC measurement
    (observed >10x swings).  Freezing pins the measurement to the
    kernel's own allocations.
    """
    gc.collect()
    gc.freeze()
    try:
        results = {}
        for name in ALL_WORKLOADS:
            results[name] = measure_workload(name, rounds)
        results["peak_rss_mb"] = {"value": peak_rss_mb()}
        return results
    finally:
        gc.unfreeze()
