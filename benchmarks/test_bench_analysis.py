"""P10 — columnar analysis fast-path throughput, pinned.

Measures the analysis workloads defined in :mod:`analysis_workloads`
(median-of-N interleaved rounds) and emits a machine-readable
artifact, ``output/bench_analysis.json``, holding feature-extraction
rows/s, propagation edge-visits/s, the in-run speedups over the
retained object path, and the speedups against the recorded
object-path baseline (``output/analysis_baseline.json``, medians on
the recording machine).

Three tiers of assertion:

* **Equivalence** — always: every timed round already asserts
  bit-identical outputs inside the workloads, and the scenario-level
  report must come back all-true (identical fused verdicts on Cases
  A/B/C, identical propagation scores + campaign extractions on
  graph-case-a/c, serial == ProcessPool bit-identity).  A fast path
  that diverges fails the benchmark; it cannot win it.
* **Absolute floors** — always: conservative throughput floors with
  roughly 5x headroom below the recording machine's medians, so they
  hold on slower CI runners while still catching order-of-magnitude
  regressions (an accidental per-session Python loop creeping back).
  Full-size runs additionally assert the in-run speedup — measured in
  the same process on the same data, so it is machine-independent.
* **Speedup floors** — only with ``REPRO_BENCH_VS_BASELINE=1``: the
  >=3x ratios against the recorded object-path baseline are only
  meaningful on the machine the baseline was recorded on, so
  cross-machine CI must not assert them.

``REPRO_BENCH_QUICK=1`` (the CI perf-smoke job) shrinks both
workloads ~10x and asserts only equivalence plus generous quick
floors.
"""

import json
import os
import platform

import pytest

from conftest import COMMITTED_DIR, OUTPUT_DIR, save_artifact

import analysis_workloads as aw

#: The baseline is a committed recording — always read from the
#: committed directory, never from the quick-mode scratch dir.
BASELINE_PATH = os.path.join(COMMITTED_DIR, "analysis_baseline.json")
ARTIFACT_PATH = os.path.join(OUTPUT_DIR, "bench_analysis.json")

#: Fast-path throughput floors for full-size workloads (~5x below the
#: recording machine's medians).  Units: rows/s for features,
#: directed-edge visits/s for propagation.
FULL_FLOORS = {
    "analysis_features": 400_000,
    "graph_propagation": 20_000_000,
}

#: Quick-mode workloads are ~10x smaller, so fixed costs weigh more;
#: floors are another 2x more generous.
QUICK_FLOORS = {
    "analysis_features": 200_000,
    "graph_propagation": 10_000_000,
}

#: In-run speedup floor (same process, same data — machine-independent;
#: asserted on every full-size run).  Recorded medians run well above
#: the 3x target on both workloads.
IN_RUN_SPEEDUP_FLOOR = 3.0

#: Same-machine speedup floors vs. the recorded object-path baseline.
SPEEDUP_FLOORS = {
    "analysis_features": 3.0,
    "graph_propagation": 3.0,
}


def test_analysis_throughput():
    if not os.path.exists(BASELINE_PATH):
        pytest.skip(
            "no recorded analysis baseline "
            "(benchmarks/output/analysis_baseline.json)"
        )
    quick = aw.quick_mode()
    results = aw.run_all_workloads()
    equivalence = aw.equivalence_report()

    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)

    speedups = {}
    if not quick:  # baseline was recorded full-size; quick is incomparable
        for name, base in baseline["workloads"].items():
            if name in results and "events_per_sec" in base:
                speedups[name] = (
                    results[name]["events_per_sec"] / base["events_per_sec"]
                )

    artifact = {
        "schema": "repro.bench.analysis/1",
        "quick_mode": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "baseline_commit": baseline.get("commit"),
        "workloads": results,
        "equivalence": equivalence,
        "speedups_vs_baseline": speedups,
        "floors": QUICK_FLOORS if quick else FULL_FLOORS,
        "speedup_floors": SPEEDUP_FLOORS,
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lines = [
        f"analysis fast path ({'quick' if quick else 'full'} mode, "
        f"median of {aw.default_rounds()} interleaved rounds)",
    ]
    for name in ("analysis_features", "graph_propagation"):
        res = results[name]
        unit = "rows/s" if name == "analysis_features" else "edges/s"
        ratio = (
            f"  {speedups[name]:.2f}x vs recorded baseline"
            if name in speedups
            else ""
        )
        lines.append(
            f"  {name:<20} {res['events_per_sec']:>14,.0f} {unit}"
            f"  {res['speedup_in_run']:6.2f}x vs object path in-run{ratio}"
        )
    lines.append(
        "  equivalence: "
        + (
            "all identical"
            if all(equivalence.values())
            else "DIVERGED: "
            + ", ".join(k for k, v in equivalence.items() if not v)
        )
    )
    save_artifact("bench_analysis", "\n".join(lines))

    # Equivalence is non-negotiable in every mode: the fast path must
    # be the object path, only faster.
    for check, identical in equivalence.items():
        assert identical, f"columnar path diverged from object path: {check}"

    floors = QUICK_FLOORS if quick else FULL_FLOORS
    for name, floor in floors.items():
        measured = results[name]["events_per_sec"]
        assert measured >= floor, (
            f"{name}: {measured:,.0f}/s below pinned floor {floor:,}"
        )
    if not quick:
        for name in FULL_FLOORS:
            in_run = results[name]["speedup_in_run"]
            assert in_run >= IN_RUN_SPEEDUP_FLOOR, (
                f"{name}: {in_run:.2f}x in-run speedup below "
                f"{IN_RUN_SPEEDUP_FLOOR}x floor"
            )

    if os.environ.get("REPRO_BENCH_VS_BASELINE") == "1" and not quick:
        for name, floor in SPEEDUP_FLOORS.items():
            assert speedups[name] >= floor, (
                f"{name}: {speedups[name]:.2f}x below speedup floor "
                f"{floor}x vs recorded baseline"
            )
