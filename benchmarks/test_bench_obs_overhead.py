"""E9 — observability overhead: instrumentation must stay below 5%.

Runs the full Case A arms race in interleaved pairs — one bare run,
one with every ``repro.obs`` hook attached (event-loop dispatch
profiler + per-request web timers; the observational stream tap is
deliberately off, because it performs real detection work and this
benchmark pins the cost of *instrumentation*, not of extra features).

Shared CI boxes drift by tens of percent between runs, so the estimate
is the **median of per-pair wall-clock ratios**: each instrumented run
is compared only against the bare run right next to it, and the median
discards the pairs a scheduler hiccup landed on.

Acceptance criterion: median paired overhead below 5% on a dedicated
full-size run (the quick-mode smoke ceiling is looser; see
``MAX_OVERHEAD``).
"""

import json
import os
import statistics
from time import perf_counter, process_time

from conftest import OUTPUT_DIR, quick_mode, save_artifact

from repro.analysis.reports import render_table
from repro.obs import RunContext
from repro.obs.profile import instrument_world
from repro.scenarios.case_a import CaseAConfig, run_case_a

#: Interleaved bare/instrumented pairs; the median ratio wins.
PAIRS = 7
#: The acceptance ceiling on the median paired ratio.  The 5% claim
#: is made for full-size dedicated runs; the quick-mode (CI smoke)
#: ceiling is looser because on shared boxes the paired-median
#: estimator itself is only good to ~±10% — the smoke job checks the
#: instrumentation is not *pathologically* slow, the dedicated run
#: pins the 5%.
MAX_OVERHEAD = 0.15 if quick_mode() else 0.05


def _run_bare():
    config = CaseAConfig()
    wall0, cpu0 = perf_counter(), process_time()
    result = run_case_a(config)
    return perf_counter() - wall0, process_time() - cpu0, result


def _run_instrumented():
    config = CaseAConfig()
    context = RunContext(scenario="case-a", seed=config.seed)

    def wire(world):
        instrument_world(world, context, stream_tap=False)

    wall0, cpu0 = perf_counter(), process_time()
    result = run_case_a(config, on_world=wire)
    wall, cpu = perf_counter() - wall0, process_time() - cpu0
    context.finish()
    return wall, cpu, result, context


def test_obs_overhead_under_five_percent(benchmark):
    pairs = []
    last_context = None
    bare_result = instrumented_result = None

    def one_pair():
        nonlocal last_context, bare_result, instrumented_result
        bare_wall, bare_cpu, bare_result = _run_bare()
        wall, cpu, instrumented_result, last_context = _run_instrumented()
        pairs.append(
            {
                "bare_wall": bare_wall,
                "instrumented_wall": wall,
                "wall_ratio": wall / bare_wall,
                "bare_cpu": bare_cpu,
                "instrumented_cpu": cpu,
                "cpu_ratio": cpu / bare_cpu,
            }
        )

    one_pair()  # warm-up pair, discarded
    pairs.clear()
    benchmark.pedantic(one_pair, rounds=PAIRS, iterations=1)

    # Instrumentation must not change behaviour, only observe it.
    assert (
        instrumented_result.attacker_holds_created
        == bare_result.attacker_holds_created
    )
    assert (
        instrumented_result.attacker_rotations
        == bare_result.attacker_rotations
    )

    registry = last_context.registry
    events_timed = sum(
        timer.count for timer in registry.timers("sim.event.").values()
    )
    requests_timed = sum(
        timer.count for timer in registry.timers("web.request.").values()
    )
    assert events_timed > 0 and requests_timed > 0
    observations = events_timed + requests_timed

    wall_overhead = statistics.median(p["wall_ratio"] for p in pairs) - 1.0
    cpu_overhead = statistics.median(p["cpu_ratio"] for p in pairs) - 1.0
    bare_best = min(p["bare_wall"] for p in pairs)
    per_observation_ns = (
        max(0.0, wall_overhead) * bare_best / observations * 1e9
    )

    payload = {
        "pairs": pairs,
        "median_wall_overhead_fraction": wall_overhead,
        "median_cpu_overhead_fraction": cpu_overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "events_timed": events_timed,
        "requests_timed": requests_timed,
        "per_observation_ns": per_observation_ns,
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(
        os.path.join(OUTPUT_DIR, "obs_overhead.json"), "w",
        encoding="utf-8",
    ) as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    save_artifact(
        "obs_overhead",
        render_table(
            ["Metric", "Value"],
            [
                ["interleaved pairs", PAIRS],
                ["bare wall (best)", f"{bare_best:.3f}s"],
                ["median wall overhead", f"{wall_overhead * 100:+.2f}%"],
                ["median cpu overhead", f"{cpu_overhead * 100:+.2f}%"],
                ["timed sim events", f"{events_timed:,}"],
                ["timed web requests", f"{requests_timed:,}"],
                ["overhead per observation",
                 f"{per_observation_ns:.0f} ns"],
            ],
            title=(
                "Case A instrumentation overhead "
                f"(ceiling {MAX_OVERHEAD * 100:.0f}%)"
            ),
        ),
    )

    assert wall_overhead < MAX_OVERHEAD, (
        f"median instrumentation overhead {wall_overhead * 100:.2f}% "
        f"exceeds {MAX_OVERHEAD * 100:.0f}% "
        f"(pairs: {[round(p['wall_ratio'], 3) for p in pairs]})"
    )
