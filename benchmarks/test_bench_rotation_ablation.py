"""E10 — fingerprint-rotation cadence vs block-rule effectiveness.

Section III-B: "even if a bot is flagged ... it can reappear moments
later with a seemingly different identity".  This ablation fixes the
defender (hourly fingerprint-frequency blocking) and sweeps the
attacker's *timed* rotation interval (no reactive rotation), measuring
what fraction of the bot's hold attempts the block rules actually stop:

* a fast rotator (30 min) is essentially unblockable — rules go stale
  before they bite;
* a slow rotator (24 h) loses most of its attempts to blocks and its
  hold throughput collapses;
* blocked fraction rises monotonically with the rotation interval.
"""

import pytest
from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.scenarios.case_a import CaseAConfig, run_case_a
from repro.sim.clock import DAY, HOUR, WEEK, format_duration

INTERVALS = (0.5 * HOUR, 2 * HOUR, 8 * HOUR, 24 * HOUR)


def run_rotation_point(interval: float):
    config = CaseAConfig(
        seed=17,
        cap_at=None,
        rotation_mean_interval=interval,
        rotate_on_block=False,
        attack_start=1 * WEEK,
        departure_time=2 * WEEK + 2.5 * DAY,
    )
    result = run_case_a(config)
    attempts = (
        result.attacker_holds_created + result.attacker_blocks_encountered
    )
    blocked_fraction = (
        result.attacker_blocks_encountered / attempts if attempts else 0.0
    )
    return {
        "blocked_fraction": blocked_fraction,
        "holds": result.attacker_holds_created,
        "blocks": result.attacker_blocks_encountered,
        "rotations": result.attacker_rotations,
        "rules": len(result.rule_effectiveness),
    }


def _sweep():
    return {interval: run_rotation_point(interval) for interval in INTERVALS}


def test_rotation_ablation(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    save_artifact(
        "rotation_ablation",
        render_table(
            ["Rotation interval", "blocked attempts", "successful holds",
             "blocked fraction", "rules deployed"],
            [
                [
                    format_duration(interval),
                    point["blocks"],
                    point["holds"],
                    f"{point['blocked_fraction'] * 100:.1f}%",
                    point["rules"],
                ]
                for interval, point in sorted(points.items())
            ],
            title="Rotation cadence vs block-rule effectiveness",
        ),
    )

    fractions = [
        points[interval]["blocked_fraction"] for interval in INTERVALS
    ]
    # Monotone: the slower the rotation, the more blocks bite.
    assert fractions == sorted(fractions), fractions

    # A fast rotator shrugs blocking off almost entirely...
    assert fractions[0] < 0.15
    # ... a slow one loses the majority of its attempts...
    assert fractions[-1] > 0.5
    # ... and its hold throughput collapses relative to the fast one.
    assert points[INTERVALS[-1]]["holds"] < points[INTERVALS[0]]["holds"] / 2

    # The defender worked equally hard in every arm: it deployed rules
    # proportional to the identities it saw.
    for interval in INTERVALS:
        assert points[interval]["rules"] > 0
