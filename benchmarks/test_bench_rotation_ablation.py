"""E10 — fingerprint-rotation cadence vs block-rule effectiveness.

Section III-B: "even if a bot is flagged ... it can reappear moments
later with a seemingly different identity".  This ablation fixes the
defender (hourly fingerprint-frequency blocking) and sweeps the
attacker's *timed* rotation interval (no reactive rotation), measuring
what fraction of the bot's hold attempts the block rules actually stop:

* a fast rotator (30 min) is essentially unblockable — rules go stale
  before they bite;
* a slow rotator (24 h) loses most of its attempts to blocks and its
  hold throughput collapses;
* blocked fraction rises monotonically with the rotation interval.

Since PR 1 the sweep runs through :mod:`repro.runner`: the four arms
fan out over worker processes, and the serial run doubles as a
determinism check — both backends must agree bit for bit.
"""

import time

import pytest
from conftest import bench_workers, save_artifact

from repro.analysis.reports import render_table
from repro.runner import SweepSpec, run_sweep
from repro.sim.clock import DAY, HOUR, WEEK, format_duration

INTERVALS = (0.5 * HOUR, 2 * HOUR, 8 * HOUR, 24 * HOUR)

SPEC = SweepSpec(
    scenario="case-a",
    base={
        "cap_at": None,
        "rotate_on_block": False,
        "attack_start": 1 * WEEK,
        "departure_time": 2 * WEEK + 2.5 * DAY,
    },
    grid={"rotation_mean_interval": INTERVALS},
    replications=1,
    master_seed=17,
)


def _point_metrics(result):
    return {
        dict(cell.params)["rotation_mean_interval"]: cell.metrics
        for cell in result.cells
    }


def test_rotation_ablation(benchmark):
    workers = bench_workers()
    started = time.perf_counter()
    serial = run_sweep(SPEC, workers=1)
    serial_elapsed = time.perf_counter() - started

    parallel = benchmark.pedantic(
        lambda: run_sweep(SPEC, workers=workers, backend="process"),
        rounds=1,
        iterations=1,
    )

    # The runner's determinism contract: backends agree bit for bit.
    assert _point_metrics(serial) == _point_metrics(parallel)
    points = _point_metrics(parallel)

    speedup = serial_elapsed / parallel.elapsed if parallel.elapsed else 0.0
    timing = (
        f"runner timing: serial {serial_elapsed:.2f}s, "
        f"{workers}-worker {parallel.elapsed:.2f}s "
        f"(speedup {speedup:.2f}x)"
    )
    save_artifact(
        "rotation_ablation",
        render_table(
            ["Rotation interval", "blocked attempts", "successful holds",
             "blocked fraction", "rules deployed"],
            [
                [
                    format_duration(interval),
                    int(point["attacker_blocks_encountered"]),
                    int(point["attacker_holds_created"]),
                    f"{point['blocked_fraction'] * 100:.1f}%",
                    int(point["rules_deployed"]),
                ]
                for interval, point in sorted(points.items())
            ],
            title="Rotation cadence vs block-rule effectiveness",
        )
        + f"\n{timing}",
    )

    fractions = [
        points[interval]["blocked_fraction"] for interval in INTERVALS
    ]
    # Monotone: the slower the rotation, the more blocks bite.
    assert fractions == sorted(fractions), fractions

    # A fast rotator shrugs blocking off almost entirely...
    assert fractions[0] < 0.15
    # ... a slow one loses the majority of its attempts...
    assert fractions[-1] > 0.5
    # ... and its hold throughput collapses relative to the fast one.
    assert (
        points[INTERVALS[-1]]["attacker_holds_created"]
        < points[INTERVALS[0]]["attacker_holds_created"] / 2
    )

    # The defender worked equally hard in every arm: it deployed rules
    # proportional to the identities it saw.
    for interval in INTERVALS:
        assert points[interval]["rules_deployed"] > 0
