"""E3 — the Case A fingerprint arms race (Section IV-A narrative
metrics).

Paper facts asserted in shape:

* blocking rules are only briefly effective: the attacker rotates past
  each one, with a mean rotation interval of roughly 5.3 hours (we
  assert the measured interval lands in the same few-hours band);
* the attacker follows the NiP cap within minutes of its deployment
  (6 -> 5 -> 4 probing);
* the attack ceases entirely two days before departure;
* despite dozens of deployed rules, the attacker's hold throughput is
  barely dented — "each new countermeasure was only effective for a
  limited period".
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.scenarios.case_a import CaseAConfig, run_case_a
from repro.sim.clock import DAY, HOUR, format_duration


def test_case_a_arms_race(benchmark):
    result = benchmark.pedantic(
        run_case_a, args=(CaseAConfig(),), rounds=1, iterations=1
    )

    interval = result.measured_rotation_interval
    matched_rules = [r for r in result.rule_effectiveness if r.matches]
    save_artifact(
        "case_a_arms_race",
        render_table(
            ["Metric", "Measured", "Paper"],
            [
                ["rotations", result.attacker_rotations, "~65 (5.3h avg)"],
                [
                    "mean rotation interval",
                    format_duration(interval),
                    "5h18m",
                ],
                [
                    "mean rule effective window",
                    format_duration(result.mean_rule_window or 0.0),
                    "hours, not days",
                ],
                ["block rules deployed", len(result.rule_effectiveness),
                 "many"],
                ["rules that ever matched", len(matched_rules), "all"],
                [
                    "NiP after cap probing",
                    result.attacker_final_nip,
                    "cap value (4)",
                ],
                [
                    "attack end vs departure",
                    format_duration(
                        result.departure_time
                        - (result.last_attack_hold_time or 0.0)
                    ),
                    ">= 2d",
                ],
                [
                    "attacker holds created",
                    result.attacker_holds_created,
                    "sustained",
                ],
            ],
            title="Case A: fingerprint-rotation arms race",
        ),
    )

    # Rotation cadence in the paper's band (5.3 h +/- a few hours).
    assert interval is not None
    assert 2 * HOUR < interval < 9 * HOUR

    # Every deployed rule went stale within a day.
    windows = [
        r.effective_window
        for r in matched_rules
        if r.effective_window is not None
    ]
    assert windows
    assert max(windows) < 1.5 * DAY
    assert result.mean_rule_window is not None
    assert result.mean_rule_window < 12 * HOUR

    # Cap adaptation: 6 -> 5 -> 4 probing within an hour of the cap.
    assert result.cap_applied_at is not None
    assert result.attacker_nip_adaptations
    first_adaptation = result.attacker_nip_adaptations[0][0]
    assert first_adaptation - result.cap_applied_at < 6 * HOUR
    assert result.attacker_final_nip == result.config.cap_value

    # The attack ceased at the attacker's chosen pre-departure margin.
    assert result.last_attack_hold_time is not None
    quiet_period = result.departure_time - result.last_attack_hold_time
    assert quiet_period >= result.config.stop_before_departure - HOUR

    # Mitigation never actually stopped the attack (the paper's point):
    # the attacker kept creating holds all the way to the stop margin.
    assert result.attacker_holds_created > 500
    assert result.attacker_blocks_encountered >= result.attacker_rotations
