"""Shared measurement workloads for the columnar-analysis benchmark.

One module defines the timed workloads and the equivalence report so
the recorded object-path baseline
(``benchmarks/output/analysis_baseline.json``) and the live benchmark
(``test_bench_analysis.py``) measure exactly the same thing.

Both workloads time the *retained* object path against the columnar
fast path in the same process, interleaved round by round, so the
committed speedups are same-machine, same-data, same-run comparisons:

* ``analysis_features`` — ``sessionize()`` + ``feature_matrix()``
  (materialize every ``LogEntry``/``Session``, loop per session)
  versus one ``SessionIndex.from_log()`` pass over the columnar
  blocks.  Throughput is log rows per second.
* ``graph_propagation`` — ``propagate_dict()`` (per-edge Python
  Jacobi sweeps) versus ``compile_graph()`` + ``propagate()`` (CSR
  NumPy sweeps), on a synthetic rotated-campaign multipartite graph.
  Throughput is directed-edge visits per second (edges x rounds).

Every timed round asserts bit-identical outputs between the two paths
— the benchmark cannot quietly speed up by diverging.  Sizes scale
down ~10x under ``REPRO_BENCH_QUICK=1`` (the CI perf-smoke job).

:func:`equivalence_report` is the scenario-level half of the proof:
identical fused verdict lists on the compressed Cases A/B/C, identical
propagation scores + campaign extractions on graph-case-a/c, and
serial == ProcessPool bit-identity through the runner.
"""

from __future__ import annotations

import random
import statistics
import time
from typing import Dict, List, Tuple

import numpy as np

from kernel_workloads import peak_rss_mb, quick_mode

from repro.common import ClientRef
from repro.core.detection.clustering import ClusteringDetector
from repro.core.detection.features import feature_matrix
from repro.core.detection.fusion import FusionDetector
from repro.core.detection.session_index import SessionIndex
from repro.core.detection.volume import VolumeDetector
from repro.graph.builder import EntityGraph
from repro.graph.campaigns import campaign_verdicts, extract_campaigns
from repro.graph.entities import EntityId
from repro.graph.propagation import (
    compile_graph,
    propagate,
    propagate_dict,
)
from repro.obs.profile import PROFILED_CASES, short_overrides
from repro.runner import SweepSpec, run_sweep
from repro.scenarios.graph_case import GraphCaseConfig, run_graph_case
from repro.web.logs import COLUMNAR, WebLog, sessionize
from repro.web.request import (
    BOARDING_PASS_SMS,
    FLIGHT_DETAILS,
    HOLD,
    OTP_LOGIN,
    PAY,
    SEARCH,
    TRAP,
)


def _scaled(full: int, quick: int) -> int:
    return quick if quick_mode() else full


def default_rounds() -> int:
    """Timed rounds per path (median taken, interleaved A/B)."""
    return 3 if quick_mode() else 5


def _median(samples: List[float]) -> float:
    return statistics.median(samples)


# -- feature extraction ------------------------------------------------------

_PATHS = (
    SEARCH, FLIGHT_DETAILS, HOLD, PAY, OTP_LOGIN,
    BOARDING_PASS_SMS, TRAP, "/notify", "/misc/faq",
)
_CLASSES = ("legit", "legit", "legit", "scraper", "spinner")


def build_feature_log() -> WebLog:
    """A deterministic columnar log shaped like case traffic.

    Many interleaved clients, bursty within-session gaps plus
    idle-gap-crossing pauses, the full endpoint mix (so every
    path-bucket feature column is exercised), and a mix of actor
    classes so downstream label paths see both classes.
    """
    rows = _scaled(200_000, 20_000)
    rng = random.Random(0xC0FFEE)
    clients = [
        ClientRef(
            ip_address=f"198.51.{i % 97}.{i % 251}",
            fingerprint_id=f"fp-{i % 571:04d}",
            actor_class=_CLASSES[i % len(_CLASSES)],
            ip_country="US",
            ip_residential=i % 3 != 0,
            user_agent="bench-ua",
        )
        for i in range(rows // 25 or 1)
    ]
    log = WebLog(backend=COLUMNAR)
    clock = 0.0
    emitted = 0
    while emitted < rows:
        # One burst = one client's visit: a handful of closely spaced
        # requests, so sessions average several rows like real traffic.
        client = rng.choice(clients)
        clock += rng.choice((2.0, 9.0, 40.0, 300.0, 2000.0))
        for _ in range(min(rng.randint(1, 12), rows - emitted)):
            clock += rng.choice((0.0, 0.4, 1.5, 6.0, 20.0))
            log.append_fields(
                clock,
                rng.choice(("GET", "GET", "GET", "POST")),
                rng.choice(_PATHS),
                rng.choice((200, 200, 200, 200, 403, 429)),
                client,
            )
            emitted += 1
    return log


def features_workload() -> Dict[str, float]:
    """Object path vs columnar index on the same log, interleaved."""
    log = build_feature_log()
    rows = len(log)
    object_seconds: List[float] = []
    columnar_seconds: List[float] = []
    reference = None
    for _ in range(default_rounds()):
        started = time.perf_counter()
        sessions = sessionize(log)
        matrix = feature_matrix(sessions)
        object_seconds.append(time.perf_counter() - started)

        started = time.perf_counter()
        index = SessionIndex.from_log(log)
        columnar_seconds.append(time.perf_counter() - started)

        # Equivalence is part of the measurement contract: a fast path
        # that diverges must fail the benchmark, not win it.
        if reference is None:
            reference = ([s.session_id for s in sessions], matrix)
        assert index.session_ids == reference[0]
        assert np.array_equal(index.matrix, reference[1])
    object_s = _median(object_seconds)
    columnar_s = _median(columnar_seconds)
    return {
        "rows": float(rows),
        "sessions": float(len(reference[0])),
        "rounds_timed": float(default_rounds()),
        "object_rows_per_sec": rows / object_s,
        "events_per_sec": rows / columnar_s,
        "speedup_in_run": object_s / columnar_s,
    }


# -- graph propagation -------------------------------------------------------


def build_propagation_graph() -> Tuple[EntityGraph, Dict[EntityId, float]]:
    """A rotated-campaign-shaped multipartite graph plus weak seeds.

    Sessions fan into shared fingerprints and IPs; fingerprints share
    booking references (the rotation glue).  Sized so the full graph
    carries ~170k directed edges — the same order as a sharded
    million-visitor world's entity graph.
    """
    sessions = _scaled(40_000, 4_000)
    fingerprints = max(sessions // 20, 4)
    ips = max(sessions // 27, 4)
    refs = max(fingerprints // 3, 2)
    rng = random.Random(0xBEEF)
    graph = EntityGraph()
    seeds: Dict[EntityId, float] = {}
    for i in range(sessions):
        session = EntityId("session", f"S{i:07d}")
        fingerprint = EntityId("fp", f"fp-{rng.randrange(fingerprints):05d}")
        ip = EntityId("ip", f"10.{i % 17}.{rng.randrange(ips) % 250}.9")
        graph.add_edge(session, fingerprint, 1.0)
        graph.add_edge(session, ip, 0.6)
        if i % 9 == 0:
            ref = EntityId("ref", f"R{rng.randrange(refs):04d}")
            graph.add_edge(session, ref, 0.9)
            graph.add_edge(fingerprint, ref, 0.8)
        if i % 50 == 0:
            seeds[session] = 0.05 + 0.4 * rng.random()
    for j in range(0, fingerprints, 11):
        seeds[EntityId("fp", f"fp-{j:05d}")] = 0.3
    return graph, seeds


def propagation_workload() -> Dict[str, float]:
    """Dict reference vs CSR kernel on the same graph, interleaved."""
    graph, seeds = build_propagation_graph()
    compiled = compile_graph(graph)
    dict_seconds: List[float] = []
    csr_seconds: List[float] = []
    reference = None
    for _ in range(default_rounds()):
        started = time.perf_counter()
        ref = propagate_dict(graph, seeds)
        dict_seconds.append(time.perf_counter() - started)

        started = time.perf_counter()
        csr = propagate(graph, seeds, compiled=compiled)
        csr_seconds.append(time.perf_counter() - started)

        assert csr.scores == ref.scores
        assert (csr.rounds, csr.converged) == (ref.rounds, ref.converged)
        if reference is None:
            reference = ref
    edge_visits = compiled.edge_count * reference.rounds
    dict_s = _median(dict_seconds)
    csr_s = _median(csr_seconds)
    return {
        "directed_edges": float(compiled.edge_count),
        "propagation_rounds": float(reference.rounds),
        "rounds_timed": float(default_rounds()),
        "object_edges_per_sec": edge_visits / dict_s,
        "events_per_sec": edge_visits / csr_s,
        "speedup_in_run": dict_s / csr_s,
    }


def run_all_workloads() -> Dict[str, Dict[str, float]]:
    return {
        "analysis_features": features_workload(),
        "graph_propagation": propagation_workload(),
        "peak_rss_mb": {"value": peak_rss_mb()},
    }


# -- scenario-level equivalence ----------------------------------------------


def _case_world(case: str):
    """Stand up one compressed case study; return its world."""
    if case == "case-a":
        from repro.scenarios.case_a import CaseAConfig, run_case_a

        return run_case_a(CaseAConfig(**short_overrides(case))).world
    if case == "case-b":
        from repro.scenarios.case_b import CaseBConfig, run_case_b

        return run_case_b(CaseBConfig(**short_overrides(case))).world
    from repro.scenarios.case_c import CaseCConfig, run_case_c

    return run_case_c(CaseCConfig(**short_overrides(case))).world


def _case_fused_verdicts_identical(case: str) -> bool:
    """Columnar vs object path on one case's real log: bit-equal
    feature matrix and identical fused verdict lists."""
    world = _case_world(case)
    log = world.app.log
    sessions = sessionize(log)
    index = SessionIndex.from_log(log)
    if index.session_ids != [s.session_id for s in sessions]:
        return False
    if not np.array_equal(index.matrix, feature_matrix(sessions)):
        return False
    if index.sessions() != sessions:
        return False
    kmeans_seed = 20_250_808
    object_fused = FusionDetector().fuse([
        VolumeDetector().judge_all(sessions),
        ClusteringDetector(
            np.random.default_rng(kmeans_seed)
        ).judge_all(sessions),
    ])
    columnar_fused = FusionDetector().fuse([
        VolumeDetector().judge_index(index),
        ClusteringDetector(
            np.random.default_rng(kmeans_seed)
        ).judge_index(index),
    ])
    return object_fused == columnar_fused


def _graph_case_campaigns_identical(case: str) -> bool:
    """Replay a graph case's CSR analysis through the dict reference:
    same propagation scores, same campaigns, same verdicts."""
    result = run_graph_case(GraphCaseConfig(ticks_short=True, case=case))
    analysis = result.detector.last_analysis
    if analysis is None:
        return False
    config = result.detector.config
    reference = propagate_dict(
        analysis.graph, analysis.seeds, config=config.propagation
    )
    if reference.scores != analysis.propagation.scores:
        return False
    if (reference.rounds, reference.converged) != (
        analysis.propagation.rounds, analysis.propagation.converged
    ):
        return False
    campaigns = extract_campaigns(
        analysis.graph,
        reference.scores,
        config=config.campaigns,
        seeds=analysis.seeds,
    )
    if campaigns != analysis.campaigns:
        return False
    return campaign_verdicts(
        campaigns, threshold=config.verdict_threshold
    ) == analysis.campaign_verdicts


def _serial_equals_process_pool() -> bool:
    """The same two-replication graph sweep, serial vs 2-worker pool."""
    spec = SweepSpec(
        scenario="graph-case-a",
        base={"ticks_short": True},
        replications=2,
        master_seed=11,
    )
    serial = run_sweep(spec, backend="serial")
    pooled = run_sweep(spec, workers=2, backend="process")
    return all(
        a.metrics == b.metrics
        and a.info == b.info
        and a.recorder_snapshot == b.recorder_snapshot
        and a.seed == b.seed
        for a, b in zip(serial.cells, pooled.cells)
    )


def equivalence_report() -> Dict[str, bool]:
    """Scenario-level columnar-vs-object equivalence, one flag each."""
    report = {
        f"{case}_fused_verdicts_identical":
            _case_fused_verdicts_identical(case)
        for case in PROFILED_CASES
    }
    for case in ("case-a", "case-c"):
        report[f"graph_{case}_campaigns_identical"] = (
            _graph_case_campaigns_identical(case)
        )
    report["serial_equals_process_pool"] = _serial_equals_process_pool()
    return report
