"""E15 — the adaptive adversary vs single-case and layered defenses.

The paper's systemic argument, stated in the attacker's own currency:
an industrial operation treats abuse features as a *portfolio* and
moves budget to whatever still clears its return threshold.  This
benchmark runs :mod:`repro.scenarios.portfolio` across every defense
posture and pins the headline:

* with **no defense** the attacker parks on the best channel and the
  operation is strongly profitable;
* under **every single-case defense** (Case A honeypot, Case C rate
  limits, Case D number reputation, Case E destination surge) the
  attacker routes around the protected feature and *stays* profitable —
  per-feature prevention does not close the business;
* under the **layered posture** every channel's windowed ROI collapses
  below threshold, the attacker retires, and the standing
  infrastructure burn leaves the whole operation net negative — all at
  a bounded false-positive cost on legitimate traffic.

The numbers land in the committed ``output/bench_adversary.json``.
"""

import json
import os

from conftest import OUTPUT_DIR, quick_mode, save_artifact

from repro.analysis.reports import render_table
from repro.scenarios.portfolio import (
    DEFENSE_ALL,
    DEFENSE_NONE,
    DEFENSES,
    SINGLE_DEFENSES,
    PortfolioConfig,
    run_portfolio,
)
from repro.sim.clock import DAY

ARTIFACT_PATH = os.path.join(OUTPUT_DIR, "bench_adversary.json")

#: Quick mode shortens the campaign; the qualitative shape (open
#: channel under any single defense, retirement under all) is stable.
DURATION = 1 * DAY if quick_mode() else 3 * DAY


def run_posture(defense):
    return run_portfolio(
        PortfolioConfig(defense=defense, duration=DURATION)
    )


def _sweep():
    return {defense: run_posture(defense) for defense in DEFENSES}


def test_portfolio_defense_closes_the_business(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    save_artifact(
        "adversary_portfolio",
        render_table(
            ["Defense", "spent", "earned", "net", "ROI",
             "retired", "legit FPR"],
            [
                [
                    defense,
                    f"{r.attacker_spent:.2f}",
                    f"{r.attacker_earned:.2f}",
                    f"{r.attacker_net:+.2f}",
                    f"{r.attacker_roi:+.2f}",
                    "yes" if r.retired else "no",
                    f"{r.legit_fp_conviction_rate:.4f}",
                ]
                for defense, r in results.items()
            ],
            title=(
                "Adaptive attacker vs defense postures "
                f"({DURATION / DAY:.0f}-day campaign)"
            ),
        ),
    )

    artifact = {}
    for defense, r in results.items():
        artifact[defense] = {
            "attacker_spent": round(r.attacker_spent, 4),
            "attacker_earned": round(r.attacker_earned, 4),
            "attacker_net": round(r.attacker_net, 4),
            "attacker_roi": round(r.attacker_roi, 4),
            "infrastructure_cost": round(r.infrastructure_cost, 4),
            "retired": r.retired,
            "decisions": len(r.decisions),
            "legit_requests_blocked": r.legit_requests_blocked,
            "legit_fp_conviction_rate": round(
                r.legit_fp_conviction_rate, 6
            ),
            "channels": {
                c.name: {
                    "spent": round(c.spent, 4),
                    "earned": round(c.earned, 4),
                    "activations": c.activations,
                }
                for c in r.channels
            },
        }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
    print(f"wrote {ARTIFACT_PATH}")

    undefended = results[DEFENSE_NONE]
    layered = results[DEFENSE_ALL]

    # No defense: the operation is clearly profitable.
    assert undefended.attacker_net > 0.0
    assert undefended.attacker_roi > 0.0
    assert not undefended.retired

    # Every single-case defense leaves an open channel: the attacker
    # keeps positive ROI by routing budget around the protected feature.
    for defense in SINGLE_DEFENSES:
        r = results[defense]
        assert r.attacker_net > 0.0, defense
        assert r.attacker_roi > 0.0, defense
        assert not r.retired, defense

    # The layered posture closes the business: every channel tried,
    # every channel collapsed, operation retired at a net loss deeper
    # than the infrastructure burn alone (the channels themselves lost
    # money too).
    assert layered.retired
    assert layered.attacker_net < 0.0
    assert layered.attacker_roi < 0.0
    assert layered.attacker_net < -layered.infrastructure_cost
    activated = {
        d["channel"] for d in layered.decisions if d["action"] == "activate"
    }
    assert activated == {c.name for c in layered.channels}

    # ... and at a bounded false-positive cost on legitimate traffic.
    for defense, r in results.items():
        assert r.legit_fp_conviction_rate < 0.01, defense
