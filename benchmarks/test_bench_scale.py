"""P2 — sharded scale: million-visitor worlds in bounded memory.

Runs the :mod:`scale_workloads` rows and pins the two numbers the
sharding tentpole exists for:

* **throughput** — aggregate kernel events/sec across the sharded
  sweep clears a conservative floor (order-of-magnitude guard, same
  philosophy as the kernel floors: ~5x headroom below a loaded
  recording box);
* **bounded memory** — peak RSS (driver + largest worker) stays under
  a pinned ceiling, and the web log at rest costs a bounded number of
  bytes per entry — the columnar store's contract.  One ``LogEntry``
  object per request costs ~150 bytes before any field data; the
  struct-of-arrays blocks pin ~30 bytes/row plus block-granular slack.

``REPRO_BENCH_SCALE=1`` runs the full million-visitor flagship row
and records it to the committed ``output/bench_scale.json``; the
default smoke rows (CI ``scale-smoke`` job) are ~20x smaller and pair
K=1 against K=4.
"""

import json
import os
import platform

from conftest import COMMITTED_DIR

import scale_workloads as sw

#: Only the flagship (``REPRO_BENCH_SCALE=1``) run writes the
#: committed artifact — smoke rows are ~20x smaller, so their numbers
#: would silently clobber the committed flagship figures.  Smoke runs
#: always land in the gitignored scratch dir, whether or not
#: ``REPRO_BENCH_QUICK`` is set.
ARTIFACT_DIR = (
    COMMITTED_DIR
    if sw.full_scale()
    else os.path.join(COMMITTED_DIR, "quick")
)
ARTIFACT_PATH = os.path.join(ARTIFACT_DIR, "bench_scale.json")

#: Aggregate events/sec floor (both modes — the flagship row has more
#: work but also 4 workers, and both sit far above this guard).
EVENTS_PER_SEC_FLOOR = 5_000

#: Peak RSS ceiling, MiB (driver + largest worker).  The flagship
#: million-visitor row measures ~646 MiB on the recording box (the
#: number the columnar log store keeps bounded — a 5.1M-entry log at
#: rest is 150 MiB of it); the smoke rows sit well below ceiling too.
PEAK_RSS_CEILING_MB = 512.0 if not sw.full_scale() else 2_048.0

#: Columnar log store: bytes per entry at rest, including the
#: mostly-empty tail block each shard carries.
LOG_BYTES_PER_ENTRY_CEILING = 64.0

#: Arrivals are Poisson: the spawned population concentrates within a
#: few percent of the requested one.
SPAWN_TOLERANCE = 0.05


def test_scale_throughput_and_memory():
    results = [sw.run_row(*row) for row in sw.rows()]

    artifact = {
        "schema": "repro.bench.scale/1",
        "full_scale": sw.full_scale(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "events_per_sec_floor": EVENTS_PER_SEC_FLOOR,
        "peak_rss_ceiling_mb": PEAK_RSS_CEILING_MB,
        "log_bytes_per_entry_ceiling": LOG_BYTES_PER_ENTRY_CEILING,
        "rows": results,
    }
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lines = [
        f"sharded scale ({'flagship' if sw.full_scale() else 'smoke'} rows)"
    ]
    for row in results:
        lines.append(
            f"  {row['label']:<12} K={row['shards']:.0f}"
            f" workers={row['workers']:.0f}"
            f" visitors={row['visitors_spawned']:>9,.0f}"
            f" {row['events_per_sec']:>9,.0f} ev/s"
            f"  log {row['log_store_bytes'] / 2**20:>6.1f} MiB"
            f"  peak RSS {row['peak_rss_mb']:>7.1f} MiB"
        )
    text = "\n".join(lines)
    with open(
        os.path.join(ARTIFACT_DIR, "bench_scale.txt"), "w",
        encoding="utf-8",
    ) as handle:
        handle.write(text + "\n")
    print(f"\n===== bench_scale =====\n{text}")

    for row in results:
        label = row["label"]
        requested = row["visitors_requested"]
        assert abs(row["visitors_spawned"] - requested) <= (
            SPAWN_TOLERANCE * requested
        ), label
        assert row["events_per_sec"] >= EVENTS_PER_SEC_FLOOR, (
            f"{label}: {row['events_per_sec']:,.0f} ev/s below "
            f"{EVENTS_PER_SEC_FLOOR:,} floor"
        )
        # Peak RSS is a process-wide high-water mark: when the whole
        # benchmark suite runs in one process, an earlier benchmark
        # may own the peak — only assert the ceiling when this row
        # started below it (same guard as the kernel benchmark).
        if row["peak_rss_mb_before"] <= PEAK_RSS_CEILING_MB:
            assert row["peak_rss_mb"] <= PEAK_RSS_CEILING_MB, (
                f"{label}: peak RSS {row['peak_rss_mb']:.0f} MiB over "
                f"{PEAK_RSS_CEILING_MB:.0f} MiB ceiling"
            )
        assert (
            row["log_store_bytes"] / row["log_entries"]
            <= LOG_BYTES_PER_ENTRY_CEILING
        ), label

    if sw.full_scale():
        flagship = results[0]
        assert flagship["visitors_spawned"] >= 1_000_000 * (
            1 - SPAWN_TOLERANCE
        )
