"""E7 — honeypot / decoy-inventory mitigation (Section V's proposal).

Blocking vs honeypot, same attack, same world, asserted shapes:

* blocking triggers the arms race (dozens of rotations, fresh proxy
  leases) and the attacker keeps denying real inventory between
  rotations;
* the honeypot ends the arms race — the attacker "believes to hold
  items in a false environment", stops rotating entirely (zero
  rotations, one proxy lease) — while real seats flow to legitimate
  customers: more legit seats sold on the target flight, and the
  attacker's real-seat displacement collapses.
"""

import pytest
from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.economics.reports import attacker_seat_seconds
from repro.scenarios.case_a import CaseAConfig, TARGET_FLIGHT, run_case_a


def _config(honeypot: bool) -> CaseAConfig:
    # No NiP cap in either arm: isolate the blocking-vs-honeypot choice.
    return CaseAConfig(honeypot_mode=honeypot, cap_at=None)


@pytest.fixture(scope="module")
def blocking_result():
    return run_case_a(_config(honeypot=False))


def test_honeypot_vs_blocking(benchmark, blocking_result):
    honeypot_result = benchmark.pedantic(
        run_case_a, args=(_config(honeypot=True),), rounds=1, iterations=1
    )
    blocking = blocking_result
    honeypot = honeypot_result

    displacement_blocking = attacker_seat_seconds(
        blocking.world.reservations, TARGET_FLIGHT
    )
    displacement_honeypot = attacker_seat_seconds(
        honeypot.world.reservations, TARGET_FLIGHT
    )

    save_artifact(
        "honeypot_economics",
        render_table(
            ["Metric", "blocking", "honeypot"],
            [
                [
                    "attacker rotations",
                    blocking.attacker_rotations,
                    honeypot.attacker_rotations,
                ],
                [
                    "proxy leases bought",
                    blocking.proxy_pool.leases_granted,
                    honeypot.proxy_pool.leases_granted,
                ],
                [
                    "real seat-hours denied",
                    f"{displacement_blocking.attacker_seat_hours:.0f}",
                    f"{displacement_honeypot.attacker_seat_hours:.0f}",
                ],
                [
                    "shadow seats absorbed",
                    blocking.shadow_seats_absorbed,
                    honeypot.shadow_seats_absorbed,
                ],
                [
                    "legit seats sold (target flight)",
                    blocking.target_legit_confirmed_seats,
                    honeypot.target_legit_confirmed_seats,
                ],
            ],
            title="DoI mitigation: blocking vs decoy inventory",
        ),
    )

    # The arms race exists under blocking and vanishes under honeypot.
    assert blocking.attacker_rotations > 20
    assert honeypot.attacker_rotations == 0
    assert honeypot.proxy_pool.leases_granted < (
        blocking.proxy_pool.leases_granted / 10
    )

    # The honeypot absorbs the attack into shadow inventory.
    assert honeypot.shadow_seats_absorbed > 1_000
    assert blocking.shadow_seats_absorbed == 0

    # Real inventory damage collapses (a short pre-detection window of
    # real holds is expected).
    assert (
        displacement_honeypot.attacker_seat_hours
        < displacement_blocking.attacker_seat_hours / 5
    )

    # And legitimate customers actually get the seats.
    assert (
        honeypot.target_legit_confirmed_seats
        > blocking.target_legit_confirmed_seats
    )
