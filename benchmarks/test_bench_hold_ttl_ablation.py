"""E13 — hold-TTL ablation: the usability/security dial (Section V).

The seat-hold duration is the feature knob the paper says must be
balanced against abuse ("feature access restrictions ... items holding
for long periods of time").  Sweeping the TTL with a fixed seat-block
target shows why:

* the *damage* (seat-hours denied) barely moves — the attacker simply
  re-holds whatever expires;
* but the attacker's *cost and visibility* scale inversely with the
  TTL: a 30-minute hold forces ~20x the requests of a 12-hour hold for
  the same damage, and every extra request feeds frequency-based
  detection (more block rules, more forced rotations).

Shortening holds does not stop Denial of Inventory; it taxes it.
"""

import pytest
from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.economics.reports import attacker_seat_seconds
from repro.scenarios.case_a import CaseAConfig, TARGET_FLIGHT, run_case_a
from repro.sim.clock import DAY, HOUR, WEEK, format_duration

TTLS = (0.5 * HOUR, 2 * HOUR, 5 * HOUR, 12 * HOUR)


def run_ttl_point(ttl: float):
    config = CaseAConfig(
        seed=19,
        hold_ttl=ttl,
        cap_at=None,
        attack_start=1 * WEEK,
        departure_time=2 * WEEK + 2.5 * DAY,
    )
    result = run_case_a(config)
    displaced = attacker_seat_seconds(
        result.world.reservations, TARGET_FLIGHT
    )
    holds = result.attacker_holds_created
    return {
        "holds": holds,
        "seat_hours": displaced.attacker_seat_hours,
        "seat_hours_per_hold": (
            displaced.attacker_seat_hours / holds if holds else 0.0
        ),
        "rotations": result.attacker_rotations,
        "rules": len(result.rule_effectiveness),
    }


def _sweep():
    return {ttl: run_ttl_point(ttl) for ttl in TTLS}


def test_hold_ttl_ablation(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    save_artifact(
        "hold_ttl_ablation",
        render_table(
            ["Hold TTL", "attacker holds", "seat-hours denied",
             "seat-hours per hold", "rotations forced",
             "rules deployed"],
            [
                [
                    format_duration(ttl),
                    point["holds"],
                    f"{point['seat_hours']:.0f}",
                    f"{point['seat_hours_per_hold']:.2f}",
                    point["rotations"],
                    point["rules"],
                ]
                for ttl, point in sorted(points.items())
            ],
            title="Hold-TTL ablation (fixed 120-seat block target)",
        ),
    )

    # Damage is roughly TTL-independent: the attacker re-holds whatever
    # expires, so total seat-hours denied stay within a 2x band.
    seat_hours = [points[ttl]["seat_hours"] for ttl in TTLS]
    assert max(seat_hours) < 2.0 * min(seat_hours)

    # The attacker's request footprint scales inversely with TTL...
    holds = [points[ttl]["holds"] for ttl in TTLS]
    assert holds == sorted(holds, reverse=True)
    assert holds[0] > 5 * holds[-1]

    # ... so per-request attack efficiency rises with the TTL ...
    efficiency = [points[ttl]["seat_hours_per_hold"] for ttl in TTLS]
    assert efficiency == sorted(efficiency)

    # ... and short TTLs force far more defender detections/rotations.
    assert points[TTLS[0]]["rotations"] > points[TTLS[-1]]["rotations"]
