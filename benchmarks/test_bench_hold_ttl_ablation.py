"""E13 — hold-TTL ablation: the usability/security dial (Section V).

The seat-hold duration is the feature knob the paper says must be
balanced against abuse ("feature access restrictions ... items holding
for long periods of time").  Sweeping the TTL with a fixed seat-block
target shows why:

* the *damage* (seat-hours denied) barely moves — the attacker simply
  re-holds whatever expires;
* but the attacker's *cost and visibility* scale inversely with the
  TTL: a 30-minute hold forces ~20x the requests of a 12-hour hold for
  the same damage, and every extra request feeds frequency-based
  detection (more block rules, more forced rotations).

Shortening holds does not stop Denial of Inventory; it taxes it.

Since PR 1 the sweep runs through :mod:`repro.runner` (one worker
process per TTL arm), with the serial backend re-run as a bit-for-bit
determinism cross-check.
"""

import time

import pytest
from conftest import bench_workers, save_artifact

from repro.analysis.reports import render_table
from repro.runner import SweepSpec, run_sweep
from repro.sim.clock import DAY, HOUR, WEEK, format_duration

TTLS = (0.5 * HOUR, 2 * HOUR, 5 * HOUR, 12 * HOUR)

SPEC = SweepSpec(
    scenario="case-a",
    base={
        "cap_at": None,
        "attack_start": 1 * WEEK,
        "departure_time": 2 * WEEK + 2.5 * DAY,
    },
    grid={"hold_ttl": TTLS},
    replications=1,
    master_seed=19,
)


def _point_metrics(result):
    points = {}
    for cell in result.cells:
        metrics = dict(cell.metrics)
        holds = metrics["attacker_holds_created"]
        metrics["seat_hours_per_hold"] = (
            metrics["attacker_seat_hours"] / holds if holds else 0.0
        )
        points[dict(cell.params)["hold_ttl"]] = metrics
    return points


def test_hold_ttl_ablation(benchmark):
    workers = bench_workers()
    started = time.perf_counter()
    serial = run_sweep(SPEC, workers=1)
    serial_elapsed = time.perf_counter() - started

    parallel = benchmark.pedantic(
        lambda: run_sweep(SPEC, workers=workers, backend="process"),
        rounds=1,
        iterations=1,
    )

    assert _point_metrics(serial) == _point_metrics(parallel)
    points = _point_metrics(parallel)

    speedup = serial_elapsed / parallel.elapsed if parallel.elapsed else 0.0
    timing = (
        f"runner timing: serial {serial_elapsed:.2f}s, "
        f"{workers}-worker {parallel.elapsed:.2f}s "
        f"(speedup {speedup:.2f}x)"
    )
    save_artifact(
        "hold_ttl_ablation",
        render_table(
            ["Hold TTL", "attacker holds", "seat-hours denied",
             "seat-hours per hold", "rotations forced",
             "rules deployed"],
            [
                [
                    format_duration(ttl),
                    int(point["attacker_holds_created"]),
                    f"{point['attacker_seat_hours']:.0f}",
                    f"{point['seat_hours_per_hold']:.2f}",
                    int(point["attacker_rotations"]),
                    int(point["rules_deployed"]),
                ]
                for ttl, point in sorted(points.items())
            ],
            title="Hold-TTL ablation (fixed 120-seat block target)",
        )
        + f"\n{timing}",
    )

    # Damage is roughly TTL-independent: the attacker re-holds whatever
    # expires, so total seat-hours denied stay within a 2x band.
    seat_hours = [points[ttl]["attacker_seat_hours"] for ttl in TTLS]
    assert max(seat_hours) < 2.0 * min(seat_hours)

    # The attacker's request footprint scales inversely with TTL...
    holds = [points[ttl]["attacker_holds_created"] for ttl in TTLS]
    assert holds == sorted(holds, reverse=True)
    assert holds[0] > 5 * holds[-1]

    # ... so per-request attack efficiency rises with the TTL ...
    efficiency = [points[ttl]["seat_hours_per_hold"] for ttl in TTLS]
    assert efficiency == sorted(efficiency)

    # ... and short TTLs force far more defender detections/rotations.
    assert (
        points[TTLS[0]]["attacker_rotations"]
        > points[TTLS[-1]]["attacker_rotations"]
    )
