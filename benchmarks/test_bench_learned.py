"""E14 — learned sequence arm vs the hand-tuned stack on evasive traffic.

The paper's closing argument (Section VI) is that hand-tuned,
per-feature defences lose to functional abuse that *stays in spec* —
rotated identities and in-distribution party sizes leave volume
thresholds, k-means outliers and fingerprint rules nothing to bite on.
This benchmark trains the :mod:`repro.ml` attention encoder on
disjoint-seed simulated worlds and pins the acceptance property on the
two evasive Case A variants:

* **rotated** — identity rotation every ~3h keeps per-session volume
  under every hand threshold;
* **stealth** — NiP 2 inside the dominant legitimate mass, plus
  rotation.

On both, the hand-tuned fusion (volume + k-means + fingerprint — the
graph experiment's session arm) posts zero recall at zero FPR; the
learned arm must post *strictly higher recall at equal-or-lower FPR*,
i.e. catch the campaign without a single false positive.  The numbers
land in the committed ``output/bench_learned.json``.
"""

import json
import os

from conftest import OUTPUT_DIR, quick_mode, save_artifact

from repro.analysis.reports import render_table
from repro.scenarios.learned import (
    LEARNED_VARIANTS,
    LearnedCaseConfig,
    run_learned_case,
)

ARTIFACT_PATH = os.path.join(OUTPUT_DIR, "bench_learned.json")


def run_variant(variant):
    config = LearnedCaseConfig(
        variant=variant,
        ticks_short=quick_mode(),
        epochs=60 if quick_mode() else None,
    )
    return run_learned_case(config)


def _sweep():
    return {variant: run_variant(variant) for variant in LEARNED_VARIANTS}


def _arm_row(variant, result, arm):
    evaluation = arm.evaluation
    return [
        variant,
        arm.arm,
        f"{evaluation.recall:.3f}",
        f"{evaluation.false_positive_rate:.4f}",
        f"{evaluation.precision:.3f}",
    ]


def test_learned_beats_hand_tuned(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for variant, result in sorted(results.items()):
        for arm in (result.hand_tuned, result.learned, result.combined):
            rows.append(_arm_row(variant, result, arm))
    save_artifact(
        "learned_comparison",
        render_table(
            ["variant", "arm", "recall", "FPR", "precision"],
            rows,
            title=(
                "Learned sequence arm vs hand-tuned fusion "
                "(evasive Case A variants)"
            ),
        ),
    )

    artifact = {}
    for variant, result in sorted(results.items()):
        train = result.train
        artifact[variant] = {
            "hand_recall": result.hand_tuned.evaluation.recall,
            "hand_fpr": result.hand_tuned.evaluation.false_positive_rate,
            "learned_recall": result.learned.evaluation.recall,
            "learned_fpr": (
                result.learned.evaluation.false_positive_rate
            ),
            "combined_recall": result.combined.evaluation.recall,
            "combined_fpr": (
                result.combined.evaluation.false_positive_rate
            ),
            "learned_beats_hand_tuned": result.learned_beats_hand_tuned,
            "eval_sessions": len(result.sessions),
            "training_sessions": train.meta["training_sessions"],
            "training_bots": train.meta["training_bots"],
            "threshold": train.threshold,
            "model": result.config.model,
            "config_hash": train.meta["config_hash"],
            "weights_digest": train.meta["weights_digest"],
        }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
    print(f"wrote {ARTIFACT_PATH}")

    for variant, result in results.items():
        hand = result.hand_tuned.evaluation
        learned = result.learned.evaluation
        combined = result.combined.evaluation

        # The acceptance property: strictly higher recall at
        # equal-or-lower FPR, per variant.
        assert result.learned_beats_hand_tuned, variant
        assert learned.recall > hand.recall, variant
        assert learned.false_positive_rate <= hand.false_positive_rate, (
            variant
        )

        # The rotated/stealth variants are built to defeat the hand
        # stack outright; the learned arm catches the campaign clean.
        assert hand.recall < 0.5, variant
        assert learned.recall > 0.9, variant
        assert learned.false_positive_rate == 0.0, variant

        # Fusing the learned arm in as the seventh family keeps the
        # combined stack at least as good as its best arm.
        assert combined.recall >= learned.recall, variant
        assert combined.false_positive_rate <= 0.001, variant
