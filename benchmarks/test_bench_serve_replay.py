"""Serve-path replay throughput: HTTP service vs direct replay.

The service wraps the streaming pipeline in an HTTP boundary, a
write-ahead journal, and periodic SQLite snapshots — all of which cost
something per event.  This benchmark replays the same synthetic trace
three ways and pins the service tax:

* **bare** — ``replay_trace`` into ``build_stream_pipeline`` with no
  graph adapter: an informational ceiling showing what the periodic
  campaign re-analysis itself costs (the dominant term, and present in
  any full-stack deployment — serve or not);
* **direct** — ``replay_trace`` into the *same* detection core the
  service builds (``repro.serve.service.build_core``): the honest
  comparator for the serve tax;
* **service** — in-process ``DetectionService.replay_file``: direct
  plus the write-ahead journal and periodic SQLite snapshots;
* **server** — a live ``DetectionServer`` driven through ``POST
  /replay``: the full production path, HTTP included.

Floor (ISSUE 7 acceptance): the server path must sustain at least 50%
of the direct replay rate.  The service and server paths must also
agree bit-for-bit on the final analysis digest — the HTTP boundary
adds transport, not semantics.
"""

import asyncio
import json
import os
import threading
from time import perf_counter

import pytest
from conftest import OUTPUT_DIR, quick_mode, save_artifact

from repro.analysis.reports import render_table
from repro.common import ClientRef
from repro.scenarios.streaming import build_stream_pipeline
from repro.serve.client import ServeClient
from repro.serve.server import DetectionServer
from repro.serve.service import (
    DEFAULT_REFRESH_EVERY,
    DetectionService,
    build_core,
)
from repro.serve.state import StateStore
from repro.trace import TraceWriter, replay_trace
from repro.web.logs import LogEntry

#: Server throughput floor relative to bare replay (the acceptance pin).
MIN_SERVER_FRACTION = 0.5

WAVES = 20 if quick_mode() else 200
VISITORS_PER_WAVE = 20


def _entry(time_, ip, fingerprint, path, method, actor_class):
    return LogEntry(
        time=time_,
        method=method,
        path=path,
        status=200,
        client=ClientRef(
            ip_address=ip,
            ip_country="NL",
            ip_residential=True,
            fingerprint_id=fingerprint,
            user_agent="UA-bench",
            actor_class=actor_class,
        ),
    )


def workload_entries():
    """Time-ordered mixed workload: rotating hold bursts from a shared
    IP (the campaign) against waves of legitimate browsing."""
    entries = []
    clock = 1_000.0
    for wave in range(WAVES):
        attacker = f"fp-rot-{wave % 8}"
        for _ in range(6):
            entries.append(
                _entry(clock, "203.0.113.66", attacker, "/hold",
                       "POST", "seat_spinner")
            )
            clock += 20.0
        for visitor in range(VISITORS_PER_WAVE):
            fingerprint = f"fp-w{wave}-v{visitor}"
            ip = f"192.0.{wave % 200}.{visitor + 1}"
            for path in ("/search", "/flight", "/search", "/fare"):
                entries.append(
                    _entry(clock, ip, fingerprint, path, "GET", "legit")
                )
                clock += 5.0
        clock += 2_400.0  # close the wave's sessions
    return entries


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve_bench") / "bench.rptr")
    entries = workload_entries()
    with TraceWriter(path, meta={"scenario": "serve-bench"}) as writer:
        for entry in entries:
            writer.write(entry)
    return path, len(entries)


def _run_server_replay(trace_path, db_path):
    """Boot a real DetectionServer on a thread, replay through HTTP."""
    server = DetectionServer(db_path, port=0, quiet=True)
    started = threading.Event()

    def run():
        async def main():
            await server.start()
            started.set()
            await server._shutdown.wait()
            await server._close()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(15), "server never started"
    try:
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        client.wait_ready()
        start = perf_counter()
        result = client.replay(trace_path)
        elapsed = perf_counter() - start
        finish = client.finish()
        client.shutdown()
    finally:
        thread.join(15)
    return result, finish, elapsed


def test_serve_replay_throughput(trace, tmp_path):
    trace_path, total = trace

    # Informational ceiling: bare pipeline, no graph adapter at all.
    _, bare_stats = replay_trace(trace_path, build_stream_pipeline())
    bare_rate = bare_stats.events_per_second

    # Comparator: the identical detection core (pipeline + graph
    # adapter at the service's refresh cadence), zero persistence.
    core = build_core(DEFAULT_REFRESH_EVERY, None, 256)
    _, direct_stats = replay_trace(trace_path, core["pipeline"])
    direct_rate = direct_stats.events_per_second

    # Service tax: the same core plus journal + checkpoints, no HTTP.
    service = DetectionService(StateStore(str(tmp_path / "svc.db")))
    start = perf_counter()
    service.replay_file(trace_path)
    service_rate = total / (perf_counter() - start)
    service_digest = service.finish() and service.analysis_digest()

    # Production path: HTTP /replay against a live server.
    result, finish, elapsed = _run_server_replay(
        trace_path, str(tmp_path / "srv.db")
    )
    assert result["replayed"] == total
    server_rate = total / elapsed

    payload = {
        "events": total,
        "quick_mode": quick_mode(),
        "bare_pipeline_events_per_second": round(bare_rate),
        "direct_events_per_second": round(direct_rate),
        "service_events_per_second": round(service_rate),
        "server_events_per_second": round(server_rate),
        "server_fraction_of_direct": round(server_rate / direct_rate, 3),
        "min_server_fraction": MIN_SERVER_FRACTION,
        "campaigns_convicted": finish["campaigns_convicted"],
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(
        os.path.join(OUTPUT_DIR, "serve_replay.json"), "w",
        encoding="utf-8",
    ) as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    save_artifact(
        "serve_replay",
        render_table(
            ["Path", "events/sec", "vs direct"],
            [
                [
                    "bare pipeline (no graph adapter)",
                    f"{bare_rate:,.0f}",
                    f"{bare_rate / direct_rate:.2f}x",
                ],
                [
                    "direct replay into full core",
                    f"{direct_rate:,.0f}",
                    "1.00x",
                ],
                [
                    "service replay_file (journal+snapshot)",
                    f"{service_rate:,.0f}",
                    f"{service_rate / direct_rate:.2f}x",
                ],
                [
                    "server POST /replay (full HTTP path)",
                    f"{server_rate:,.0f}",
                    f"{server_rate / direct_rate:.2f}x",
                ],
            ],
            title=(
                f"Replay throughput over {total:,} events "
                f"(floor: server >= {MIN_SERVER_FRACTION:.0%} of direct)"
            ),
        ),
    )

    # The workload's campaign is convicted through the server path …
    assert finish["campaigns_convicted"] >= 1
    # … the HTTP boundary changes nothing semantically …
    assert finish["digest"] == service_digest
    # … and the persistence + transport tax stays within the floor.
    assert server_rate >= MIN_SERVER_FRACTION * direct_rate
