"""E4 — Case B: automated vs manual Seat Spinning detection (Section
IV-B).

Shape asserted:

* the automated campaign (fixed lead name, rotating birthdate) is fully
  covered by the repeated-name and birthdate-rotation heuristics;
* the *manual* campaign (fixed name set permuted across bookings,
  occasional misspellings) is covered by the name-set-permutation and
  misspelling heuristics — despite triggering **zero** bot-style
  volume alerts, the paper's "unique challenge";
* legitimate bookings are essentially untouched (low false positives).
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.scenarios.case_b import CaseBConfig, run_case_b


def test_case_b_passenger_heuristics(benchmark):
    result = benchmark.pedantic(
        run_case_b, args=(CaseBConfig(),), rounds=1, iterations=1
    )

    save_artifact(
        "case_b_passenger_heuristics",
        render_table(
            ["Metric", "Value"],
            [
                ["automated (Airline B) holds", result.automated_holds],
                ["manual (Airline C) holds", result.manual_holds],
                ["legit holds", result.legit_holds],
                [
                    "automated coverage",
                    f"{result.automated_coverage * 100:.1f}%",
                ],
                ["manual coverage", f"{result.manual_coverage * 100:.1f}%"],
                [
                    "legit false-positive rate",
                    f"{result.legit_false_positive_rate * 100:.2f}%",
                ],
                [
                    "volume-detector recall (automated)",
                    f"{result.volume_recall.get('seat-spinner', 0.0):.2f}",
                ],
                [
                    "volume-detector recall (manual)",
                    f"{result.volume_recall.get('manual-spinner', 0.0):.2f}",
                ],
                ["finding kinds", ", ".join(sorted(result.finding_kinds))],
            ],
            title="Case B: automated vs manual seat spinning",
        ),
    )

    # Passenger-detail heuristics catch both campaigns.
    assert result.automated_coverage > 0.95
    assert result.manual_coverage > 0.9
    # ... with minimal collateral damage.
    assert result.legit_false_positive_rate < 0.03

    # The right signatures fire for the right campaign.
    assert "repeated-name" in result.finding_kinds
    assert "birthdate-rotation" in result.finding_kinds      # automated
    assert "name-set-permutation" in result.finding_kinds    # manual
    assert "misspelling-cluster" in result.finding_kinds     # manual

    # Conventional bot detection sees neither campaign.
    assert result.volume_recall.get("seat-spinner", 0.0) < 0.2
    assert result.volume_recall.get("manual-spinner", 0.0) < 0.2

    # Both campaigns had real volume to find.
    assert result.automated_holds > 200
    assert result.manual_holds > 50
