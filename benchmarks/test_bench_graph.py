"""Graph subsystem throughput: incremental build + propagation.

Pins the cost of the entity-graph hot path: one ``observe_*`` call per
record, the way the streaming adapter drives it.  The synthetic
workload mimics Case A's shape — a large legitimate population plus a
rotated minority sharing passenger names and booking references — so
edge churn and name-gating state behave like a real run, not like a
degenerate star.

Acceptance criteria: the incremental build sustains the pinned
records/second floor, propagation over the resulting graph converges,
and the end-to-end analysis stays in single-digit seconds.  Results
land in ``benchmarks/output/graph_build.{json,txt}``.
"""

import json
import os
import random
from time import perf_counter

from conftest import OUTPUT_DIR, save_artifact

from repro.analysis.reports import render_table
from repro.graph.builder import GraphBuilder
from repro.graph.detector import (
    GraphDetectorConfig,
    accumulate_seed,
    analyze,
    merged_seeds,
    session_prior,
)
from repro.graph.entities import session_node

from tests.test_graph_builder import (
    make_booking,
    make_session,
    make_sms,
)

#: Synthetic workload size (records total across all three feeds).
SESSIONS = 12_000
BOOKINGS = 2_400
SMS = 3_600

#: Conservative floor for shared CI boxes; local runs are far faster.
MIN_RECORDS_PER_SECOND = 2_000.0
MAX_ANALYZE_SECONDS = 30.0


def _workload():
    """Deterministic mixed traffic: 2,000 one-off visitors' devices
    plus a 12-fingerprint rotated operation on shared names/refs."""
    rng = random.Random(20250806)
    sessions, bookings, sms = [], [], []
    rotated = [f"rot-{i:02d}" for i in range(12)]
    names = [("anna", "nowak"), ("jan", "kowalski")]
    for index in range(SESSIONS):
        start = float(index * 7)
        if index % 10 == 0:
            fp = rng.choice(rotated)
            ip = f"10.8.{rng.randrange(4)}.{rng.randrange(250)}"
        else:
            fp = f"visitor-{rng.randrange(2000):04d}"
            ip = (
                f"{rng.randrange(1, 220)}.{rng.randrange(250)}."
                f"{rng.randrange(250)}.{rng.randrange(1, 250)}"
            )
        sessions.append(
            make_session(f"s{index:05d}", fp, ip, [start, start + 40.0])
        )
        if index % 5 == 0 and len(bookings) < BOOKINGS:
            name = (
                rng.choice(names)
                if fp.startswith("rot-")
                else (f"guest{index}", f"family{rng.randrange(3000)}")
            )
            bookings.append(
                make_booking(start + 10.0, fp, ip, [name])
            )
        # SMS volume concentrates on the pumping operation (the Case C
        # signature); visitors send the occasional one-off OTP.
        is_rotated = fp.startswith("rot-")
        if (is_rotated or index % 40 == 0) and len(sms) < SMS:
            ref = (
                f"REF{rng.randrange(4):02d}"
                if is_rotated
                else f"REF-{index:05d}"
            )
            sms.append(
                make_sms(
                    start + 20.0, fp, ip,
                    f"6{rng.randrange(10**8):08d}", ref=ref,
                )
            )
    return sessions, bookings, sms


def test_incremental_build_throughput(benchmark):
    sessions, bookings, sms = _workload()
    total_records = len(sessions) + len(bookings) + len(sms)
    state = {}

    def build_and_analyze():
        builder = GraphBuilder()
        seeds = {}
        config = GraphDetectorConfig()
        build0 = perf_counter()
        booking_iter, sms_iter = iter(bookings), iter(sms)
        for index, session in enumerate(sessions):
            builder.observe_session(session)
            accumulate_seed(
                seeds,
                session_node(session.session_id),
                session_prior(session, config),
            )
            # Interleave the side feeds like the stream adapter does.
            if index % 5 == 0:
                record = next(booking_iter, None)
                if record is not None:
                    builder.observe_booking(record)
            if index % 4 == 0:
                record = next(sms_iter, None)
                if record is not None:
                    builder.observe_sms(record)
        build_seconds = perf_counter() - build0
        analyze0 = perf_counter()
        analysis = analyze(
            builder.graph,
            merged_seeds(seeds, builder, config),
            config,
        )
        state.update(
            builder=builder,
            analysis=analysis,
            build_seconds=build_seconds,
            analyze_seconds=perf_counter() - analyze0,
        )

    benchmark.pedantic(build_and_analyze, rounds=1, iterations=1)

    builder, analysis = state["builder"], state["analysis"]
    build_seconds = state["build_seconds"]
    analyze_seconds = state["analyze_seconds"]
    records_per_second = total_records / build_seconds

    assert builder.sessions_observed == SESSIONS
    assert builder.bookings_observed == len(bookings)
    assert builder.sms_observed == len(sms)
    assert analysis.propagation.converged
    # The rotated operation must surface as one multi-fingerprint
    # campaign even inside the large legitimate population.
    multi = [
        c for c in analysis.campaigns if c.distinct_fingerprints > 1
    ]
    assert multi, "rotated campaign not recovered from the workload"
    assert any(
        fp.startswith("rot-")
        for campaign in multi
        for fp in campaign.fingerprint_ids
    )

    payload = {
        "records_total": total_records,
        "sessions": len(sessions),
        "bookings": len(bookings),
        "sms": len(sms),
        "graph_nodes": builder.graph.node_count,
        "graph_edges": builder.graph.edge_count,
        "build_seconds": build_seconds,
        "analyze_seconds": analyze_seconds,
        "records_per_second": records_per_second,
        "min_records_per_second": MIN_RECORDS_PER_SECOND,
        "propagation_rounds": analysis.propagation.rounds,
        "campaigns": len(analysis.campaigns),
        "multi_fingerprint_campaigns": len(multi),
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(
        os.path.join(OUTPUT_DIR, "graph_build.json"), "w",
        encoding="utf-8",
    ) as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    save_artifact(
        "graph_build",
        render_table(
            ["Metric", "Value"],
            [
                ["records fed", f"{total_records:,}"],
                ["graph nodes", f"{builder.graph.node_count:,}"],
                ["graph edges", f"{builder.graph.edge_count:,}"],
                ["incremental build", f"{build_seconds:.3f}s"],
                ["records/second", f"{records_per_second:,.0f}"],
                ["propagate + extract", f"{analyze_seconds:.3f}s"],
                ["propagation rounds", analysis.propagation.rounds],
                ["campaigns found", len(analysis.campaigns)],
                ["multi-fp campaigns", len(multi)],
            ],
            title=(
                "Entity-graph incremental build "
                f"(floor {MIN_RECORDS_PER_SECOND:,.0f} records/s)"
            ),
        ),
    )

    assert records_per_second >= MIN_RECORDS_PER_SECOND, (
        f"incremental build sustained {records_per_second:,.0f} "
        f"records/s, below the {MIN_RECORDS_PER_SECOND:,.0f} floor"
    )
    assert analyze_seconds < MAX_ANALYZE_SECONDS
