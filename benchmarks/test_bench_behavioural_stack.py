"""E11 (extension) — the Section V advanced-behavioural stack.

The paper's future-work recommendation, implemented and measured:
graph-based navigation analysis + mouse-trajectory biometrics, fused.

Shapes asserted — the complementarity argument:

* volume detection catches none of the three evasive campaigns;
* navigation analysis catches the teleport-to-/hold attackers
  (automated *and* manual spinner) but largely passes the evasive
  scraper, whose browsing loops look like fare shopping;
* biometrics catch the automated campaigns (synthetic curves, no
  pointer events) but necessarily pass the *manual* spinner — a real
  human moves like one;
* the noisy-OR fusion catches every campaign with zero false
  positives: each attack evades some detector, none evades all.
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.scenarios.behavioural import (
    BehaviouralConfig,
    run_behavioural_stack,
)

CLASSES = ("scraper", "seat-spinner", "manual-spinner")


def test_behavioural_stack(benchmark):
    result = benchmark.pedantic(
        run_behavioural_stack,
        args=(BehaviouralConfig(),),
        rounds=1,
        iterations=1,
    )

    rows = []
    for name in ("volume", "navigation", "biometrics", "fusion"):
        run = result.run_for(name)
        rows.append(
            [name]
            + [
                f"{run.recall_by_class.get(cls, 0.0):.2f}"
                for cls in CLASSES
            ]
            + [f"{run.evaluation.false_positive_rate * 100:.2f}%"]
        )
    save_artifact(
        "behavioural_stack",
        render_table(
            ["Detector"] + [f"recall:{c}" for c in CLASSES] + ["FPR"],
            rows,
            title=(
                "Advanced behavioural detection "
                f"(sessions: {result.session_counts_by_class})"
            ),
        ),
    )

    volume = result.run_for("volume").recall_by_class
    navigation = result.run_for("navigation").recall_by_class
    biometrics = result.run_for("biometrics").recall_by_class
    fusion = result.run_for("fusion").recall_by_class

    # Volume detection is blind to all three evasive campaigns.
    for cls in CLASSES:
        assert volume.get(cls, 0.0) <= 0.05, cls

    # Navigation: nails the teleporters, largely passes the evasive
    # scraper (its loops look like fare browsing).
    assert navigation.get("seat-spinner", 0.0) >= 0.9
    assert navigation.get("manual-spinner", 0.0) >= 0.9
    assert navigation.get("scraper", 0.0) <= 0.5

    # Biometrics: nails the automation, passes the human attacker.
    assert biometrics.get("scraper", 0.0) >= 0.9
    assert biometrics.get("seat-spinner", 0.0) >= 0.9
    assert biometrics.get("manual-spinner", 0.0) <= 0.1

    # Fusion: nobody escapes, nobody innocent is hit.
    for cls in CLASSES:
        assert fusion.get(cls, 0.0) >= 0.9, cls
    assert result.run_for("fusion").evaluation.false_positive_rate < 0.01
