"""E9 — attack-stealth ablation: NiP choice vs detectability.

Section IV-A closes with the observation that attackers "now initiate
fraudulent bookings with smaller NiP values ... to blend in with
typical reservation patterns, delaying detection".  This ablation holds
the attacker's *hold count* fixed and sweeps the party size:

* the distributional footprint (Jensen–Shannon divergence of the attack
  week against the baseline mixture) grows with NiP;
* at NiP >= 4 the monitor pinpoints the attacker's exact party size
  (the Fig. 1 "sharp increase in groups of six" signal);
* at NiP 2 the attack hides inside the dominant legitimate mass — no
  surging party size stands out, so NiP-targeted countermeasures have
  nothing to aim at.
"""

from collections import Counter

import pytest
from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.core.detection.anomaly import NipDistributionMonitor
from repro.scenarios.case_a import CaseAConfig, run_case_a
from repro.sim.clock import DAY, WEEK
from repro.traffic.legitimate import AVERAGE_WEEK_NIP_MIXTURE

NIPS = (2, 4, 6, 8)
HOLDS_KEPT = 20  # concurrent holds, fixed across the sweep


def run_stealth_point(nip: int):
    config = CaseAConfig(
        seed=13,
        preferred_nip=nip,
        attacker_target_seats=HOLDS_KEPT * nip,
        cap_at=None,
        controller_enabled=False,
        attack_start=1 * WEEK,
        departure_time=2 * WEEK + 2.5 * DAY,
    )
    result = run_case_a(config)
    counts = Counter(
        r.nip
        for r in result.world.reservations.held_records()
        if 1 * WEEK <= r.time < 2 * WEEK
    )
    monitor = NipDistributionMonitor(baseline=AVERAGE_WEEK_NIP_MIXTURE)
    return monitor.evaluate(counts)


def _sweep():
    return {nip: run_stealth_point(nip) for nip in NIPS}


def test_stealth_ablation(benchmark):
    anomalies = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    save_artifact(
        "stealth_ablation",
        render_table(
            ["Attacker NiP", "JSD vs baseline", "alarm",
             "surging party sizes"],
            [
                [
                    nip,
                    f"{anomaly.jsd:.4f}",
                    "yes" if anomaly.alarm else "no",
                    list(anomaly.surging_nips) or "-",
                ]
                for nip, anomaly in sorted(anomalies.items())
            ],
            title=(
                "Stealth ablation: fixed hold count "
                f"({HOLDS_KEPT} concurrent holds), varying party size"
            ),
        ),
    )

    # Footprint grows with party size (saturating once the party size
    # sticks out completely — NiP 6 and 8 are both ~fully anomalous).
    assert anomalies[2].jsd < anomalies[4].jsd < anomalies[6].jsd
    assert anomalies[8].jsd > 0.8 * anomalies[6].jsd
    assert anomalies[8].jsd > 3 * anomalies[2].jsd

    # Large parties are pinpointed exactly (the Fig. 1 signal)...
    for nip in (4, 6, 8):
        assert nip in anomalies[nip].surging_nips, nip
        assert anomalies[nip].alarm
    # ... while NiP 2 blends into the dominant legitimate mass.
    assert 2 not in anomalies[2].surging_nips
