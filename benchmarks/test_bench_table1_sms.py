"""E2 — regenerate Table I: top-10 destination countries by SMS surge
during the pumping attack, plus the paper's campaign-level facts
(42 destination countries, ~25% global SMS increase).

Shape asserted: the six high-cost destinations (UZ, IR, KG, JO, NG, KH)
dominate the table with four-to-six-digit surge percentages, in the
paper's order, far above the four large markets (SG, GB, CN, TH) whose
surges stay double-digit.
"""

from conftest import save_artifact

from repro.analysis.reports import format_percent, render_table
from repro.scenarios.case_c import (
    CaseCConfig,
    TABLE1_ORDER,
    TABLE1_SURGES,
    run_case_c,
)

HIGH_COST_SIX = ("UZ", "IR", "KG", "JO", "NG", "KH")
MARKET_FOUR = ("SG", "GB", "CN", "TH")


def test_table1_country_surges(benchmark):
    result = benchmark.pedantic(
        run_case_c, args=(CaseCConfig(),), rounds=1, iterations=1
    )
    rows = result.table1_rows()

    save_artifact(
        "table1_sms_country_surges",
        render_table(
            ["Country", "Baseline/wk", "Attack wk", "Increase",
             "Paper"],
            [
                [
                    surge.country_code,
                    surge.baseline_count,
                    surge.window_count,
                    format_percent(surge.surge_percent),
                    format_percent(
                        TABLE1_SURGES.get(surge.country_code, 0.0)
                    ),
                ]
                for surge in rows
            ],
            title=(
                "Table I: top 10 countries by SMS surge "
                f"(global increase {result.global_increase_percent:.1f}%, "
                f"{result.countries_targeted} countries targeted)"
            ),
        ),
    )

    # The table reproduces the paper's country set, with the six
    # high-cost destinations in the paper's exact order on top.  The
    # four large markets below them sit within a few percent of each
    # other, so their relative order is sampling noise, not signal —
    # asserted as a set.
    codes = tuple(surge.country_code for surge in rows)
    assert codes[: len(HIGH_COST_SIX)] == HIGH_COST_SIX
    assert set(codes[len(HIGH_COST_SIX):]) == set(MARKET_FOUR)
    assert set(codes) == set(TABLE1_ORDER)

    surges = {s.country_code: s.surge_percent for s in rows}
    # High-cost six: enormous surges, ordered, within ~2x of the paper.
    for code in HIGH_COST_SIX:
        assert surges[code] > 1_000.0, code
        paper = TABLE1_SURGES[code]
        assert paper / 2.5 < surges[code] < paper * 2.5, code
    # Large markets: modest double-digit surges.
    for code in MARKET_FOUR:
        assert 5.0 < surges[code] < 150.0, code
    # The cliff between the two groups is orders of magnitude.
    assert min(surges[c] for c in HIGH_COST_SIX) > 10 * max(
        surges[c] for c in MARKET_FOUR
    )

    # Campaign-level facts.
    assert result.countries_targeted == 42
    assert 15.0 < result.global_increase_percent < 35.0
    assert result.attacker_sms_delivered > 5_000
