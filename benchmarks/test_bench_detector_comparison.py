"""E6 — detector-family comparison on mixed traffic (Section III).

The paper's argument, regenerated as a recall matrix:

* conventional detectors (volume thresholds, unsupervised clustering,
  fingerprint rules) catch the classic scraper and little else — DoI
  and SMS-pumping sessions are low-volume, mimicry-fingerprinted, and
  rotation shreds them below sessionization (clustering does isolate
  the *automated* seat spinner's timer-driven funnel, but stays blind
  to the manual spinner and the pumper);
* a supervised behaviour classifier helps on DoI funnels it was trained
  on but still misses the pumper's single-request sessions;
* the paper-informed abuse pipeline (passenger-detail heuristics +
  booking-reference identity linking) catches all three functional-
  abuse campaigns with negligible false positives.
"""

from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.scenarios.detectors import (
    DetectorComparisonConfig,
    run_detector_comparison,
)

CLASSES = ("scraper", "seat-spinner", "manual-spinner", "sms-pumper")


def test_detector_comparison(benchmark):
    result = benchmark.pedantic(
        run_detector_comparison,
        args=(DetectorComparisonConfig(),),
        rounds=1,
        iterations=1,
    )

    rows = []
    for name in ("volume", "logistic", "kmeans", "fingerprint",
                 "abuse-pipeline", "campaign-graph", "learned"):
        run = result.run_for(name)
        rows.append(
            [name]
            + [
                f"{run.recall_by_class.get(cls, 0.0):.2f}"
                for cls in CLASSES
            ]
            + [f"{run.evaluation.false_positive_rate * 100:.2f}%"]
        )
    save_artifact(
        "detector_comparison",
        render_table(
            ["Detector"] + list(CLASSES) + ["FPR"],
            rows,
            title=(
                "Recall per attack class "
                f"(sessions: {result.session_counts_by_class})"
            ),
        ),
    )

    volume = result.run_for("volume").recall_by_class
    kmeans = result.run_for("kmeans").recall_by_class
    fingerprint = result.run_for("fingerprint").recall_by_class
    logistic = result.run_for("logistic").recall_by_class
    pipeline = result.run_for("abuse-pipeline").recall_by_class
    learned = result.run_for("learned").recall_by_class

    # Conventional families: great on the scraper...
    for family in (volume, kmeans, fingerprint):
        assert family.get("scraper", 0.0) >= 0.75
    # ... and blind to the paper's attacks — except that clustering,
    # since the empty-cluster reseeding fix, does isolate the
    # automated seat spinner's behavioural cluster (it books the same
    # funnel on a timer; an unsupervised method can find that).  The
    # rotation-shredded classes stay invisible to all three.
    for family in (volume, fingerprint):
        assert family.get("seat-spinner", 0.0) <= 0.25
    assert kmeans.get("seat-spinner", 0.0) >= 0.75
    for family in (volume, kmeans, fingerprint):
        assert family.get("sms-pumper", 0.0) <= 0.10
        assert family.get("manual-spinner", 0.0) <= 0.25

    # Supervised behaviour modelling still misses the rotation-shredded
    # pumper sessions (single-request sessions carry no behaviour).
    assert logistic.get("sms-pumper", 0.0) <= 0.10

    # The learned arm (repro.ml MLP rung) generalises from labels
    # alone: it catches the scraper and both spinners with no
    # hand-written rule — and, like every session-feature method,
    # stays blind to the pumper's featureless one-request sessions.
    assert learned.get("scraper", 0.0) >= 0.75
    assert learned.get("seat-spinner", 0.0) >= 0.85
    assert learned.get("manual-spinner", 0.0) >= 0.85
    assert learned.get("sms-pumper", 0.0) <= 0.10

    # The paper-informed pipeline catches every functional-abuse class.
    assert pipeline.get("seat-spinner", 0.0) >= 0.85
    assert pipeline.get("manual-spinner", 0.0) >= 0.85
    assert pipeline.get("sms-pumper", 0.0) >= 0.85

    # All detector families keep collateral damage low.
    for name in (
        "volume", "kmeans", "fingerprint", "abuse-pipeline", "learned",
    ):
        fpr = result.run_for(name).evaluation.false_positive_rate
        assert fpr < 0.02, name
