"""P1 — simulation-kernel fast-path throughput, pinned.

Measures the kernel workloads defined in :mod:`kernel_workloads`
(median-of-N rounds; see there for why median) and emits a
machine-readable artifact, ``output/kernel_throughput.json``, holding
raw throughputs, peak RSS, and speedups against the recorded
pre-fast-path baseline (``output/kernel_baseline.json``, median of 14
interleaved rounds on the recording machine).

Three tiers of assertion:

* **Invariants** — always: the cancel-churn workload must not leak
  cancelled entries in the heap (the pre-fast-path kernel retired them
  only at pop time and finished this workload with a 101x-bloated
  heap).
* **Absolute floors** — always: conservative events/sec floors with
  roughly 5x headroom below the recording machine's medians, so they
  hold on slower CI runners while still catching order-of-magnitude
  regressions (an accidental O(n) scan in the hot loop).
* **Speedup floors** — only with ``REPRO_BENCH_VS_BASELINE=1``:
  ratios against the recorded baseline are only meaningful on the
  machine the baseline was recorded on, so cross-machine CI must not
  assert them.  On the recording machine the dispatch workload runs
  >=2x and Case A >=1.5x over the old kernel; the asserted floors
  leave noise margin below that.

``REPRO_BENCH_QUICK=1`` (the CI perf-smoke job) shrinks every workload
~10x and asserts only the invariants plus generous quick floors.
"""

import json
import os
import platform

import pytest

from conftest import COMMITTED_DIR, OUTPUT_DIR, save_artifact

import kernel_workloads as kw

#: The baseline is a committed recording — always read from the
#: committed directory, never from the quick-mode scratch dir.
BASELINE_PATH = os.path.join(COMMITTED_DIR, "kernel_baseline.json")
ARTIFACT_PATH = os.path.join(OUTPUT_DIR, "kernel_throughput.json")

#: events/sec floors for full-size workloads (~5x below recorded medians).
FULL_FLOORS = {
    "kernel_dispatch": 60_000,
    "kernel_reschedule": 100_000,
    "kernel_cancel": 150_000,
    "case_a": 4_000,
    "stream_sessionize": 200_000,
}

#: Quick-mode workloads are ~10x smaller, so fixed costs weigh more;
#: floors are another 2x more generous.
QUICK_FLOORS = {
    "kernel_dispatch": 30_000,
    "kernel_reschedule": 50_000,
    "kernel_cancel": 75_000,
    "case_a": 2_000,
    "stream_sessionize": 100_000,
}

#: Same-machine speedup floors vs. the recorded baseline (see above).
SPEEDUP_FLOORS = {
    "kernel_dispatch": 1.7,
    "kernel_reschedule": 1.7,
    "kernel_cancel": 1.3,
    "case_a": 1.4,
}

#: Peak-RSS ceiling; the full run peaks just under 100 MiB.
PEAK_RSS_CEILING_MB = 256.0


def test_kernel_throughput():
    if not os.path.exists(BASELINE_PATH):
        pytest.skip(
            "no recorded kernel baseline "
            "(benchmarks/output/kernel_baseline.json)"
        )
    quick = kw.quick_mode()
    # Peak RSS is a process-wide high-water mark: when the full suite
    # runs front-to-back, earlier benchmarks' retained fixtures own the
    # peak and the ceiling below would measure them, not the kernel.
    rss_attributable = kw.peak_rss_mb() <= PEAK_RSS_CEILING_MB
    results = kw.run_all_workloads()

    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)

    speedups = {}
    if not quick:  # baseline was recorded full-size; quick is incomparable
        for name, base in baseline["workloads"].items():
            if name in results and "events_per_sec" in base:
                speedups[name] = (
                    results[name]["events_per_sec"] / base["events_per_sec"]
                )

    artifact = {
        "schema": "repro.bench.kernel-throughput/1",
        "quick_mode": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "baseline_commit": baseline.get("commit"),
        "workloads": results,
        "speedups_vs_baseline": speedups,
        "floors": QUICK_FLOORS if quick else FULL_FLOORS,
        "speedup_floors": SPEEDUP_FLOORS,
    }
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lines = [
        f"kernel throughput ({'quick' if quick else 'full'} mode, "
        f"median of {kw.default_rounds()} rounds)",
    ]
    for name, res in results.items():
        if name == "peak_rss_mb":
            continue
        ratio = (
            f"  {speedups[name]:.2f}x vs baseline"
            if name in speedups
            else ""
        )
        lines.append(f"  {name:<20} {res['events_per_sec']:>12,.0f} ev/s{ratio}")
    lines.append(f"  peak RSS {results['peak_rss_mb']['value']:.1f} MiB")
    save_artifact("kernel_throughput", "\n".join(lines))

    # Invariant: cancelled entries must not accumulate in the heap.
    # The workload churns 100 cancel+reschedule rounds over 2k slots;
    # before threshold compaction the heap ended 101x its live size.
    cancel = results["kernel_cancel"]
    assert cancel["final_heap_len"] <= 3 * cancel["final_pending"], (
        "cancelled events are leaking in the heap: "
        f"{cancel['final_heap_len']:.0f} entries for "
        f"{cancel['final_pending']:.0f} live events"
    )

    floors = QUICK_FLOORS if quick else FULL_FLOORS
    for name, floor in floors.items():
        measured = results[name]["events_per_sec"]
        assert measured >= floor, (
            f"{name}: {measured:,.0f} ev/s below pinned floor {floor:,}"
        )
    if rss_attributable:
        assert results["peak_rss_mb"]["value"] <= PEAK_RSS_CEILING_MB

    if os.environ.get("REPRO_BENCH_VS_BASELINE") == "1" and not quick:
        for name, floor in SPEEDUP_FLOORS.items():
            assert speedups[name] >= floor, (
                f"{name}: {speedups[name]:.2f}x below speedup floor "
                f"{floor}x vs recorded baseline"
            )
