"""E12 — SMS quota exhaustion and collateral damage (Section II-B).

"If the volume of SMS exceeds the application's quotas contracted with
a network operator, legitimate users may be unable to leverage this
feature ... This disruption can result in a significant drop in the
application's reputation."

Same week of legitimate SMS traffic, with and without the pumping
campaign, under a contracted weekly quota with ~15% headroom:

* without the attack, the quota is never touched — zero legitimate
  rejections;
* with the attack, the quota exhausts mid-week and *every* user is
  locked out for the remainder — hundreds of genuine travellers lose
  their OTPs and boarding passes.
"""

import pytest
from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.common import LEGIT
from repro.identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from repro.identity.ip import ResidentialProxyPool
from repro.scenarios.case_c import case_c_attack_weights
from repro.scenarios.world import FlightSpec, WorldConfig, build_world
from repro.sim.clock import DAY, HOUR, WEEK, format_duration
from repro.sms.gateway import REJECT_QUOTA_EXHAUSTED
from repro.traffic.sms_baseline import BaselineSmsConfig, BaselineSmsTraffic
from repro.traffic.sms_pumper import SmsPumperBot, SmsPumperConfig

BASELINE_PER_WEEK = 4000.0
QUOTA = 4600           # ~15% headroom over the legitimate volume
ATTACK_SMS_PER_HOUR = 9.0   # ~1500 over the week: blows the headroom


def run_quota_week(with_attack: bool, seed: int = 6):
    world = build_world(
        WorldConfig(
            seed=seed,
            flights=[FlightSpec("SETUP", 30 * DAY, capacity=100)],
            sms_weekly_quota=QUOTA,
        )
    )
    BaselineSmsTraffic(
        world.loop,
        world.app,
        world.rngs.stream("baseline"),
        BaselineSmsConfig(sms_per_hour=BASELINE_PER_WEEK / (WEEK / HOUR)),
    ).start(at=0.0)
    if with_attack:
        SmsPumperBot(
            world.loop,
            world.app,
            BotIdentity(
                FingerprintForge(MIMICRY),
                RotationPolicy(mean_interval=5.3 * HOUR),
                world.rngs.stream("pumper.identity"),
            ),
            ResidentialProxyPool(),
            world.rngs.stream("pumper"),
            SmsPumperConfig(
                setup_flight="SETUP",
                sms_per_hour=ATTACK_SMS_PER_HOUR,
                target_weights=case_c_attack_weights(),
            ),
        ).start(at=0.0)
    world.run_until(1 * WEEK)

    legit_rejected = [
        r
        for r in world.sms.records
        if r.client.actor_class == LEGIT
        and r.reject_reason == REJECT_QUOTA_EXHAUSTED
    ]
    exhausted_at = min(
        (
            r.time
            for r in world.sms.records
            if r.reject_reason == REJECT_QUOTA_EXHAUSTED
        ),
        default=None,
    )
    return {
        "legit_rejected": len(legit_rejected),
        "exhausted_at": exhausted_at,
        "quota_used": world.sms.quota_used_this_week,
        "delivered": len(world.sms.delivered_records()),
    }


def _both():
    return {
        "baseline": run_quota_week(with_attack=False),
        "attack": run_quota_week(with_attack=True),
    }


def test_quota_exhaustion_collateral(benchmark):
    results = benchmark.pedantic(_both, rounds=1, iterations=1)
    baseline = results["baseline"]
    attack = results["attack"]

    save_artifact(
        "quota_collateral",
        render_table(
            ["Metric", "no attack", "with pumping"],
            [
                ["SMS delivered", baseline["delivered"],
                 attack["delivered"]],
                ["quota exhausted",
                 "never"
                 if baseline["exhausted_at"] is None
                 else format_duration(baseline["exhausted_at"]),
                 "never"
                 if attack["exhausted_at"] is None
                 else "at " + format_duration(attack["exhausted_at"])],
                ["legitimate requests rejected",
                 baseline["legit_rejected"], attack["legit_rejected"]],
            ],
            title=(
                f"One week under a {QUOTA}-message quota "
                f"(~{BASELINE_PER_WEEK:.0f} legitimate messages/week)"
            ),
        ),
    )

    # Without the attack the headroom holds.
    assert baseline["exhausted_at"] is None
    assert baseline["legit_rejected"] == 0

    # With it, the quota dies mid-week and real users get locked out.
    assert attack["exhausted_at"] is not None
    assert attack["exhausted_at"] < 6.8 * DAY
    assert attack["legit_rejected"] > 50
