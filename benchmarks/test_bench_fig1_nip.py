"""E1 — regenerate Fig. 1: the Number-in-Party distribution across the
average week, the attack week, and the post-cap week.

Paper shapes asserted:

* average week: NiP 1 > NiP 2 > everything else; NiP 6 is a ~1% tail;
* attack week (no limitation): a sharp surge at NiP 6 — the seat
  spinner's preferred party size — while the ordering of small parties
  is preserved;
* post-cap week (cap = 4): NiP 5+ vanish; NiP 4 surges because *both*
  the attacker and legitimate large groups re-book at the cap.
"""

from conftest import save_artifact

from repro.analysis.reports import render_weekly_nip
from repro.scenarios.case_a import CaseAConfig, run_case_a


def test_fig1_nip_distribution(benchmark):
    result = benchmark.pedantic(
        run_case_a, args=(CaseAConfig(),), rounds=1, iterations=1
    )
    average, attack, post_cap = result.week_shares

    save_artifact(
        "fig1_nip_distribution",
        render_weekly_nip(
            [
                {n: week.get(n, 0.0) for n in range(1, 10)}
                for week in result.week_shares
            ],
            ["average week", "attack week", "after NiP<=4 cap"],
        ),
    )

    # -- average week: the paper's baseline shape --
    assert average[1] > average[2] > average[3]
    assert average.get(6, 0.0) < 0.03

    # -- attack week: the NiP-6 surge --
    surge_factor = attack[6] / max(average.get(6, 0.0), 1e-6)
    assert surge_factor > 5.0, f"NiP-6 surge only {surge_factor:.1f}x"
    assert attack[6] > 0.10
    # Small parties keep their relative ordering underneath the surge.
    assert attack[1] > attack[2] > attack[3]

    # -- post-cap week: everyone folds to the cap --
    assert result.cap_applied_at is not None
    cap = result.config.cap_value
    assert all(nip <= cap for nip in post_cap)
    cap_surge = post_cap[cap] / max(average.get(cap, 0.0), 1e-6)
    assert cap_surge > 3.0, f"NiP-4 rise only {cap_surge:.1f}x"
    assert post_cap[cap] > attack.get(cap, 0.0)

    # Sanity: every week has a real sample behind it.
    for counts in result.week_counts:
        assert sum(counts.values()) > 500
