"""Measurement workloads for the sharded million-visitor benchmark.

One sweep of the ``scale-world`` scenario per row: a visitor
population partitioned into K shards, simulated on the runner's
process pool, merged back through the shard fold.  Each row reports

* aggregate **events/sec** — merged kernel events over wall-clock for
  the whole sweep (shard planning + simulation + merge, the number a
  capacity plan would use);
* **peak RSS** — the driver's high-water mark plus the largest worker
  process's (``getrusage`` ``RUSAGE_SELF`` + ``RUSAGE_CHILDREN``; on
  a serial row the children term is zero).  The columnar log store is
  what keeps this bounded: the log at rest costs ~30 bytes/row
  instead of a ~150-byte ``LogEntry`` object per request.

Row sizes are env-gated the same way the kernel workloads are:
``REPRO_BENCH_SCALE=1`` runs the full million-visitor flagship row
(minutes of wall clock; the committed ``bench_scale.json`` artifact
records it); the default rows are CI-smoke sized and additionally
pair K=1 against K=4 so the smoke run exercises both the pass-through
and the sharded path.
"""

from __future__ import annotations

import os
import resource
import time
from typing import Dict, List

from repro.runner.core import run_sweep
from repro.runner.spec import SweepSpec
from repro.sim.clock import DAY


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "") == "1"


def peak_rss_mb() -> float:
    """Driver high-water RSS plus the largest worker's, in MiB."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return (self_kb + child_kb) / 1024.0


#: (label, visitors, duration, shards, workers)
SMOKE_ROWS = (
    ("k1-smoke", 50_000, 1 * DAY, 1, 1),
    ("k4-smoke", 50_000, 1 * DAY, 4, 4),
)
FLAGSHIP_ROW = ("k4-flagship", 1_000_000, 7 * DAY, 4, 4)


def rows() -> List[tuple]:
    return [FLAGSHIP_ROW] if full_scale() else list(SMOKE_ROWS)


def run_row(
    label: str, visitors: int, duration: float, shards: int, workers: int
) -> Dict[str, float]:
    """Run one sharded sweep and report throughput + memory."""
    spec = SweepSpec(
        scenario="scale-world",
        base={"visitors": visitors, "duration": duration},
        master_seed=0,
    )
    rss_before = peak_rss_mb()
    started = time.perf_counter()
    result = run_sweep(
        spec,
        workers=workers,
        backend="process" if workers > 1 else "serial",
        shards=shards,
    )
    wall = time.perf_counter() - started
    metrics = result.cells[0].metrics
    return {
        "label": label,
        "visitors_requested": float(visitors),
        "duration_days": duration / DAY,
        "shards": float(shards),
        "workers": float(workers),
        "wall_seconds": wall,
        "visitors_spawned": metrics["visitors_spawned"],
        "log_entries": metrics["log_entries"],
        "log_store_bytes": metrics["log_store_bytes"],
        "events_processed": metrics["events_processed"],
        "events_per_sec": metrics["events_processed"] / wall,
        "visitors_per_sec": metrics["visitors_spawned"] / wall,
        # High-water mark attributable to this row (the driver's RSS
        # monotonically accumulates; the delta-from-before keeps rows
        # comparable when several run in one process).
        "peak_rss_mb": peak_rss_mb(),
        "peak_rss_mb_before": rss_before,
    }
