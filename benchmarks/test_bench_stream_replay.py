"""E8 — streaming detection: online mitigation + trace replay.

Three arms of the compressed Case A world (attacker holding 180 of 200
seats, no periodic controller in any arm):

* **off** — no online pipeline: the ablation baseline;
* **blocking** — streaming convictions deploy fingerprint blocks the
  moment the hold-velocity window fills: first block lands *inside the
  attacker's first burst* (the periodic controller would wait for its
  next tick), but rotate-on-block restarts the arms race and no
  inventory is saved — Section V's point that blocking alone fails;
* **honeypot** — the same convictions route the attacker into decoy
  inventory instead: no rotation, and legitimate customers get the
  seats back.

The blocking arm is also captured to a trace and replayed through a
fresh pipeline, asserting the acceptance criterion end-to-end: replayed
streaming session verdicts are *identical* to the batch pipeline's on
the rebuilt log, and the replay reports events/sec with the simulation
cost stripped away.
"""

import os

import pytest
from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.core.detection.volume import VolumeDetector
from repro.scenarios.streaming import (
    StreamCaseAConfig,
    build_stream_pipeline,
    run_stream_case_a,
)
from repro.sim.clock import format_duration
from repro.stream import SessionDetectorAdapter, batch_session_verdicts
from repro.trace import rebuild_log, replay_trace


def _arm(trace_path=None, **kwargs):
    return StreamCaseAConfig(trace_path=trace_path, **kwargs)


@pytest.fixture(scope="module")
def off_result():
    return run_stream_case_a(_arm(streaming=False))


@pytest.fixture(scope="module")
def blocking_result(tmp_path_factory):
    trace = str(tmp_path_factory.mktemp("traces") / "case_a_stream.rptr")
    return run_stream_case_a(_arm(trace_path=trace))


def _ttfb(result):
    ttfb = result.time_to_first_block
    return format_duration(ttfb) if ttfb is not None else "-"


def test_online_mitigation(benchmark, off_result, blocking_result):
    honeypot = benchmark.pedantic(
        run_stream_case_a,
        args=(_arm(honeypot_mode=True),),
        rounds=1,
        iterations=1,
    )
    off, blocking = off_result, blocking_result

    save_artifact(
        "stream_online_mitigation",
        render_table(
            ["Metric", "off", "blocking", "honeypot"],
            [
                [
                    "time to first block",
                    _ttfb(off), _ttfb(blocking), _ttfb(honeypot),
                ],
                [
                    "online mitigation actions",
                    off.online_actions,
                    blocking.online_actions,
                    honeypot.online_actions,
                ],
                [
                    "attacker rotations",
                    off.base.attacker_rotations,
                    blocking.base.attacker_rotations,
                    honeypot.base.attacker_rotations,
                ],
                [
                    "attacker holds created",
                    off.attacker_holds_created,
                    blocking.attacker_holds_created,
                    honeypot.attacker_holds_created,
                ],
                [
                    "legit seats sold (target flight)",
                    off.target_legit_confirmed_seats,
                    blocking.target_legit_confirmed_seats,
                    honeypot.target_legit_confirmed_seats,
                ],
                [
                    "events processed",
                    off.events_processed,
                    blocking.events_processed,
                    honeypot.events_processed,
                ],
                [
                    "peak open sessions",
                    off.peak_open_sessions,
                    blocking.peak_open_sessions,
                    honeypot.peak_open_sessions,
                ],
            ],
            title=(
                "Case A online mitigation: streaming off vs "
                "block-on-conviction vs honeypot routing"
            ),
        ),
    )

    # Streaming convicts inside the attacker's first hold burst — the
    # periodic controller's floor is its polling interval.
    assert blocking.time_to_first_block is not None
    assert blocking.time_to_first_block < 60.0
    assert honeypot.time_to_first_block is not None

    # Blocking restarts the arms race online (no inventory saved) …
    assert blocking.base.attacker_rotations > 20
    assert (
        blocking.target_legit_confirmed_seats
        <= off.target_legit_confirmed_seats + 5
    )
    # … honeypot routing ends it (zero rotations) and recovers real
    # inventory for customers.  The margin over the off arm depends on
    # how much legitimate demand arrives after the attacker is decoyed
    # — a seed-sensitive quantity — so the pin is strict improvement
    # over both other arms, not a fixed multiple.
    assert honeypot.base.attacker_rotations == 0
    assert (
        honeypot.target_legit_confirmed_seats
        > off.target_legit_confirmed_seats
    )
    assert (
        honeypot.target_legit_confirmed_seats
        > blocking.target_legit_confirmed_seats
    )


def test_trace_replay_throughput_and_equivalence(blocking_result):
    trace = blocking_result.config.trace_path
    assert blocking_result.trace_entries == blocking_result.events_processed

    report, stats = replay_trace(trace, build_stream_pipeline())
    trace_bytes = os.path.getsize(trace)

    # Batch pipeline on the rebuilt log, same detector set.
    detectors = [VolumeDetector()]
    batch = batch_session_verdicts(rebuild_log(trace), detectors)
    replayed = [
        v for v in report.session_verdicts
        if v.detector == detectors[0].name
    ]
    equivalent = set(replayed) == set(batch)

    save_artifact(
        "stream_replay_throughput",
        render_table(
            ["Metric", "Value"],
            [
                ["trace entries", stats.entries],
                ["trace size", f"{trace_bytes:,} bytes"],
                ["bytes/entry", f"{trace_bytes / stats.entries:.1f}"],
                ["replay throughput",
                 f"{stats.events_per_second:,.0f} events/sec"],
                ["sessions closed", report.sessions_closed],
                ["peak open sessions", report.peak_open_sessions],
                ["batch-equivalent session verdicts",
                 f"{'yes' if equivalent else 'NO'} ({len(replayed)})"],
            ],
            title="Trace capture/replay: cost and batch equivalence",
        ),
    )

    # Acceptance criterion: fixed-seed replay through repro.stream
    # yields verdicts identical to the batch pipeline.
    assert equivalent
    assert len(replayed) == len(batch)
    # Replay sees the identical entry stream the live run saw.
    assert stats.entries == blocking_result.events_processed
    # Interning keeps the format compact (raw repr is ~300+ bytes/entry).
    assert trace_bytes / stats.entries < 100
    # Single-thread replay clears a modest throughput floor.
    assert stats.events_per_second > 2_000
