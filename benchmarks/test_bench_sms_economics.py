"""E8 — the SMS-pumping profitability frontier (Section V's economic
deterrence argument).

Sweeps the carrier revenue-share kickback and the defender's posture:

* with colluding carriers and no mitigation, attacker profit rises
  monotonically with the revenue share and is clearly positive at the
  shares real schemes pay;
* at very low shares the attack barely covers proxy/ticket costs — the
  profitability frontier crosses zero inside the sweep;
* per-booking-reference rate limits starve revenue below costs;
* the paper's proposed carrier-side *non-compensation policy* zeroes
  the revenue stream entirely: the attack cannot be profitable at any
  share.
"""

import pytest
from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.economics.reports import build_attacker_ledger
from repro.identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from repro.identity.ip import ResidentialProxyPool
from repro.scenarios.case_c import case_c_attack_weights
from repro.scenarios.world import FlightSpec, WorldConfig, build_world
from repro.sim.clock import DAY, HOUR
from repro.sms.countries import high_cost_codes
from repro.traffic.sms_pumper import SmsPumperBot, SmsPumperConfig
from repro.web.ratelimit import RateLimitRule, key_by_booking_ref
from repro.web.request import BOARDING_PASS_SMS

NONE = "none"
PER_REF = "per-ref"
NON_COMPENSATION = "non-compensation"

SHARES = (0.1, 0.3, 0.5, 0.7)


def run_economics_point(
    revenue_share: float, posture: str, seed: int = 9
) -> float:
    """Run a 3-day pumping campaign; return the attacker's net profit."""
    world = build_world(
        WorldConfig(
            seed=seed,
            flights=[FlightSpec("SETUP", 30 * DAY, capacity=100)],
            colluding_countries=tuple(high_cost_codes()),
            attacker_revenue_share=revenue_share,
        )
    )
    if posture == NON_COMPENSATION:
        for code in high_cost_codes():
            world.telco.flag_carrier(code)
        world.telco.enable_non_compensation_policy()
    elif posture == PER_REF:
        world.app.ratelimits.add_rule(
            RateLimitRule(
                rule_id="bp-per-ref",
                key_fn=key_by_booking_ref,
                limit=5,
                window=1 * DAY,
                paths=(BOARDING_PASS_SMS,),
            )
        )

    proxy_pool = ResidentialProxyPool()
    bot = SmsPumperBot(
        world.loop,
        world.app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(mean_interval=5.3 * HOUR),
            world.rngs.stream("pumper.identity"),
        ),
        proxy_pool,
        world.rngs.stream("pumper"),
        SmsPumperConfig(
            setup_flight="SETUP",
            sms_per_hour=150.0,
            target_weights=case_c_attack_weights(),
        ),
    )
    bot.start(at=0.0)
    world.run_until(3 * DAY)
    ledger = build_attacker_ledger(
        world.app, proxy_pools=[proxy_pool], attacker_actors=[bot.name]
    )
    return ledger.net


def _sweep():
    results = {}
    for share in SHARES:
        results[(share, NONE)] = run_economics_point(share, NONE)
    results[(0.5, PER_REF)] = run_economics_point(0.5, PER_REF)
    results[(0.7, NON_COMPENSATION)] = run_economics_point(
        0.7, NON_COMPENSATION
    )
    return results


def test_sms_pumping_profitability_frontier(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    save_artifact(
        "sms_economics_frontier",
        render_table(
            ["Revenue share", "Posture", "Attacker net ($, 3 days)"],
            [
                [share, posture, f"{net:+.2f}"]
                for (share, posture), net in sorted(results.items())
            ],
            title="SMS pumping profitability frontier",
        ),
    )

    unmitigated = [results[(share, NONE)] for share in SHARES]
    # Profit is monotone in the kickback share...
    assert unmitigated == sorted(unmitigated)
    # ... clearly positive at real-world shares ...
    assert results[(0.5, NONE)] > 50.0
    assert results[(0.7, NONE)] > results[(0.5, NONE)]
    # ... and the frontier crosses zero inside the sweep.
    assert unmitigated[0] < unmitigated[-1]
    assert unmitigated[0] < 50.0

    # Per-ref limits starve the revenue below cost at a profitable share.
    assert results[(0.5, PER_REF)] < 0.0
    assert results[(0.5, PER_REF)] < results[(0.5, NONE)]

    # Non-compensation kills profitability even at the highest share.
    assert results[(0.7, NON_COMPENSATION)] < 0.0
    assert results[(0.7, NON_COMPENSATION)] < results[(0.1, NONE)]
