"""E5 — Case C operational comparison: how fast each protection posture
notices (and strangles) the SMS-pumping campaign (Section IV-C).

Paper facts reproduced in shape:

* with only a *path-level* rate limit (the paper's actual posture),
  detection happens late — only "after the total number of boarding
  pass requests via SMS triggered the rate limit for the targeted
  path" — and the emergency response is removing the SMS option, after
  which "the attack ceased";
* with per-booking-reference (+ per-profile) limits in place — the
  missing control the paper calls out — the attack is throttled within
  the hour and delivers two orders of magnitude fewer messages.
"""

import pytest
from conftest import save_artifact

from repro.analysis.reports import render_table
from repro.scenarios.case_c import (
    CaseCConfig,
    PATH_LIMIT,
    PER_REF,
    run_case_c,
)
from repro.sim.clock import DAY, HOUR, format_duration


@pytest.fixture(scope="module")
def variant_results():
    return {
        variant: run_case_c(CaseCConfig(variant=variant))
        for variant in (PATH_LIMIT, PER_REF)
    }


def test_case_c_detection_latency(benchmark, variant_results):
    # Timing covers one additional full run of the path-limit variant.
    benchmark.pedantic(
        run_case_c,
        args=(CaseCConfig(variant=PATH_LIMIT),),
        rounds=1,
        iterations=1,
    )
    path = variant_results[PATH_LIMIT]
    per_ref = variant_results[PER_REF]

    save_artifact(
        "case_c_protection_variants",
        render_table(
            ["Metric", "path-limit only (paper)", "per-ref limits"],
            [
                [
                    "detection latency",
                    format_duration(path.detection_latency or 0.0),
                    format_duration(per_ref.detection_latency or 0.0),
                ],
                [
                    "attacker SMS delivered",
                    path.attacker_sms_delivered,
                    per_ref.attacker_sms_delivered,
                ],
                [
                    "attacker attempts rate-limited",
                    path.attacker_sms_attempts_blocked,
                    per_ref.attacker_sms_attempts_blocked,
                ],
                [
                    "SMS feature removed",
                    "yes"
                    if path.feature_disabled_at is not None
                    else "no",
                    "yes"
                    if per_ref.feature_disabled_at is not None
                    else "no",
                ],
                [
                    "defender SMS spend ($)",
                    f"{path.defender_sms_cost:.0f}",
                    f"{per_ref.defender_sms_cost:.0f}",
                ],
                [
                    "attacker net profit ($)",
                    f"{path.attacker_ledger.net:.0f}",
                    f"{per_ref.attacker_ledger.net:.0f}",
                ],
            ],
            title="Case C: protection posture comparison",
        ),
    )

    # Path-only detection is hours-to-days late...
    assert path.detection_latency is not None
    assert path.detection_latency > 4 * HOUR
    # ... per-ref detection is near-immediate.
    assert per_ref.detection_latency is not None
    assert per_ref.detection_latency < 1 * HOUR
    assert per_ref.detection_latency < path.detection_latency / 5

    # Per-ref limits strangle delivery by >= 2 orders of magnitude
    # relative to the unprotected campaign (~11k messages).
    assert per_ref.attacker_sms_delivered < 500
    assert path.attacker_sms_delivered > per_ref.attacker_sms_delivered

    # The paper's emergency response fires in the path-limit posture
    # and the attack then ceases (bot gives up on the dead feature).
    assert path.feature_disabled_at is not None
    last_delivery = max(
        (
            r.time
            for r in path.world.sms.records
            if r.delivered and r.client.actor_class == "sms-pumper"
        ),
        default=0.0,
    )
    assert last_delivery <= path.feature_disabled_at + 1.0

    # Economic consequence: per-ref limits flip the attack unprofitable.
    assert per_ref.attacker_ledger.net < path.attacker_ledger.net
    assert per_ref.attacker_ledger.net < 50.0
