"""Shared helpers for the benchmark harness.

Each benchmark runs its scenario once (``benchmark.pedantic`` with a
single round — these are minutes-long simulations, not microbenchmarks),
asserts the paper's qualitative shape, and renders the regenerated
table/figure both to stdout and to an output directory.

Two output directories, one committed and one not:

* ``benchmarks/output/`` — the committed artifacts (tables, baselines)
  that ``tests/test_golden_outputs.py`` parses.  Only full-size runs
  write here, because only full-size runs produce numbers comparable
  to the committed ones.
* ``benchmarks/output/quick/`` — scratch output for
  ``REPRO_BENCH_QUICK=1`` runs (the CI perf-smoke job).  Quick
  workloads are ~10x smaller, so their artifacts would silently
  clobber the committed goldens with incomparable numbers; they land
  here instead (gitignored).
"""

import os

#: Committed artifacts (read side: baselines, goldens).
COMMITTED_DIR = os.path.join(os.path.dirname(__file__), "output")


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK") == "1"


#: Write side: where this run's artifacts land.
OUTPUT_DIR = (
    os.path.join(COMMITTED_DIR, "quick") if quick_mode() else COMMITTED_DIR
)


def bench_workers(default: int = 4) -> int:
    """Worker-process count for runner-based benchmarks.

    Override with ``REPRO_BENCH_WORKERS`` (e.g. 1 on constrained CI
    boxes); the default asks for 4 so multi-core hosts demonstrate the
    sweep speedup.
    """
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", default)))


def save_artifact(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it to output/."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n===== {name} =====")
    print(text)
