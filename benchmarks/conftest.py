"""Shared helpers for the benchmark harness.

Each benchmark runs its scenario once (``benchmark.pedantic`` with a
single round — these are minutes-long simulations, not microbenchmarks),
asserts the paper's qualitative shape, and renders the regenerated
table/figure both to stdout and to ``benchmarks/output/``.
"""

import os

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def save_artifact(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it to output/."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n===== {name} =====")
    print(text)
