"""Shared helpers for the benchmark harness.

Each benchmark runs its scenario once (``benchmark.pedantic`` with a
single round — these are minutes-long simulations, not microbenchmarks),
asserts the paper's qualitative shape, and renders the regenerated
table/figure both to stdout and to ``benchmarks/output/``.
"""

import os

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def bench_workers(default: int = 4) -> int:
    """Worker-process count for runner-based benchmarks.

    Override with ``REPRO_BENCH_WORKERS`` (e.g. 1 on constrained CI
    boxes); the default asks for 4 so multi-core hosts demonstrate the
    sweep speedup.
    """
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", default)))


def save_artifact(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it to output/."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n===== {name} =====")
    print(text)
