"""Tests for repro.booking.passengers (names, typos, gibberish)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.booking.passengers import (
    Passenger,
    edit_distance,
    gibberish_score,
    misspell,
    sample_birthdate,
    sample_genuine_party,
    sample_genuine_passenger,
    sample_gibberish_passenger,
)


class TestPassenger:
    def test_name_key_case_folds(self):
        passenger = Passenger("Anna", "Rossi", "1990-01-01", "a@b.c")
        assert passenger.name_key == ("anna", "rossi")
        assert passenger.full_name == "Anna Rossi"


class TestGenerators:
    def test_birthdate_format(self):
        rng = random.Random(1)
        for _ in range(50):
            birthdate = sample_birthdate(rng)
            year, month, day = birthdate.split("-")
            assert 1950 <= int(year) <= 2006
            assert 1 <= int(month) <= 12
            assert 1 <= int(day) <= 28

    def test_genuine_passenger_plausible(self):
        rng = random.Random(2)
        passenger = sample_genuine_passenger(rng)
        assert passenger.first_name.isalpha()
        assert "@" in passenger.email

    def test_party_size(self):
        rng = random.Random(3)
        party = sample_genuine_party(rng, 4)
        assert len(party) == 4

    def test_party_size_validation(self):
        with pytest.raises(ValueError):
            sample_genuine_party(random.Random(1), 0)

    def test_families_often_share_surname(self):
        rng = random.Random(4)
        shared = 0
        for _ in range(100):
            party = sample_genuine_party(rng, 3)
            surnames = {p.last_name for p in party}
            if len(surnames) == 1:
                shared += 1
        assert shared > 50

    def test_gibberish_passenger_lowercase_mash(self):
        rng = random.Random(5)
        passenger = sample_gibberish_passenger(rng)
        assert passenger.first_name.islower()
        assert 5 <= len(passenger.first_name) <= 9


class TestMisspell:
    def test_close_to_original(self):
        # Drops and doublings are 1 edit; an adjacent swap is 2
        # substitutions under plain Levenshtein.
        rng = random.Random(6)
        for _ in range(100):
            typo = misspell("Schneider", rng)
            assert edit_distance("schneider", typo.lower()) <= 2

    def test_short_names_untouched(self):
        assert misspell("Li", random.Random(1)) == "Li"

    def test_misspelling_changes_most_names(self):
        rng = random.Random(7)
        changed = sum(
            1 for _ in range(100) if misspell("Ferrari", rng) != "Ferrari"
        )
        assert changed > 80  # a swap of equal letters can be a no-op


class TestEditDistance:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xy", 2),
            ("kitten", "sitting", 3),
            ("rossi", "rosso", 1),
            ("smith", "smiht", 2),  # transposition costs 2 here
        ],
    )
    def test_known_values(self, a, b, expected):
        assert edit_distance(a, b) == expected

    @settings(max_examples=100)
    @given(
        st.text(alphabet="abcdef", max_size=8),
        st.text(alphabet="abcdef", max_size=8),
    )
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @settings(max_examples=100)
    @given(st.text(alphabet="abcdef", max_size=8))
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @settings(max_examples=60)
    @given(
        st.text(alphabet="abc", max_size=6),
        st.text(alphabet="abc", max_size=6),
        st.text(alphabet="abc", max_size=6),
    )
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(
            b, c
        )

    @settings(max_examples=100)
    @given(
        st.text(alphabet="abcdef", max_size=8),
        st.text(alphabet="abcdef", max_size=8),
    )
    def test_bounded_by_longer_string(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))


class TestGibberishScore:
    def test_genuine_names_score_low(self):
        for name in ("Schneider", "Rossi", "Zhang", "Takahashi", "Smith"):
            assert gibberish_score(name) < 0.35

    def test_keyboard_mash_scores_high(self):
        rng = random.Random(8)
        high = 0
        for _ in range(200):
            passenger = sample_gibberish_passenger(rng)
            score = max(
                gibberish_score(passenger.first_name),
                gibberish_score(passenger.last_name),
            )
            if score > 0.4:
                high += 1
        assert high > 160

    def test_paper_example_detected(self):
        """The paper's illustrative fake entries score as gibberish."""
        assert gibberish_score("affjgdui") > 0.35
        assert gibberish_score("ddfjrei") > 0.35

    def test_short_tokens_neutral(self):
        assert gibberish_score("ab") == 0.0

    def test_score_bounded(self):
        for token in ("xyzzyq", "Anna", "qqqqqqq", "a"):
            assert 0.0 <= gibberish_score(token) <= 1.0
