"""Tests for repro.serve.codec and repro.serve.state."""

import pytest

from repro.serve.codec import (
    ENTRY_FIELDS,
    CodecError,
    entry_from_dict,
    entry_from_row,
    entry_to_dict,
    entry_to_row,
    parse_events,
)
from repro.serve.state import SCHEMA_VERSION, StateStore, StateStoreError

from tests.serve_util import campaign_entries, make_entry


class TestCodec:
    def test_dict_roundtrip_is_identity(self):
        for entry in campaign_entries(rotations=1, legit_visitors=1):
            assert entry_from_dict(entry_to_dict(entry)) == entry

    def test_row_roundtrip_is_identity(self):
        for entry in campaign_entries(rotations=1, legit_visitors=1):
            row = entry_to_row(entry)
            assert len(row) == len(ENTRY_FIELDS)
            assert entry_from_row(row) == entry

    def test_missing_required_field_rejected(self):
        data = entry_to_dict(make_entry(1.0))
        del data["fingerprint_id"]
        with pytest.raises(CodecError, match="fingerprint_id"):
            entry_from_dict(data)

    def test_non_object_event_rejected(self):
        with pytest.raises(CodecError, match="must be an object"):
            entry_from_dict("nope")

    def test_optional_fields_default(self):
        entry = entry_from_dict(
            {
                "time": 5.0,
                "method": "GET",
                "path": "/search",
                "status": 200,
                "ip_address": "1.2.3.4",
                "fingerprint_id": "fp",
            }
        )
        assert entry.client.actor_class == "legit"
        assert entry.blocked_by == ""

    def test_parse_events_rejects_non_list(self):
        with pytest.raises(CodecError, match="list"):
            parse_events({"time": 1.0}, None)

    def test_parse_events_rejects_out_of_order_within_batch(self):
        events = [
            entry_to_dict(make_entry(2.0)),
            entry_to_dict(make_entry(1.0)),
        ]
        with pytest.raises(CodecError, match="time-ordered"):
            parse_events(events, None)

    def test_parse_events_rejects_before_last_time(self):
        events = [entry_to_dict(make_entry(5.0))]
        with pytest.raises(CodecError, match="time-ordered"):
            parse_events(events, 10.0)
        assert len(parse_events(events, 5.0)) == 1  # equal is fine


class TestStateStore:
    def test_journal_roundtrip(self, tmp_path):
        entries = tuple(campaign_entries(rotations=1, legit_visitors=0))
        with StateStore(str(tmp_path / "s.db")) as store:
            store.append_events(1, entries)
            tail = store.journal_tail(0)
            assert [seq for seq, _ in tail] == list(
                range(1, len(entries) + 1)
            )
            assert [entry for _, entry in tail] == list(entries)
            assert store.durable_seq() == len(entries)

    def test_journal_tail_respects_after_seq(self, tmp_path):
        entries = tuple(campaign_entries(rotations=1, legit_visitors=0))
        with StateStore(str(tmp_path / "s.db")) as store:
            store.append_events(1, entries)
            tail = store.journal_tail(len(entries) - 2)
            assert [seq for seq, _ in tail] == [
                len(entries) - 1, len(entries)
            ]

    def test_snapshot_roundtrip_and_journal_truncation(self, tmp_path):
        entries = tuple(campaign_entries(rotations=1, legit_visitors=0))
        with StateStore(str(tmp_path / "s.db")) as store:
            store.append_events(1, entries)
            payload = {"state": [1.5, "two", (3,)]}
            store.write_snapshot(4, payload, created_at=123.0)
            assert store.snapshot_seq() == 4
            seq, restored = store.load_snapshot()
            assert seq == 4
            assert restored == payload
            # Journal prefix covered by the snapshot is gone.
            assert [s for s, _ in store.journal_tail(0)] == list(
                range(5, len(entries) + 1)
            )
            # durable_seq survives the truncation.
            assert store.durable_seq() == len(entries)

    def test_only_latest_snapshot_kept(self, tmp_path):
        with StateStore(str(tmp_path / "s.db")) as store:
            store.write_snapshot(1, "one", created_at=1.0)
            store.write_snapshot(2, "two", created_at=2.0)
            assert store.load_snapshot() == (2, "two")

    def test_durable_seq_falls_back_to_snapshot(self, tmp_path):
        with StateStore(str(tmp_path / "s.db")) as store:
            assert store.durable_seq() == 0
            store.write_snapshot(7, "core", created_at=1.0)
            assert store.durable_seq() == 7  # journal empty

    def test_state_survives_reopen(self, tmp_path):
        path = str(tmp_path / "s.db")
        entries = tuple(campaign_entries(rotations=1, legit_visitors=0))
        with StateStore(path) as store:
            store.append_events(1, entries)
            store.write_snapshot(2, {"k": 1}, created_at=0.0)
        with StateStore(path) as store:
            assert store.load_snapshot() == (2, {"k": 1})
            assert store.durable_seq() == len(entries)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "s.db")
        with StateStore(path) as store:
            store.set_meta("schema_version", str(SCHEMA_VERSION + 1))
            store.commit()
        with pytest.raises(StateStoreError, match="schema version"):
            StateStore(path)

    def test_derived_tables_roundtrip(self, tmp_path):
        derived = {
            "verdicts": [
                {
                    "subject_id": "fp:a",
                    "detector": "fusion",
                    "score": 0.9,
                    "is_bot": True,
                    "reasons": ["velocity"],
                }
            ],
            "campaigns": [
                {
                    "campaign_id": "C1",
                    "risk": 0.8,
                    "first_seen": 1.0,
                    "last_seen": 2.0,
                    "sessions": 4,
                    "fingerprints": ["a", "b"],
                }
            ],
            "entities": [
                {
                    "fingerprint_id": "a",
                    "convicted_at": 1.5,
                    "detector": "fusion",
                    "score": 1.0,
                }
            ],
        }
        with StateStore(str(tmp_path / "s.db")) as store:
            store.write_snapshot(
                1, "core", created_at=0.0, derived=derived
            )
            out = store.read_derived()
        assert out["verdicts"][0]["subject_id"] == "fp:a"
        assert out["verdicts"][0]["is_bot"] is True
        assert out["campaigns"][0]["fingerprints"] == ["a", "b"]
        assert out["entities"][0]["fingerprint_id"] == "a"
