"""Tests for repro.sim.rng (reproducible named streams)."""

from hypothesis import given, strategies as st

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(), st.text(max_size=40))
    def test_always_64_bit_unsigned(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2 ** 64


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        rngs = RngRegistry(seed=1)
        assert rngs.stream("x") is rngs.stream("x")

    def test_reproducible_across_registries(self):
        a = RngRegistry(seed=7).stream("traffic")
        b = RngRegistry(seed=7).stream("traffic")
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_streams_are_independent(self):
        """Drawing from one stream must not perturb another."""
        reference = RngRegistry(seed=7)
        expected = [reference.stream("b").random() for _ in range(5)]

        interleaved = RngRegistry(seed=7)
        interleaved.stream("a").random()  # extra draw on another stream
        observed = [interleaved.stream("b").random() for _ in range(5)]
        assert observed == expected

    def test_numpy_streams_reproducible(self):
        a = RngRegistry(seed=3).numpy_stream("m")
        b = RngRegistry(seed=3).numpy_stream("m")
        assert list(a.integers(0, 100, size=8)) == list(
            b.integers(0, 100, size=8)
        )

    def test_numpy_and_python_streams_coexist(self):
        rngs = RngRegistry(seed=3)
        rngs.stream("m").random()
        rngs.numpy_stream("m").random()  # same name, different kind: fine

    def test_fork_is_deterministic(self):
        a = RngRegistry(seed=5).fork("sweep-1")
        b = RngRegistry(seed=5).fork("sweep-1")
        assert a.seed == b.seed

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(seed=5)
        child = parent.fork("sweep-1")
        assert child.seed != parent.seed

    def test_forks_differ_by_name(self):
        parent = RngRegistry(seed=5)
        assert parent.fork("a").seed != parent.fork("b").seed

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").random()
        b = RngRegistry(seed=2).stream("x").random()
        assert a != b
