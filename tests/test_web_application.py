"""Tests for repro.web.application (the edge pipeline + handlers)."""

import random

import pytest

from repro.booking.flight import Flight
from repro.booking.passengers import sample_genuine_party
from repro.booking.reservation import ReservationSystem
from repro.common import ClientRef
from repro.identity.captcha import CaptchaGateModel
from repro.identity.fingerprint import FingerprintPopulation
from repro.sim.clock import Clock, HOUR
from repro.sms.gateway import SmsGateway
from repro.sms.numbers import sample_number
from repro.web.application import WebApplication
from repro.web.ratelimit import RateLimitRule, key_by_ip
from repro.web.request import (
    BLOCKED,
    BOARDING_PASS_SMS,
    CAPTCHA_FAILED,
    CAPTCHA_NONE,
    CAPTCHA_SOLVER,
    CONFLICT,
    FLIGHT_DETAILS,
    HOLD,
    NOT_FOUND,
    OK,
    OTP_LOGIN,
    PAY,
    RATE_LIMITED,
    Request,
    SEARCH,
)


@pytest.fixture
def app():
    clock = Clock()
    reservations = ReservationSystem(clock, hold_ttl=1 * HOUR)
    reservations.add_flight(Flight("F1", "A", "NCE", "CDG", 1000 * HOUR, 50))
    sms = SmsGateway(clock)
    return WebApplication(clock, reservations, sms, random.Random(1))


def make_request(path, params=None, fingerprint=None, profile_id="",
                 ip="3.3.3.3", captcha="human"):
    if fingerprint is None:
        fingerprint = FingerprintPopulation().sample(random.Random(5))
    return Request(
        method="POST",
        path=path,
        client=ClientRef(
            ip_address=ip,
            ip_country="FR",
            ip_residential=True,
            fingerprint_id=fingerprint.fingerprint_id,
            user_agent=fingerprint.user_agent,
            profile_id=profile_id,
        ),
        params=params or {},
        fingerprint=fingerprint,
        captcha_ability=captcha,
    )


def party(n=2, seed=0):
    return sample_genuine_party(random.Random(seed), n)


class TestHandlers:
    def test_search_lists_flights(self, app):
        response = app.handle(make_request(SEARCH))
        assert response.ok
        assert response.data[0]["flight_id"] == "F1"
        assert response.data[0]["available"] == 50

    def test_flight_details(self, app):
        response = app.handle(
            make_request(FLIGHT_DETAILS, {"flight_id": "F1"})
        )
        assert response.ok
        assert response.data["price"] > 0

    def test_details_unknown_flight(self, app):
        response = app.handle(
            make_request(FLIGHT_DETAILS, {"flight_id": "F9"})
        )
        assert response.status == NOT_FOUND

    def test_hold_and_pay_flow(self, app):
        held = app.handle(
            make_request(
                HOLD, {"flight_id": "F1", "passengers": party(3)}
            )
        )
        assert held.ok
        paid = app.handle(
            make_request(PAY, {"hold_id": held.data.hold_id})
        )
        assert paid.ok
        assert app.reservations.flight("F1").inventory.confirmed == 3

    def test_pay_unknown_hold(self, app):
        response = app.handle(make_request(PAY, {"hold_id": "H999"}))
        assert response.status == NOT_FOUND

    def test_pay_expired_hold_conflicts(self, app):
        held = app.handle(
            make_request(HOLD, {"flight_id": "F1", "passengers": party()})
        )
        app.clock.advance_to(2 * HOUR)
        response = app.handle(
            make_request(PAY, {"hold_id": held.data.hold_id})
        )
        assert response.status == CONFLICT

    def test_hold_rejection_maps_to_conflict(self, app):
        app.reservations.set_max_nip(2)
        response = app.handle(
            make_request(HOLD, {"flight_id": "F1", "passengers": party(5)})
        )
        assert response.status == CONFLICT
        assert response.outcome == "nip-exceeds-cap"

    def test_otp_login_sends_sms(self, app):
        phone = sample_number(random.Random(1), "FR")
        response = app.handle(make_request(OTP_LOGIN, {"phone": phone}))
        assert response.ok
        assert len(app.sms.delivered_records()) == 1

    def test_boarding_pass_sms(self, app):
        phone = sample_number(random.Random(1), "GB")
        response = app.handle(
            make_request(
                BOARDING_PASS_SMS,
                {"booking_ref": "R1", "phone": phone},
            )
        )
        assert response.ok
        assert app.sms.records[-1].booking_ref == "R1"

    def test_unknown_path(self, app):
        response = app.handle(make_request("/nope"))
        assert response.status == NOT_FOUND

    def test_missing_param_raises(self, app):
        with pytest.raises(KeyError):
            app.handle(make_request(FLIGHT_DETAILS))


class TestEdgePipeline:
    def test_block_rule_fires_first(self, app):
        app.add_block_rule("ban-ip", lambda r: r.client.ip_address == "3.3.3.3")
        response = app.handle(make_request(SEARCH))
        assert response.status == BLOCKED
        assert response.blocked_by == "ban-ip"
        rule = app.block_rules()[0]
        assert rule.matches == 1
        assert rule.last_matched_at is not None

    def test_duplicate_block_rule_rejected(self, app):
        app.add_block_rule("r", lambda r: False)
        with pytest.raises(ValueError):
            app.add_block_rule("r", lambda r: False)

    def test_remove_block_rule(self, app):
        app.add_block_rule("r", lambda r: True)
        app.remove_block_rule("r")
        assert app.handle(make_request(SEARCH)).ok

    def test_restriction_blocks_non_loyal(self, app):
        app.restrict_path(
            HOLD, lambda r: r.client.profile_id.startswith("loyal")
        )
        blocked = app.handle(
            make_request(HOLD, {"flight_id": "F1", "passengers": party()})
        )
        assert blocked.status == BLOCKED
        assert blocked.outcome == "restricted"
        allowed = app.handle(
            make_request(
                HOLD,
                {"flight_id": "F1", "passengers": party()},
                profile_id="loyal-001",
            )
        )
        assert allowed.ok

    def test_rate_limit_returns_429(self, app):
        app.ratelimits.add_rule(
            RateLimitRule("per-ip", key_by_ip, limit=1, window=100.0)
        )
        assert app.handle(make_request(SEARCH)).ok
        response = app.handle(make_request(SEARCH))
        assert response.status == RATE_LIMITED
        assert response.blocked_by == "per-ip"

    def test_captcha_blocks_botswithout_solver(self, app):
        app.add_captcha(HOLD, CaptchaGateModel())
        response = app.handle(
            make_request(
                HOLD,
                {"flight_id": "F1", "passengers": party()},
                captcha=CAPTCHA_NONE,
            )
        )
        assert response.status == CAPTCHA_FAILED

    def test_captcha_solver_costs_money(self, app):
        app.add_captcha(HOLD, CaptchaGateModel(solver_pass_rate=1.0))
        request = make_request(
            HOLD,
            {"flight_id": "F1", "passengers": party()},
            captcha=CAPTCHA_SOLVER,
        )
        app.handle(request)
        assert sum(app.captcha_costs_by_actor.values()) > 0

    def test_captcha_removed(self, app):
        app.add_captcha(SEARCH, CaptchaGateModel())
        app.remove_captcha(SEARCH)
        assert app.handle(make_request(SEARCH, captcha=CAPTCHA_NONE)).ok

    def test_every_request_logged(self, app):
        app.add_block_rule("ban-all", lambda r: True)
        app.handle(make_request(SEARCH))
        app.remove_block_rule("ban-all")
        app.handle(make_request(SEARCH))
        assert len(app.log) == 2
        statuses = [e.status for e in app.log.entries()]
        assert statuses == [BLOCKED, OK]

    def test_fingerprints_collected_at_edge(self, app):
        fingerprint = FingerprintPopulation().sample(random.Random(9))
        app.handle(make_request(SEARCH, fingerprint=fingerprint))
        assert (
            app.fingerprints_seen[fingerprint.fingerprint_id] == fingerprint
        )


class TestHoneypotRouting:
    def test_suspect_holds_go_to_shadow(self, app):
        app.honeypot_router = lambda r: r.client.ip_address == "3.3.3.3"
        response = app.handle(
            make_request(HOLD, {"flight_id": "F1", "passengers": party()})
        )
        assert response.ok
        assert response.data.shadow
        assert app.reservations.availability("F1") == 50

    def test_non_suspects_hit_real_inventory(self, app):
        app.honeypot_router = lambda r: False
        response = app.handle(
            make_request(HOLD, {"flight_id": "F1", "passengers": party()})
        )
        assert not response.data.shadow
        assert app.reservations.availability("F1") == 48
