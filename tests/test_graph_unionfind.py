"""Property and unit tests for the shared disjoint-set structures.

:mod:`repro.graph.unionfind` backs both the rotation linker and the
entity graph's component extraction, so its invariants are pinned
property-style: the partition it reports must be exactly the
transitive closure of the unions applied, independent of order and
repetition, and path compression must never change it.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.unionfind import KeyedUnionFind, UnionFind


def _partition(uf: UnionFind) -> set:
    return {frozenset(group) for group in uf.groups()}


def _keyed_partition(uf: KeyedUnionFind) -> set:
    return {frozenset(group) for group in uf.groups()}


def _pairs(size: int):
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=size - 1),
            st.integers(min_value=0, max_value=size - 1),
        ),
        max_size=30,
    )


class TestUnionFindProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=1, max_value=20).flatmap(
        lambda size: st.tuples(st.just(size), _pairs(size))
    ))
    def test_groups_partition_every_element(self, case):
        """groups() is a partition: every index appears exactly once."""
        size, pairs = case
        uf = UnionFind(size)
        for a, b in pairs:
            uf.union(a, b)
        seen = [index for group in uf.groups() for index in group]
        assert sorted(seen) == list(range(size))

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=1, max_value=20).flatmap(
        lambda size: st.tuples(st.just(size), _pairs(size))
    ))
    def test_union_is_order_independent_and_idempotent(self, case):
        """Applying pairs reversed, swapped, or twice yields the same
        partition — union builds a set, not a sequence."""
        size, pairs = case
        forward = UnionFind(size)
        for a, b in pairs:
            forward.union(a, b)
        scrambled = UnionFind(size)
        for a, b in reversed(pairs):
            scrambled.union(b, a)
            scrambled.union(b, a)
        assert _partition(forward) == _partition(scrambled)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=1, max_value=20).flatmap(
        lambda size: st.tuples(st.just(size), _pairs(size))
    ))
    def test_path_compression_preserves_partition(self, case):
        """find() may rewire parent pointers but never the partition,
        and two elements share a root iff they share a group."""
        size, pairs = case
        uf = UnionFind(size)
        for a, b in pairs:
            uf.union(a, b)
        before = _partition(uf)
        roots = [uf.find(index) for index in range(size)]
        assert _partition(uf) == before
        group_of = {}
        for group in uf.groups():
            for index in group:
                group_of[index] = group[0]
        for index in range(size):
            assert group_of[index] == group_of[roots[index]]

    def test_groups_ordered_by_smallest_member(self):
        uf = UnionFind(6)
        uf.union(5, 3)
        uf.union(0, 4)
        groups = uf.groups()
        assert groups == [[0, 4], [1], [2], [3, 5]]
        assert len(uf) == 6


class TestKeyedUnionFindProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from("abcdefgh"),
                st.sampled_from("abcdefgh"),
            ),
            max_size=20,
        )
    )
    def test_connected_matches_groups(self, pairs):
        """connected(a, b) agrees with group membership for every pair
        of keys ever added."""
        uf: KeyedUnionFind = KeyedUnionFind()
        for a, b in pairs:
            uf.union(a, b)
        group_of = {}
        for group in uf.groups():
            for key in group:
                group_of[key] = group[0]
        keys = list(group_of)
        for a in keys:
            for b in keys:
                assert uf.connected(a, b) == (
                    group_of[a] == group_of[b]
                )

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from("abcdefgh"),
                st.sampled_from("abcdefgh"),
            ),
            max_size=20,
        )
    )
    def test_order_independent_partition(self, pairs):
        forward: KeyedUnionFind = KeyedUnionFind()
        for a, b in pairs:
            forward.union(a, b)
        scrambled: KeyedUnionFind = KeyedUnionFind()
        # Register every key first so insertion order differs, then
        # union in reverse with swapped arguments.
        for a, b in pairs:
            scrambled.add(b)
            scrambled.add(a)
        for a, b in reversed(pairs):
            scrambled.union(b, a)
        assert _keyed_partition(forward) == _keyed_partition(scrambled)

    def test_find_registers_unknown_keys(self):
        uf: KeyedUnionFind = KeyedUnionFind()
        assert uf.find("ghost") == "ghost"
        assert "ghost" in uf
        assert len(uf) == 1
        assert uf.groups() == [["ghost"]]

    def test_representative_is_a_member_key(self):
        uf: KeyedUnionFind = KeyedUnionFind()
        uf.union("x", "y")
        uf.union("y", "z")
        root = uf.find("z")
        assert root in {"x", "y", "z"}
        assert uf.find("x") == root
