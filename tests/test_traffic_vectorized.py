"""Block-size invariance of the vectorized traffic generators.

The legitimate-traffic and SMS-baseline generators draw interarrival
gaps from a dedicated NumPy stream in blocks and bulk-schedule them.
NumPy's ``Generator.exponential(scale, size=n)`` consumes the stream
exactly as ``n`` scalar draws do, so the generated arrival sequence —
and therefore the entire simulation — must be bit-identical for every
block size.  ``arrival_block_size=1`` is the scalar reference path;
these goldens run each scenario short-config twice and require the
full web log and the metrics-recorder snapshot to match byte for byte.

This is the regression net under the vectorization: any change that
makes the blocked draw diverge from the scalar draw (a different
distribution call, a stray draw inside the block loop, scheduling
drift) shows up as a digest mismatch, not as a subtly shifted metric.
"""

import hashlib
import json

import pytest

from repro.obs.profile import short_overrides
from repro.scenarios.case_a import CaseAConfig, run_case_a
from repro.scenarios.case_b import CaseBConfig, run_case_b
from repro.scenarios.case_c import CaseCConfig, run_case_c


def _run_digests(result):
    """(web-log digest, metrics snapshot) for one finished scenario."""
    world = result.world
    log_digest = hashlib.sha256()
    for entry in world.app.log.iter_entries():
        log_digest.update(
            repr(
                (
                    entry.time,
                    entry.method,
                    entry.path,
                    entry.status,
                    entry.client,
                )
            ).encode()
        )
    snapshot = json.dumps(
        world.metrics.snapshot(), sort_keys=True, default=repr
    )
    return log_digest.hexdigest(), snapshot


CASES = [
    ("case-a", run_case_a, CaseAConfig),
    ("case-b", run_case_b, CaseBConfig),
    ("case-c", run_case_c, CaseCConfig),
]


@pytest.mark.parametrize(
    "case,runner,config_type", CASES, ids=[c[0] for c in CASES]
)
def test_scalar_and_vectorized_runs_identical(case, runner, config_type):
    overrides = short_overrides(case)
    scalar = runner(config_type(**overrides, arrival_block_size=1))
    vectorized = runner(config_type(**overrides, arrival_block_size=256))

    scalar_log, scalar_metrics = _run_digests(scalar)
    vector_log, vector_metrics = _run_digests(vectorized)
    assert vector_log == scalar_log
    assert vector_metrics == scalar_metrics


def test_blocking_reduces_scheduler_wakeups():
    # The traffic itself is invariant (same requests, same visitors);
    # what shrinks with the block size is kernel bookkeeping — one
    # generator step per block instead of one per arrival.
    overrides = short_overrides("case-a")
    runs = {
        size: run_case_a(CaseAConfig(**overrides, arrival_block_size=size))
        for size in (1, 256)
    }
    logs = {
        size: len(result.world.app.log) for size, result in runs.items()
    }
    assert logs[1] == logs[256]
    events = {
        size: result.world.loop.events_processed
        for size, result in runs.items()
    }
    assert events[256] < events[1]
