"""Integration tests over the pre-wired scenarios (scaled down so the
whole file stays fast; the full-size runs live in benchmarks/)."""

import pytest

from repro.common import SEAT_SPINNER
from repro.scenarios.case_a import CaseAConfig, run_case_a
from repro.scenarios.case_b import CaseBConfig, run_case_b
from repro.scenarios.case_c import (
    CaseCConfig,
    PER_REF,
    TABLE1_SURGES,
    case_c_attack_totals,
    case_c_attack_weights,
    case_c_baseline_weekly,
    run_case_c,
)
from repro.scenarios.world import (
    FlightSpec,
    WorldConfig,
    build_world,
    default_flight_schedule,
)
from repro.sim.clock import DAY, HOUR, WEEK


class TestWorldBuilder:
    def test_build_world_wires_substrates(self):
        world = build_world(WorldConfig(seed=3))
        assert world.app.reservations is world.reservations
        assert world.app.sms is world.sms
        assert world.sms.telco is world.telco
        assert len(world.reservations.flights()) == 40

    def test_reproducible_flight_schedule(self):
        schedule = default_flight_schedule(count=5)
        assert len(schedule) == 5
        assert len({s.flight_id for s in schedule}) == 5

    def test_colluding_countries_registered(self):
        world = build_world(
            WorldConfig(seed=1, colluding_countries=("UZ", "IR"))
        )
        assert world.telco.carrier_for("UZ").colluding
        assert world.telco.carrier_for("IR").colluding
        assert not world.telco.carrier_for("GB").colluding

    def test_run_until_expires_holds(self):
        world = build_world(WorldConfig(seed=1))
        world.run_until(1 * HOUR)
        assert world.now == 1 * HOUR


SMALL_CASE_A = CaseAConfig(
    seed=3,
    visitor_rate_per_hour=6.0,
    attack_start=2 * DAY,
    cap_at=4 * DAY,
    departure_time=6 * DAY + 2.5 * DAY,
    target_capacity=120,
    attacker_target_seats=60,
)


class TestCaseA:
    @pytest.fixture(scope="class")
    def result(self):
        return run_case_a(SMALL_CASE_A)

    def test_attacker_surges_nip6(self, result):
        # Week boundaries differ in the small config; use the raw
        # records: the attacker holds exist and use NiP 6 before the
        # cap, 4 after.
        attack = [
            r
            for r in result.world.reservations.held_records()
            if r.client.actor_class == SEAT_SPINNER
        ]
        assert attack
        before_cap = [r for r in attack if r.time < 4 * DAY]
        after_cap = [r for r in attack if r.time > 4 * DAY + HOUR]
        assert before_cap and all(r.nip == 6 for r in before_cap)
        assert after_cap and all(r.nip <= 4 for r in after_cap)

    def test_attacker_adapts_to_cap(self, result):
        assert result.attacker_final_nip == 4
        assert result.attacker_nip_adaptations

    def test_arms_race_produces_rotations(self, result):
        assert result.attacker_rotations > 3
        assert result.attacker_blocks_encountered >= (
            result.attacker_rotations
        )

    def test_attack_stops_two_days_before_departure(self, result):
        margin = result.config.stop_before_departure
        assert result.last_attack_hold_time is not None
        assert (
            result.last_attack_hold_time
            <= result.departure_time - margin + 1
        )

    def test_block_rules_deployed_and_matched(self, result):
        matched = [
            r for r in result.rule_effectiveness if r.matches > 0
        ]
        assert matched

    def test_no_mitigation_variant(self):
        config = CaseAConfig(
            seed=3,
            visitor_rate_per_hour=6.0,
            attack_start=2 * DAY,
            cap_at=None,
            controller_enabled=False,
            departure_time=5 * DAY,
            target_capacity=120,
            attacker_target_seats=60,
        )
        result = run_case_a(config)
        assert result.cap_applied_at is None
        assert result.attacker_rotations == 0
        assert result.attacker_final_nip == 6


class TestCaseB:
    @pytest.fixture(scope="class")
    def result(self):
        return run_case_b(CaseBConfig(seed=5, duration=6 * DAY))

    def test_both_campaigns_detected(self, result):
        assert result.automated_coverage > 0.9
        assert result.manual_coverage > 0.8

    def test_low_false_positives(self, result):
        assert result.legit_false_positive_rate < 0.05

    def test_volume_detection_misses_both(self, result):
        assert result.volume_recall.get("seat-spinner", 0.0) < 0.2
        assert result.volume_recall.get("manual-spinner", 0.0) < 0.2

    def test_expected_finding_kinds(self, result):
        assert "birthdate-rotation" in result.finding_kinds
        assert "name-set-permutation" in result.finding_kinds


class TestCaseCCalibration:
    def test_baseline_pins_present(self):
        baseline = case_c_baseline_weekly()
        assert baseline["UZ"] == 2
        assert baseline["GB"] == 450
        assert sum(baseline.values()) >= 40_000

    def test_attack_totals_follow_table1(self):
        baseline = case_c_baseline_weekly()
        totals = case_c_attack_totals(baseline)
        for code, surge in TABLE1_SURGES.items():
            expected = surge / 100.0 * baseline[code]
            assert totals[code] == pytest.approx(expected, abs=1.0)

    def test_campaign_spans_42_countries(self):
        assert len(case_c_attack_totals()) == 42

    def test_attack_weights_normalised(self):
        weights = case_c_attack_weights()
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_global_increase_near_25_percent(self):
        baseline = case_c_baseline_weekly()
        totals = case_c_attack_totals(baseline)
        increase = sum(totals.values()) / sum(baseline.values())
        assert 0.15 < increase < 0.35

    def test_variant_validation(self):
        with pytest.raises(ValueError):
            CaseCConfig(variant="firewall")


class TestCaseCSmall:
    """A 1/10-scale Case C run: shapes, not exact magnitudes."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_case_c(
            CaseCConfig(seed=2, baseline_weekly_total=5_000)
        )

    def test_high_cost_countries_surge(self, result):
        surges = {
            s.country_code: s.surge_percent
            for s in result.surge_table_expected
        }
        for code in ("UZ", "IR", "KG", "JO", "NG", "KH"):
            assert surges[code] > 500.0, code

    def test_large_markets_modest(self, result):
        surges = {
            s.country_code: s.surge_percent
            for s in result.surge_table_expected
        }
        for code in ("GB", "CN", "TH"):
            assert surges[code] < 200.0, code

    def test_attack_spans_many_countries(self, result):
        assert result.countries_targeted >= 35

    def test_attacker_profitable_unprotected(self, result):
        assert result.attacker_ledger.net > 0

    def test_per_ref_variant_strangles_attack(self):
        result = run_case_c(
            CaseCConfig(
                seed=2, baseline_weekly_total=5_000, variant=PER_REF
            )
        )
        assert result.attacker_sms_delivered < 500
        assert result.detection_latency is not None
        assert result.detection_latency < 6 * HOUR
