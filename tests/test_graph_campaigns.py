"""Tests for campaign extraction over the risk-thresholded graph.

The synthetic graphs here model the paper's Case A shape directly:
rotated fingerprints glued by a recurring passenger-name key, each
carrying its own sessions, with a target-flight hub that legitimate
traffic also touches.
"""

import pytest

from repro.graph.builder import EntityGraph
from repro.graph.campaigns import (
    CAMPAIGN_DETECTOR,
    CAMPAIGN_SUBJECT_PREFIX,
    Campaign,
    CampaignConfig,
    campaign_subject,
    campaign_verdicts,
    extract_campaigns,
)
from repro.graph.entities import (
    fingerprint_node,
    flight_node,
    ip_node,
    name_key_node,
    session_node,
)


def rotated_campaign_graph(
    fingerprints=("f1", "f2"), sessions_per_fp=3
):
    """Rotated fingerprints share a passenger-name key; each carries
    its own sessions and IP.  Returns (graph, scores, seeds)."""
    graph = EntityGraph()
    name = name_key_node(("anna", "nowak"))
    scores = {name: 0.9}
    seeds = {}
    for fp_index, fp_id in enumerate(fingerprints):
        fp = fingerprint_node(fp_id)
        ip = ip_node(f"10.0.{fp_index}.1")
        graph.add_edge(fp, name, 0.9, time=float(fp_index) * 100.0)
        graph.add_edge(fp, ip, 0.8)
        scores[fp] = 0.6
        scores[ip] = 0.3
        for s_index in range(sessions_per_fp):
            session = session_node(f"s-{fp_id}-{s_index}")
            start = float(fp_index) * 100.0 + s_index
            graph.add_edge(session, fp, 1.0, time=start)
            graph.add_edge(session, ip, 0.7, time=start)
            graph.touch(session, start + 10.0)
            scores[session] = 0.5
            seeds[session] = 0.4
    return graph, scores, seeds


class TestExtraction:
    def test_rotated_fingerprints_form_one_campaign(self):
        graph, scores, seeds = rotated_campaign_graph()
        campaigns = extract_campaigns(graph, scores, seeds=seeds)
        assert len(campaigns) == 1
        campaign = campaigns[0]
        assert campaign.campaign_id == "C001"
        assert set(campaign.fingerprint_ids) == {"f1", "f2"}
        assert campaign.session_count == 6
        assert campaign.rotates_identity
        # Noisy-OR over per-kind maxima: fp 0.6, ip 0.3, name 0.9.
        assert campaign.risk == pytest.approx(
            1.0 - (1.0 - 0.6) * (1.0 - 0.3) * (1.0 - 0.9)
        )
        assert campaign.members == tuple(sorted(campaign.members))

    def test_min_sessions_drops_small_cores(self):
        graph, scores, seeds = rotated_campaign_graph(
            sessions_per_fp=1
        )
        assert extract_campaigns(graph, scores, seeds=seeds) == []
        kept = extract_campaigns(
            graph,
            scores,
            config=CampaignConfig(min_sessions=2),
            seeds=seeds,
        )
        assert len(kept) == 1

    def test_hub_kinds_never_connect_campaigns(self):
        """Two operations touching the same target flight stay two
        campaigns: hub kinds are neither members nor connectors."""
        graph = EntityGraph()
        flight = flight_node("LO123")
        scores, seeds = {}, {}
        for op in ("a", "b"):
            fp = fingerprint_node(f"f-{op}")
            graph.add_edge(fp, flight, 0.25)
            scores[fp] = 0.8
            seeds[fp] = 0.5
            for index in range(3):
                session = session_node(f"s-{op}-{index}")
                graph.add_edge(session, fp, 1.0, time=float(index))
                scores[session] = 0.5
        campaigns = extract_campaigns(graph, scores, seeds=seeds)
        assert len(campaigns) == 2
        for campaign in campaigns:
            assert campaign.distinct_fingerprints == 1
            assert flight.value not in [
                m.value for m in campaign.members
            ]

    def test_campaigns_ordered_largest_first(self):
        graph = EntityGraph()
        scores, seeds = {}, {}
        for op, count in (("small", 3), ("big", 5)):
            fp = fingerprint_node(f"f-{op}")
            scores[fp] = 0.8
            seeds[fp] = 0.5
            for index in range(count):
                session = session_node(f"s-{op}-{index}")
                graph.add_edge(session, fp, 1.0, time=float(index))
        campaigns = extract_campaigns(graph, scores, seeds=seeds)
        assert [c.campaign_id for c in campaigns] == ["C001", "C002"]
        assert campaigns[0].session_count == 5
        assert campaigns[1].session_count == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(risk_threshold=0.0)
        with pytest.raises(ValueError):
            CampaignConfig(risk_threshold=1.0)
        with pytest.raises(ValueError):
            CampaignConfig(min_sessions=0)
        with pytest.raises(ValueError):
            CampaignConfig(min_device_corroboration=0)


class TestCorroborationGate:
    def _collision_graph(self):
        """A legit fingerprint that merely shares a passenger name
        with the attack (the false positive the gate exists for)."""
        graph, scores, seeds = rotated_campaign_graph()
        legit_fp = fingerprint_node("legit")
        legit_session = session_node("s-legit")
        name = name_key_node(("anna", "nowak"))
        graph.add_edge(legit_fp, name, 0.9)
        graph.add_edge(legit_session, legit_fp, 1.0, time=500.0)
        # Propagation relayed heat through the single shared name, and
        # the session's own score includes backflow from its device.
        scores[legit_fp] = 0.33
        scores[legit_session] = 0.3
        return graph, scores, seeds, legit_fp

    def test_single_channel_device_is_excluded(self):
        graph, scores, seeds, legit_fp = self._collision_graph()
        campaigns = extract_campaigns(graph, scores, seeds=seeds)
        assert len(campaigns) == 1
        assert "legit" not in campaigns[0].fingerprint_ids
        assert "s-legit" not in campaigns[0].session_ids

    def test_directly_seeded_device_is_core_on_its_own(self):
        graph, scores, seeds, legit_fp = self._collision_graph()
        seeded = dict(seeds)
        seeded[legit_fp] = 0.4  # e.g. an SMS-velocity prior
        campaigns = extract_campaigns(graph, scores, seeds=seeded)
        assert "legit" in campaigns[0].fingerprint_ids

    def test_session_backflow_cannot_corroborate(self):
        """The collision fingerprint's own session scores above the
        threshold (backflow), but sessions corroborate only through
        their *seed* — so one hot name plus one echoing session still
        fails the two-channel requirement."""
        graph, scores, seeds, legit_fp = self._collision_graph()
        scores[session_node("s-legit")] = 0.9  # extreme echo
        campaigns = extract_campaigns(graph, scores, seeds=seeds)
        assert "legit" not in campaigns[0].fingerprint_ids

    def test_seeded_session_does_corroborate(self):
        graph, scores, seeds, legit_fp = self._collision_graph()
        seeded = dict(seeds)
        seeded[session_node("s-legit")] = 0.5  # direct evidence
        campaigns = extract_campaigns(graph, scores, seeds=seeded)
        # Hot name + independently seeded session = two channels.
        assert "legit" in campaigns[0].fingerprint_ids

    def test_without_seeds_every_device_needs_corroboration(self):
        graph, scores, seeds, legit_fp = self._collision_graph()
        campaigns = extract_campaigns(graph, scores)
        # Attack fingerprints still corroborate through the hot name
        # plus their other hot neighbours (IP), so the campaign stands.
        assert len(campaigns) == 1
        assert "legit" not in campaigns[0].fingerprint_ids


class TestCampaignStatistics:
    def test_rotation_statistics(self):
        graph, scores, seeds = rotated_campaign_graph(
            fingerprints=("f1", "f2", "f3")
        )
        campaign = extract_campaigns(graph, scores, seeds=seeds)[0]
        assert campaign.distinct_fingerprints == 3
        assert campaign.distinct_ips == 3
        assert campaign.first_seen == 0.0
        assert campaign.last_seen == 212.0
        assert campaign.span == 212.0
        assert campaign.mean_rotation_interval == pytest.approx(106.0)

    def test_single_fingerprint_never_rotates(self):
        campaign = Campaign(
            campaign_id="C001",
            members=(
                fingerprint_node("f1"),
                session_node("s1"),
            ),
            risk=0.9,
            first_seen=0.0,
            last_seen=100.0,
        )
        assert not campaign.rotates_identity
        assert campaign.mean_rotation_interval == float("inf")


class TestCampaignVerdicts:
    def test_verdict_forms(self):
        graph, scores, seeds = rotated_campaign_graph()
        campaigns = extract_campaigns(graph, scores, seeds=seeds)
        (result,) = campaign_verdicts(campaigns, threshold=0.5)
        assert result.verdict.subject_id == campaign_subject("C001")
        assert result.verdict.subject_id.startswith(
            CAMPAIGN_SUBJECT_PREFIX
        )
        assert result.verdict.detector == CAMPAIGN_DETECTOR
        assert result.verdict.is_bot
        assert len(result.member_verdicts) == 6
        for member in result.member_verdicts:
            assert member.score == result.verdict.score
            assert member.is_bot
            assert "campaign:C001" in member.reasons

    def test_below_threshold_campaign_is_not_bot(self):
        graph, scores, seeds = rotated_campaign_graph()
        campaigns = extract_campaigns(graph, scores, seeds=seeds)
        (result,) = campaign_verdicts(campaigns, threshold=0.999)
        assert not result.verdict.is_bot
        for member in result.member_verdicts:
            assert not member.is_bot
            assert member.reasons == ()
