"""Tests for repro.core.detection.navigation (Markov path model)."""

import pytest

from repro.common import ClientRef, LEGIT, SEAT_SPINNER
from repro.core.detection.navigation import (
    END,
    NavigationDetector,
    NavigationDetectorConfig,
    NavigationModel,
    START,
    session_path,
)
from repro.web.logs import LogEntry, Session
from repro.web.request import FLIGHT_DETAILS, HOLD, PAY, SEARCH


def make_session(paths, session_id="S1", actor=LEGIT):
    client = ClientRef(
        "1.1.1.1", "US", True, "fp", "UA", actor_class=actor
    )
    entries = [
        LogEntry(
            time=float(i * 30),
            method="GET",
            path=path,
            status=200,
            client=client,
        )
        for i, path in enumerate(paths)
    ]
    return Session(session_id, "1.1.1.1", "fp", entries)


FUNNEL = [SEARCH, FLIGHT_DETAILS, HOLD, PAY]


def funnel_sessions(count=50):
    variants = [
        [SEARCH, FLIGHT_DETAILS],
        [SEARCH, FLIGHT_DETAILS, HOLD, PAY],
        [SEARCH, SEARCH, FLIGHT_DETAILS, HOLD],
        [SEARCH, FLIGHT_DETAILS, FLIGHT_DETAILS, HOLD, PAY],
    ]
    return [
        make_session(variants[i % len(variants)], session_id=f"T{i}")
        for i in range(count)
    ]


class TestSessionPath:
    def test_bracketed(self):
        session = make_session([SEARCH, HOLD])
        assert session_path(session) == [START, SEARCH, HOLD, END]


class TestNavigationModel:
    def test_fit_required(self):
        model = NavigationModel()
        with pytest.raises(RuntimeError):
            model.transition_probability(START, SEARCH)

    def test_fit_on_nothing_rejected(self):
        with pytest.raises(ValueError):
            NavigationModel().fit([])

    def test_common_transitions_probable(self):
        model = NavigationModel()
        model.fit(funnel_sessions())
        assert model.transition_probability(START, SEARCH) > 0.8
        assert model.transition_probability(SEARCH, FLIGHT_DETAILS) > 0.4

    def test_unseen_transitions_smoothed_not_zero(self):
        model = NavigationModel()
        model.fit(funnel_sessions())
        probability = model.transition_probability(START, PAY)
        assert 0.0 < probability < 0.1

    def test_funnel_more_likely_than_teleport(self):
        model = NavigationModel()
        model.fit(funnel_sessions())
        funnel = model.mean_log_likelihood(make_session(FUNNEL))
        teleport = model.mean_log_likelihood(
            make_session([HOLD, HOLD, HOLD])
        )
        assert funnel > teleport

    def test_rarest_transition_identified(self):
        model = NavigationModel()
        model.fit(funnel_sessions())
        source, target, probability = model.rarest_transition(
            make_session([SEARCH, FLIGHT_DETAILS, HOLD, HOLD])
        )
        assert (source, target) == (HOLD, HOLD)
        assert probability < 0.1

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            NavigationModel(smoothing=0.0)


class TestNavigationDetector:
    def _fitted(self):
        detector = NavigationDetector(
            NavigationDetectorConfig(calibration_percentile=2.0)
        )
        detector.fit(funnel_sessions(100))
        return detector

    def test_unfitted_judge_rejected(self):
        with pytest.raises(RuntimeError):
            NavigationDetector().judge(make_session(FUNNEL))

    def test_funnel_sessions_pass(self):
        detector = self._fitted()
        flagged = sum(
            detector.judge(session).is_bot
            for session in funnel_sessions(40)
        )
        assert flagged <= 2  # ~the calibration percentile

    def test_teleporting_bot_flagged(self):
        """The seat spinner's signature path: straight to /hold,
        over and over, no search, no payment."""
        detector = self._fitted()
        bot_session = make_session(
            [HOLD] * 5, session_id="BOT", actor=SEAT_SPINNER
        )
        verdict = detector.judge(bot_session)
        assert verdict.is_bot
        assert verdict.reasons
        assert "improbable-transition" in verdict.reasons[0]

    def test_judge_all_order(self):
        detector = self._fitted()
        sessions = funnel_sessions(5)
        verdicts = detector.judge_all(sessions)
        assert [v.subject_id for v in verdicts] == [
            s.session_id for s in sessions
        ]

    def test_threshold_exposed(self):
        detector = self._fitted()
        assert detector.threshold is not None
        assert detector.threshold < 0.0  # log2 likelihoods are negative
