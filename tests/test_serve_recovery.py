"""Kill/restart recovery: SIGKILL mid-replay, restore, bit-identical.

The acceptance test for the persistence layer. A real ``repro serve``
subprocess replays a trace in chunks through ``POST /replay``; we
SIGKILL it with acknowledged events sitting in both the snapshot and
the journal tail, restart on the same ``--db``, resume the replay from
the server's durable count, and require the final analysis digest to
equal an uninterrupted in-process run's — bit for bit.
"""

import signal

import pytest

from repro.serve.client import ServeClient
from repro.serve.service import DetectionService
from repro.serve.state import StateStore

from tests.serve_util import campaign_entries, launch_server, write_trace


@pytest.fixture(scope="module")
def trace_and_digest(tmp_path_factory):
    """One shared trace + its uninterrupted-run reference digest."""
    tmp_path = tmp_path_factory.mktemp("recovery")
    entries = campaign_entries(
        rotations=5, holds_per_burst=6, legit_visitors=8
    )
    trace = write_trace(tmp_path / "case.rptr", entries)
    reference = DetectionService(
        StateStore(str(tmp_path / "reference.db")),
        checkpoint_interval=10,
    )
    reference.replay_file(trace, batch=7)
    digest = reference.analysis_digest()
    return trace, len(entries), digest


class TestKillRestartRecovery:
    def test_sigkill_mid_replay_recovers_bit_identical(
        self, trace_and_digest, tmp_path
    ):
        trace, total, reference_digest = trace_and_digest
        db = tmp_path / "server.db"
        cut = int(total * 0.6)
        interval = ["--checkpoint-interval", "10"]

        # Phase 1: replay 60% in small journal batches, then SIGKILL.
        with launch_server(db, extra=interval) as (process, port):
            client = ServeClient(f"http://127.0.0.1:{port}")
            client.wait_ready()
            result = client.replay(trace, offset=0, limit=cut, batch=7)
            assert result["events_ingested"] == cut
            status = client.status()
            # The kill must exercise BOTH recovery paths: a snapshot
            # and a non-empty journal tail behind it.
            assert 0 < status["snapshot_seq"] < cut
            assert status["journal_rows"] > 0
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=15)

        # Phase 2: restart on the same db, resume, finish.
        with launch_server(db, extra=interval) as (process, port):
            client = ServeClient(f"http://127.0.0.1:{port}")
            client.wait_ready()
            status = client.status()
            assert status["restored"] is True
            assert status["events_ingested"] == cut
            assert status["journal_replayed"] > 0
            resumed = client.replay(
                trace, offset=status["events_ingested"], batch=7
            )
            assert resumed["events_ingested"] == total
            finish = client.finish()
            assert finish["events_processed"] == total
            assert finish["campaigns_convicted"] >= 1
            assert finish["digest"] == reference_digest
            client.shutdown()
            assert process.wait(timeout=15) == 0

    def test_clean_restart_after_graceful_shutdown(
        self, trace_and_digest, tmp_path
    ):
        # Graceful shutdown checkpoints at the exact durable seq; a
        # restart must come back with an empty journal and full state.
        trace, total, reference_digest = trace_and_digest
        db = tmp_path / "server.db"
        with launch_server(db) as (process, port):
            client = ServeClient(f"http://127.0.0.1:{port}")
            client.wait_ready()
            client.replay(trace)
            client.shutdown()
            process.wait(timeout=15)
        with launch_server(db) as (process, port):
            client = ServeClient(f"http://127.0.0.1:{port}")
            client.wait_ready()
            status = client.status()
            assert status["events_ingested"] == total
            assert status["journal_rows"] == 0  # all checkpointed
            assert client.finish()["digest"] == reference_digest

    def test_replay_flag_resumes_from_durable_count(
        self, trace_and_digest, tmp_path
    ):
        # `repro serve --replay` on a warm db must skip what's already
        # ingested instead of double-applying or erroring.
        trace, total, reference_digest = trace_and_digest
        db = tmp_path / "server.db"
        cut = total // 2
        with launch_server(db, extra=["--checkpoint-interval", "10"]) \
                as (process, port):
            client = ServeClient(f"http://127.0.0.1:{port}")
            client.wait_ready()
            client.replay(trace, limit=cut, batch=7)
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=15)
        with launch_server(db, extra=["--replay", trace]) \
                as (process, port):
            client = ServeClient(f"http://127.0.0.1:{port}")
            client.wait_ready()
            assert client.status()["events_ingested"] == total
            assert client.finish()["digest"] == reference_digest
