"""Tests for geo-velocity and seat-hoarding detectors."""

import pytest

from repro.booking.holds import Hold
from repro.booking.passengers import Passenger
from repro.booking.seatmap import Seat
from repro.common import ClientRef
from repro.core.detection.geo_velocity import (
    GeoVelocityConfig,
    GeoVelocityDetector,
)
from repro.core.detection.seats import (
    SeatHoardingConfig,
    SeatHoardingDetector,
)
from repro.sms.gateway import SmsRecord
from repro.sms.numbers import PhoneNumber


def sms(time, country, booking_ref="REF1", profile_id=""):
    return SmsRecord(
        time=time,
        number=PhoneNumber("GB", "123456789"),
        kind="boarding-pass",
        booking_ref=booking_ref,
        client=ClientRef(
            "1.1.1.1", country, True, "fp", "UA", profile_id=profile_id
        ),
        delivered=True,
        reject_reason="",
        settlement=None,
    )


HOUR = 3600.0


class TestGeoVelocityDetector:
    def test_pumper_ref_flagged(self):
        """One booking ref requested from 10 countries in an hour."""
        detector = GeoVelocityDetector()
        records = [
            sms(i * 60.0, country)
            for i, country in enumerate(
                "UZ IR KG JO NG KH SG GB CN TH".split()
            )
        ]
        verdicts = detector.judge_records(records)
        assert len(verdicts) == 1
        assert verdicts[0].is_bot
        assert "10-countries-in-window" in verdicts[0].reasons[0]

    def test_traveller_not_flagged(self):
        """Home, roaming, home again: within the tolerance."""
        detector = GeoVelocityDetector()
        records = [
            sms(0.0, "FR"),
            sms(2 * HOUR, "FR"),
            sms(10 * HOUR, "GB"),
            sms(20 * HOUR, "FR"),
        ]
        verdicts = detector.judge_records(records)
        assert not verdicts[0].is_bot

    def test_window_slides(self):
        """Five countries spread over a week never co-occur in a day."""
        detector = GeoVelocityDetector(
            GeoVelocityConfig(window=24 * HOUR, max_countries_per_window=3)
        )
        records = [
            sms(day * 48 * HOUR, country)
            for day, country in enumerate("FR GB DE ES IT".split())
        ]
        assert not detector.judge_records(records)[0].is_bot

    def test_keys_judged_independently(self):
        detector = GeoVelocityDetector()
        records = [
            sms(i * 60.0, c, booking_ref="BAD")
            for i, c in enumerate("UZ IR KG JO NG".split())
        ]
        records += [sms(1.0, "FR", booking_ref="GOOD")]
        flagged = detector.flagged_keys(records)
        assert flagged == ["BAD"]

    def test_profile_fallback_key(self):
        detector = GeoVelocityDetector()
        records = [
            sms(i * 60.0, c, booking_ref="", profile_id="user-1")
            for i, c in enumerate("UZ IR KG JO NG".split())
        ]
        assert detector.flagged_keys(records) == ["user-1"]

    def test_keyless_records_ignored(self):
        detector = GeoVelocityDetector()
        records = [sms(0.0, "FR", booking_ref="", profile_id="")]
        assert detector.judge_records(records) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeoVelocityConfig(window=0.0)
        with pytest.raises(ValueError):
            GeoVelocityConfig(max_countries_per_window=0)


def hold(hold_id, fingerprint_id, seats):
    return Hold(
        hold_id=hold_id,
        flight_id="F1",
        nip=len(seats),
        passengers=tuple(
            Passenger("A", "B", "1990-01-01", "a@b.c") for _ in seats
        ),
        client=ClientRef("1.1.1.1", "US", True, fingerprint_id, "UA"),
        created_at=0.0,
        expires_at=100.0,
        price_quoted=100.0,
        seats=tuple(seats),
    )


class TestSeatHoardingDetector:
    def test_middle_hoarder_flagged(self):
        detector = SeatHoardingDetector()
        holds = [
            hold(f"H{i}", "fp-hoarder", [Seat(i + 1, "B"), Seat(i + 1, "E")])
            for i in range(4)
        ]
        verdicts = detector.judge_holds(holds)
        assert len(verdicts) == 1
        assert verdicts[0].is_bot
        assert verdicts[0].subject_id == "fp-hoarder"

    def test_normal_mix_not_flagged(self):
        detector = SeatHoardingDetector()
        holds = [
            hold(
                f"H{i}",
                "fp-family",
                [Seat(i + 1, "A"), Seat(i + 1, "B"), Seat(i + 1, "C")],
            )
            for i in range(3)
        ]
        verdicts = detector.judge_holds(holds)
        assert not verdicts[0].is_bot  # middle share = 1/3

    def test_min_seats_gate(self):
        detector = SeatHoardingDetector(SeatHoardingConfig(min_seats=10))
        holds = [hold("H1", "fp-x", [Seat(1, "B")])]
        assert detector.judge_holds(holds) == []

    def test_holds_without_seats_ignored(self):
        detector = SeatHoardingDetector()
        assert detector.judge_holds([hold("H1", "fp-x", [])]) == []

    def test_flagged_fingerprints_helper(self):
        detector = SeatHoardingDetector()
        holds = [
            hold(f"H{i}", "fp-bad", [Seat(i + 1, "B"), Seat(i + 1, "E")])
            for i in range(4)
        ]
        holds += [
            hold(
                f"G{i}",
                "fp-good",
                [Seat(i + 1, "A"), Seat(i + 1, "C"), Seat(i + 1, "F")],
            )
            for i in range(4)
        ]
        assert detector.flagged_fingerprints(holds) == ["fp-bad"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SeatHoardingConfig(min_seats=0)
        with pytest.raises(ValueError):
            SeatHoardingConfig(middle_share_threshold=0.0)
