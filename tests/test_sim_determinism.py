"""Property-based determinism tests for the event-loop fast path.

The fast path rebuilt scheduling twice over — bulk insertion
(``schedule_many`` heapifies when the batch dominates, pushes
otherwise) and threshold heap compaction — both of which must be
*invisible*: any interleaving of single schedules, bulk schedules and
cancellations has to dispatch in exactly the order the naive
one-``schedule_at``-per-event kernel would produce.

Hypothesis drives random programs over both implementations of the
same program (bulk ops as ``schedule_many`` vs. expanded into a loop
of ``schedule_at``) and asserts identical dispatch traces, identical
event counts and a drained queue.  Integer times are drawn on a small
range on purpose: collisions are common, so FIFO tie-breaking is
exercised constantly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventLoop

_TIMES = st.integers(min_value=0, max_value=20).map(float)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("single"), _TIMES),
        st.tuples(
            st.just("many"), st.lists(_TIMES, min_size=1, max_size=8)
        ),
        # Cancel a previously returned handle (index taken modulo the
        # number of handles at that point in the program).
        st.tuples(st.just("cancel"), st.integers(min_value=0)),
        # Schedule an event that, when dispatched, cancels another
        # handle — cancellation *during* the run, from a callback.
        st.tuples(
            st.just("cancel_at"), _TIMES, st.integers(min_value=0)
        ),
    ),
    max_size=30,
)


def _run_program(ops, use_schedule_many):
    loop = EventLoop()
    trace = []
    handles = []

    def make_action(tag):
        def action():
            trace.append((loop.now, tag))

        return action

    def make_canceller(index):
        def cancel():
            trace.append((loop.now, "cancel", index))
            if handles:
                handles[index % len(handles)].cancel()

        return cancel

    for tag, op in enumerate(ops):
        kind = op[0]
        if kind == "single":
            handles.append(loop.schedule_at(op[1], make_action(tag)))
        elif kind == "many":
            action = make_action(tag)
            if use_schedule_many:
                handles.extend(loop.schedule_many(op[1], action))
            else:
                handles.extend(
                    loop.schedule_at(when, action) for when in op[1]
                )
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "cancel_at":
            loop.schedule_at(op[1], make_canceller(op[2]))
    loop.run_all()
    return trace, loop.events_processed, loop.pending


@given(ops=_OPS)
@settings(max_examples=200, deadline=None)
def test_schedule_many_is_invisible(ops):
    expanded = _run_program(ops, use_schedule_many=False)
    bulk = _run_program(ops, use_schedule_many=True)
    assert bulk[0] == expanded[0]  # identical dispatch traces
    assert bulk[1] == expanded[1]  # identical events_processed
    assert bulk[2] == expanded[2] == 0  # both queues drained


@given(ops=_OPS)
@settings(max_examples=100, deadline=None)
def test_rerun_is_deterministic(ops):
    first = _run_program(ops, use_schedule_many=True)
    second = _run_program(ops, use_schedule_many=True)
    assert first == second
