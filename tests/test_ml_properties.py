"""Property tests: training determinism and model round-trips.

``repro train`` promises bit-reproducibility: the same
``(master_seed, config)`` pair on the same dataset yields bit-identical
weights and predictions, whether models are trained serially or on
worker processes.  These properties are what make the pinned
``weights_digest`` in benchmark artifacts meaningful.
"""

import hashlib
from concurrent.futures import ProcessPoolExecutor

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ml import (
    TrainConfig,
    config_hash,
    dataset_digest,
    load_model,
    save_model,
    train_model,
    weights_digest,
)
from tests.test_ml import separable_dataset

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


def train_digests(model_name, master_seed):
    """Train on the canonical small dataset; return comparison digests.

    Module-level so ProcessPoolExecutor can pickle it; rebuilds the
    dataset from scratch so worker processes share no state with the
    parent beyond the arguments.
    """
    dataset = separable_dataset(humans=10, bots=10)
    config = TrainConfig(
        model=model_name, master_seed=master_seed, epochs=40
    )
    result = train_model(dataset, config)
    predictions = result.model.predict_proba(dataset)
    return (
        weights_digest(result.model),
        hashlib.sha256(predictions.tobytes()).hexdigest(),
        result.meta["config_hash"],
        result.meta["dataset_digest"],
    )


class TestTrainingDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(master_seed=SEEDS)
    def test_same_seed_same_weights_and_predictions(self, master_seed):
        assert train_digests("logistic", master_seed) == train_digests(
            "logistic", master_seed
        )

    @settings(max_examples=4, deadline=None)
    @given(master_seed=SEEDS)
    def test_mlp_rng_initialisation_is_seed_derived(self, master_seed):
        first = train_digests("mlp", master_seed)
        second = train_digests("mlp", master_seed)
        assert first == second

    def test_encoder_is_deterministic(self):
        assert train_digests("encoder", 7) == train_digests("encoder", 7)

    def test_process_pool_matches_serial(self):
        """Worker-process training yields the exact serial digests —
        no hidden global RNG or hash-seed dependence."""
        jobs = [("logistic", 3), ("mlp", 5), ("mlp", 3)]
        serial = [train_digests(*job) for job in jobs]
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = list(pool.map(train_digests, *zip(*jobs)))
        assert pooled == serial

    def test_config_hash_separates_configs(self):
        base = TrainConfig(model="mlp", master_seed=1)
        assert config_hash(base) == config_hash(
            TrainConfig(model="mlp", master_seed=1)
        )
        assert config_hash(base) != config_hash(
            TrainConfig(model="mlp", master_seed=2)
        )
        assert config_hash(base) != config_hash(
            TrainConfig(model="logistic", master_seed=1)
        )

    def test_dataset_digest_tracks_contents(self):
        small = separable_dataset(4, 4)
        assert dataset_digest(small) == dataset_digest(
            separable_dataset(4, 4)
        )
        assert dataset_digest(small) != dataset_digest(
            separable_dataset(4, 5)
        )


class TestRoundTripProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        model_name=st.sampled_from(["logistic", "mlp"]),
        master_seed=SEEDS,
        threshold=st.floats(
            min_value=1e-6,
            max_value=1.0 - 1e-6,
            allow_nan=False,
            exclude_max=True,
        ),
    )
    def test_save_load_preserves_digest_exactly(
        self, tmp_path_factory, model_name, master_seed, threshold
    ):
        dataset = separable_dataset(humans=6, bots=6)
        result = train_model(
            dataset,
            TrainConfig(
                model=model_name, master_seed=master_seed, epochs=30
            ),
        )
        model = result.model
        model.threshold = threshold
        path = tmp_path_factory.mktemp("models") / "model.rpml"
        save_model(path, model, meta=result.meta)
        loaded, meta = load_model(path)
        assert weights_digest(loaded) == weights_digest(model)
        assert loaded.threshold == threshold
        assert meta == result.meta
        assert np.array_equal(
            loaded.predict_proba(dataset), model.predict_proba(dataset)
        )
