"""Shared fixtures-in-code for the repro.serve test modules.

``campaign_entries()`` builds the canonical synthetic abuse stream the
serve tests and the CI smoke job replay: four rotated fingerprints
burst ``/hold`` requests from one shared IP (each burst trips the
hold-velocity adapter, the shared IP links the rotated devices in the
entity graph), plus background legitimate browsing — small enough to
replay in milliseconds, rich enough to convict a campaign.

``launch_server`` runs the real ``repro serve`` CLI in a subprocess
and parses the startup line for the bound port, which is what the
kill/restart recovery test needs a real PID for.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional, Sequence

from repro.common import ClientRef
from repro.trace import TraceWriter
from repro.web.logs import LogEntry

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"


def make_entry(
    time_,
    ip="198.51.100.7",
    fingerprint="fp-1",
    path="/search",
    method="GET",
    status=200,
    actor_class="legit",
):
    return LogEntry(
        time=time_,
        method=method,
        path=path,
        status=status,
        client=ClientRef(
            ip_address=ip,
            ip_country="NL",
            ip_residential=True,
            fingerprint_id=fingerprint,
            user_agent="UA-serve",
            actor_class=actor_class,
        ),
    )


def campaign_entries(
    rotations: int = 4,
    holds_per_burst: int = 6,
    legit_visitors: int = 6,
) -> List[LogEntry]:
    """Time-ordered synthetic stream that produces >= 1 campaign.

    Each rotated fingerprint's burst exceeds the hold-velocity
    threshold (5 in 6h), every burst shares one IP so the rotated
    devices connect through it in the entity graph, and the >= 3
    sessions satisfy the campaign extractor's floor.
    """
    entries: List[LogEntry] = []
    clock = 1_000.0
    for rotation in range(rotations):
        fingerprint = f"fp-rot-{rotation}"
        for _ in range(holds_per_burst):
            entries.append(
                make_entry(
                    clock,
                    ip="203.0.113.66",
                    fingerprint=fingerprint,
                    path="/hold",
                    method="POST",
                    actor_class="seat_spinner",
                )
            )
            clock += 30.0
        clock += 2_400.0  # idle past the 30-min gap: close the session
    for visitor in range(legit_visitors):
        fingerprint = f"fp-legit-{visitor}"
        for path in ("/search", "/flight", "/search"):
            entries.append(
                make_entry(
                    clock,
                    ip=f"192.0.2.{visitor + 1}",
                    fingerprint=fingerprint,
                    path=path,
                )
            )
            clock += 45.0
        clock += 2_400.0
    return entries


def write_trace(path, entries: Sequence[LogEntry], meta=None) -> str:
    with TraceWriter(str(path), meta=meta or {"scenario": "serve-test"}) \
            as writer:
        for entry in entries:
            writer.write(entry)
    return str(path)


def server_command(db_path, port: int = 0, extra: Sequence[str] = ()):
    return [
        sys.executable, "-m", "repro", "serve",
        "--db", str(db_path), "--port", str(port),
        *extra,
    ]


def server_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    env["PYTHONUNBUFFERED"] = "1"
    return env


def start_server(
    db_path, extra: Sequence[str] = (), timeout: float = 30.0
):
    """Spawn ``repro serve --port 0`` and return ``(process, port)``."""
    process = subprocess.Popen(
        server_command(db_path, port=0, extra=extra),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=server_env(),
        text=True,
    )
    deadline = time.monotonic() + timeout
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                raise RuntimeError(
                    f"server exited with {process.returncode} "
                    "before listening"
                )
            continue
        if "listening on http://" in line:
            port = int(line.rsplit(":", 1)[1])
            return process, port
    process.kill()
    raise TimeoutError("server never printed its listening line")


@contextmanager
def launch_server(
    db_path, extra: Sequence[str] = (), timeout: float = 30.0
):
    """``with launch_server(db) as (process, port):`` — always reaps."""
    process: Optional[subprocess.Popen] = None
    try:
        process, port = start_server(db_path, extra=extra, timeout=timeout)
        yield process, port
    finally:
        if process is not None and process.poll() is None:
            process.kill()
            process.wait(timeout=10)
