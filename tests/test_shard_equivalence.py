"""The cross-shard equivalence harness, parametrized over
``case x shard_count x worker_count``.

Two tiers of guarantee, both pinned here:

* **K=1 is bit-identical.**  ``run_sweep(shards=1)`` is a strict
  pass-through — same cells, same seeds, same config hashes — so the
  full cell payloads (metrics, recorder, obs, graph) must be exactly
  the unsharded ones.  Any drift is a wiring bug.
* **K>1 is metrics-level equivalent** within pinned tolerance bands.
  Shards draw independent RNG substreams, so a 4-shard world is a
  statistically (not bitwise) identical superposition of the single
  world.  The bands below are the committed contract (mirrored in
  ``EXPERIMENTS.md``); loosening one is an interface change, not a
  test tweak.

Documented, *expected* non-equivalences are excluded per case:

* **case-a arms race** — mitigation metrics (rotations, rules
  deployed, blocks) count per-attacker-instance events, and a sharded
  case A runs K quarter-scale attackers against K quarter-scale
  controllers, so these scale ~K structurally.  Population and outcome
  metrics must still agree.
* **case-b manual campaign** — the lone manual freerider is
  replicated per shard (it is an individual, not a population), so
  manual-campaign counts scale ~K while coverage fractions stay
  comparable.
* **scale-world ``log_store_bytes``** — block-granular allocation:
  K mostly-empty tail blocks instead of one.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.shard.equivalence import check_equivalence
from repro.shard.plan import (
    get_sharder,
    shard_cell,
    shardable_scenarios,
    split_int,
    split_positive_int,
)
from repro.runner.spec import CellSpec, config_hash
from repro.sim.clock import DAY

# -- pinned scenario parameters (small worlds, full code paths) --------------

CASE_A_PARAMS = {
    "visitor_rate_per_hour": 6.0,
    "target_capacity": 120,
    "attacker_target_seats": 60,
    "attack_start": 2 * DAY,
    "cap_at": 4 * DAY,
    "departure_time": 8 * DAY,
}
CASE_B_PARAMS = {"duration": 4 * DAY}
CASE_C_PARAMS = {
    "baseline_weekly_total": 9_600,
    "attack_start": 2 * DAY,
    "duration": 5 * DAY,
}
SCALE_PARAMS = {"visitors": 10_000, "duration": 2 * DAY, "flights": 4}

#: Arms-race metrics: per-attacker-instance counters that structurally
#: scale with K (see module docstring).  Excluded from the K>1 check.
CASE_A_ARMS_RACE = (
    "attacker_rotations",
    "attacker_blocks_encountered",
    "attacker_holds_created",
    "attacker_seat_hours",
    "rules_deployed",
    "measured_rotation_interval",
    "blocked_fraction",
    "target_availability_end",
    "target_legit_confirmed_seats",
)

#: Manual-campaign counters: one freerider per shard, scales ~K
#: ("findings" folds both campaigns' findings in, so it rides along).
CASE_B_MANUAL = ("manual_holds", "findings")

#: Block-granular allocation artifact.
SCALE_IGNORE = ("log_store_bytes",)


# -- tier 1: K=1 pass-through is bit-identical -------------------------------


@pytest.mark.parametrize(
    "scenario,params",
    [
        ("case-a", CASE_A_PARAMS),
        ("case-b", CASE_B_PARAMS),
        ("case-c", CASE_C_PARAMS),
        ("scale-world", SCALE_PARAMS),
    ],
    ids=["case-a", "case-b", "case-c", "scale-world"],
)
def test_single_shard_is_bit_identical(scenario, params):
    report = check_equivalence(scenario, params=params, shard_count=1)
    assert report.bit_identical, report.describe()
    assert report.ok


# -- tier 2: K>1 within pinned bands ------------------------------------------


@pytest.mark.parametrize(
    "scenario,params,shard_count,workers,tolerances,ignore",
    [
        ("case-a", CASE_A_PARAMS, 4, 1, None, CASE_A_ARMS_RACE),
        ("case-b", CASE_B_PARAMS, 4, 1, None, CASE_B_MANUAL),
        ("case-c", CASE_C_PARAMS, 4, 1, None, ()),
        ("case-c", CASE_C_PARAMS, 2, 2, None, ()),
        ("scale-world", SCALE_PARAMS, 4, 1, None, SCALE_IGNORE),
        ("scale-world", SCALE_PARAMS, 4, 4, None, SCALE_IGNORE),
    ],
    ids=[
        "case-a-k4",
        "case-b-k4",
        "case-c-k4",
        "case-c-k2-procpool",
        "scale-k4",
        "scale-k4-procpool",
    ],
)
def test_sharded_matches_unsharded(
    scenario, params, shard_count, workers, tolerances, ignore
):
    report = check_equivalence(
        scenario,
        params=params,
        shard_count=shard_count,
        workers=workers,
        tolerances=tolerances,
        ignore=ignore,
    )
    assert report.deltas, "no metrics compared"
    assert report.ok, report.describe()


# -- shard planning ------------------------------------------------------------


def cell_for(scenario, params):
    return CellSpec(
        scenario=scenario,
        params=tuple(sorted(params.items())),
        replication=0,
        config_hash=config_hash(dict(params)),
        seed=1234,
    )


class TestShardPlanning:
    def test_k1_returns_the_very_same_cell(self):
        cell = cell_for("case-a", CASE_A_PARAMS)
        assert shard_cell(cell, master_seed=0, shard_count=1) == [cell]

    def test_shards_get_distinct_seeds_and_hashes_from_siblings(self):
        cell = cell_for("case-c", CASE_C_PARAMS)
        shards = shard_cell(cell, master_seed=0, shard_count=4)
        assert len(shards) == 4
        assert len({shard.seed for shard in shards}) == 4
        # Only shard 0 carries the campaign, so its config differs.
        assert shards[0].params_dict()["attack_enabled"] is True
        for shard in shards[1:]:
            assert shard.params_dict()["attack_enabled"] is False

    def test_extensive_params_sum_to_the_original(self):
        cell = cell_for("case-a", CASE_A_PARAMS)
        shards = shard_cell(cell, master_seed=0, shard_count=3)
        dicts = [shard.params_dict() for shard in shards]
        assert sum(d["target_capacity"] for d in dicts) == 120
        assert sum(d["attacker_target_seats"] for d in dicts) == 60
        assert sum(d["visitor_rate_per_hour"] for d in dicts) == (
            pytest.approx(6.0)
        )

    def test_unshardable_scenario_fails_loudly(self):
        with pytest.raises(KeyError, match="graph-case-a"):
            get_sharder("graph-case-a")

    def test_known_scenarios_are_registered(self):
        registered = shardable_scenarios()
        for scenario in ("case-a", "case-b", "case-c", "scale-world"):
            assert scenario in registered

    def test_shard_count_must_not_exceed_budgets(self):
        cell = cell_for(
            "case-a", dict(CASE_A_PARAMS, attacker_target_seats=2)
        )
        with pytest.raises(ValueError, match="attacker_target_seats"):
            shard_cell(cell, master_seed=0, shard_count=3)


class TestSplitInt:
    @settings(max_examples=200, deadline=None)
    @given(
        total=st.integers(min_value=0, max_value=10_000),
        shard_count=st.integers(min_value=1, max_value=64),
    )
    def test_shares_sum_exactly_and_differ_by_at_most_one(
        self, total, shard_count
    ):
        shares = [
            split_int(total, shard_id, shard_count)
            for shard_id in range(shard_count)
        ]
        assert sum(shares) == total
        assert max(shares) - min(shares) <= 1
        assert shares == sorted(shares, reverse=True)

    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=100),
        shard_count=st.integers(min_value=1, max_value=100),
    )
    def test_positive_split_never_hands_out_zero(self, total, shard_count):
        if shard_count > total:
            with pytest.raises(ValueError):
                split_positive_int("x", total, 0, shard_count)
        else:
            shares = [
                split_positive_int("x", total, shard_id, shard_count)
                for shard_id in range(shard_count)
            ]
            assert min(shares) >= 1
            assert sum(shares) == total
