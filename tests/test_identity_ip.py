"""Tests for repro.identity.ip (IP pools)."""

import random

import pytest

from repro.identity.ip import (
    DATACENTER_ASNS,
    DatacenterPool,
    HomeIpAssigner,
    IpAddress,
    ResidentialProxyPool,
    is_datacenter,
)


class TestDatacenterPool:
    def test_leases_are_datacenter(self):
        pool = DatacenterPool()
        rng = random.Random(1)
        for _ in range(20):
            ip = pool.lease(rng)
            assert not ip.residential
            assert ip.asn in DATACENTER_ASNS
            assert is_datacenter(ip)

    def test_country_fixed(self):
        pool = DatacenterPool(country="DE")
        assert pool.lease(random.Random(1)).country == "DE"

    def test_cost_accounting(self):
        pool = DatacenterPool(cost_per_lease=0.01)
        rng = random.Random(1)
        for _ in range(5):
            pool.lease(rng)
        assert pool.leases_granted == 5
        assert pool.total_cost == pytest.approx(0.05)


class TestResidentialProxyPool:
    def test_leases_are_residential(self):
        pool = ResidentialProxyPool()
        rng = random.Random(2)
        for _ in range(20):
            ip = pool.lease(rng)
            assert ip.residential
            assert not is_datacenter(ip)

    def test_geo_targeting(self):
        """The Case C requirement: exits pinned to the SMS country."""
        pool = ResidentialProxyPool()
        rng = random.Random(3)
        for country in ("UZ", "IR", "NG", "GB"):
            assert pool.lease(rng, country=country).country == country

    def test_default_mix_has_spread(self):
        pool = ResidentialProxyPool()
        rng = random.Random(4)
        countries = {pool.lease(rng).country for _ in range(200)}
        assert len(countries) >= 8

    def test_per_lease_cost_accumulates(self):
        pool = ResidentialProxyPool(cost_per_lease=0.004)
        rng = random.Random(5)
        for _ in range(100):
            pool.lease(rng)
        assert pool.total_cost == pytest.approx(0.4)
        assert pool.leases_granted == 100

    def test_leases_by_country_tracked(self):
        pool = ResidentialProxyPool()
        rng = random.Random(6)
        pool.lease(rng, country="UZ")
        pool.lease(rng, country="UZ")
        pool.lease(rng, country="IR")
        assert pool.leases_by_country["UZ"] == 2
        assert pool.leases_by_country["IR"] == 1

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            ResidentialProxyPool(cost_per_lease=-0.1)

    def test_addresses_unique_enough(self):
        pool = ResidentialProxyPool()
        rng = random.Random(7)
        addresses = {pool.lease(rng).address for _ in range(500)}
        assert len(addresses) > 490


class TestHomeIpAssigner:
    def test_pinned_country(self):
        assigner = HomeIpAssigner((("FR", 1.0),))
        ip = assigner.assign(random.Random(1))
        assert ip.country == "FR"
        assert ip.residential

    def test_explicit_country_override(self):
        assigner = HomeIpAssigner()
        assert assigner.assign(random.Random(1), country="TH").country == "TH"


class TestIpAddress:
    def test_frozen(self):
        ip = IpAddress("1.2.3.4", "US", 7000, True)
        with pytest.raises(AttributeError):
            ip.country = "GB"

    def test_str(self):
        assert str(IpAddress("1.2.3.4", "US", 7000, True)) == "1.2.3.4"
