"""Tests for the classifier and clustering detectors."""

import numpy as np
import pytest

from repro.common import ClientRef, LEGIT, SCRAPER
from repro.core.detection.classifier import LogisticSessionClassifier
from repro.core.detection.clustering import (
    ClusteringConfig,
    ClusteringDetector,
    kmeans,
)
from repro.web.logs import LogEntry, Session
from repro.web.request import SEARCH


def make_session(session_id, request_count, spacing=10.0, actor=LEGIT):
    client = ClientRef(
        ip_address="1.1.1.1",
        ip_country="US",
        ip_residential=True,
        fingerprint_id="fp",
        user_agent="UA",
        actor_class=actor,
    )
    entries = [
        LogEntry(
            time=i * spacing,
            method="GET",
            path=SEARCH,
            status=200,
            client=client,
        )
        for i in range(request_count)
    ]
    return Session(
        session_id=session_id,
        ip_address="1.1.1.1",
        fingerprint_id="fp",
        entries=entries,
    )


def separable_dataset(humans=20, scrapers=20):
    """Human-ish sessions and scraper-ish sessions, labelled."""
    human_sessions = [
        make_session(f"H{i}", request_count=4 + i % 3, spacing=40.0)
        for i in range(humans)
    ]
    scraper_sessions = [
        make_session(
            f"B{i}", request_count=300 + i, spacing=1.0, actor=SCRAPER
        )
        for i in range(scrapers)
    ]
    sessions = human_sessions + scraper_sessions
    labels = [False] * humans + [True] * scrapers
    return sessions, labels


class TestLogisticClassifier:
    def test_learns_separable_data(self):
        sessions, labels = separable_dataset()
        classifier = LogisticSessionClassifier()
        report = classifier.fit(sessions, labels)
        assert report.training_accuracy == 1.0
        probabilities = classifier.predict_proba(sessions)
        assert probabilities[:20].max() < 0.5
        assert probabilities[20:].min() > 0.5

    def test_judge_all_threshold(self):
        sessions, labels = separable_dataset()
        classifier = LogisticSessionClassifier()
        classifier.fit(sessions, labels)
        verdicts = classifier.judge_all(sessions)
        assert sum(v.is_bot for v in verdicts) == 20

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            LogisticSessionClassifier().predict_proba([])

    def test_label_mismatch_rejected(self):
        sessions, _ = separable_dataset()
        with pytest.raises(ValueError):
            LogisticSessionClassifier().fit(sessions, [True])

    def test_single_class_rejected(self):
        sessions, _ = separable_dataset()
        with pytest.raises(ValueError):
            LogisticSessionClassifier().fit(
                sessions, [True] * len(sessions)
            )

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            LogisticSessionClassifier(threshold=1.0)

    def test_deterministic_training(self):
        sessions, labels = separable_dataset()
        a = LogisticSessionClassifier()
        b = LogisticSessionClassifier()
        a.fit(sessions, labels)
        b.fit(sessions, labels)
        assert np.allclose(
            a.predict_proba(sessions), b.predict_proba(sessions)
        )


class TestKmeans:
    def test_separates_blobs(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(0.0, 0.3, size=(30, 2))
        blob_b = rng.normal(5.0, 0.3, size=(30, 2))
        data = np.vstack([blob_a, blob_b])
        labels, centroids = kmeans(data, 2, np.random.default_rng(1))
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[30]
        assert centroids.shape == (2, 2)

    def test_k_validation(self):
        data = np.zeros((3, 2))
        with pytest.raises(ValueError):
            kmeans(data, 0, np.random.default_rng(1))
        with pytest.raises(ValueError):
            kmeans(data, 4, np.random.default_rng(1))

    def test_k_equals_n(self):
        data = np.arange(6, dtype=float).reshape(3, 2)
        labels, _ = kmeans(data, 3, np.random.default_rng(1))
        assert len(set(labels)) == 3

    def test_empty_cluster_is_reseeded(self):
        """Regression: this input used to leave cluster 3 empty — two
        far-away outlier points capture the k-means++ seeds, the first
        Lloyd sweep moves every main-blob point onto one centroid, and
        the starved cluster's stale centroid silently reduced the
        effective k.  The repair re-seeds starved clusters at the point
        farthest from its assigned centroid."""
        g = np.random.default_rng(6869)
        data = np.vstack([
            g.uniform(0.0, 1.0, size=(int(g.integers(4, 15)), 2)),
            g.uniform(100.0, 101.0, size=(2, 2)),
        ])
        k = int(g.integers(3, min(8, len(data))))
        labels, centroids = kmeans(
            data, k, np.random.default_rng(6869 + len(data))
        )
        assert len(set(labels)) == k
        for cluster in range(k):
            assert (labels == cluster).sum() > 0
        assert centroids.shape == (k, data.shape[1])

    def test_duplicate_points_do_not_force_reseeding(self):
        """All-identical data cannot fill k clusters; the repair must
        not loop or fabricate spread from zero distances."""
        data = np.ones((5, 2))
        labels, centroids = kmeans(data, 3, np.random.default_rng(2))
        assert set(labels) == {labels[0]}
        assert np.allclose(centroids[labels[0]], 1.0)


class TestClusteringDetector:
    def test_flags_extreme_cluster(self):
        # A realistic mix: bots are a small minority, so the population
        # median stays at the human level.
        sessions, _ = separable_dataset(humans=40, scrapers=5)
        detector = ClusteringDetector(
            np.random.default_rng(7), ClusteringConfig(k=2)
        )
        verdicts = {v.subject_id: v for v in detector.judge_all(sessions)}
        scraper_flagged = sum(verdicts[f"B{i}"].is_bot for i in range(5))
        human_flagged = sum(verdicts[f"H{i}"].is_bot for i in range(40))
        assert scraper_flagged == 5
        assert human_flagged == 0

    def test_small_input_returns_clean_verdicts(self):
        detector = ClusteringDetector(
            np.random.default_rng(7), ClusteringConfig(k=4)
        )
        sessions = [make_session("S1", 3)]
        verdicts = detector.judge_all(sessions)
        assert len(verdicts) == 1
        assert not verdicts[0].is_bot

    def test_homogeneous_population_unflagged(self):
        """Without an extreme cluster, nothing is labelled bot."""
        sessions = [
            make_session(f"S{i}", request_count=5 + i % 4, spacing=30.0)
            for i in range(30)
        ]
        detector = ClusteringDetector(np.random.default_rng(3))
        verdicts = detector.judge_all(sessions)
        assert not any(v.is_bot for v in verdicts)
