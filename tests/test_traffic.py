"""Tests for repro.traffic: legitimate population and attackers."""

import random

import pytest

from repro.common import (
    LEGIT,
    MANUAL_SPINNER,
    SCRAPER,
    SEAT_SPINNER,
    SMS_PUMPER,
)
from repro.identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RAW_HEADLESS,
    RotationPolicy,
)
from repro.identity.ip import DatacenterPool, ResidentialProxyPool
from repro.scenarios.world import FlightSpec, WorldConfig, build_world
from repro.sim.clock import DAY, HOUR
from repro.sms.gateway import BOARDING_PASS
from repro.traffic.legitimate import (
    AVERAGE_WEEK_NIP_MIXTURE,
    LegitimateConfig,
    LegitimatePopulation,
)
from repro.traffic.manual_spinner import ManualSeatSpinner, ManualSpinnerConfig
from repro.traffic.scraper import ScraperBot, ScraperConfig
from repro.traffic.seat_spinner import (
    FIXED_NAME_ROTATING_DOB,
    GIBBERISH,
    SeatSpinnerBot,
    SeatSpinnerConfig,
)
from repro.traffic.sms_baseline import BaselineSmsConfig, BaselineSmsTraffic
from repro.traffic.sms_pumper import SmsPumperBot, SmsPumperConfig


def make_world(seed=1, capacity=400, hold_ttl=2 * HOUR, flights=3):
    specs = [
        FlightSpec(f"F{i}", 30 * DAY, capacity=capacity)
        for i in range(flights)
    ]
    return build_world(
        WorldConfig(seed=seed, flights=specs, hold_ttl=hold_ttl)
    )


def spinner(world, **config_overrides):
    config = dict(target_flight="F0", preferred_nip=6, target_seats=60)
    config.update(config_overrides)
    return SeatSpinnerBot(
        world.loop,
        world.app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(rotate_on_block=True),
            world.rngs.stream("bot.identity"),
        ),
        ResidentialProxyPool(),
        world.rngs.stream("bot"),
        SeatSpinnerConfig(**config),
    )


class TestLegitimatePopulation:
    def test_funnels_produce_holds_and_payments(self):
        world = make_world()
        population = LegitimatePopulation(
            world.loop,
            world.app,
            world.rngs.stream("legit"),
            LegitimateConfig(visitor_rate_per_hour=40),
        )
        population.start(at=0.0)
        world.run_until(2 * DAY)
        metrics = world.metrics
        assert metrics.counter("booking.holds_created") > 50
        assert metrics.counter("booking.holds_confirmed") > 20
        assert population.visitors_spawned > 100

    def test_nip_mixture_approximated(self):
        world = make_world(capacity=3000)
        population = LegitimatePopulation(
            world.loop,
            world.app,
            world.rngs.stream("legit"),
            LegitimateConfig(visitor_rate_per_hour=80),
        )
        population.start(at=0.0)
        world.run_until(3 * DAY)
        held = world.reservations.held_records()
        share_1 = sum(1 for r in held if r.nip == 1) / len(held)
        assert 0.40 < share_1 < 0.60
        share_6_plus = sum(1 for r in held if r.nip >= 6) / len(held)
        assert share_6_plus < 0.10

    def test_groups_rebook_at_cap(self):
        """Fig. 1's legit-side adjustment: a capped group re-books at
        the new maximum."""
        world = make_world()
        world.reservations.set_max_nip(4)
        population = LegitimatePopulation(
            world.loop,
            world.app,
            world.rngs.stream("legit"),
            LegitimateConfig(
                visitor_rate_per_hour=60,
                retry_at_cap_probability=1.0,
            ),
        )
        population.start(at=0.0)
        world.run_until(2 * DAY)
        held = world.reservations.held_records()
        assert max(r.nip for r in held) == 4
        rejections = world.metrics.counter("booking.reject.nip-exceeds-cap")
        assert rejections > 0
        share_4 = sum(1 for r in held if r.nip == 4) / len(held)
        # Baseline share at 4 is ~5%; with 5+ groups folding in it rises.
        assert share_4 > 0.08

    def test_all_traffic_labelled_legit(self):
        world = make_world()
        population = LegitimatePopulation(
            world.loop, world.app, world.rngs.stream("legit")
        )
        population.start(at=0.0)
        world.run_until(6 * HOUR)
        assert all(
            entry.client.actor_class == LEGIT
            for entry in world.app.log.entries()
        )


class TestSeatSpinnerBot:
    def test_keeps_target_seats_held(self):
        world = make_world(hold_ttl=1 * HOUR)
        bot = spinner(world, target_seats=60)
        bot.start(at=0.0)
        world.run_until(6 * HOUR)
        assert bot.seats_currently_held == 60
        assert world.reservations.availability("F0") == 340

    def test_reholds_after_expiry(self):
        world = make_world(hold_ttl=1 * HOUR)
        bot = spinner(world, target_seats=30)
        bot.start(at=0.0)
        world.run_until(10 * HOUR)
        # 30 seats at NiP 6 = 5 holds per ~1 h wave, ~10 waves.
        assert bot.holds_created >= 40

    def test_adapts_to_nip_cap(self):
        world = make_world()
        world.reservations.set_max_nip(4)
        bot = spinner(world, preferred_nip=6)
        bot.start(at=0.0)
        world.run_until(2 * HOUR)
        assert bot.current_nip == 4
        assert bot.nip_adaptations
        assert bot.seats_currently_held > 0

    def test_stops_before_departure(self):
        world = make_world()
        bot = spinner(world)
        bot.config = SeatSpinnerConfig(
            target_flight="F0",
            preferred_nip=6,
            target_seats=30,
            stop_before_departure=29 * DAY,  # departure is at day 30
        )
        bot.start(at=0.0)
        world.run_until(2 * DAY)
        assert bot.holds_created > 0
        created_before = bot.holds_created
        world.run_until(3 * DAY)
        assert bot.holds_created == created_before
        assert not bot.running

    def test_rotates_identity_when_blocked(self):
        world = make_world(hold_ttl=1 * HOUR)
        bot = spinner(world, target_seats=30)
        blocked_id = bot.identity.fingerprint.fingerprint_id
        world.app.add_block_rule(
            "ban", lambda r: r.client.fingerprint_id == blocked_id
        )
        bot.start(at=0.0)
        world.run_until(1 * HOUR + 15 * 60)  # past the first re-hold wave
        assert bot.blocks_encountered > 0
        assert bot.identity.rotations > 0
        assert bot.seats_currently_held > 0  # attack continues regardless

    def test_gibberish_style_names(self):
        world = make_world()
        bot = spinner(world, passenger_style=GIBBERISH)
        bot.start(at=0.0)
        world.run_until(1 * HOUR)
        held = world.reservations.held_records()
        assert held
        assert all(p.first_name.islower() for p in held[0].passengers)

    def test_fixed_name_rotating_dob_style(self):
        world = make_world(hold_ttl=1 * HOUR)
        bot = spinner(
            world,
            passenger_style=FIXED_NAME_ROTATING_DOB,
            target_seats=60,
        )
        bot.start(at=0.0)
        world.run_until(5 * HOUR)
        held = [
            r
            for r in world.reservations.held_records()
            if r.client.actor_class == SEAT_SPINNER
        ]
        leads = {r.passengers[0].name_key for r in held}
        birthdates = {r.passengers[0].birthdate for r in held}
        assert len(leads) == 1          # fixed lead name
        assert len(birthdates) > 3      # rotating birthdates

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SeatSpinnerConfig(target_flight="F0", preferred_nip=0)
        with pytest.raises(ValueError):
            SeatSpinnerConfig(target_flight="F0", passenger_style="weird")


class TestManualSpinner:
    def test_fixed_name_pool_reused(self):
        world = make_world()
        manual = ManualSeatSpinner(
            world.loop,
            world.app,
            world.rngs.stream("manual"),
            ManualSpinnerConfig(target_flight="F0", name_pool_size=5),
        )
        manual.start(at=0.0)
        world.run_until(3 * DAY)
        held = [
            r
            for r in world.reservations.held_records()
            if r.client.actor_class == MANUAL_SPINNER
        ]
        assert len(held) > 10
        # The fixed pool dominates: the 5 most frequent name keys cover
        # the vast majority of passenger entries (misspelled variants
        # are occasional one-offs).
        from collections import Counter

        counts = Counter(
            p.name_key for r in held for p in r.passengers
        )
        total = sum(counts.values())
        top5 = sum(count for _, count in counts.most_common(5))
        assert top5 / total > 0.7

    def test_human_cadence_is_slow(self):
        world = make_world()
        manual = ManualSeatSpinner(
            world.loop,
            world.app,
            world.rngs.stream("manual"),
            ManualSpinnerConfig(target_flight="F0"),
        )
        manual.start(at=0.0)
        world.run_until(1 * DAY)
        # A human cannot sustain thousands of requests a day.
        assert manual.attempts < 200

    def test_many_ips_few_devices(self):
        world = make_world()
        manual = ManualSeatSpinner(
            world.loop,
            world.app,
            world.rngs.stream("manual"),
            ManualSpinnerConfig(target_flight="F0"),
        )
        manual.start(at=0.0)
        world.run_until(5 * DAY)
        entries = [
            e
            for e in world.app.log.entries()
            if e.client.actor_class == MANUAL_SPINNER
        ]
        ips = {e.client.ip_address for e in entries}
        fingerprints = {e.client.fingerprint_id for e in entries}
        assert len(ips) > 3            # broad IP range
        assert len(fingerprints) <= 2  # one or two personal devices


class TestSmsPumper:
    def _pumper(self, world, **overrides):
        config = dict(setup_flight="F0", sms_per_hour=120.0)
        config.update(overrides)
        return SmsPumperBot(
            world.loop,
            world.app,
            BotIdentity(
                FingerprintForge(MIMICRY),
                RotationPolicy(mean_interval=2 * HOUR),
                world.rngs.stream("pumper.identity"),
            ),
            ResidentialProxyPool(),
            world.rngs.stream("pumper"),
            SmsPumperConfig(**config),
        )

    def test_setup_phase_buys_tickets(self):
        world = make_world()
        bot = self._pumper(world, tickets_to_buy=3)
        bot.start(at=0.0)
        world.run_until(1 * HOUR)
        assert len(bot.booking_refs) == 3
        assert world.reservations.flight("F0").inventory.confirmed == 3

    def test_pumping_delivers_sms(self):
        world = make_world()
        bot = self._pumper(world)
        bot.start(at=0.0)
        world.run_until(6 * HOUR)
        assert bot.sms_sent > 400
        pumped = [
            r
            for r in world.sms.delivered_records()
            if r.client.actor_class == SMS_PUMPER
        ]
        assert all(r.kind == BOARDING_PASS for r in pumped)
        assert all(r.number.controlled_by_attacker for r in pumped)

    def test_geo_matched_proxies(self):
        """Exit-IP country matches the destination number country."""
        world = make_world()
        bot = self._pumper(world)
        bot.start(at=0.0)
        world.run_until(2 * HOUR)
        pumped = [
            r
            for r in world.sms.delivered_records()
            if r.client.actor_class == SMS_PUMPER
        ]
        assert pumped
        assert all(
            r.client.ip_country == r.number.country_code for r in pumped
        )

    def test_stops_when_feature_removed(self):
        world = make_world()
        bot = self._pumper(world, give_up_after_disabled=5)
        bot.start(at=0.0)
        world.run_until(1 * HOUR)
        world.sms.disable_kind(BOARDING_PASS)
        world.run_until(3 * HOUR)
        assert not bot.running
        sent_at_giveup = bot.sms_sent
        world.run_until(5 * HOUR)
        assert bot.sms_sent == sent_at_giveup


class TestScraper:
    def test_high_volume_within_duration(self):
        world = make_world()
        bot = ScraperBot(
            world.loop,
            world.app,
            BotIdentity(
                FingerprintForge(RAW_HEADLESS),
                RotationPolicy(),
                world.rngs.stream("scraper.identity"),
            ),
            world.rngs.stream("scraper"),
            ScraperConfig(requests_per_hour=600.0, duration=4 * HOUR),
        )
        bot.start(at=0.0)
        world.run_until(8 * HOUR)
        assert 1800 < bot.requests_made < 3200
        assert not bot.running

    def test_uses_datacenter_ips(self):
        world = make_world()
        bot = ScraperBot(
            world.loop,
            world.app,
            BotIdentity(
                FingerprintForge(RAW_HEADLESS),
                RotationPolicy(),
                world.rngs.stream("scraper.identity"),
            ),
            world.rngs.stream("scraper"),
            ScraperConfig(requests_per_hour=120.0, duration=1 * HOUR),
        )
        bot.start(at=0.0)
        world.run_until(2 * HOUR)
        entries = [
            e
            for e in world.app.log.entries()
            if e.client.actor_class == SCRAPER
        ]
        assert entries
        assert all(not e.client.ip_residential for e in entries)


class TestBaselineSms:
    def test_rate_and_mix(self):
        world = make_world()
        traffic = BaselineSmsTraffic(
            world.loop,
            world.app,
            world.rngs.stream("baseline"),
            BaselineSmsConfig(
                sms_per_hour=100.0,
                country_weights={"GB": 0.8, "UZ": 0.2},
            ),
        )
        traffic.start(at=0.0)
        world.run_until(10 * HOUR)
        delivered = world.sms.delivered_records()
        assert 800 < len(delivered) < 1200
        gb_share = sum(
            1 for r in delivered if r.country_code == "GB"
        ) / len(delivered)
        assert 0.7 < gb_share < 0.9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BaselineSmsConfig(sms_per_hour=0.0)
        with pytest.raises(ValueError):
            BaselineSmsConfig(otp_fraction=1.5)
