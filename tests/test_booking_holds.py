"""Tests for repro.booking.holds (hold store + TTL expiry)."""

import pytest

from repro.booking.holds import (
    ACTIVE,
    CANCELLED,
    CONFIRMED,
    EXPIRED,
    Hold,
    HoldStore,
)
from repro.booking.passengers import Passenger
from repro.common import ClientRef


def make_client():
    return ClientRef(
        ip_address="1.2.3.4",
        ip_country="US",
        ip_residential=True,
        fingerprint_id="fp-1",
        user_agent="UA",
    )


def make_hold(hold_id, created_at=0.0, ttl=100.0, nip=2, shadow=False):
    passengers = tuple(
        Passenger("A", "B", "1990-01-01", "a@b.c") for _ in range(nip)
    )
    return Hold(
        hold_id=hold_id,
        flight_id="F1",
        nip=nip,
        passengers=passengers,
        client=make_client(),
        created_at=created_at,
        expires_at=created_at + ttl,
        price_quoted=100.0,
        shadow=shadow,
    )


class TestHold:
    def test_starts_active(self):
        hold = make_hold("H1")
        assert hold.is_active
        assert hold.status == ACTIVE

    def test_held_duration_open(self):
        hold = make_hold("H1", created_at=10.0, ttl=50.0)
        assert hold.held_duration == 50.0

    def test_held_duration_closed_early(self):
        hold = make_hold("H1", created_at=10.0, ttl=50.0)
        hold.status = CANCELLED
        hold.closed_at = 30.0
        assert hold.held_duration == 20.0


class TestHoldStore:
    def test_ids_are_unique_and_monotonic(self):
        store = HoldStore()
        ids = [store.new_hold_id() for _ in range(5)]
        assert len(set(ids)) == 5
        assert ids == sorted(ids)

    def test_add_and_get(self):
        store = HoldStore()
        hold = make_hold("H1")
        store.add(hold)
        assert store.get("H1") is hold
        assert "H1" in store
        assert len(store) == 1

    def test_duplicate_id_rejected(self):
        store = HoldStore()
        store.add(make_hold("H1"))
        with pytest.raises(ValueError):
            store.add(make_hold("H1"))

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            HoldStore().get("nope")

    def test_close_transitions(self):
        store = HoldStore()
        store.add(make_hold("H1"))
        closed = store.close("H1", CONFIRMED, now=5.0)
        assert closed.status == CONFIRMED
        assert closed.closed_at == 5.0

    def test_close_requires_terminal_status(self):
        store = HoldStore()
        store.add(make_hold("H1"))
        with pytest.raises(ValueError):
            store.close("H1", ACTIVE, now=5.0)

    def test_double_close_rejected(self):
        store = HoldStore()
        store.add(make_hold("H1"))
        store.close("H1", CANCELLED, now=5.0)
        with pytest.raises(ValueError):
            store.close("H1", CONFIRMED, now=6.0)


class TestExpiry:
    def test_expire_due_releases_overdue(self):
        store = HoldStore()
        store.add(make_hold("H1", created_at=0.0, ttl=10.0))
        store.add(make_hold("H2", created_at=0.0, ttl=50.0))
        expired = store.expire_due(now=20.0)
        assert [h.hold_id for h in expired] == ["H1"]
        assert store.get("H1").status == EXPIRED
        assert store.get("H2").is_active

    def test_expiry_at_exact_deadline(self):
        store = HoldStore()
        store.add(make_hold("H1", created_at=0.0, ttl=10.0))
        assert [h.hold_id for h in store.expire_due(now=10.0)] == ["H1"]

    def test_confirmed_holds_do_not_expire(self):
        store = HoldStore()
        store.add(make_hold("H1", created_at=0.0, ttl=10.0))
        store.close("H1", CONFIRMED, now=5.0)
        assert store.expire_due(now=20.0) == []
        assert store.get("H1").status == CONFIRMED

    def test_expire_due_is_idempotent(self):
        store = HoldStore()
        store.add(make_hold("H1", created_at=0.0, ttl=10.0))
        store.expire_due(now=20.0)
        assert store.expire_due(now=30.0) == []

    def test_next_expiry_skips_closed(self):
        store = HoldStore()
        store.add(make_hold("H1", created_at=0.0, ttl=10.0))
        store.add(make_hold("H2", created_at=0.0, ttl=20.0))
        store.close("H1", CANCELLED, now=1.0)
        assert store.next_expiry() == 20.0

    def test_next_expiry_empty(self):
        assert HoldStore().next_expiry() is None

    def test_active_queries(self):
        store = HoldStore()
        store.add(make_hold("H1"))
        store.add(make_hold("H2"))
        store.close("H1", CANCELLED, now=1.0)
        assert [h.hold_id for h in store.active_holds()] == ["H2"]
        assert [
            h.hold_id for h in store.active_for_flight("F1")
        ] == ["H2"]
        assert store.active_for_flight("F9") == []

    def test_many_holds_expire_in_order(self):
        store = HoldStore()
        for i in range(10):
            store.add(make_hold(f"H{i}", created_at=float(i), ttl=5.0))
        expired = store.expire_due(now=9.0)
        assert [h.hold_id for h in expired] == [f"H{i}" for i in range(5)]
