"""Acceptance tests for the two-arm graph case study.

The PR's headline criterion: on Case A with fingerprint rotation, the
GraphDetector-augmented fusion arm achieves strictly higher
campaign-session recall than session-only fusion at the same or lower
false-positive rate, and at least one recovered campaign spans more
than one fingerprint (the linkage rotation was supposed to destroy).
"""

import pytest

from repro.runner.registry import get_scenario
from repro.scenarios.graph_case import (
    CASE_A,
    CASE_C,
    GRAPH_CASES,
    GraphCaseConfig,
    graph_case_cell,
    run_graph_case,
)


@pytest.fixture(scope="module")
def short_case_a():
    return run_graph_case(
        GraphCaseConfig(seed=7, case=CASE_A, ticks_short=True)
    )


class TestAcceptance:
    def test_graph_fusion_beats_session_fusion_on_rotated_case_a(
        self, short_case_a
    ):
        result = short_case_a
        session_arm, graph_arm = result.session_arm, result.graph_arm
        # Strictly higher campaign-session recall...
        assert (
            graph_arm.campaign_recall > session_arm.campaign_recall
        )
        # ...at the same or lower FPR (no precision giveback).
        assert (
            graph_arm.evaluation.false_positive_rate
            <= session_arm.evaluation.false_positive_rate
        )
        assert (
            graph_arm.evaluation.recall >= session_arm.evaluation.recall
        )

    def test_recovered_campaign_spans_rotated_fingerprints(
        self, short_case_a
    ):
        multi = short_case_a.multi_fingerprint_campaigns
        assert len(multi) >= 1
        assert all(c.rotates_identity for c in multi)
        assert all(
            c.mean_rotation_interval < float("inf") for c in multi
        )

    def test_campaign_level_evaluation(self, short_case_a):
        evaluation = short_case_a.campaign_evaluation
        assert evaluation.total_predicted >= 1
        assert evaluation.campaign_precision == 1.0
        assert evaluation.campaign_recall > 0.0
        # The rotated spinner is live from the first attack tick;
        # detection time is measured from campaign start.
        for delay in evaluation.time_to_detection.values():
            assert delay >= 0.0

    def test_deterministic_given_seed(self, short_case_a):
        rerun = run_graph_case(
            GraphCaseConfig(seed=7, case=CASE_A, ticks_short=True)
        )
        assert [
            (c.campaign_id, c.members, c.risk)
            for c in rerun.campaigns
        ] == [
            (c.campaign_id, c.members, c.risk)
            for c in short_case_a.campaigns
        ]
        assert (
            rerun.graph_arm.evaluation == short_case_a.graph_arm.evaluation
        )


class TestScenarioSurface:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            GraphCaseConfig(case="case-z")
        assert set(GRAPH_CASES) == {CASE_A, CASE_C}

    def test_cell_metrics_shape(self, short_case_a):
        result = graph_case_cell(
            GraphCaseConfig(seed=7, case=CASE_A, ticks_short=True)
        )
        metrics = result["metrics"]
        for key in (
            "session_campaign_recall",
            "graph_campaign_recall",
            "session_fpr",
            "graph_fpr",
            "campaigns_found",
            "multi_fingerprint_campaigns",
            "campaign_precision",
            "campaign_level_recall",
            "mean_time_to_detection_hours",
            "propagation_rounds",
        ):
            assert key in metrics, key
            assert isinstance(metrics[key], float)
        assert metrics["campaigns_found"] >= 1.0
        assert metrics["multi_fingerprint_campaigns"] >= 1.0
        assert (
            metrics["graph_campaign_recall"]
            > metrics["session_campaign_recall"]
        )
        assert result["info"]["case"] == CASE_A
        assert len(result["info"]["campaigns"]) >= 1

    def test_registered_cells_pin_their_case(self):
        for name, case in (
            ("graph-case-a", CASE_A),
            ("graph-case-c", CASE_C),
        ):
            entry = get_scenario(name)
            config = entry.build_config({"ticks_short": True}, seed=3)
            assert isinstance(config, GraphCaseConfig)
            assert config.seed == 3
            assert config.ticks_short
