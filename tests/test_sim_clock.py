"""Tests for repro.sim.clock."""

import pytest

from repro.sim.clock import (
    Clock,
    DAY,
    HOUR,
    MINUTE,
    SECOND,
    WEEK,
    format_duration,
)


class TestDurations:
    def test_constants_compose(self):
        assert MINUTE == 60 * SECOND
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY

    def test_five_point_three_hours(self):
        # The paper's rotation constant, used throughout the scenarios.
        assert 5.3 * HOUR == pytest.approx(19080.0)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(start=-1.0)

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(12.5)
        assert clock.now == 12.5

    def test_advance_to_same_time_ok(self):
        clock = Clock(start=3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_rewind_rejected(self):
        clock = Clock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_advance_by(self):
        clock = Clock()
        clock.advance_by(7.0)
        clock.advance_by(0.0)
        assert clock.now == 7.0

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance_by(-0.1)


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds, expected",
        [
            (0, "0s"),
            (45, "45s"),
            (90, "1m30s"),
            (120, "2m"),
            (HOUR, "1h"),
            (5.3 * HOUR, "5h18m"),
            (DAY, "1d"),
            (DAY + 3 * HOUR, "1d3h"),
            (2 * WEEK, "14d"),
        ],
    )
    def test_rendering(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative(self):
        assert format_duration(-90) == "-1m30s"
