"""Tests for repro.sms: countries, numbers, telco, gateway."""

import random

import pytest

from repro.common import ClientRef
from repro.sim.clock import Clock, WEEK
from repro.sms.countries import (
    COUNTRIES,
    all_codes,
    get_country,
    high_cost_codes,
    legit_weights,
)
from repro.sms.gateway import (
    BOARDING_PASS,
    NOTIFICATION,
    OTP,
    REJECT_FEATURE_DISABLED,
    REJECT_QUOTA_EXHAUSTED,
    SmsGateway,
)
from repro.sms.numbers import PhoneNumber, sample_number
from repro.sms.telco import LocalCarrier, TelcoNetwork


def make_client():
    return ClientRef(
        ip_address="5.6.7.8",
        ip_country="GB",
        ip_residential=True,
        fingerprint_id="fp-9",
        user_agent="UA",
    )


class TestCountries:
    def test_registry_has_table1_countries(self):
        for code in ("UZ", "IR", "KG", "JO", "NG", "KH", "SG", "GB",
                     "CN", "TH"):
            assert get_country(code).code == code

    def test_enough_countries_for_42_destination_attack(self):
        assert len(COUNTRIES) >= 42

    def test_codes_unique(self):
        codes = all_codes()
        assert len(codes) == len(set(codes))

    def test_unknown_code(self):
        with pytest.raises(KeyError):
            get_country("XX")

    def test_high_cost_have_high_fees(self):
        normal_fees = [
            c.termination_fee for c in COUNTRIES if not c.high_cost
        ]
        for code in high_cost_codes():
            assert get_country(code).termination_fee > max(normal_fees) / 2

    def test_legit_weights_normalised(self):
        weights = legit_weights()
        assert sum(weights.values()) == pytest.approx(1.0)
        assert all(w >= 0 for w in weights.values())

    def test_high_cost_have_tiny_legit_traffic(self):
        weights = legit_weights()
        assert weights["UZ"] < weights["GB"] / 100


class TestNumbers:
    def test_e164_uses_dial_code(self):
        number = PhoneNumber("UZ", "123456789")
        assert number.e164.startswith("+998")

    def test_sample_number_valid(self):
        number = sample_number(random.Random(1), "IR")
        assert number.country_code == "IR"
        assert len(number.subscriber) == 9

    def test_sample_number_unknown_country(self):
        with pytest.raises(KeyError):
            sample_number(random.Random(1), "ZZ")

    def test_attacker_control_flag(self):
        number = sample_number(
            random.Random(1), "UZ", controlled_by_attacker=True
        )
        assert number.controlled_by_attacker


class TestTelco:
    def test_honest_carrier_no_kickback(self):
        telco = TelcoNetwork()
        number = sample_number(
            random.Random(1), "UZ", controlled_by_attacker=True
        )
        settlement = telco.settle(number)
        assert settlement.attacker_revenue == 0.0
        assert settlement.termination_fee_paid == pytest.approx(
            get_country("UZ").termination_fee
        )

    def test_colluding_carrier_kicks_back(self):
        telco = TelcoNetwork()
        telco.register_carrier(
            LocalCarrier(
                "shady-uz", "UZ", colluding=True, attacker_revenue_share=0.5
            )
        )
        number = sample_number(
            random.Random(1), "UZ", controlled_by_attacker=True
        )
        settlement = telco.settle(number)
        assert settlement.attacker_revenue == pytest.approx(
            get_country("UZ").termination_fee * 0.5
        )

    def test_collusion_needs_attacker_number(self):
        """A colluding carrier only shares revenue on numbers the
        attacker actually controls."""
        telco = TelcoNetwork()
        telco.register_carrier(
            LocalCarrier("shady-uz", "UZ", colluding=True)
        )
        number = sample_number(random.Random(1), "UZ")
        assert telco.settle(number).attacker_revenue == 0.0

    def test_non_compensation_policy_zeroes_flow(self):
        """The Section V mitigation: withhold fees from flagged
        carriers and the attacker's revenue dies with them."""
        telco = TelcoNetwork()
        telco.register_carrier(
            LocalCarrier("shady-uz", "UZ", colluding=True)
        )
        telco.flag_carrier("UZ")
        telco.enable_non_compensation_policy()
        number = sample_number(
            random.Random(1), "UZ", controlled_by_attacker=True
        )
        settlement = telco.settle(number)
        assert settlement.withheld
        assert settlement.termination_fee_paid == 0.0
        assert settlement.attacker_revenue == 0.0
        # The app owner still pays for the send.
        assert settlement.app_owner_cost > 0

    def test_non_compensation_spares_unflagged(self):
        telco = TelcoNetwork()
        telco.enable_non_compensation_policy()
        number = sample_number(random.Random(1), "GB")
        assert not telco.settle(number).withheld

    def test_duplicate_carrier_rejected(self):
        telco = TelcoNetwork()
        telco.register_carrier(LocalCarrier("a", "UZ"))
        with pytest.raises(ValueError):
            telco.register_carrier(LocalCarrier("b", "UZ"))

    def test_totals(self):
        telco = TelcoNetwork()
        rng = random.Random(2)
        for _ in range(10):
            telco.settle(sample_number(rng, "GB"))
        assert telco.total_app_owner_cost() == pytest.approx(
            10 * get_country("GB").sms_cost
        )

    def test_invalid_revenue_share(self):
        with pytest.raises(ValueError):
            LocalCarrier("x", "UZ", attacker_revenue_share=1.5)


class TestGateway:
    def _gateway(self, **kwargs):
        return SmsGateway(Clock(), **kwargs)

    def test_send_delivers_and_settles(self):
        gateway = self._gateway()
        number = sample_number(random.Random(1), "GB")
        record = gateway.send(number, OTP, make_client())
        assert record.delivered
        assert record.settlement is not None
        assert gateway.metrics.counter("sms.sent") == 1

    def test_unknown_kind_rejected(self):
        gateway = self._gateway()
        number = sample_number(random.Random(1), "GB")
        with pytest.raises(ValueError):
            gateway.send(number, "carrier-pigeon", make_client())

    def test_feature_toggle(self):
        gateway = self._gateway()
        gateway.disable_kind(BOARDING_PASS)
        number = sample_number(random.Random(1), "GB")
        record = gateway.send(
            number, BOARDING_PASS, make_client(), booking_ref="R1"
        )
        assert not record.delivered
        assert record.reject_reason == REJECT_FEATURE_DISABLED
        # Other kinds still work.
        assert gateway.send(number, OTP, make_client()).delivered
        gateway.enable_kind(BOARDING_PASS)
        assert gateway.send(
            number, BOARDING_PASS, make_client(), booking_ref="R1"
        ).delivered

    def test_quota_blocks_everyone(self):
        """Once pumping exhausts the weekly quota, legitimate users
        lose the feature too — the collateral damage of Section II-B."""
        gateway = self._gateway(weekly_quota=3)
        number = sample_number(random.Random(1), "GB")
        for _ in range(3):
            assert gateway.send(number, OTP, make_client()).delivered
        rejected = gateway.send(number, OTP, make_client())
        assert not rejected.delivered
        assert rejected.reject_reason == REJECT_QUOTA_EXHAUSTED

    def test_quota_resets_weekly(self):
        clock = Clock()
        gateway = SmsGateway(clock, weekly_quota=1)
        number = sample_number(random.Random(1), "GB")
        assert gateway.send(number, OTP, make_client()).delivered
        assert not gateway.send(number, OTP, make_client()).delivered
        clock.advance_to(1 * WEEK + 1)
        assert gateway.send(number, OTP, make_client()).delivered

    def test_records_between_window(self):
        clock = Clock()
        gateway = SmsGateway(clock)
        number = sample_number(random.Random(1), "GB")
        for t in (0.0, 10.0, 20.0, 30.0):
            clock.advance_to(t)
            gateway.send(number, OTP, make_client())
        window = gateway.records_between(10.0, 30.0)
        assert [r.time for r in window] == [10.0, 20.0]

    def test_rejected_sends_not_in_delivered(self):
        gateway = self._gateway()
        gateway.disable_kind(OTP)
        number = sample_number(random.Random(1), "GB")
        gateway.send(number, OTP, make_client())
        assert gateway.delivered_records() == []
        assert len(gateway.records) == 1
