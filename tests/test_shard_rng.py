"""Properties of the per-shard RNG substream derivation.

Sharded determinism rests on :func:`repro.sim.rng.derive_shard_seed`
giving every ``(master_seed, config_hash, replication, shard_id,
shard_count)`` tuple its own independent substream:

* distinct shards of the same cell never collide on seeds, and their
  streams' draw prefixes never overlap (the practical meaning of
  "independent substreams" for a deterministic simulation);
* the seed is a pure function of its inputs, so a shard simulated on a
  ``ProcessPoolExecutor`` worker draws exactly what it would draw
  in-process — worker scheduling cannot leak into results;
* re-partitioning (same cell, different K) changes every seed, so a
  4-shard run never silently replays 2-shard cache entries.
"""

from concurrent.futures import ProcessPoolExecutor

import random

from hypothesis import given, settings, strategies as st

import pytest

from repro.sim.rng import RngRegistry, derive_shard_seed

hashes = st.text(alphabet="0123456789abcdef", min_size=8, max_size=64)
masters = st.integers(min_value=0, max_value=2**32)
counts = st.integers(min_value=1, max_value=16)


class TestShardSeedDerivation:
    @settings(max_examples=150, deadline=None)
    @given(master=masters, digest=hashes, shard_count=counts)
    def test_shards_of_one_cell_never_collide(
        self, master, digest, shard_count
    ):
        seeds = [
            derive_shard_seed(master, digest, shard_id, shard_count)
            for shard_id in range(shard_count)
        ]
        assert len(set(seeds)) == shard_count

    @settings(max_examples=100, deadline=None)
    @given(master=masters, digest=hashes,
           shard_count=st.integers(min_value=2, max_value=16))
    def test_draw_prefixes_do_not_overlap(
        self, master, digest, shard_count
    ):
        # Pairwise-distinct 16-draw prefixes from every shard's stream:
        # if two substreams shared state, their prefixes would match.
        prefixes = set()
        for shard_id in range(shard_count):
            seed = derive_shard_seed(master, digest, shard_id, shard_count)
            stream = random.Random(seed)
            prefixes.add(tuple(stream.random() for _ in range(16)))
        assert len(prefixes) == shard_count

    @settings(max_examples=100, deadline=None)
    @given(master=masters, digest=hashes, shard_id=st.integers(0, 3))
    def test_repartitioning_changes_every_seed(
        self, master, digest, shard_id
    ):
        assert derive_shard_seed(
            master, digest, shard_id, 4
        ) != derive_shard_seed(master, digest, shard_id, 8)

    @settings(max_examples=100, deadline=None)
    @given(master=masters, digest=hashes)
    def test_replications_separate_substreams(self, master, digest):
        assert derive_shard_seed(
            master, digest, 0, 4, replication=0
        ) != derive_shard_seed(master, digest, 0, 4, replication=1)

    def test_shard_id_bounds_are_enforced(self):
        with pytest.raises(ValueError):
            derive_shard_seed(0, "abcd1234", 4, 4)
        with pytest.raises(ValueError):
            derive_shard_seed(0, "abcd1234", -1, 4)

    def test_seed_is_deterministic(self):
        assert derive_shard_seed(7, "abcd1234", 2, 4) == derive_shard_seed(
            7, "abcd1234", 2, 4
        )


def _draws_for_shard(args):
    master, digest, shard_id, shard_count = args
    seed = derive_shard_seed(master, digest, shard_id, shard_count)
    registry = RngRegistry(seed)
    py = registry.stream("traffic.legit")
    np_stream = registry.numpy_stream("traffic.legit.arrivals")
    return (
        [py.random() for _ in range(8)],
        np_stream.random(8).tolist(),
    )


class TestProcessPoolDeterminism:
    def test_workers_draw_exactly_what_serial_draws(self):
        jobs = [(0, "deadbeef", shard_id, 4) for shard_id in range(4)]
        serial = [_draws_for_shard(job) for job in jobs]
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = list(pool.map(_draws_for_shard, jobs))
        assert pooled == serial
