"""Property-based tests for replication seeding and metric merging.

Two invariants the parallel runner's correctness rests on:

* **seed disjointness** — distinct ``(config_hash, replication)`` pairs
  (under any master seed) never collide on derived seeds, so sweep
  cells draw from independent RNG streams;
* **merge algebra** — ``MetricsRecorder.merge`` is associative and
  commutative on counters, and order-stable on time series (points stay
  time-sorted; equal-timestamp points keep fold order), so the merged
  result is independent of which worker produced which piece as long as
  replications are folded in a fixed order.
"""

from hypothesis import given, settings, strategies as st

from repro.runner import config_hash
from repro.sim.metrics import MetricsRecorder, TimePoint
from repro.sim.rng import derive_replication_seed

# -- seeding ----------------------------------------------------------------

hashes = st.text(
    alphabet="0123456789abcdef", min_size=8, max_size=64
)
replications = st.integers(min_value=0, max_value=10_000)


class TestReplicationSeeding:
    @settings(max_examples=200, deadline=None)
    @given(
        master=st.integers(min_value=0, max_value=2**32),
        pairs=st.lists(
            st.tuples(hashes, replications),
            min_size=2,
            max_size=30,
            unique=True,
        ),
    )
    def test_distinct_cells_never_collide(self, master, pairs):
        seeds = [
            derive_replication_seed(master, digest, replication)
            for digest, replication in pairs
        ]
        assert len(set(seeds)) == len(pairs)

    @settings(max_examples=100, deadline=None)
    @given(master=st.integers(min_value=0, max_value=2**32),
           digest=hashes, replication=replications)
    def test_seed_is_deterministic(self, master, digest, replication):
        assert derive_replication_seed(
            master, digest, replication
        ) == derive_replication_seed(master, digest, replication)

    @settings(max_examples=100, deadline=None)
    @given(digest=hashes, replication=replications)
    def test_master_seed_separates_streams(self, digest, replication):
        assert derive_replication_seed(
            0, digest, replication
        ) != derive_replication_seed(1, digest, replication)


# -- config hashing ---------------------------------------------------------

param_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
param_dicts = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
    ),
    param_values,
    max_size=8,
)


class TestConfigHash:
    @settings(max_examples=100, deadline=None)
    @given(params=param_dicts)
    def test_insertion_order_is_irrelevant(self, params):
        shuffled = dict(reversed(list(params.items())))
        assert config_hash(params) == config_hash(shuffled)

    @settings(max_examples=100, deadline=None)
    @given(params=param_dicts, seed=st.integers())
    def test_seed_is_excluded(self, params, seed):
        params.pop("seed", None)
        assert config_hash(params) == config_hash(dict(params, seed=seed))


# -- merge algebra ----------------------------------------------------------

counter_dicts = st.dictionaries(
    st.sampled_from(["holds", "blocks", "sms", "visits"]),
    st.integers(min_value=0, max_value=1000).map(float),
    max_size=4,
)
series_points = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100).map(float),
        st.integers(min_value=-50, max_value=50).map(float),
    ),
    max_size=12,
)
series_dicts = st.dictionaries(
    st.sampled_from(["rate", "load"]), series_points, max_size=2
)


def build_recorder(counters, series) -> MetricsRecorder:
    recorder = MetricsRecorder()
    for name, value in counters.items():
        recorder.increment(name, value)
    for name, points in series.items():
        for time, value in sorted(points):
            recorder.record(name, time, value)
    return recorder


recorders = st.builds(build_recorder, counter_dicts, series_dicts)


def merged(*parts: MetricsRecorder) -> MetricsRecorder:
    out = MetricsRecorder()
    for part in parts:
        out.merge(part)
    return out


class TestMergeAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(a=recorders, b=recorders)
    def test_counters_commute(self, a, b):
        assert (
            merged(a, b).snapshot()["counters"]
            == merged(b, a).snapshot()["counters"]
        )

    @settings(max_examples=100, deadline=None)
    @given(a=recorders, b=recorders, c=recorders)
    def test_merge_is_associative(self, a, b, c):
        left = merged(merged(a, b), c).snapshot()
        right = merged(a, merged(b, c)).snapshot()
        assert left["counters"] == right["counters"]
        assert left["series"] == right["series"]

    @settings(max_examples=100, deadline=None)
    @given(a=recorders, b=recorders)
    def test_series_stay_sorted_and_order_independent(self, a, b):
        combined = merged(a, b)
        for name in combined.series_names():
            points = combined.series(name)
            times = [point.time for point in points]
            assert times == sorted(times)
            # Order-independent: equal-timestamp ties break on value,
            # not on fold order, so merging b-then-a gives the same
            # sequence — the property shard merges rely on.
            expected = sorted(
                a.series(name) + b.series(name),
                key=lambda p: (p.time, p.value),
            )
            assert points == expected
            assert merged(b, a).series(name) == points

    @settings(max_examples=100, deadline=None)
    @given(a=recorders)
    def test_snapshot_round_trips(self, a):
        clone = MetricsRecorder.from_snapshot(a.snapshot())
        assert clone.snapshot() == a.snapshot()
