"""Tests for repro.economics (ledgers and report builders)."""

import random

import pytest

from repro.booking.flight import Flight
from repro.booking.passengers import sample_genuine_party
from repro.booking.reservation import ReservationSystem
from repro.common import ClientRef, LEGIT, SEAT_SPINNER, SMS_PUMPER
from repro.economics.ledger import (
    CAPTCHA_COSTS,
    Ledger,
    PROXY_COSTS,
    SMS_REVENUE_SHARE,
    TICKET_COSTS,
)
from repro.economics.reports import (
    attacker_seat_seconds,
    build_attacker_ledger,
    build_defender_ledger,
)
from repro.identity.ip import ResidentialProxyPool
from repro.sim.clock import Clock, HOUR
from repro.sms.gateway import SmsGateway
from repro.sms.numbers import sample_number
from repro.sms.telco import LocalCarrier, TelcoNetwork
from repro.web.application import WebApplication


class TestLedger:
    def test_income_and_expense(self):
        ledger = Ledger("attacker")
        ledger.income("revenue", 100.0)
        ledger.expense("costs", 30.0)
        assert ledger.net == pytest.approx(70.0)
        assert ledger.total_income == 100.0
        assert ledger.total_expenses == 30.0

    def test_by_category(self):
        ledger = Ledger("x")
        ledger.expense("a", 10.0)
        ledger.expense("a", 5.0)
        ledger.income("b", 3.0)
        assert ledger.by_category() == {"a": -15.0, "b": 3.0}
        assert ledger.total("a") == -15.0

    def test_roi(self):
        ledger = Ledger("x")
        ledger.expense("costs", 100.0)
        ledger.income("revenue", 250.0)
        assert ledger.roi() == pytest.approx(1.5)

    def test_roi_no_expenses(self):
        assert Ledger("x").roi() == 0.0

    def test_negative_amounts_rejected(self):
        ledger = Ledger("x")
        with pytest.raises(ValueError):
            ledger.income("a", -1.0)
        with pytest.raises(ValueError):
            ledger.expense("a", -1.0)


def client(actor_class=LEGIT, actor="someone"):
    return ClientRef(
        ip_address="1.1.1.1",
        ip_country="US",
        ip_residential=True,
        fingerprint_id="fp",
        user_agent="UA",
        actor=actor,
        actor_class=actor_class,
    )


@pytest.fixture
def app():
    clock = Clock()
    reservations = ReservationSystem(clock, hold_ttl=1 * HOUR)
    reservations.add_flight(Flight("F1", "A", "X", "Y", 1000 * HOUR, 100))
    telco = TelcoNetwork()
    telco.register_carrier(LocalCarrier("shady-uz", "UZ", colluding=True))
    sms = SmsGateway(clock, telco=telco)
    return WebApplication(clock, reservations, sms, random.Random(1))


class TestAttackerLedger:
    def test_full_attack_accounting(self, app):
        # Proxy spend.
        pool = ResidentialProxyPool(cost_per_lease=0.01)
        rng = random.Random(2)
        for _ in range(10):
            pool.lease(rng)
        # A stolen-card ticket.
        party = sample_genuine_party(rng, 1)
        result = app.reservations.create_hold(
            "F1", party, client(SMS_PUMPER, "pumper")
        )
        app.reservations.confirm(result.hold.hold_id)
        # CAPTCHA solves attributed to the attacker.
        app.captcha_costs_by_actor["pumper"] = 0.05
        # Kickback revenue.
        number = sample_number(rng, "UZ", controlled_by_attacker=True)
        app.sms.send(number, "otp", client(SMS_PUMPER, "pumper"))

        ledger = build_attacker_ledger(
            app, proxy_pools=[pool], stolen_card_cost=15.0
        )
        assert ledger.total(PROXY_COSTS) == pytest.approx(-0.1)
        assert ledger.total(TICKET_COSTS) == pytest.approx(-15.0)
        assert ledger.total(CAPTCHA_COSTS) == pytest.approx(-0.05)
        assert ledger.total(SMS_REVENUE_SHARE) > 0

    def test_actor_filter_on_captcha(self, app):
        app.captcha_costs_by_actor["pumper"] = 0.05
        app.captcha_costs_by_actor["other-bot"] = 0.99
        ledger = build_attacker_ledger(app, attacker_actors=["pumper"])
        assert ledger.total(CAPTCHA_COSTS) == pytest.approx(-0.05)

    def test_legit_confirmations_not_ticket_costs(self, app):
        party = sample_genuine_party(random.Random(3), 1)
        result = app.reservations.create_hold("F1", party, client(LEGIT))
        app.reservations.confirm(result.hold.hold_id)
        ledger = build_attacker_ledger(app)
        assert ledger.total(TICKET_COSTS) == 0.0


class TestDefenderSide:
    def test_sms_costs_counted(self, app):
        rng = random.Random(4)
        for _ in range(5):
            app.sms.send(sample_number(rng, "GB"), "otp", client())
        ledger = build_defender_ledger(app)
        assert ledger.total("sms-delivery") < 0

    def test_chargebacks_counted(self, app):
        party = sample_genuine_party(random.Random(5), 1)
        result = app.reservations.create_hold(
            "F1", party, client(SMS_PUMPER)
        )
        app.reservations.confirm(result.hold.hold_id)
        ledger = build_defender_ledger(app)
        assert ledger.total("stolen-card-chargebacks") == pytest.approx(
            -result.hold.price_quoted
        )

    def test_seat_displacement(self, app):
        party = sample_genuine_party(random.Random(6), 4)
        app.reservations.create_hold("F1", party, client(SEAT_SPINNER))
        app.clock.advance_to(2 * HOUR)
        app.reservations.expire_due()
        displacement = attacker_seat_seconds(app.reservations, "F1")
        assert displacement.attacker_seat_seconds == pytest.approx(
            4 * 1 * HOUR
        )
        assert displacement.attacker_seat_hours == pytest.approx(4.0)

    def test_shadow_holds_displace_nothing(self, app):
        """The honeypot's entire point, in ledger form."""
        party = sample_genuine_party(random.Random(7), 4)
        app.reservations.create_hold(
            "F1", party, client(SEAT_SPINNER), shadow=True
        )
        app.clock.advance_to(2 * HOUR)
        app.reservations.expire_due()
        displacement = attacker_seat_seconds(app.reservations, "F1")
        assert displacement.attacker_seat_seconds == 0.0

    def test_lost_seat_revenue_in_ledger(self, app):
        party = sample_genuine_party(random.Random(8), 5)
        app.reservations.create_hold("F1", party, client(SEAT_SPINNER))
        app.clock.advance_to(2 * HOUR)
        app.reservations.expire_due()
        ledger = build_defender_ledger(
            app, seat_hour_value=10.0, doi_flights=["F1"]
        )
        assert ledger.total("lost-seat-revenue") == pytest.approx(-50.0)
