"""Tests for repro.core.detection.anomaly (stats + monitors)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detection.anomaly import (
    CountrySurge,
    EwmaMonitor,
    NipDistributionMonitor,
    SmsSurgeMonitor,
    chi_square_sf,
    jensen_shannon,
    regularized_gamma_q,
)

scipy_stats = pytest.importorskip("scipy.stats")


class TestChiSquareSf:
    @pytest.mark.parametrize(
        "statistic, dof",
        [(0.5, 1), (1.0, 1), (3.84, 1), (5.0, 2), (10.0, 4), (25.0, 8),
         (100.0, 10), (0.1, 9)],
    )
    def test_matches_scipy(self, statistic, dof):
        expected = float(scipy_stats.chi2.sf(statistic, dof))
        assert chi_square_sf(statistic, dof) == pytest.approx(
            expected, rel=1e-8, abs=1e-12
        )

    def test_zero_statistic(self):
        assert chi_square_sf(0.0, 3) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_sf(-1.0, 1)
        with pytest.raises(ValueError):
            chi_square_sf(1.0, 0)

    @settings(max_examples=100)
    @given(
        statistic=st.floats(min_value=0.0, max_value=200.0),
        dof=st.integers(min_value=1, max_value=30),
    )
    def test_is_a_probability(self, statistic, dof):
        value = chi_square_sf(statistic, dof)
        assert 0.0 <= value <= 1.0

    def test_monotone_decreasing_in_statistic(self):
        values = [chi_square_sf(x, 5) for x in (0.0, 1.0, 5.0, 20.0, 80.0)]
        assert values == sorted(values, reverse=True)

    def test_gamma_q_validation(self):
        with pytest.raises(ValueError):
            regularized_gamma_q(0.0, 1.0)
        with pytest.raises(ValueError):
            regularized_gamma_q(1.0, -1.0)


class TestJensenShannon:
    def test_identical_distributions_zero(self):
        p = {1: 0.5, 2: 0.5}
        assert jensen_shannon(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_distributions_one(self):
        assert jensen_shannon({1: 1.0}, {2: 1.0}) == pytest.approx(1.0)

    def test_unnormalised_inputs_accepted(self):
        assert jensen_shannon({1: 2, 2: 2}, {1: 5, 2: 5}) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            jensen_shannon({}, {1: 1.0})

    @settings(max_examples=60)
    @given(
        weights_p=st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=2,
            max_size=6,
        ),
        weights_q=st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=2,
            max_size=6,
        ),
    )
    def test_symmetric_and_bounded(self, weights_p, weights_q):
        p = dict(enumerate(weights_p))
        q = dict(enumerate(weights_q))
        forward = jensen_shannon(p, q)
        backward = jensen_shannon(q, p)
        assert forward == pytest.approx(backward, abs=1e-9)
        assert 0.0 <= forward <= 1.0 + 1e-9


BASELINE = {1: 0.50, 2: 0.31, 3: 0.08, 4: 0.05, 5: 0.025, 6: 0.013,
            7: 0.012, 8: 0.006, 9: 0.004}


class TestNipDistributionMonitor:
    def test_baseline_like_counts_no_alarm(self):
        monitor = NipDistributionMonitor(baseline=BASELINE)
        counts = {nip: int(share * 2000) for nip, share in BASELINE.items()}
        anomaly = monitor.evaluate(counts)
        assert not anomaly.alarm
        assert anomaly.surging_nips == ()

    def test_nip6_attack_alarms(self):
        """The Fig. 1 attack-week signature."""
        monitor = NipDistributionMonitor(baseline=BASELINE)
        counts = {nip: int(share * 1500) for nip, share in BASELINE.items()}
        counts[6] = counts.get(6, 0) + 500  # the seat spinner's holds
        anomaly = monitor.evaluate(counts)
        assert anomaly.alarm
        assert 6 in anomaly.surging_nips
        assert anomaly.p_value < 1e-4

    def test_small_samples_never_alarm(self):
        monitor = NipDistributionMonitor(baseline=BASELINE, min_samples=100)
        anomaly = monitor.evaluate({6: 30})
        assert not anomaly.alarm
        assert anomaly.sample_size == 30

    def test_surge_requires_min_count(self):
        monitor = NipDistributionMonitor(
            baseline=BASELINE, surge_min_count=50
        )
        counts = {nip: int(share * 1000) for nip, share in BASELINE.items()}
        counts[9] = 30  # surging share but under the count floor
        anomaly = monitor.evaluate(counts)
        assert 9 not in anomaly.surging_nips


class TestSmsSurgeMonitor:
    def test_surge_percent_math(self):
        surge = CountrySurge("UZ", baseline_count=2, window_count=3206)
        assert surge.surge_percent == pytest.approx(160_200.0)

    def test_zero_baseline_infinite(self):
        assert CountrySurge("YE", 0, 5).surge_percent == math.inf
        assert CountrySurge("YE", 0, 0).surge_percent == 0.0

    def test_evaluate_sorts_descending(self):
        monitor = SmsSurgeMonitor()
        surges = monitor.evaluate(
            {"A": 10, "B": 10, "C": 10},
            {"A": 20, "B": 200, "C": 11},
        )
        assert [s.country_code for s in surges] == ["B", "A", "C"]

    def test_alarming_applies_thresholds(self):
        monitor = SmsSurgeMonitor(
            surge_alarm_percent=500.0, min_window_count=20
        )
        alarms = monitor.alarming(
            {"A": 2, "B": 2}, {"A": 100, "B": 10}
        )
        assert [s.country_code for s in alarms] == ["A"]

    def test_global_increase(self):
        assert SmsSurgeMonitor.global_increase_percent(
            {"A": 100}, {"A": 125}
        ) == pytest.approx(25.0)

    def test_global_increase_zero_baseline(self):
        assert SmsSurgeMonitor.global_increase_percent({}, {"A": 5}) == (
            math.inf
        )


class TestEwmaMonitor:
    def test_steady_stream_no_alarm(self):
        monitor = EwmaMonitor()
        assert not any(monitor.update(10.0) for _ in range(50))

    def test_spike_alarms_after_warmup(self):
        monitor = EwmaMonitor(alpha=0.2, z_threshold=4.0, warmup=10)
        for value in (10, 11, 9, 10, 12, 10, 9, 11, 10, 10, 11, 9, 10):
            monitor.update(float(value))
        assert monitor.update(100.0)

    def test_no_alarm_during_warmup(self):
        monitor = EwmaMonitor(warmup=10)
        monitor.update(10.0)
        assert not monitor.update(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaMonitor(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaMonitor(warmup=0)

    def test_mean_tracks_level_shift(self):
        monitor = EwmaMonitor(alpha=0.5, warmup=1)
        for _ in range(30):
            monitor.update(100.0)
        assert monitor.mean == pytest.approx(100.0, rel=0.01)


class TestEwmaEdgeCases:
    """Cold start, zero-variance streams, single-window surges."""

    def test_cold_start_first_observation_seeds_the_mean(self):
        monitor = EwmaMonitor(warmup=1)
        assert not monitor.update(42.0)
        assert monitor.mean == 42.0
        assert monitor.std == 0.0

    def test_cold_start_extreme_first_value_never_alarms(self):
        monitor = EwmaMonitor(warmup=1)
        assert not monitor.update(1e12)

    def test_constant_stream_keeps_zero_variance(self):
        monitor = EwmaMonitor(alpha=0.3, warmup=2)
        for _ in range(100):
            assert not monitor.update(7.0)
        assert monitor.std == 0.0
        assert monitor.mean == 7.0

    def test_departure_from_constant_stream_does_not_div_by_zero(self):
        # Zero variance means no z-score is computable; the monitor must
        # decline to alarm (std == 0 guard) rather than divide by zero.
        monitor = EwmaMonitor(alpha=0.2, warmup=3)
        for _ in range(20):
            monitor.update(5.0)
        assert not monitor.update(500.0)
        # ... but the spike does seed the variance, so a *second* spike
        # after re-settling is catchable.
        for _ in range(10):
            monitor.update(5.0)
        assert monitor.std > 0.0

    def test_single_window_surge_flags_only_the_surge(self):
        monitor = EwmaMonitor(alpha=0.2, z_threshold=4.0, warmup=5)
        noisy = [10.0, 11.0, 9.0, 10.0, 12.0, 9.0, 10.0, 11.0, 10.0]
        flags = [monitor.update(v) for v in noisy]
        assert not any(flags)
        assert monitor.update(60.0)  # the one surging window
        assert not monitor.update(10.0)  # back to baseline

    @given(
        value=st.floats(
            allow_nan=False, allow_infinity=False, width=32
        )
    )
    def test_first_observation_never_alarms(self, value):
        monitor = EwmaMonitor(warmup=1)
        assert not monitor.update(float(value))

    @given(
        level=st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        length=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=50)
    def test_constant_stream_never_alarms(self, level, length):
        monitor = EwmaMonitor(alpha=0.2, warmup=3)
        assert not any(monitor.update(level) for _ in range(length))

    @given(
        values=st.lists(
            st.floats(
                min_value=-1e9, max_value=1e9,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=50)
    def test_update_is_total_and_state_stays_finite(self, values):
        # Whatever the stream, update() returns a bool and the smoothed
        # state never escapes to NaN/inf.
        monitor = EwmaMonitor(alpha=0.4, warmup=2)
        for value in values:
            assert monitor.update(value) in (True, False)
        assert math.isfinite(monitor.mean)
        assert math.isfinite(monitor.std)
