"""Edge cases across substrate lifecycles: mitigations deployed
mid-attack, policies reverted with state in flight, sessionization
conservation properties."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.booking.flight import Flight
from repro.booking.passengers import sample_genuine_party
from repro.booking.reservation import ReservationSystem
from repro.common import ClientRef
from repro.core.mitigation.honeypot import HoneypotManager
from repro.core.mitigation.policies import NipCapPolicy, RateLimitPolicy
from repro.identity.fingerprint import FingerprintPopulation
from repro.sim.clock import Clock, HOUR
from repro.sms.gateway import SmsGateway
from repro.web.application import WebApplication
from repro.web.logs import LogEntry, WebLog, sessionize
from repro.web.ratelimit import key_by_ip
from repro.web.request import Request, SEARCH


def make_client(ip="1.1.1.1", fingerprint_id="fp"):
    return ClientRef(
        ip_address=ip,
        ip_country="US",
        ip_residential=True,
        fingerprint_id=fingerprint_id,
        user_agent="UA",
    )


@pytest.fixture
def app():
    clock = Clock()
    reservations = ReservationSystem(clock, hold_ttl=1 * HOUR, max_nip=9)
    reservations.add_flight(Flight("F1", "A", "X", "Y", 1000 * HOUR, 60))
    return WebApplication(
        clock, reservations, SmsGateway(clock), random.Random(1)
    )


class TestMitigationMidFlight:
    def test_cap_below_existing_holds_is_fine(self, app):
        """Lowering the NiP cap must not disturb already-active holds
        above the new cap — only future attempts are constrained."""
        party = sample_genuine_party(random.Random(1), 6)
        result = app.reservations.create_hold("F1", party, make_client())
        NipCapPolicy(4).apply(app)
        # The big hold lives on and can still be confirmed.
        confirmed = app.reservations.confirm(result.hold.hold_id)
        assert confirmed.nip == 6
        # But a new identical attempt is rejected.
        rejected = app.reservations.create_hold(
            "F1", sample_genuine_party(random.Random(2), 6), make_client()
        )
        assert rejected.error == "nip-exceeds-cap"

    def test_rate_limit_revert_forgets_windows(self, app):
        policy = RateLimitPolicy("per-ip", key_by_ip, limit=1, window=1e6)
        policy.apply(app)
        request = Request(
            method="GET", path=SEARCH, client=make_client(), params={}
        )
        assert app.handle(request).ok
        assert app.handle(request).status == 429
        policy.revert(app)
        # Re-applying a fresh policy starts with clean windows.
        RateLimitPolicy("per-ip", key_by_ip, limit=1, window=1e6).apply(app)
        assert app.handle(request).ok

    def test_honeypot_uninstall_leaves_shadow_holds_harmless(self, app):
        manager = HoneypotManager(app)
        manager.add_suspect_ip("6.6.6.6")
        manager.install()
        party = sample_genuine_party(random.Random(3), 3)
        response = app.handle(
            Request(
                method="POST",
                path="/hold",
                client=make_client(ip="6.6.6.6"),
                params={"flight_id": "F1", "passengers": party},
            )
        )
        assert response.data.shadow
        manager.uninstall()
        # Shadow holds expire without touching real inventory.
        app.clock.advance_to(2 * HOUR)
        app.reservations.expire_due()
        assert app.reservations.availability("F1") == 60

    def test_block_rule_added_while_requests_in_flight(self, app):
        """Block rules appearing between requests of one client take
        effect on the very next request."""
        client = make_client(fingerprint_id="fp-live")
        request = Request(
            method="GET", path=SEARCH, client=client, params={}
        )
        assert app.handle(request).ok
        app.add_block_rule(
            "live", lambda r: r.client.fingerprint_id == "fp-live"
        )
        assert app.handle(request).status == 403


class TestSessionizeConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100_000.0),
                st.integers(min_value=0, max_value=4),  # ip index
                st.integers(min_value=0, max_value=4),  # fp index
            ),
            max_size=60,
        )
    )
    def test_every_entry_lands_in_exactly_one_session(self, events):
        """Property: sessionization partitions the log — no entry is
        lost or duplicated, whatever the interleaving."""
        log = WebLog()
        for time, ip_index, fp_index in sorted(events):
            log.append(
                LogEntry(
                    time=time,
                    method="GET",
                    path=SEARCH,
                    status=200,
                    client=make_client(
                        ip=f"10.0.0.{ip_index}",
                        fingerprint_id=f"fp{fp_index}",
                    ),
                )
            )
        sessions = sessionize(log)
        assert sum(s.request_count for s in sessions) == len(log)
        # Entries within each session share the identity key and are
        # time-ordered with no over-gap jumps.
        for session in sessions:
            for entry in session.entries:
                assert entry.client.ip_address == session.ip_address
                assert (
                    entry.client.fingerprint_id == session.fingerprint_id
                )
            times = [e.time for e in session.entries]
            assert times == sorted(times)

    def test_empty_log_gives_no_sessions(self):
        assert sessionize(WebLog()) == []
