"""Tests for repro.core.detection.fingerprint_rules."""

import random

import pytest

from repro.common import ClientRef
from repro.core.detection.fingerprint_rules import (
    FingerprintDetector,
    FingerprintWeights,
    block_by_attribute_combo,
    block_by_fingerprint_id,
    block_by_ip,
    block_datacenter_asns,
)
from repro.identity.fingerprint import FingerprintPopulation
from repro.identity.forge import (
    FingerprintForge,
    MIMICRY,
    NAIVE_SPOOF,
    RAW_HEADLESS,
)
from repro.web.request import Request, SEARCH


def make_request(fingerprint, ip="1.1.1.1", residential=True):
    return Request(
        method="GET",
        path=SEARCH,
        client=ClientRef(
            ip_address=ip,
            ip_country="US",
            ip_residential=residential,
            fingerprint_id=fingerprint.fingerprint_id,
            user_agent=fingerprint.user_agent,
        ),
        fingerprint=fingerprint,
    )


class TestFingerprintDetector:
    def test_raw_headless_flagged(self):
        detector = FingerprintDetector()
        forge = FingerprintForge(RAW_HEADLESS)
        rng = random.Random(1)
        for _ in range(20):
            verdict = detector.judge(forge.forge(rng))
            assert verdict.is_bot
            assert verdict.score > 0.5

    def test_genuine_population_clean(self):
        detector = FingerprintDetector()
        population = FingerprintPopulation()
        rng = random.Random(2)
        for _ in range(200):
            assert not detector.judge(population.sample(rng)).is_bot

    def test_mimicry_evades(self):
        """The paper's Section III-B conclusion in one assertion."""
        detector = FingerprintDetector()
        forge = FingerprintForge(MIMICRY)
        rng = random.Random(3)
        flagged = sum(
            detector.judge(forge.forge(rng)).is_bot for _ in range(200)
        )
        assert flagged == 0

    def test_naive_spoof_partially_caught(self):
        detector = FingerprintDetector()
        forge = FingerprintForge(NAIVE_SPOOF)
        rng = random.Random(4)
        flagged = sum(
            detector.judge(forge.forge(rng)).is_bot for _ in range(300)
        )
        assert 60 < flagged < 300  # caught often, but not always

    def test_flagged_ids_filters_collection(self):
        detector = FingerprintDetector()
        rng = random.Random(5)
        good = FingerprintPopulation().sample(rng)
        bad = FingerprintForge(RAW_HEADLESS).forge(rng)
        seen = {
            good.fingerprint_id: good,
            bad.fingerprint_id: bad,
        }
        assert detector.flagged_ids(seen) == [bad.fingerprint_id]


class TestBlockPredicates:
    def test_block_by_fingerprint_id(self):
        rng = random.Random(6)
        population = FingerprintPopulation()
        target = population.sample(rng)
        other = population.sample(rng)
        predicate = block_by_fingerprint_id(target.fingerprint_id)
        assert predicate(make_request(target))
        assert not predicate(make_request(other))

    def test_block_by_attribute_combo_survives_minor_rotation(self):
        rng = random.Random(7)
        target = FingerprintPopulation().sample(rng)
        predicate = block_by_attribute_combo(target)
        # Rotating only the language does not escape the combo rule.
        rotated = target.with_changes(language="de-DE")
        assert predicate(make_request(rotated))
        # Rotating the canvas hash does escape it.
        escaped = target.with_changes(canvas_hash="ffffffffffff")
        assert not predicate(make_request(escaped))

    def test_combo_block_custom_attributes(self):
        rng = random.Random(8)
        target = FingerprintPopulation().sample(rng)
        predicate = block_by_attribute_combo(target, attributes=["browser"])
        same_browser = FingerprintPopulation().sample(rng).with_changes(
            browser=target.browser
        )
        assert predicate(make_request(same_browser))

    def test_combo_block_requires_fingerprint(self):
        rng = random.Random(9)
        target = FingerprintPopulation().sample(rng)
        predicate = block_by_attribute_combo(target)
        request = make_request(target)
        bare = Request(
            method="GET", path=SEARCH, client=request.client,
            fingerprint=None,
        )
        assert not predicate(bare)

    def test_block_by_ip(self):
        rng = random.Random(10)
        fingerprint = FingerprintPopulation().sample(rng)
        predicate = block_by_ip("9.9.9.9")
        assert predicate(make_request(fingerprint, ip="9.9.9.9"))
        assert not predicate(make_request(fingerprint, ip="8.8.8.8"))

    def test_block_datacenter(self):
        rng = random.Random(11)
        fingerprint = FingerprintPopulation().sample(rng)
        predicate = block_datacenter_asns([])
        assert predicate(make_request(fingerprint, residential=False))
        assert not predicate(make_request(fingerprint, residential=True))
