"""Correctness of the on-disk sweep result cache.

* a warm run returns results identical to the cold run that filled it,
  without recomputing (verified via hit/miss accounting);
* changing any config field or the master seed changes the cache key,
  so stale cells can never be served;
* corrupted cache files (truncated, tampered, or garbage) are detected,
  recomputed and rewritten — never crashed on, never trusted.
"""

import json
import os

import pytest

from repro.runner import ResultCache, SweepSpec, run_sweep
from repro.sim.clock import DAY, HOUR

SPEC = SweepSpec(
    scenario="case-a",
    base={
        "visitor_rate_per_hour": 5.0,
        "attack_start": 1 * DAY,
        "cap_at": None,
        "departure_time": 3 * DAY,
        "target_capacity": 120,
        "attacker_target_seats": 60,
    },
    grid={"hold_ttl": (2 * HOUR, 5 * HOUR)},
    replications=2,
    master_seed=31,
)


def cell_views(result):
    return [
        (cell.seed, cell.metrics, cell.recorder_snapshot)
        for cell in result.cells
    ]


class TestCacheCorrectness:
    def test_warm_run_matches_cold_run(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_sweep(SPEC, workers=1, cache_dir=cache_dir)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(cold.cells)

        warm = run_sweep(SPEC, workers=1, cache_dir=cache_dir)
        assert warm.cache_hits == len(warm.cells)
        assert warm.cache_misses == 0
        assert all(cell.from_cache for cell in warm.cells)
        assert cell_views(warm) == cell_views(cold)
        # And the warm run is dramatically cheaper.
        assert warm.elapsed < cold.elapsed

    def test_partial_cache_only_computes_missing_cells(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_sweep(SPEC, workers=1, cache_dir=cache_dir)
        victim = cold.cells[1]
        os.remove(
            ResultCache(cache_dir).path_for(
                victim.scenario, victim.config_hash, victim.seed
            )
        )
        rerun = run_sweep(SPEC, workers=1, cache_dir=cache_dir)
        assert rerun.cache_hits == len(cold.cells) - 1
        assert rerun.cache_misses == 1
        assert cell_views(rerun) == cell_views(cold)

    def test_config_change_invalidates_the_cell(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_sweep(SPEC, workers=1, cache_dir=cache_dir)

        changed = SweepSpec(
            scenario=SPEC.scenario,
            base=dict(SPEC.base, visitor_rate_per_hour=6.0),
            grid=SPEC.grid,
            replications=SPEC.replications,
            master_seed=SPEC.master_seed,
        )
        rerun = run_sweep(changed, workers=1, cache_dir=cache_dir)
        assert rerun.cache_hits == 0
        assert rerun.cache_misses == len(rerun.cells)

    def test_master_seed_change_invalidates_every_cell(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_sweep(SPEC, workers=1, cache_dir=cache_dir)

        reseeded = SweepSpec(
            scenario=SPEC.scenario,
            base=SPEC.base,
            grid=SPEC.grid,
            replications=SPEC.replications,
            master_seed=SPEC.master_seed + 1,
        )
        rerun = run_sweep(reseeded, workers=1, cache_dir=cache_dir)
        assert rerun.cache_hits == 0
        assert rerun.cache_misses == len(rerun.cells)


class TestCacheCorruption:
    @pytest.mark.parametrize(
        "vandalise",
        [
            lambda text: text[: len(text) // 2],      # truncated write
            lambda text: "not json at all {",          # garbage
            lambda text: text.replace(                 # tampered payload
                '"metrics"', '"metricz"', 1
            ),
            lambda text: json.dumps(                   # wrong version
                dict(json.loads(text), version=999)
            ),
            lambda text: json.dumps(                   # checksum mismatch
                dict(json.loads(text), checksum="0" * 64)
            ),
        ],
        ids=["truncated", "garbage", "tampered", "version", "checksum"],
    )
    def test_corrupted_cell_is_recomputed_not_crashed_on(
        self, tmp_path, vandalise
    ):
        cache_dir = str(tmp_path / "cache")
        cold = run_sweep(SPEC, workers=1, cache_dir=cache_dir)
        victim = cold.cells[0]
        path = ResultCache(cache_dir).path_for(
            victim.scenario, victim.config_hash, victim.seed
        )
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(vandalise(text))

        rerun = run_sweep(SPEC, workers=1, cache_dir=cache_dir)
        assert rerun.cache_corrupt == 1
        assert rerun.cache_misses == 1
        assert rerun.cache_hits == len(cold.cells) - 1
        assert cell_views(rerun) == cell_views(cold)

        # The corrupt file was rewritten: a third run is all hits.
        healed = run_sweep(SPEC, workers=1, cache_dir=cache_dir)
        assert healed.cache_corrupt == 0
        assert healed.cache_hits == len(cold.cells)


class TestResultCacheUnit:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        payload = {"metrics": {"x": 1.0}, "info": {}, "recorder": {}}
        cache.store("case-a", "abc123", 42, payload)
        assert cache.load("case-a", "abc123", 42) == payload
        assert cache.hits == 1

    def test_missing_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.load("case-a", "abc123", 42) is None
        assert cache.misses == 1
        assert cache.corrupt == 0


class TestCacheIdentity:
    """Regressions for the identity-verification bugfix: a file can
    never be served for a key it was not stored under."""

    PAYLOAD = {"metrics": {"x": 1.0}, "info": {}, "recorder": {}}

    def test_wrong_identity_file_is_rejected_not_served(self, tmp_path):
        # Simulate any path collision (hash-prefix birthday, renamed or
        # copied files) by forcing one: store under identity A, then
        # move the file to where identity B would look for it.  Pre-fix,
        # load(B) happily returned A's payload.
        cache = ResultCache(str(tmp_path))
        cache.store("case-a", "a" * 64, 1, self.PAYLOAD)
        os.replace(
            cache.path_for("case-a", "a" * 64, 1),
            cache.path_for("case-a", "b" * 64, 2),
        )
        assert cache.load("case-a", "b" * 64, 2) is None
        assert cache.corrupt == 1
        assert cache.hits == 0

    def test_seed_is_part_of_the_verified_identity(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("case-a", "c" * 64, 7, self.PAYLOAD)
        os.replace(
            cache.path_for("case-a", "c" * 64, 7),
            cache.path_for("case-a", "c" * 64, 8),
        )
        assert cache.load("case-a", "c" * 64, 8) is None
        assert cache.corrupt == 1

    def test_shared_hash_prefix_cells_get_distinct_files(self, tmp_path):
        # 16-hex-char truncation used to be the only disambiguator;
        # the full-identity digest now keeps the paths apart even when
        # the readable prefix is identical.
        cache = ResultCache(str(tmp_path))
        shared = "d" * 16
        path_one = cache.path_for("case-a", shared + "1" * 48, 1)
        path_two = cache.path_for("case-a", shared + "2" * 48, 1)
        assert path_one != path_two

    @pytest.mark.parametrize(
        "scenario",
        ["case/a", "case a", "case_a", "..", "héllo", ""],
        ids=["slash", "space", "underscore", "dotdot", "unicode", "empty"],
    )
    def test_hostile_scenario_names_round_trip(self, tmp_path, scenario):
        cache = ResultCache(str(tmp_path))
        cache.store(scenario, "e" * 64, 3, self.PAYLOAD)
        stored = cache.path_for(scenario, "e" * 64, 3)
        # The file landed inside the cache dir, not wherever a path
        # separator pointed, and loads back under the exact identity.
        assert os.path.dirname(stored) == str(tmp_path)
        assert os.path.exists(stored)
        assert cache.load(scenario, "e" * 64, 3) == self.PAYLOAD

    def test_underscore_scenario_cannot_alias_another_cell(self, tmp_path):
        # "case_a" with hash "1x..." used to be able to collide with
        # "case" and hash "a_1x..."-style splits; sanitisation plus the
        # identity digest makes the filenames distinct.
        cache = ResultCache(str(tmp_path))
        assert cache.path_for("case_a", "f" * 64, 1) != cache.path_for(
            "case-a", "f" * 64, 1
        )
        cache.store("case_a", "f" * 64, 1, self.PAYLOAD)
        assert cache.load("case-a", "f" * 64, 1) is None
