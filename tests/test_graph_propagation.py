"""Property and unit tests for damped risk diffusion.

The propagation docstring pins four properties; this module turns
them into hypothesis tests over random graphs plus targeted units for
the hub-safety and fan-in-amplification behaviour the campaign
pipeline relies on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.builder import EntityGraph
from repro.graph.entities import EntityId
from repro.graph.propagation import (
    PropagationConfig,
    propagate,
)


def _node(index: int) -> EntityId:
    return EntityId("n", f"{index:03d}")


_EDGES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=11),
        st.floats(min_value=0.05, max_value=1.0),
    ).filter(lambda edge: edge[0] != edge[1]),
    max_size=25,
)

_SEEDS = st.dictionaries(
    st.integers(min_value=0, max_value=11),
    st.floats(min_value=0.0, max_value=1.0),
    max_size=12,
)


def _build(edges) -> EntityGraph:
    graph = EntityGraph()
    for a, b, weight in edges:
        graph.add_edge(_node(a), _node(b), weight)
    return graph


class TestPropagationProperties:
    @settings(max_examples=80, deadline=None)
    @given(edges=_EDGES, seeds=_SEEDS)
    def test_scores_bounded_and_dominate_seeds(self, edges, seeds):
        """Read-out scores live in [0, 1] and never fall below the
        node's own (clipped) seed — diffusion only adds evidence."""
        graph = _build(edges)
        seed_map = {_node(i): value for i, value in seeds.items()}
        result = propagate(graph, seed_map)
        for node, score in result.scores.items():
            assert 0.0 <= score <= 1.0
            assert score >= min(
                max(seed_map.get(node, 0.0), 0.0), 1.0
            ) - 1e-12

    @settings(max_examples=60, deadline=None)
    @given(seed=st.floats(min_value=0.0, max_value=1.0))
    def test_isolated_node_keeps_exactly_its_seed(self, seed):
        graph = EntityGraph()
        graph.add_node(_node(0))
        # A seeded node absent from the graph entirely also counts.
        result = propagate(graph, {_node(0): seed, _node(99): seed})
        assert result.scores[_node(0)] == seed
        assert result.scores[_node(99)] == seed

    @settings(max_examples=40, deadline=None)
    @given(edges=_EDGES, seeds=_SEEDS)
    def test_deterministic_across_build_order(self, edges, seeds):
        """Same records in any insertion order → bit-identical scores:
        the propagation sweep is sorted and RNG-free."""
        seed_map = {_node(i): value for i, value in seeds.items()}
        forward = propagate(_build(edges), seed_map)
        backward = propagate(
            _build(list(reversed(edges))), seed_map
        )
        assert forward.scores == backward.scores
        assert forward.rounds == backward.rounds

    @settings(max_examples=40, deadline=None)
    @given(edges=_EDGES, seeds=_SEEDS)
    def test_converges_within_round_budget(self, edges, seeds):
        config = PropagationConfig()
        result = propagate(
            _build(edges),
            {_node(i): value for i, value in seeds.items()},
            config=config,
        )
        assert result.converged
        assert 1 <= result.rounds <= config.max_rounds


class TestPropagationBehaviour:
    def test_hub_does_not_relay_risk(self):
        """A hot node behind a high-degree hub must not convict the
        hub's other neighbours: source-side degree normalization
        splits the hub's emission across its whole neighbourhood."""
        graph = EntityGraph()
        hub = EntityId("flight", "LO123")
        devices = [EntityId("fp", f"d{i:02d}") for i in range(50)]
        for device in devices:
            graph.add_edge(device, hub, 0.25)
        result = propagate(graph, {devices[0]: 1.0})
        assert result.scores[devices[0]] == 1.0
        for device in devices[1:]:
            assert result.scores[device] < 0.1

    def test_fan_in_amplifies_weak_seeds(self):
        """Many weak sessions on one fingerprint push it past any
        single session's evidence — the weak-signal amplification the
        paper's rotated campaigns are caught by."""

        def fingerprint_score(session_count: int) -> float:
            graph = EntityGraph()
            fp = EntityId("fp", "shared")
            seeds = {}
            for index in range(session_count):
                session = EntityId("session", f"s{index:02d}")
                graph.add_edge(session, fp, 1.0)
                seeds[session] = 0.12
            return propagate(graph, seeds).score(fp)

        lone = fingerprint_score(1)
        crowd = fingerprint_score(8)
        assert lone < 0.5
        assert crowd > 0.95
        assert crowd > lone

    def test_seeds_clipped_to_unit_interval(self):
        graph = EntityGraph()
        graph.add_node(_node(0))
        result = propagate(graph, {_node(0): 7.5, _node(1): -3.0})
        assert result.scores[_node(0)] == 1.0
        assert result.scores[_node(1)] == 0.0

    def test_top_returns_highest_scores_first(self):
        graph = EntityGraph()
        graph.add_edge(_node(0), _node(1), 1.0)
        result = propagate(graph, {_node(0): 0.9, _node(1): 0.1})
        ranked = result.top(2)
        assert len(ranked) == 2
        assert ranked[0][1] >= ranked[1][1]
        assert ranked[0][0] == _node(0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PropagationConfig(damping=1.0)
        with pytest.raises(ValueError):
            PropagationConfig(damping=0.0)
        with pytest.raises(ValueError):
            PropagationConfig(max_rounds=0)
        with pytest.raises(ValueError):
            PropagationConfig(tolerance=0.0)
