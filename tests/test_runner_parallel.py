"""Serial vs parallel equivalence of the sweep runner.

The acceptance bar for :mod:`repro.runner`: a serial run and a
multi-worker process-pool run of the same :class:`SweepSpec` must
produce *identical* merged metrics — exact equality on counters, the
same series points in the same order — because every cell's randomness
is a pure function of ``(master_seed, config_hash, replication)`` and
results are reassembled in spec order regardless of scheduling.

Worker count defaults to 4; CI can lower it via ``REPRO_TEST_WORKERS``.
"""

import os

import pytest

from repro.runner import SweepSpec, run_sweep
from repro.sim.clock import DAY, HOUR

WORKERS = max(2, int(os.environ.get("REPRO_TEST_WORKERS", "4")))

#: Scaled-down sweeps, one per case study; two replications each so the
#: merge path (not just single-cell execution) is exercised.
CASE_A_SPEC = SweepSpec(
    scenario="case-a",
    base={
        "visitor_rate_per_hour": 5.0,
        "attack_start": 1 * DAY,
        "cap_at": 2 * DAY,
        "departure_time": 4 * DAY,
        "target_capacity": 120,
        "attacker_target_seats": 60,
    },
    grid={"hold_ttl": (2 * HOUR, 5 * HOUR)},
    replications=2,
    master_seed=23,
)

CASE_B_SPEC = SweepSpec(
    scenario="case-b",
    base={"duration": 4 * DAY},
    replications=2,
    master_seed=25,
)

CASE_C_SPEC = SweepSpec(
    scenario="case-c",
    base={"baseline_weekly_total": 3000},
    grid={"variant": ("unprotected", "per-ref")},
    replications=1,
    master_seed=26,
)

CASE_D_SPEC = SweepSpec(
    scenario="case-d",
    base={"duration": 12 * HOUR, "attack_start": 2 * HOUR},
    grid={"variant": ("unprotected", "number-reputation")},
    replications=1,
    master_seed=27,
)

CASE_E_SPEC = SweepSpec(
    scenario="case-e",
    base={"duration": 8 * HOUR, "attack_start": 1 * HOUR},
    grid={"variant": ("unprotected", "destination-surge")},
    replications=1,
    master_seed=28,
)

PORTFOLIO_SPEC = SweepSpec(
    scenario="portfolio-adaptive",
    base={"duration": 1 * DAY},
    grid={"defense": ("none", "all")},
    replications=1,
    master_seed=29,
)


def assert_equivalent(spec: SweepSpec) -> None:
    serial = run_sweep(spec, workers=1)
    parallel = run_sweep(spec, workers=WORKERS, backend="process")

    assert serial.backend == "serial"
    assert parallel.backend == "process"
    assert len(serial.cells) == len(parallel.cells)

    for ser, par in zip(serial.cells, parallel.cells):
        assert ser.params == par.params
        assert ser.replication == par.replication
        assert ser.seed == par.seed
        # Exact equality on every scalar metric...
        assert ser.metrics == par.metrics
        # ... and on the raw recorder payloads (counters + series).
        assert ser.recorder_snapshot == par.recorder_snapshot

    for params in spec.points():
        merged_serial = serial.merged_recorder(params).snapshot()
        merged_parallel = parallel.merged_recorder(params).snapshot()
        assert merged_serial["counters"] == merged_parallel["counters"]
        # Same series points, same order.
        assert merged_serial["series"] == merged_parallel["series"]
        assert serial.aggregate(params) == parallel.aggregate(params)


class TestSerialParallelEquivalence:
    def test_case_a(self):
        assert_equivalent(CASE_A_SPEC)

    def test_case_b(self):
        assert_equivalent(CASE_B_SPEC)

    def test_case_c(self):
        assert_equivalent(CASE_C_SPEC)

    def test_case_d(self):
        assert_equivalent(CASE_D_SPEC)

    def test_case_e(self):
        assert_equivalent(CASE_E_SPEC)

    def test_portfolio_adaptive(self):
        assert_equivalent(PORTFOLIO_SPEC)


class TestSweepStructure:
    def test_cells_are_seeded_independently(self):
        cells = CASE_A_SPEC.cells()
        assert len(cells) == 4  # 2 TTLs x 2 replications
        assert len({cell.seed for cell in cells}) == len(cells)
        # Replications share the point's config hash, not its seed.
        by_hash = {}
        for cell in cells:
            by_hash.setdefault(cell.config_hash, []).append(cell)
        assert len(by_hash) == 2
        for group in by_hash.values():
            assert [cell.replication for cell in group] == [0, 1]

    def test_master_seed_changes_every_cell_seed(self):
        reseeded = SweepSpec(
            scenario=CASE_A_SPEC.scenario,
            base=CASE_A_SPEC.base,
            grid=CASE_A_SPEC.grid,
            replications=CASE_A_SPEC.replications,
            master_seed=CASE_A_SPEC.master_seed + 1,
        )
        original = {cell.seed for cell in CASE_A_SPEC.cells()}
        changed = {cell.seed for cell in reseeded.cells()}
        assert original.isdisjoint(changed)

    def test_seed_cannot_be_swept(self):
        with pytest.raises(ValueError, match="seed"):
            SweepSpec(scenario="case-a", base={"seed": 1})
        with pytest.raises(ValueError, match="seed"):
            SweepSpec(scenario="case-a", grid={"seed": (1, 2)})

    def test_unknown_scenario_and_field_fail_loudly(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_sweep(SweepSpec(scenario="case-z"))
        with pytest.raises(TypeError):
            run_sweep(
                SweepSpec(scenario="case-a", base={"no_such_field": 1})
            )
