"""Determinism regression tests.

The whole evaluation rests on reproducibility: the same seed must yield
bit-identical scenario outcomes across runs (and across module import
orders).  These tests re-run scaled-down scenarios twice and compare
every headline number.
"""

import pytest

from repro.runner import SweepSpec, config_hash, run_sweep
from repro.scenarios.case_a import CaseAConfig, run_case_a
from repro.scenarios.case_b import CaseBConfig, run_case_b
from repro.scenarios.case_c import CaseCConfig, run_case_c
from repro.sim.clock import DAY
from repro.sim.rng import derive_replication_seed


SMALL_A = CaseAConfig(
    seed=23,
    visitor_rate_per_hour=5.0,
    attack_start=1 * DAY,
    cap_at=2 * DAY,
    departure_time=5 * DAY,
    target_capacity=120,
    attacker_target_seats=60,
)


class TestCaseADeterminism:
    def test_identical_outcomes(self):
        first = run_case_a(SMALL_A)
        second = run_case_a(SMALL_A)
        assert first.week_counts == second.week_counts
        assert first.attacker_holds_created == second.attacker_holds_created
        assert first.attacker_rotations == second.attacker_rotations
        assert first.last_attack_hold_time == second.last_attack_hold_time
        assert len(first.rule_effectiveness) == len(
            second.rule_effectiveness
        )

    def test_different_seed_differs(self):
        first = run_case_a(SMALL_A)
        other = run_case_a(
            CaseAConfig(
                seed=24,
                visitor_rate_per_hour=5.0,
                attack_start=1 * DAY,
                cap_at=2 * DAY,
                departure_time=5 * DAY,
                target_capacity=120,
                attacker_target_seats=60,
            )
        )
        assert first.week_counts != other.week_counts


class TestCaseBDeterminism:
    def test_identical_outcomes(self):
        config = CaseBConfig(seed=25, duration=4 * DAY)
        first = run_case_b(config)
        second = run_case_b(config)
        assert first.automated_holds == second.automated_holds
        assert first.manual_holds == second.manual_holds
        assert first.automated_coverage == second.automated_coverage
        assert first.finding_kinds == second.finding_kinds
        assert len(first.sessions) == len(second.sessions)


class TestCaseCDeterminism:
    def test_identical_surge_tables(self):
        config = CaseCConfig(seed=26, baseline_weekly_total=3000)
        first = run_case_c(config)
        second = run_case_c(config)
        assert [
            (s.country_code, s.baseline_count, s.window_count)
            for s in first.surge_table
        ] == [
            (s.country_code, s.baseline_count, s.window_count)
            for s in second.surge_table
        ]
        assert (
            first.attacker_sms_delivered == second.attacker_sms_delivered
        )
        assert first.attacker_ledger.net == pytest.approx(
            second.attacker_ledger.net
        )


class TestRunnerDeterminism:
    """The sweep runner is as reproducible as the scenarios it wraps."""

    SPEC = SweepSpec(
        scenario="case-a",
        base={
            "visitor_rate_per_hour": 5.0,
            "attack_start": 1 * DAY,
            "cap_at": None,
            "departure_time": 3 * DAY,
            "target_capacity": 120,
            "attacker_target_seats": 60,
        },
        replications=2,
        master_seed=29,
    )

    def test_same_sweep_twice_is_identical(self):
        first = run_sweep(self.SPEC, workers=1)
        second = run_sweep(self.SPEC, workers=1)
        assert [cell.seed for cell in first.cells] == [
            cell.seed for cell in second.cells
        ]
        assert [cell.metrics for cell in first.cells] == [
            cell.metrics for cell in second.cells
        ]
        assert [cell.recorder_snapshot for cell in first.cells] == [
            cell.recorder_snapshot for cell in second.cells
        ]

    def test_cell_seeds_are_pure_functions_of_identity(self):
        for cell in self.SPEC.cells():
            assert cell.seed == derive_replication_seed(
                self.SPEC.master_seed, cell.config_hash, cell.replication
            )

    def test_config_hash_ignores_seed_and_key_order(self):
        params = dict(self.SPEC.base)
        shuffled = dict(reversed(list(params.items())))
        assert config_hash(params) == config_hash(shuffled)
        with_seed = dict(params, seed=123)
        assert config_hash(params) == config_hash(with_seed)
        changed = dict(params, target_capacity=121)
        assert config_hash(params) != config_hash(changed)
