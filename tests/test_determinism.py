"""Determinism regression tests.

The whole evaluation rests on reproducibility: the same seed must yield
bit-identical scenario outcomes across runs (and across module import
orders).  These tests re-run scaled-down scenarios twice and compare
every headline number.
"""

import pytest

from repro.scenarios.case_a import CaseAConfig, run_case_a
from repro.scenarios.case_b import CaseBConfig, run_case_b
from repro.scenarios.case_c import CaseCConfig, run_case_c
from repro.sim.clock import DAY


SMALL_A = CaseAConfig(
    seed=23,
    visitor_rate_per_hour=5.0,
    attack_start=1 * DAY,
    cap_at=2 * DAY,
    departure_time=5 * DAY,
    target_capacity=120,
    attacker_target_seats=60,
)


class TestCaseADeterminism:
    def test_identical_outcomes(self):
        first = run_case_a(SMALL_A)
        second = run_case_a(SMALL_A)
        assert first.week_counts == second.week_counts
        assert first.attacker_holds_created == second.attacker_holds_created
        assert first.attacker_rotations == second.attacker_rotations
        assert first.last_attack_hold_time == second.last_attack_hold_time
        assert len(first.rule_effectiveness) == len(
            second.rule_effectiveness
        )

    def test_different_seed_differs(self):
        first = run_case_a(SMALL_A)
        other = run_case_a(
            CaseAConfig(
                seed=24,
                visitor_rate_per_hour=5.0,
                attack_start=1 * DAY,
                cap_at=2 * DAY,
                departure_time=5 * DAY,
                target_capacity=120,
                attacker_target_seats=60,
            )
        )
        assert first.week_counts != other.week_counts


class TestCaseBDeterminism:
    def test_identical_outcomes(self):
        config = CaseBConfig(seed=25, duration=4 * DAY)
        first = run_case_b(config)
        second = run_case_b(config)
        assert first.automated_holds == second.automated_holds
        assert first.manual_holds == second.manual_holds
        assert first.automated_coverage == second.automated_coverage
        assert first.finding_kinds == second.finding_kinds
        assert len(first.sessions) == len(second.sessions)


class TestCaseCDeterminism:
    def test_identical_surge_tables(self):
        config = CaseCConfig(seed=26, baseline_weekly_total=3000)
        first = run_case_c(config)
        second = run_case_c(config)
        assert [
            (s.country_code, s.baseline_count, s.window_count)
            for s in first.surge_table
        ] == [
            (s.country_code, s.baseline_count, s.window_count)
            for s in second.surge_table
        ]
        assert (
            first.attacker_sms_delivered == second.attacker_sms_delivered
        )
        assert first.attacker_ledger.net == pytest.approx(
            second.attacker_ledger.net
        )
