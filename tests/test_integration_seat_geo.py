"""End-to-end integration of the seat-hoarding and geo-velocity
detectors against live attack traffic."""

import pytest

from repro.booking.seatmap import MIDDLE, SeatMap
from repro.common import MANUAL_SPINNER, SMS_PUMPER
from repro.core.detection.geo_velocity import GeoVelocityDetector
from repro.core.detection.seats import SeatHoardingDetector
from repro.scenarios.case_c import CaseCConfig, run_case_c
from repro.scenarios.world import FlightSpec, WorldConfig, build_world
from repro.sim.clock import DAY, HOUR
from repro.traffic.legitimate import LegitimateConfig, LegitimatePopulation
from repro.traffic.manual_spinner import ManualSeatSpinner, ManualSpinnerConfig


class TestSeatHoardingEndToEnd:
    @pytest.fixture(scope="class")
    def world(self):
        flights = [
            FlightSpec(
                "SEATMAP-1",
                10 * DAY,
                capacity=120,
            )
        ]
        world = build_world(
            WorldConfig(seed=3, flights=flights, hold_ttl=4 * HOUR)
        )
        # Re-create the flight with a seat map (FlightSpec has no seat
        # map field; the scenario wires it manually).
        flight = world.reservations.flight("SEATMAP-1")
        flight.seat_map = SeatMap(rows=20)

        LegitimatePopulation(
            world.loop,
            world.app,
            world.rngs.stream("legit"),
            LegitimateConfig(visitor_rate_per_hour=10),
        ).start(at=0.0)
        ManualSeatSpinner(
            world.loop,
            world.app,
            world.rngs.stream("manual"),
            ManualSpinnerConfig(target_flight="SEATMAP-1"),
        ).start(at=0.0)
        world.run_until(4 * DAY)
        return world

    def test_spinner_holds_middle_seats(self, world):
        spinner_holds = [
            h
            for h in world.reservations.holds.all_holds()
            if h.client.actor_class == MANUAL_SPINNER and h.seats
        ]
        assert spinner_holds
        middles = sum(
            1
            for h in spinner_holds
            for s in h.seats
            if s.position == MIDDLE
        )
        total = sum(len(h.seats) for h in spinner_holds)
        assert middles / total > 0.8

    def test_detector_flags_only_the_spinner(self, world):
        holds = world.reservations.holds.all_holds()
        detector = SeatHoardingDetector()
        flagged = set(detector.flagged_fingerprints(holds))
        spinner_fps = {
            h.client.fingerprint_id
            for h in holds
            if h.client.actor_class == MANUAL_SPINNER
        }
        legit_fps = {
            h.client.fingerprint_id
            for h in holds
            if h.client.actor_class == "legit"
        }
        assert flagged  # someone was caught
        assert flagged <= spinner_fps  # and only the attacker
        assert not flagged & legit_fps


class TestGeoVelocityEndToEnd:
    def test_pumper_refs_flagged_in_case_c(self):
        result = run_case_c(
            CaseCConfig(seed=4, baseline_weekly_total=4000)
        )
        detector = GeoVelocityDetector()
        delivered = result.world.sms.delivered_records()
        flagged = set(detector.flagged_keys(delivered))
        pumper_refs = {
            r.booking_ref
            for r in delivered
            if r.client.actor_class == SMS_PUMPER and r.booking_ref
        }
        legit_keys = {
            r.booking_ref or r.client.profile_id
            for r in delivered
            if r.client.actor_class == "legit"
        }
        # Every pumping booking reference trips impossible travel...
        assert pumper_refs
        assert pumper_refs <= flagged
        # ... and no legitimate traveller does.
        assert not flagged & legit_keys
