"""Integration test for the Section V feature-restriction mitigation.

"Feature access restrictions: limiting high-risk functionalities ...
to trusted users, such as verified loyalty program members."  Applied
to the hold endpoint mid-attack, the restriction stops the anonymous
seat spinner cold — at the measurable cost of also locking out
anonymous legitimate shoppers (the usability/security trade-off the
paper says must be weighed)."""

import pytest

from repro.common import LEGIT, SEAT_SPINNER
from repro.core.mitigation.policies import FeatureRestrictionPolicy
from repro.identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from repro.identity.ip import ResidentialProxyPool
from repro.scenarios.world import FlightSpec, WorldConfig, build_world
from repro.sim.clock import DAY, HOUR
from repro.traffic.legitimate import LegitimateConfig, LegitimatePopulation
from repro.traffic.seat_spinner import SeatSpinnerBot, SeatSpinnerConfig
from repro.web.request import HOLD


@pytest.fixture(scope="module")
def world_after_restriction():
    world = build_world(
        WorldConfig(
            seed=9,
            flights=[FlightSpec(f"F{i}", 20 * DAY, 200) for i in range(4)],
            hold_ttl=2 * HOUR,
        )
    )
    LegitimatePopulation(
        world.loop,
        world.app,
        world.rngs.stream("legit"),
        LegitimateConfig(visitor_rate_per_hour=15, loyalty_share=0.3),
    ).start(at=0.0)
    bot = SeatSpinnerBot(
        world.loop,
        world.app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(rotate_on_block=True),
            world.rngs.stream("bot.identity"),
        ),
        ResidentialProxyPool(),
        world.rngs.stream("bot"),
        SeatSpinnerConfig(
            target_flight="F0", preferred_nip=4, target_seats=60
        ),
    )
    bot.start(at=0.0)

    # One unrestricted day, then the loyalty-only gate goes up.
    world.loop.schedule_at(
        1 * DAY, lambda: FeatureRestrictionPolicy(HOLD).apply(world.app)
    )
    world.run_until(2 * DAY)
    return world, bot


class TestLoyaltyRestriction:
    def test_attack_stops_at_the_gate(self, world_after_restriction):
        world, bot = world_after_restriction
        bot_holds_after = [
            r
            for r in world.reservations.held_records()
            if r.client.actor_class == SEAT_SPINNER and r.time > 1 * DAY
        ]
        assert bot_holds_after == []  # anonymous bot: zero holds
        # Rotation does not help against an *authorisation* gate.
        assert bot.blocks_encountered > 10
        assert world.reservations.availability("F0") > 100

    def test_loyalty_members_keep_booking(self, world_after_restriction):
        world, _ = world_after_restriction
        loyal_after = [
            r
            for r in world.reservations.held_records()
            if r.time > 1 * DAY
            and r.client.profile_id.startswith("loyal")
        ]
        assert len(loyal_after) > 10

    def test_anonymous_legit_pay_the_usability_price(
        self, world_after_restriction
    ):
        """The trade-off: genuine non-members are locked out too."""
        world, _ = world_after_restriction
        restricted_legit = [
            e
            for e in world.app.log.entries()
            if e.time > 1 * DAY
            and e.path == HOLD
            and e.outcome == "restricted"
            and e.client.actor_class == LEGIT
        ]
        assert len(restricted_legit) > 5