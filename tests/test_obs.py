"""Tests for repro.obs core primitives, context, and report rendering."""

import json

import pytest

from repro.obs import (
    DEFAULT_TIME_BOUNDS,
    Histogram,
    ObsRegistry,
    REPORT_SCHEMA,
    RunContext,
    Timer,
    build_report,
    merge_snapshots,
    render_json,
    render_prometheus,
)


class TestHistogram:
    def test_observe_accumulates(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == pytest.approx(55.5)
        assert histogram.min == 0.5
        assert histogram.max == 50.0
        assert histogram.bucket_counts == [1, 1, 1]

    def test_bounds_are_upper_inclusive(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts == [1, 0, 0]
        histogram.observe(1.0 + 1e-12)
        assert histogram.bucket_counts == [1, 1, 0]

    def test_quantile_is_conservative(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for _ in range(99):
            histogram.observe(0.5)
        histogram.observe(50.0)
        # p50 is the upper bound of the bucket holding rank 50.
        assert histogram.quantile(0.50) == 1.0
        # The straggler lands in the (10, 100] bucket.
        assert histogram.quantile(1.0) == 100.0

    def test_quantile_overflow_bucket_uses_observed_max(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(7.5)
        assert histogram.quantile(1.0) == 7.5

    def test_quantile_empty_and_validation(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_merge_sums_everything(self):
        left = Histogram(bounds=(1.0, 10.0))
        right = Histogram(bounds=(1.0, 10.0))
        left.observe(0.5)
        right.observe(5.0)
        right.observe(500.0)
        left.merge(right)
        assert left.count == 3
        assert left.total == pytest.approx(505.5)
        assert left.min == 0.5
        assert left.max == 500.0
        assert left.bucket_counts == [1, 1, 1]

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_snapshot_round_trip(self):
        histogram = Histogram()
        for value in (1e-7, 3e-4, 0.2, 42.0):
            histogram.observe(value)
        clone = Histogram.from_snapshot(histogram.snapshot())
        assert clone.snapshot() == histogram.snapshot()
        assert clone.summary() == histogram.summary()

    def test_snapshot_is_json_safe(self):
        histogram = Histogram()
        histogram.observe(0.5)
        restored = Histogram.from_snapshot(
            json.loads(json.dumps(histogram.snapshot()))
        )
        assert restored.snapshot() == histogram.snapshot()

    def test_default_bounds_span_microseconds_to_seconds(self):
        assert DEFAULT_TIME_BOUNDS[0] == pytest.approx(1e-6)
        assert DEFAULT_TIME_BOUNDS[-1] == 10.0
        assert list(DEFAULT_TIME_BOUNDS) == sorted(DEFAULT_TIME_BOUNDS)


class TestTimer:
    def test_observe_and_properties(self):
        timer = Timer()
        timer.observe(0.25)
        timer.observe(0.75)
        assert timer.count == 2
        assert timer.total == pytest.approx(1.0)
        assert timer.mean == pytest.approx(0.5)

    def test_time_block_records_a_duration(self):
        timer = Timer()
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0.0


class TestObsRegistry:
    def test_counters_and_gauges(self):
        registry = ObsRegistry()
        registry.increment("a.hits")
        registry.increment("a.hits", 2.0)
        registry.set_gauge("a.depth", 5.0)
        registry.set_gauge("a.depth", 7.0)
        assert registry.counter("a.hits") == 3.0
        assert registry.counter("missing") == 0.0
        assert registry.gauge("a.depth") == 7.0
        assert registry.gauge("missing", default=-1.0) == -1.0

    def test_prefix_filtering(self):
        registry = ObsRegistry()
        registry.increment("web.requests")
        registry.increment("stream.entries")
        registry.timer("web.request./hold").observe(0.1)
        registry.timer("sim.event.visitor").observe(0.2)
        assert set(registry.counters("web.")) == {"web.requests"}
        assert set(registry.timers("sim.event.")) == {"sim.event.visitor"}

    def test_timer_and_histogram_are_memoised(self):
        registry = ObsRegistry()
        assert registry.timer("t") is registry.timer("t")
        assert registry.histogram("h") is registry.histogram("h")

    def test_total_time_sums_prefix(self):
        registry = ObsRegistry()
        registry.timer("sim.event.a").observe(1.0)
        registry.timer("sim.event.b").observe(2.0)
        registry.timer("web.request./x").observe(4.0)
        assert registry.total_time("sim.event.") == pytest.approx(3.0)

    def test_merge_follows_recorder_contract(self):
        """Counters and distributions sum; gauges last-write-wins —
        the same contract as MetricsRecorder.merge."""
        left, right = ObsRegistry(), ObsRegistry()
        left.increment("n", 1.0)
        right.increment("n", 2.0)
        left.set_gauge("g", 1.0)
        right.set_gauge("g", 9.0)
        left.timer("t").observe(0.5)
        right.timer("t").observe(1.5)
        left.merge(right)
        assert left.counter("n") == 3.0
        assert left.gauge("g") == 9.0
        assert left.timer("t").count == 2
        assert left.timer("t").total == pytest.approx(2.0)

    def test_merge_is_commutative_on_sums(self):
        def build(values):
            registry = ObsRegistry()
            for value in values:
                registry.increment("n")
                registry.timer("t").observe(value)
            return registry

        ab = build([1.0, 2.0])
        ab.merge(build([4.0]))
        ba = build([4.0])
        ba.merge(build([1.0, 2.0]))
        assert ab.counter("n") == ba.counter("n")
        assert ab.timer("t").histogram.snapshot() == (
            ba.timer("t").histogram.snapshot()
        )

    def test_snapshot_round_trip(self):
        registry = ObsRegistry()
        registry.increment("c", 2.0)
        registry.set_gauge("g", 3.0)
        registry.timer("t").observe(0.01)
        registry.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        restored = ObsRegistry.from_snapshot(
            json.loads(json.dumps(registry.snapshot()))
        )
        assert restored.snapshot() == registry.snapshot()
        assert restored.names() == registry.names()

    def test_merge_snapshots_folds_workers(self):
        snapshots = []
        for worker in range(3):
            registry = ObsRegistry()
            registry.increment("events", 10.0)
            registry.timer("t").observe(float(worker + 1))
            snapshots.append(registry.snapshot())
        merged = merge_snapshots(snapshots)
        assert merged.counter("events") == 30.0
        assert merged.timer("t").count == 3
        assert merged.timer("t").total == pytest.approx(6.0)


class TestRunContext:
    def test_record_event_namespaces_labels(self):
        context = RunContext(scenario="case-a", seed=7)
        context.record_event("visitor", 0.001)
        context.record_event("visitor", 0.002)
        context.record_event("", 0.003)
        timers = context.registry.timers("sim.event.")
        assert timers["sim.event.visitor"].count == 2
        assert timers["sim.event.unlabelled"].count == 1

    def test_nested_phases_join_with_slash(self):
        context = RunContext()
        with context.phase("simulate"):
            with context.phase("stream"):
                pass
        names = set(context.registry.timers("phase."))
        assert names == {"phase.simulate", "phase.simulate/stream"}

    def test_phase_records_even_on_exception(self):
        context = RunContext()
        with pytest.raises(RuntimeError):
            with context.phase("boom"):
                raise RuntimeError("x")
        assert context.registry.timer("phase.boom").count == 1

    def test_finish_stamps_wall_seconds_once(self):
        context = RunContext()
        context.finish()
        first = context.wall_seconds
        context.finish()
        assert context.wall_seconds == first
        assert context.registry.gauge("run.wall_seconds") == first

    def test_snapshot_round_trip(self):
        context = RunContext(scenario="case-a", seed=7, meta={"k": "v"})
        context.record_event("visitor", 0.001)
        context.finish()
        restored = RunContext.from_snapshot(
            json.loads(json.dumps(context.snapshot()))
        )
        assert restored.run_id == context.run_id
        assert restored.scenario == "case-a"
        assert restored.seed == 7
        assert restored.meta == {"k": "v"}
        assert restored.snapshot() == context.snapshot()

    def test_merge_folds_registries(self):
        a = RunContext(scenario="case-a", seed=1)
        b = RunContext(scenario="case-a", seed=2)
        a.record_event("visitor", 0.001)
        b.record_event("visitor", 0.002)
        a.merge(b)
        assert a.registry.timers()["sim.event.visitor"].count == 2


class TestReports:
    def build_context(self):
        context = RunContext(scenario="case-a", seed=7)
        context.record_event("visitor", 0.001)
        context.registry.increment("web.response.200", 5.0)
        context.registry.timer("web.request./hold").observe(0.002)
        context.finish()
        return context

    def test_json_report_shape(self):
        report = json.loads(render_json(self.build_context()))
        assert report["schema"] == REPORT_SCHEMA
        assert report["run"]["scenario"] == "case-a"
        assert report["run"]["seed"] == 7
        assert report["counters"]["web.response.200"] == 5.0
        digest = report["timers"]["sim.event.visitor"]
        assert set(digest) == {
            "count", "total", "mean", "min", "max", "p50", "p95", "p99",
        }
        assert digest["count"] == 1

    def test_json_report_is_deterministic(self):
        context = self.build_context()
        assert render_json(context) == render_json(context)

    def test_build_report_accepts_bare_registry_with_run_override(self):
        registry = ObsRegistry()
        registry.increment("n")
        report = build_report(registry, run={"run_id": "merged"})
        assert report["run"] == {"run_id": "merged"}
        assert report["counters"]["n"] == 1.0

    def test_prometheus_rendering(self):
        text = render_prometheus(self.build_context())
        lines = text.strip().splitlines()
        assert "repro_web_response_200_total 5" in lines
        assert any(
            line.startswith("repro_web_request_hold_seconds_sum")
            for line in lines
        )
        # Bucket series are cumulative and end with +Inf == _count.
        bucket_lines = [
            line for line in lines
            if line.startswith("repro_sim_event_visitor_seconds_bucket")
        ]
        assert bucket_lines[-1] == (
            'repro_sim_event_visitor_seconds_bucket{le="+Inf"} 1'
        )
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)

    def test_prometheus_names_are_legal(self):
        import re

        text = render_prometheus(self.build_context())
        name_re = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? ")
        for line in text.strip().splitlines():
            assert name_re.match(line), line
