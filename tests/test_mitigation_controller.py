"""Tests for the closed-loop MitigationController."""

import random

import pytest

from repro.booking.flight import Flight
from repro.booking.passengers import sample_gibberish_passenger
from repro.common import ClientRef, SEAT_SPINNER
from repro.core.mitigation.controller import (
    ControllerConfig,
    MitigationController,
)
from repro.identity.fingerprint import FingerprintPopulation
from repro.identity.forge import FingerprintForge, RAW_HEADLESS
from repro.scenarios.world import FlightSpec, WorldConfig, build_world
from repro.sim.clock import HOUR, MINUTE, WEEK
from repro.sms.gateway import BOARDING_PASS
from repro.sms.numbers import sample_number
from repro.traffic.legitimate import AVERAGE_WEEK_NIP_MIXTURE
from repro.web.request import BOARDING_PASS_SMS, HOLD, Request


def make_world():
    return build_world(
        WorldConfig(
            seed=5,
            flights=[FlightSpec("F1", 1000 * HOUR, capacity=5000)],
            hold_ttl=10 * HOUR,
        )
    )


def hold_request(fingerprint, nip=6, ip="8.8.4.4"):
    rng = random.Random(hash(fingerprint.fingerprint_id) % 1000)
    party = [sample_gibberish_passenger(rng) for _ in range(nip)]
    return Request(
        method="POST",
        path=HOLD,
        client=ClientRef(
            ip_address=ip,
            ip_country="US",
            ip_residential=True,
            fingerprint_id=fingerprint.fingerprint_id,
            user_agent=fingerprint.user_agent,
            actor="bot",
            actor_class=SEAT_SPINNER,
        ),
        params={"flight_id": "F1", "passengers": party},
        fingerprint=fingerprint,
    )


class TestNipCapBranch:
    def test_nip_anomaly_triggers_cap(self):
        world = make_world()
        controller = MitigationController(
            world.loop,
            world.app,
            ControllerConfig(
                interval=1 * HOUR,
                window=6 * HOUR,
                baseline_nip=AVERAGE_WEEK_NIP_MIXTURE,
                enable_nip_cap=True,
                nip_cap_value=4,
                enable_fingerprint_blocks=False,
            ),
        )
        controller.start(at=1 * HOUR)
        # Flood the window with NiP-6 holds (a seat-spinning wave).
        fingerprint = FingerprintPopulation().sample(random.Random(1))

        def flood():
            for _ in range(10):
                world.app.handle(hold_request(fingerprint))

        for minute in range(0, 120, 10):
            world.loop.schedule_at(minute * MINUTE, flood)
        world.run_until(4 * HOUR)
        assert world.app.reservations.max_nip == 4
        assert controller.actions("nip-cap")

    def test_no_cap_without_anomaly(self):
        world = make_world()
        controller = MitigationController(
            world.loop,
            world.app,
            ControllerConfig(
                baseline_nip=AVERAGE_WEEK_NIP_MIXTURE,
                enable_fingerprint_blocks=False,
            ),
        )
        controller.start(at=1 * HOUR)
        world.run_until(6 * HOUR)
        assert world.app.reservations.max_nip == 9
        assert controller.timeline == []


class TestFingerprintBranch:
    def test_frequent_fingerprint_blocked(self):
        world = make_world()
        controller = MitigationController(
            world.loop,
            world.app,
            ControllerConfig(
                interval=1 * HOUR,
                enable_nip_cap=False,
                holds_per_fingerprint_threshold=3,
                enable_artifact_blocks=False,
            ),
        )
        controller.start(at=1 * HOUR)
        fingerprint = FingerprintPopulation().sample(random.Random(2))

        def burst():
            for _ in range(5):
                world.app.handle(hold_request(fingerprint, nip=2))

        world.loop.schedule_at(10 * MINUTE, burst)
        world.run_until(3 * HOUR)
        assert controller.blocks.is_blocked(fingerprint.fingerprint_id)
        assert controller.actions("fingerprint-block")

    def test_artifact_fingerprint_blocked_once_seen(self):
        world = make_world()
        controller = MitigationController(
            world.loop,
            world.app,
            ControllerConfig(
                interval=1 * HOUR,
                enable_nip_cap=False,
                holds_per_fingerprint_threshold=999,
            ),
        )
        controller.start(at=1 * HOUR)
        headless = FingerprintForge(RAW_HEADLESS).forge(random.Random(3))
        world.loop.schedule_at(
            10 * MINUTE,
            lambda: world.app.handle(hold_request(headless, nip=1)),
        )
        world.run_until(3 * HOUR)
        assert controller.blocks.is_blocked(headless.fingerprint_id)
        assert controller.actions("artifact-block")

    def test_honeypot_mode_suspects_instead_of_blocking(self):
        world = make_world()
        controller = MitigationController(
            world.loop,
            world.app,
            ControllerConfig(
                interval=1 * HOUR,
                enable_nip_cap=False,
                holds_per_fingerprint_threshold=3,
                honeypot_mode=True,
            ),
        )
        controller.start(at=1 * HOUR)
        fingerprint = FingerprintPopulation().sample(random.Random(4))

        def burst():
            for _ in range(5):
                world.app.handle(hold_request(fingerprint, nip=2))

        world.loop.schedule_at(10 * MINUTE, burst)
        world.loop.schedule_at(90 * MINUTE, burst)
        world.run_until(3 * HOUR)
        # Not blocked; routed into the shadow inventory instead.
        assert not controller.blocks.is_blocked(fingerprint.fingerprint_id)
        assert controller.actions("honeypot-suspect")
        assert controller.honeypot.shadow_hold_count() > 0


class TestSmsBranch:
    def _world_with_sms_controller(self, **overrides):
        world = make_world()
        config = dict(
            interval=1 * HOUR,
            window=6 * HOUR,
            enable_nip_cap=False,
            enable_fingerprint_blocks=False,
            enable_sms_monitor=True,
            sms_weekly_baseline={"UZ": 2, "GB": 450},
            sms_min_window_count=10,
            sms_disable_after_alarms=3,
        )
        config.update(overrides)
        controller = MitigationController(
            world.loop, world.app, ControllerConfig(**config)
        )
        controller.start(at=1 * HOUR)
        return world, controller

    def _pump(self, world, count=30, ref="REF1"):
        rng = random.Random(9)
        fingerprint = FingerprintPopulation().sample(rng)
        for _ in range(count):
            number = sample_number(rng, "UZ", controlled_by_attacker=True)
            world.app.handle(
                Request(
                    method="POST",
                    path=BOARDING_PASS_SMS,
                    client=ClientRef(
                        "5.5.5.5", "UZ", True,
                        fingerprint.fingerprint_id, "UA",
                    ),
                    params={"booking_ref": ref, "phone": number},
                    fingerprint=fingerprint,
                )
            )

    def test_surge_deploys_rate_limit_then_disables(self):
        world, controller = self._world_with_sms_controller()
        for hour in (0.5, 1.5, 2.5, 3.5, 4.5):
            world.loop.schedule_at(
                hour * HOUR, lambda: self._pump(world)
            )
        world.run_until(8 * HOUR)
        assert controller.actions("sms-rate-limit")
        assert controller.actions("sms-feature-disabled")
        assert not world.sms.kind_enabled(BOARDING_PASS)

    def test_no_alarm_on_baseline_traffic(self):
        world, controller = self._world_with_sms_controller()
        world.run_until(8 * HOUR)
        assert controller.timeline == []
        assert world.sms.kind_enabled(BOARDING_PASS)


class TestGeoVelocityBranch:
    def test_impossible_travel_blocks_booking_ref(self):
        """The baseline-free branch: pumped refs get blocked without
        any per-country baseline configured."""
        from repro.core.detection.geo_velocity import GeoVelocityConfig

        world = make_world()
        controller = MitigationController(
            world.loop,
            world.app,
            ControllerConfig(
                interval=1 * HOUR,
                window=6 * HOUR,
                enable_nip_cap=False,
                enable_fingerprint_blocks=False,
                enable_geo_velocity=True,
            ),
        )
        controller.start(at=1 * HOUR)

        rng = random.Random(7)
        population = FingerprintPopulation()

        def pump_from_everywhere():
            for country in ("UZ", "IR", "KG", "JO", "NG", "KH"):
                fingerprint = population.sample(rng)
                number = sample_number(
                    rng, country, controlled_by_attacker=True
                )
                world.app.handle(
                    Request(
                        method="POST",
                        path=BOARDING_PASS_SMS,
                        client=ClientRef(
                            f"9.9.9.{rng.randint(1, 254)}",
                            country,
                            True,
                            fingerprint.fingerprint_id,
                            "UA",
                        ),
                        params={"booking_ref": "PUMPED", "phone": number},
                        fingerprint=fingerprint,
                    )
                )

        world.loop.schedule_at(10 * MINUTE, pump_from_everywhere)
        world.run_until(3 * HOUR)
        assert controller.actions("geo-velocity-block")
        # Further requests citing the blocked ref are denied at the edge.
        fingerprint = population.sample(rng)
        response = world.app.handle(
            Request(
                method="POST",
                path=BOARDING_PASS_SMS,
                client=ClientRef(
                    "9.9.9.9", "UZ", True,
                    fingerprint.fingerprint_id, "UA",
                ),
                params={
                    "booking_ref": "PUMPED",
                    "phone": sample_number(rng, "UZ"),
                },
                fingerprint=fingerprint,
            )
        )
        assert response.status == 403

    def test_normal_refs_untouched(self):
        world = make_world()
        controller = MitigationController(
            world.loop,
            world.app,
            ControllerConfig(
                interval=1 * HOUR,
                enable_nip_cap=False,
                enable_fingerprint_blocks=False,
                enable_geo_velocity=True,
            ),
        )
        controller.start(at=1 * HOUR)
        rng = random.Random(8)
        fingerprint = FingerprintPopulation().sample(rng)

        def ordinary_user():
            world.app.handle(
                Request(
                    method="POST",
                    path=BOARDING_PASS_SMS,
                    client=ClientRef(
                        "8.8.8.8", "FR", True,
                        fingerprint.fingerprint_id, "UA",
                    ),
                    params={
                        "booking_ref": "NORMAL",
                        "phone": sample_number(rng, "FR"),
                    },
                    fingerprint=fingerprint,
                )
            )

        world.loop.schedule_at(10 * MINUTE, ordinary_user)
        world.run_until(3 * HOUR)
        assert not controller.actions("geo-velocity-block")
