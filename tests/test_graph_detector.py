"""Tests for the batch graph detector and its seeding helpers.

Seeding is where the graph pipeline meets the rest of the detection
stack: weak behavioural priors per session, SMS-velocity priors per
fingerprint/booking-reference, and other families' verdicts folded in
noisy-OR style under per-detector trust weights.
"""

import pytest

from repro.core.detection.verdict import Verdict
from repro.graph.builder import GraphBuilder
from repro.graph.campaigns import CAMPAIGN_DETECTOR
from repro.graph.detector import (
    GraphDetector,
    GraphDetectorConfig,
    accumulate_seed,
    merged_seeds,
    seed_from_verdicts,
    session_prior,
    sms_velocity_seeds,
)
from repro.graph.entities import (
    booking_ref_node,
    fingerprint_node,
    session_node,
)
from repro.stream.adapters import entity_subject
from repro.web.request import BOARDING_PASS_SMS, HOLD

from tests.test_graph_builder import (
    make_booking,
    make_entry,
    make_session,
    make_sms,
)


class TestSeeding:
    def test_session_prior_is_weak_and_capped(self):
        config = GraphDetectorConfig()
        quiet = make_session("s1", "f1", "10.0.0.1", [0.0, 10.0])
        assert session_prior(quiet, config) == 0.0

        grabby = make_session("s2", "f1", "10.0.0.1", [0.0])
        grabby.entries.extend(
            make_entry(float(i + 1), "f1", "10.0.0.1", path=HOLD)
            for i in range(50)
        )
        prior = session_prior(grabby, config)
        # Saturates at the hold cap: sub-threshold by construction.
        assert prior == pytest.approx(config.hold_seed_cap)

        pumping = make_session("s3", "f1", "10.0.0.1", [0.0])
        pumping.entries.extend(
            make_entry(
                float(i + 1), "f1", "10.0.0.1", path=BOARDING_PASS_SMS
            )
            for i in range(50)
        )
        # Both channels maxed combine noisy-OR, still far below 1.
        pumping.entries.extend(
            make_entry(float(i + 60), "f1", "10.0.0.1", path=HOLD)
            for i in range(50)
        )
        combined = session_prior(pumping, config)
        assert combined == pytest.approx(
            1.0
            - (1.0 - config.hold_seed_cap)
            * (1.0 - config.sms_seed_cap)
        )
        assert combined < 0.7

    def test_accumulate_seed_is_noisy_or(self):
        seeds = {}
        node = session_node("s1")
        accumulate_seed(seeds, node, 0.5)
        accumulate_seed(seeds, node, 0.5)
        assert seeds[node] == pytest.approx(0.75)
        accumulate_seed(seeds, node, 0.0)
        accumulate_seed(seeds, node, 0.9, weight=0.0)
        assert seeds[node] == pytest.approx(0.75)
        accumulate_seed(seeds, node, 1.0, weight=2.0)  # clamped
        assert seeds[node] == 1.0

    def test_sms_velocity_seeds_recomputed_from_builder(self):
        config = GraphDetectorConfig()
        builder = GraphBuilder()
        for index in range(100):
            builder.observe_sms(
                make_sms(
                    float(index), "pump-fp", "10.0.0.1",
                    f"6001002{index:02d}", ref="REFXX",
                )
            )
        seeds = sms_velocity_seeds(builder, config)
        assert seeds[fingerprint_node("pump-fp")] == pytest.approx(
            config.fp_sms_seed_cap
        )
        assert seeds[booking_ref_node("REFXX")] == pytest.approx(
            config.ref_sms_seed_cap
        )
        # merged_seeds never mutates the accumulated dict — the
        # recompute-from-builder-state property streaming relies on.
        accumulated = {session_node("s1"): 0.2}
        merged = merged_seeds(accumulated, builder, config)
        assert accumulated == {session_node("s1"): 0.2}
        assert merged[session_node("s1")] == 0.2
        assert fingerprint_node("pump-fp") in merged

    def test_seed_from_verdicts_routes_subjects(self):
        config = GraphDetectorConfig(
            seed_weights={"volume-threshold": 0.9}
        )
        seeds = {}
        seed_from_verdicts(
            seeds,
            [
                Verdict("s1", "volume-threshold", 1.0, True),
                Verdict(entity_subject("f9"), "fingerprint", 0.8, True),
                # Campaign-graph verdicts must never re-seed the graph.
                Verdict("s1", CAMPAIGN_DETECTOR, 1.0, True),
            ],
            config,
        )
        assert seeds[session_node("s1")] == pytest.approx(0.9)
        # Unknown detector falls back to default_seed_weight.
        assert seeds[fingerprint_node("f9")] == pytest.approx(
            config.default_seed_weight * 0.8
        )


class TestGraphDetector:
    def _campaign_records(self):
        """Three rotated fingerprints, one recurring passenger name,
        plus an unrelated clean visitor."""
        sessions, bookings = [], []
        for index, fp in enumerate(["r1", "r2", "r3"]):
            ip = f"10.1.{index}.1"
            base = index * 1000.0
            sessions.append(
                make_session(
                    f"s-{fp}", fp, ip, [base, base + 60.0, base + 120.0]
                )
            )
            bookings.append(
                make_booking(
                    base + 30.0, fp, ip, [("anna", "nowak")]
                )
            )
        sessions.append(
            make_session("s-clean", "visitor", "10.9.9.9", [50.0, 80.0])
        )
        return sessions, bookings

    def test_rotated_campaign_is_convicted_clean_visitor_is_not(self):
        sessions, bookings = self._campaign_records()
        detector = GraphDetector(
            GraphDetectorConfig(
                seed_weights={"volume-threshold": 0.9}
            )
        )
        verdicts = detector.judge_all(
            sessions,
            bookings=bookings,
            seed_verdicts=[
                Verdict(f"s-{fp}", "volume-threshold", 1.0, True)
                for fp in ["r1", "r2", "r3"]
            ],
        )
        assert detector.name == CAMPAIGN_DETECTOR
        assert [v.subject_id for v in verdicts] == [
            s.session_id for s in sessions
        ]
        by_subject = {v.subject_id: v for v in verdicts}
        for fp in ["r1", "r2", "r3"]:
            assert by_subject[f"s-{fp}"].is_bot
        assert not by_subject["s-clean"].is_bot
        assert by_subject["s-clean"].score == 0.0

        campaigns = detector.campaigns
        assert len(campaigns) == 1
        assert set(campaigns[0].fingerprint_ids) == {"r1", "r2", "r3"}
        assert campaigns[0].rotates_identity

    def test_no_evidence_means_no_campaigns(self):
        sessions, bookings = self._campaign_records()
        detector = GraphDetector()
        verdicts = detector.judge_all(sessions, bookings=bookings)
        assert all(not v.is_bot for v in verdicts)
        assert detector.campaigns == []

    def test_fresh_detector_has_no_campaigns(self):
        assert GraphDetector().campaigns == []
