"""Columnar session index vs the object-path reference.

:class:`~repro.core.detection.session_index.SessionIndex` must
reproduce ``sessionize()`` + ``extract_features()`` *exactly* — same
session ids in the same order, bit-identical feature matrix, same
ground-truth classes, equal ``Session`` objects, identical ML
encodings — on both WebLog backends.  These tests pin that equality on
randomized logs engineered to hit the nasty corners (equal start
times, exact idle-gap boundaries, key interleavings, majority-class
ties) plus hypothesis-generated schedules, and then pin the
verdict-level equality of every matrix detector family.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import ClientRef
from repro.core.detection.classifier import LogisticSessionClassifier
from repro.core.detection.clustering import ClusteringDetector
from repro.core.detection.features import (
    FEATURE_NAMES,
    feature_matrix,
    feature_matrix_columnar,
)
from repro.core.detection.session_index import SessionIndex
from repro.core.detection.volume import VolumeDetector
from repro.ml.data import build_dataset, build_dataset_columnar
from repro.obs.core import ObsRegistry
from repro.web.logs import COLUMNAR, LIST, WebLog, sessionize

PATHS = [
    "/search", "/flight", "/hold", "/pay", "/login/otp",
    "/boarding-pass/sms", "/internal/prefetch", "/notify", "/misc",
]
CLASSES = ["legit", "scraper", "spinner"]


def _clients(count: int, rng: random.Random):
    return [
        ClientRef(
            ip_address=f"10.0.{i % 7}.{i % 37}",
            fingerprint_id=f"fp{i % 23}",
            actor_class=rng.choice(CLASSES),
            ip_country="US",
            ip_residential=True,
            user_agent="ua",
        )
        for i in range(count)
    ]


def _random_rows(rng: random.Random, count: int):
    """A time-ordered row set dense in ties and gap-boundary cases."""
    clients = _clients(40, rng)
    time = 0.0
    rows = []
    for _ in range(count):
        time += rng.choice(
            [0.0, 0.0, 1.0, 5.0, 1800.0, 1800.0000001, 1801.0,
             3600.0, rng.random() * 100]
        )
        rows.append((
            time,
            rng.choice(["GET", "POST", "HEAD"]),
            rng.choice(PATHS),
            rng.choice([200, 200, 200, 403, 429, 500]),
            rng.choice(clients),
        ))
    return rows


def _log(rows, backend: str) -> WebLog:
    log = WebLog(backend=backend)
    for time, method, path, status, client in rows:
        log.append_fields(time, method, path, status, client)
    return log


def _assert_index_matches(log: WebLog, idle_gap: float) -> SessionIndex:
    sessions = sessionize(log, idle_gap)
    reference = feature_matrix(sessions)
    index = SessionIndex.from_log(log, idle_gap)
    assert index.session_ids == [s.session_id for s in sessions]
    assert np.array_equal(reference, index.matrix), "matrix not bit-equal"
    assert index.ips == [s.ip_address for s in sessions]
    assert index.fingerprints == [s.fingerprint_id for s in sessions]
    assert index.actor_classes == [s.actor_class for s in sessions]
    assert index.sessions() == sessions
    assert list(index.counts) == [s.request_count for s in sessions]
    assert list(index.starts) == [s.start for s in sessions]
    assert list(index.ends) == [s.end for s in sessions]
    return index


class TestSessionIndexEquality:
    @pytest.mark.parametrize("backend", [COLUMNAR, LIST])
    @pytest.mark.parametrize("idle_gap", [1800.0, 100.0, 0.5])
    @pytest.mark.parametrize("trial", range(3))
    def test_randomized_logs_match_object_path(
        self, backend, idle_gap, trial
    ):
        rng = random.Random(1000 * trial + int(idle_gap))
        rows = _random_rows(rng, rng.randint(1, 2500))
        _assert_index_matches(_log(rows, backend), idle_gap)

    @pytest.mark.parametrize("backend", [COLUMNAR, LIST])
    def test_empty_log(self, backend):
        index = SessionIndex.from_log(WebLog(backend=backend))
        assert len(index) == 0
        assert index.matrix.shape == (0, len(FEATURE_NAMES))
        assert index.sessions() == []
        tokens, gaps = index.sequences()
        assert tokens.shape[0] == 0 and gaps.shape[0] == 0

    def test_single_entry_log(self):
        rng = random.Random(5)
        log = _log(_random_rows(rng, 1), COLUMNAR)
        index = _assert_index_matches(log, 1800.0)
        assert len(index) == 1
        assert index.matrix[0, FEATURE_NAMES.index("request_count")] == 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        gaps=st.lists(
            st.sampled_from([0.0, 1.0, 1800.0, 1800.5, 10.0, 7200.0]),
            min_size=1,
            max_size=60,
        ),
        keys=st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=1,
            max_size=60,
        ),
    )
    def test_hypothesis_schedules(self, gaps, keys):
        """Key/gap schedules chosen adversarially by hypothesis."""
        rng = random.Random(9)
        clients = _clients(4, rng)
        log = WebLog()
        time = 0.0
        for gap, key in zip(gaps, keys):
            time += gap
            log.append_fields(time, "GET", "/search", 200, clients[key])
        _assert_index_matches(log, 1800.0)

    def test_majority_class_tie_breaks_on_first_appearance(self):
        """A 50/50 session resolves to whichever class appeared first,
        matching dict-insertion-order ``max()`` semantics."""
        base = dict(
            ip_address="1.2.3.4", fingerprint_id="fp", ip_country="US",
            ip_residential=True, user_agent="ua",
        )
        scraper = ClientRef(actor_class="scraper", **base)
        legit = ClientRef(actor_class="legit", **base)
        for first, second in ((scraper, legit), (legit, scraper)):
            log = WebLog()
            log.append_fields(0.0, "GET", "/search", 200, first)
            log.append_fields(1.0, "GET", "/search", 200, second)
            sessions = sessionize(log)
            index = SessionIndex.from_log(log)
            assert index.actor_classes == [sessions[0].actor_class]
            assert index.actor_classes[0] == first.actor_class

    def test_rejects_nonpositive_idle_gap(self):
        with pytest.raises(ValueError, match="idle_gap"):
            SessionIndex.from_log(WebLog(), idle_gap=0.0)

    def test_obs_instrumentation(self):
        rng = random.Random(3)
        log = _log(_random_rows(rng, 500), COLUMNAR)
        registry = ObsRegistry()
        index = SessionIndex.from_log(log, obs=registry)
        assert registry.counter("detect.sessions") == float(len(index))
        assert registry.counter("detect.entries") == 500.0
        timers = registry.timers("detect.features")
        assert timers and sum(t.count for t in timers.values()) == 1


class TestFeatureMatrixColumnar:
    @pytest.mark.parametrize("backend", [COLUMNAR, LIST])
    def test_wrapper_matches_object_path(self, backend):
        rng = random.Random(17)
        log = _log(_random_rows(rng, 800), backend)
        sessions = sessionize(log)
        session_ids, matrix = feature_matrix_columnar(log)
        assert session_ids == [s.session_id for s in sessions]
        assert np.array_equal(matrix, feature_matrix(sessions))


class TestDetectorEquivalence:
    def _fixture(self):
        rng = random.Random(77)
        log = _log(_random_rows(rng, 2000), COLUMNAR)
        return sessionize(log), SessionIndex.from_log(log)

    def test_volume_verdicts_identical(self):
        sessions, index = self._fixture()
        assert VolumeDetector().judge_all(sessions) == (
            VolumeDetector().judge_index(index)
        )

    def test_kmeans_verdicts_identical(self):
        sessions, index = self._fixture()
        object_path = ClusteringDetector(
            np.random.default_rng(42)
        ).judge_all(sessions)
        columnar = ClusteringDetector(
            np.random.default_rng(42)
        ).judge_index(index)
        assert object_path == columnar

    def test_logistic_training_and_verdicts_identical(self):
        sessions, index = self._fixture()
        labels = [s.is_attacker for s in sessions]
        if len(set(labels)) < 2:
            pytest.skip("fixture produced single-class labels")
        object_clf = LogisticSessionClassifier(max_iterations=200)
        report_obj = object_clf.fit(sessions, labels)
        matrix_clf = LogisticSessionClassifier(max_iterations=200)
        report_mat = matrix_clf.fit_matrix(index.matrix, index.is_attacker)
        assert report_obj == report_mat
        assert object_clf.judge_all(sessions) == (
            matrix_clf.judge_index(index)
        )

    def test_ml_dataset_identical(self):
        sessions, index = self._fixture()
        reference = build_dataset(sessions, with_truth=True)
        columnar = build_dataset_columnar(index, with_truth=True)
        assert reference.session_ids == columnar.session_ids
        assert np.array_equal(reference.features, columnar.features)
        assert np.array_equal(reference.tokens, columnar.tokens)
        assert np.array_equal(reference.gaps, columnar.gaps)
        assert np.array_equal(reference.labels, columnar.labels)
        assert reference.actor_classes == columnar.actor_classes

    def test_ml_dataset_explicit_labels_and_copies(self):
        sessions, index = self._fixture()
        labels = [bool(i % 2) for i in range(len(index))]
        reference = build_dataset(sessions, labels=labels)
        columnar = build_dataset_columnar(index, labels=labels)
        assert np.array_equal(reference.labels, columnar.labels)
        assert reference.actor_classes == columnar.actor_classes
        # The dataset owns copies: mutating it must not corrupt the
        # index's cached arrays.
        columnar.tokens[:] = 0
        columnar.features[:] = -1.0
        assert not np.array_equal(columnar.tokens, index.sequences()[0])
        assert not np.array_equal(columnar.features, index.matrix)
        with pytest.raises(ValueError, match="labels"):
            build_dataset_columnar(index, labels=labels[:-1])
