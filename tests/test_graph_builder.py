"""Tests for the entity graph and its incremental builder.

The load-bearing claims: edge insertion is idempotent (same records in
any order → equal snapshots), passenger-name linking is recurrence-
gated with bounded pending state, and SMS velocity counters accumulate
at fingerprint and booking-reference granularity.
"""

import pytest

from repro.booking.passengers import Passenger
from repro.booking.reservation import BookingRecord
from repro.common import ClientRef
from repro.graph.builder import (
    EDGE_FINGERPRINT_NAME,
    EDGE_SESSION_FINGERPRINT,
    EntityGraph,
    GraphBuilder,
    GraphBuilderConfig,
    build_batch_graph,
)
from repro.graph.entities import (
    EntityId,
    fingerprint_node,
    flight_node,
    ip_node,
    name_key_node,
    session_node,
    subnet_node,
)
from repro.sms.gateway import SmsRecord
from repro.sms.numbers import PhoneNumber
from repro.web.logs import LogEntry, Session


def make_client(fp: str, ip: str) -> ClientRef:
    return ClientRef(
        ip_address=ip,
        ip_country="PL",
        ip_residential=True,
        fingerprint_id=fp,
        user_agent="test-agent",
    )


def make_entry(time: float, fp: str, ip: str, path="/search") -> LogEntry:
    return LogEntry(time, "GET", path, 200, make_client(fp, ip))


def make_session(sid: str, fp: str, ip: str, times) -> Session:
    return Session(
        session_id=sid,
        ip_address=ip,
        fingerprint_id=fp,
        entries=[make_entry(t, fp, ip) for t in times],
    )


def make_booking(
    time: float, fp: str, ip: str, names, flight="LO123"
) -> BookingRecord:
    return BookingRecord(
        time=time,
        flight_id=flight,
        nip=len(names),
        outcome="held",
        hold_id=f"H-{fp}-{time:.0f}",
        passengers=tuple(
            Passenger(first, last, "1990-01-01", "p@example.com")
            for first, last in names
        ),
        client=make_client(fp, ip),
        price_quoted=120.0,
        shadow=False,
    )


def make_sms(
    time: float, fp: str, ip: str, subscriber: str, ref: str = ""
) -> SmsRecord:
    return SmsRecord(
        time=time,
        number=PhoneNumber("PL", subscriber),
        kind="otp",
        booking_ref=ref,
        client=make_client(fp, ip),
        delivered=True,
        reject_reason="",
        settlement=None,
    )


class TestEntityGraph:
    def test_add_edge_idempotent_keeps_max_weight(self):
        graph = EntityGraph()
        a, b = fingerprint_node("f1"), ip_node("1.2.3.4")
        graph.add_edge(a, b, 0.3)
        graph.add_edge(a, b, 0.8)
        graph.add_edge(b, a, 0.5)
        assert graph.edge_count == 1
        assert graph.neighbors(a) == {b: 0.8}
        assert graph.neighbors(b) == {a: 0.8}

    def test_edge_validation(self):
        graph = EntityGraph()
        node = fingerprint_node("f1")
        with pytest.raises(ValueError):
            graph.add_edge(node, node, 0.5)
        with pytest.raises(ValueError):
            graph.add_edge(node, ip_node("1.1.1.1"), 0.0)
        with pytest.raises(ValueError):
            graph.add_edge(node, ip_node("1.1.1.1"), 1.5)

    def test_touch_extends_span(self):
        graph = EntityGraph()
        node = session_node("s1")
        graph.add_node(node, time=50.0)
        graph.touch(node, 10.0)
        graph.touch(node, 99.0)
        graph.touch(node, 60.0)
        assert graph.first_seen(node) == 10.0
        assert graph.last_seen(node) == 99.0
        assert graph.first_seen(session_node("missing")) is None

    def test_components_respect_induced_subgraph(self):
        """fp1 - name - fp2 is one component on the full graph but two
        singletons when the name node is excluded — the property that
        stops hub kinds gluing campaigns together."""
        graph = EntityGraph()
        fp1, fp2 = fingerprint_node("f1"), fingerprint_node("f2")
        name = name_key_node(("anna", "nowak"))
        graph.add_edge(fp1, name, 0.9)
        graph.add_edge(fp2, name, 0.9)
        assert graph.components() == [[fp1, fp2, name]]
        assert graph.components([fp1, fp2]) == [[fp1], [fp2]]
        # Unknown nodes in the filter are ignored.
        assert graph.components([fp1, fingerprint_node("ghost")]) == [
            [fp1]
        ]

    def test_snapshot_and_kind_counts(self):
        graph = EntityGraph()
        graph.add_edge(session_node("s1"), fingerprint_node("f1"), 1.0)
        graph.add_edge(fingerprint_node("f1"), ip_node("1.1.1.1"), 0.8)
        counts = graph.kind_counts()
        assert counts == {"session": 1, "fp": 1, "ip": 1}
        assert graph.nodes(kind="fp") == [fingerprint_node("f1")]
        snap = graph.snapshot()
        assert len(snap["nodes"]) == 3
        assert len(snap["edges"]) == 2


class TestGraphBuilder:
    def _records(self):
        sessions = [
            make_session("s1", "f1", "10.0.0.1", [0.0, 30.0]),
            make_session("s2", "f2", "10.0.0.2", [100.0, 160.0]),
            make_session("s3", "f1", "10.0.0.3", [200.0, 230.0]),
        ]
        bookings = [
            make_booking(40.0, "f1", "10.0.0.1", [("jan", "kowalski")]),
            make_booking(170.0, "f2", "10.0.0.2", [("jan", "kowalski")]),
        ]
        sms = [
            make_sms(50.0, "f1", "10.0.0.1", "600100200", ref="REF01"),
            make_sms(180.0, "f2", "10.0.0.2", "600100201", ref="REF01"),
            make_sms(240.0, "f1", "10.0.0.3", "600100200"),
        ]
        return sessions, bookings, sms

    def test_feed_order_does_not_change_the_graph(self):
        sessions, bookings, sms = self._records()
        forward = build_batch_graph(
            sessions=sessions, bookings=bookings, sms=sms
        )
        backward = build_batch_graph(
            sessions=list(reversed(sessions)),
            bookings=list(reversed(bookings)),
            sms=list(reversed(sms)),
        )
        # Entry-by-entry streaming before the session close, too.
        streamed = GraphBuilder()
        for record in sms:
            streamed.observe_sms(record)
        for session in sessions:
            for entry in session.entries:
                streamed.observe_entry(entry, entry.time)
            streamed.observe_session(session)
        for record in bookings:
            streamed.observe_booking(record)
        assert forward.snapshot() == backward.snapshot()
        assert forward.snapshot() == streamed.graph.snapshot()

    def test_name_linking_is_recurrence_gated(self):
        builder = GraphBuilder()
        name = name_key_node(("jan", "kowalski"))
        builder.observe_booking(
            make_booking(0.0, "f1", "10.0.0.1", [("jan", "kowalski")])
        )
        assert name not in builder.graph
        # The second sighting opens the gate and flushes the pending
        # fingerprint, so both ends are linked.
        builder.observe_booking(
            make_booking(10.0, "f2", "10.0.0.2", [("jan", "kowalski")])
        )
        neighbors = builder.graph.neighbors(name)
        assert neighbors == {
            fingerprint_node("f1"): EDGE_FINGERPRINT_NAME,
            fingerprint_node("f2"): EDGE_FINGERPRINT_NAME,
        }
        # Once active, further fingerprints link immediately.
        builder.observe_booking(
            make_booking(20.0, "f3", "10.0.0.3", [("jan", "kowalski")])
        )
        assert fingerprint_node("f3") in builder.graph.neighbors(name)

    def test_min_name_repeats_one_links_immediately(self):
        builder = GraphBuilder(GraphBuilderConfig(min_name_repeats=1))
        builder.observe_booking(
            make_booking(0.0, "f1", "10.0.0.1", [("eva", "lis")])
        )
        assert name_key_node(("eva", "lis")) in builder.graph

    def test_pending_name_state_is_bounded(self):
        builder = GraphBuilder(
            GraphBuilderConfig(max_pending_names=5)
        )
        for index in range(20):
            builder.observe_booking(
                make_booking(
                    float(index), "f1", "10.0.0.1",
                    [("guest", f"n{index:02d}")],
                )
            )
        assert builder.pending_names <= 5
        assert builder.peak_pending_names <= 5

    def test_evicted_pending_name_loses_its_sighting(self):
        builder = GraphBuilder()
        builder.observe_booking(
            make_booking(0.0, "f1", "10.0.0.1", [("ola", "maj")])
        )
        assert builder.evict_idle_names(now=10_000.0, idle_gap=3600.0) == 1
        # The recurrence counter restarted: one more booking is again a
        # first sighting, so no link yet.
        builder.observe_booking(
            make_booking(10_100.0, "f2", "10.0.0.2", [("ola", "maj")])
        )
        assert name_key_node(("ola", "maj")) not in builder.graph

    def test_evicted_active_name_keeps_its_edges(self):
        builder = GraphBuilder()
        name = name_key_node(("ula", "kot"))
        for index, fp in enumerate(["f1", "f2"]):
            builder.observe_booking(
                make_booking(
                    float(index), fp, "10.0.0.1", [("ula", "kot")]
                )
            )
        assert len(builder.graph.neighbors(name)) == 2
        builder.evict_idle_names(now=10_000.0, idle_gap=3600.0)
        assert len(builder.graph.neighbors(name)) == 2

    def test_sms_velocity_counters(self):
        builder = GraphBuilder()
        _, _, sms = self._records()
        for record in sms:
            builder.observe_sms(record)
        assert builder.sms_by_fingerprint == {"f1": 2, "f2": 1}
        assert builder.sms_by_ref == {"REF01": 2}
        assert builder.sms_observed == 3

    def test_session_links_identity_chain(self):
        builder = GraphBuilder()
        builder.observe_session(
            make_session("s1", "f1", "10.0.0.1", [5.0, 25.0])
        )
        session, fp = session_node("s1"), fingerprint_node("f1")
        ip, subnet = ip_node("10.0.0.1"), subnet_node("10.0.0.1")
        assert builder.graph.neighbors(session) == {
            fp: EDGE_SESSION_FINGERPRINT,
            ip: 0.7,
        }
        assert subnet in builder.graph.neighbors(ip)
        assert builder.graph.first_seen(session) == 5.0
        assert builder.graph.last_seen(session) == 25.0

    def test_subnet_and_flight_links_can_be_disabled(self):
        config = GraphBuilderConfig(
            include_subnets=False, link_flights=False
        )
        builder = GraphBuilder(config)
        builder.observe_session(
            make_session("s1", "f1", "10.0.0.1", [0.0])
        )
        builder.observe_booking(
            make_booking(1.0, "f1", "10.0.0.1", [("jan", "lis")])
        )
        assert builder.graph.nodes(kind="subnet") == []
        assert builder.graph.nodes(kind="flight") == []
        with_links = GraphBuilder()
        with_links.observe_session(
            make_session("s1", "f1", "10.0.0.1", [0.0])
        )
        with_links.observe_booking(
            make_booking(1.0, "f1", "10.0.0.1", [("jan", "lis")])
        )
        assert with_links.graph.nodes(kind="subnet") == [
            subnet_node("10.0.0.1")
        ]
        assert with_links.graph.nodes(kind="flight") == [
            flight_node("LO123")
        ]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GraphBuilderConfig(min_name_repeats=0)
