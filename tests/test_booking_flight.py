"""Tests for repro.booking.flight (seat inventory invariants)."""

import pytest
from hypothesis import given, strategies as st

from repro.booking.flight import Flight, InventoryError, SeatInventory


class TestSeatInventory:
    def test_initial_state(self):
        inventory = SeatInventory(capacity=100)
        assert inventory.available == 100
        assert inventory.confirmed == 0
        assert inventory.held == 0
        assert inventory.load_factor == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SeatInventory(capacity=-1)

    def test_hold_and_release(self):
        inventory = SeatInventory(capacity=10)
        inventory.take_hold(4)
        assert inventory.available == 6
        inventory.release_hold(4)
        assert inventory.available == 10

    def test_hold_and_confirm(self):
        inventory = SeatInventory(capacity=10)
        inventory.take_hold(3)
        inventory.confirm_hold(3)
        assert inventory.confirmed == 3
        assert inventory.held == 0
        assert inventory.available == 7

    def test_partial_confirm(self):
        inventory = SeatInventory(capacity=10)
        inventory.take_hold(6)
        inventory.confirm_hold(2)
        assert inventory.held == 4
        assert inventory.confirmed == 2

    def test_overhold_rejected(self):
        inventory = SeatInventory(capacity=5)
        with pytest.raises(InventoryError):
            inventory.take_hold(6)

    def test_hold_zero_rejected(self):
        inventory = SeatInventory(capacity=5)
        with pytest.raises(InventoryError):
            inventory.take_hold(0)

    def test_release_more_than_held_rejected(self):
        inventory = SeatInventory(capacity=5)
        inventory.take_hold(2)
        with pytest.raises(InventoryError):
            inventory.release_hold(3)

    def test_confirm_without_hold_rejected(self):
        inventory = SeatInventory(capacity=5)
        with pytest.raises(InventoryError):
            inventory.confirm_hold(1)

    def test_load_factor_counts_holds(self):
        """Held seats count toward load — the pricing-manipulation
        channel DoI attackers exploit."""
        inventory = SeatInventory(capacity=10)
        inventory.take_hold(5)
        assert inventory.load_factor == 0.5
        inventory.confirm_hold(5)
        assert inventory.load_factor == 0.5

    def test_zero_capacity_load_factor(self):
        assert SeatInventory(capacity=0).load_factor == 1.0


@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["hold", "release", "confirm"]),
            st.integers(min_value=1, max_value=20),
        ),
        max_size=60,
    )
)
def test_inventory_invariant_under_random_operations(operations):
    """Property: confirmed + held + available == capacity, always,
    whatever sequence of (possibly rejected) operations runs."""
    inventory = SeatInventory(capacity=50)
    for op, seats in operations:
        try:
            if op == "hold":
                inventory.take_hold(seats)
            elif op == "release":
                inventory.release_hold(seats)
            else:
                inventory.confirm_hold(seats)
        except InventoryError:
            pass
        assert (
            inventory.confirmed + inventory.held + inventory.available
            == inventory.capacity
        )
        assert inventory.confirmed >= 0
        assert inventory.held >= 0
        assert inventory.available >= 0


class TestFlight:
    def test_flight_owns_inventory(self):
        flight = Flight("F1", "A", "NCE", "CDG", 1000.0, 180)
        assert flight.inventory.capacity == 180
        assert not flight.sold_out

    def test_sold_out(self):
        flight = Flight("F1", "A", "NCE", "CDG", 1000.0, 2)
        flight.inventory.take_hold(2)
        assert flight.sold_out
