"""Tests for repro.identity.captcha."""

import random

import pytest

from repro.identity.captcha import CaptchaGateModel


class TestValidation:
    def test_bad_human_pass_rate(self):
        with pytest.raises(ValueError):
            CaptchaGateModel(human_pass_rate=1.2)

    def test_bad_solver_pass_rate(self):
        with pytest.raises(ValueError):
            CaptchaGateModel(solver_pass_rate=-0.1)


class TestHumanSide:
    def test_humans_mostly_pass(self):
        model = CaptchaGateModel(human_pass_rate=0.96)
        rng = random.Random(1)
        passes = sum(
            model.present_to_human(rng).passed for _ in range(2000)
        )
        assert 0.93 < passes / 2000 < 0.99

    def test_humans_pay_nothing(self):
        model = CaptchaGateModel()
        outcome = model.present_to_human(random.Random(1))
        assert outcome.cost_to_client == 0.0

    def test_human_latency_positive(self):
        model = CaptchaGateModel()
        rng = random.Random(2)
        for _ in range(50):
            assert model.present_to_human(rng).latency >= 0.0


class TestBotSide:
    def test_bot_without_solver_always_fails(self):
        model = CaptchaGateModel()
        rng = random.Random(3)
        for _ in range(20):
            outcome = model.present_to_bot(rng, uses_solver_service=False)
            assert not outcome.passed
            assert outcome.cost_to_client == 0.0

    def test_solver_charges_per_attempt(self):
        """Solver services bill on submission, pass or fail — this is
        the 'adds cost to automated attacks' economics."""
        model = CaptchaGateModel(solver_cost_per_solve=0.002)
        rng = random.Random(4)
        total = sum(
            model.present_to_bot(rng).cost_to_client for _ in range(100)
        )
        assert total == pytest.approx(0.2)

    def test_solver_mostly_passes(self):
        model = CaptchaGateModel(solver_pass_rate=0.92)
        rng = random.Random(5)
        passes = sum(model.present_to_bot(rng).passed for _ in range(2000))
        assert 0.88 < passes / 2000 < 0.96

    def test_solver_slower_than_humans(self):
        model = CaptchaGateModel()
        rng = random.Random(6)
        human = sum(
            model.present_to_human(rng).latency for _ in range(500)
        )
        solver = sum(
            model.present_to_bot(rng).latency for _ in range(500)
        )
        assert solver > human
