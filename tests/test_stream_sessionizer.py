"""Tests for repro.stream.sessionizer — incremental == batch."""

import random

import pytest

from repro.common import ClientRef, LEGIT
from repro.stream import StreamSessionizer
from repro.web.logs import LogEntry, WebLog, sessionize


def make_entry(time, ip="1.1.1.1", fingerprint="fp1", path="/search"):
    return LogEntry(
        time=time,
        method="GET",
        path=path,
        status=200,
        client=ClientRef(
            ip_address=ip,
            ip_country="US",
            ip_residential=True,
            fingerprint_id=fingerprint,
            user_agent="UA",
            actor_class=LEGIT,
        ),
    )


def random_entries(seed, count=400, clients=12, max_step=600.0):
    """A deterministic, time-ordered stream with idle gaps both above
    and below the sessionization threshold."""
    rng = random.Random(seed)
    now = 0.0
    entries = []
    for _ in range(count):
        now += rng.uniform(0.0, max_step) * (
            10.0 if rng.random() < 0.05 else 1.0
        )
        client = rng.randrange(clients)
        entries.append(
            make_entry(now, ip=f"ip{client % 5}", fingerprint=f"fp{client}")
        )
    return entries


def stream_all(entries, **kwargs):
    """Feed every entry, collecting incrementally-closed sessions plus
    the final flush."""
    sessionizer = StreamSessionizer(**kwargs)
    sessions = []
    for entry in entries:
        sessions.extend(sessionizer.observe(entry))
    sessions.extend(sessionizer.flush())
    return sessionizer, sessions


def as_comparable(sessions):
    return sorted(
        (s.session_id, s.ip_address, s.fingerprint_id,
         tuple(e.time for e in s.entries))
        for s in sessions
    )


class TestStreamSessionizer:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_equivalent_to_batch_sessionize(self, seed):
        entries = random_entries(seed)
        log = WebLog()
        for entry in entries:
            log.append(entry)
        batch = sessionize(log)
        _, stream = stream_all(entries)
        assert as_comparable(stream) == as_comparable(batch)

    def test_close_idle_does_not_change_the_result(self):
        entries = random_entries(7)
        sessionizer = StreamSessionizer()
        sessions = []
        for i, entry in enumerate(entries):
            sessions.extend(sessionizer.observe(entry))
            if i % 10 == 0:
                sessions.extend(sessionizer.close_idle())
        sessions.extend(sessionizer.flush())
        log = WebLog()
        for entry in entries:
            log.append(entry)
        assert as_comparable(sessions) == as_comparable(sessionize(log))

    def test_close_idle_bounds_open_sessions(self):
        sessionizer = StreamSessionizer(idle_gap=10.0)
        for i in range(100):
            sessionizer.observe(make_entry(float(i * 100), ip=f"ip{i}"))
            sessionizer.close_idle()
        assert sessionizer.open_sessions == 1
        assert sessionizer.peak_open_sessions <= 2

    def test_idle_gap_boundary_matches_batch(self):
        # Exactly at the gap stays in-session (batch semantics).
        entries = [make_entry(0.0), make_entry(30 * 60.0)]
        _, sessions = stream_all(entries)
        assert len(sessions) == 1
        # One tick past the gap splits.
        entries = [make_entry(0.0), make_entry(30 * 60.0 + 1)]
        _, sessions = stream_all(entries)
        assert len(sessions) == 2

    def test_out_of_order_entry_rejected_like_weblog(self):
        sessionizer = StreamSessionizer()
        sessionizer.observe(make_entry(5.0))
        with pytest.raises(ValueError, match=r"time-ordered: 4\.0 < 5\.0"):
            sessionizer.observe(make_entry(4.0))

    def test_session_ids_match_batch_assignment(self):
        entries = [
            make_entry(0.0, ip="a"),
            make_entry(1.0, ip="b"),
            make_entry(2.0, ip="a"),
        ]
        _, stream = stream_all(entries)
        by_ip = {s.ip_address: s.session_id for s in stream}
        assert by_ip == {"a": "S0000001", "b": "S0000002"}

    def test_max_open_sessions_forces_oldest_closed(self):
        sessionizer = StreamSessionizer(max_open_sessions=2)
        closed = []
        for i in range(4):
            closed.extend(
                sessionizer.observe(make_entry(float(i), ip=f"ip{i}"))
            )
        assert sessionizer.forced_closes == 2
        assert sessionizer.open_sessions == 2
        assert [s.ip_address for s in closed] == ["ip0", "ip1"]

    def test_invalid_idle_gap(self):
        with pytest.raises(ValueError):
            StreamSessionizer(idle_gap=0.0)

    def test_open_session_for(self):
        sessionizer = StreamSessionizer()
        entry = make_entry(1.0)
        sessionizer.observe(entry)
        key = (entry.client.ip_address, entry.client.fingerprint_id)
        assert sessionizer.open_session_for(key).entries == [entry]
        assert sessionizer.open_session_for(("x", "y")) is None

    def test_hot_session_never_idle_evicted(self):
        """Regression for the KeyedStore read-path fix: a session whose
        entries arrive steadily (each within the idle gap of the last)
        must survive close_idle indefinitely — observe() is a touching
        read, so event-time progress counts as activity."""
        sessionizer = StreamSessionizer(idle_gap=10.0)
        now = 0.0
        for _ in range(50):
            sessionizer.observe(make_entry(now))
            assert sessionizer.close_idle(now) == []
            now += 9.0
        assert sessionizer.open_sessions == 1
        [session] = sessionizer.flush()
        assert len(session.entries) == 50

    def test_open_session_for_does_not_keep_session_alive(self):
        """Introspection is deliberately non-touching: peeking at an
        open session must not postpone its idle eviction."""
        sessionizer = StreamSessionizer(idle_gap=10.0)
        entry = make_entry(0.0)
        sessionizer.observe(entry)
        key = (entry.client.ip_address, entry.client.fingerprint_id)
        assert sessionizer.open_session_for(key) is not None
        closed = sessionizer.close_idle(now=100.0)
        assert [s.ip_address for s in closed] == [entry.client.ip_address]
        assert sessionizer.open_session_for(key) is None
