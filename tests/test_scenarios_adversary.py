"""Cases D/E, the adaptive attacker, and the whole-portfolio scenario.

Three layers of coverage for the :mod:`repro.adversary` additions:

* the :class:`~repro.adversary.attacker.AdaptiveAttacker` policy in
  isolation, driven by scripted channels with known P&L trajectories;
* the Case D / Case E end-to-end economics (the defense wins by
  pushing ROI negative, not by perfect blocking), plus the
  stream-equivalence property of both new record-scoring families;
* the portfolio headline: every single-case defense leaves the
  adaptive attacker an open profitable channel; the layered posture
  collapses every channel and the operation retires net negative.
"""

import pytest

from repro.adversary import AdaptiveAttacker
from repro.core.detection.numbers import (
    NumberReputationScorer,
    score_sms_records,
)
from repro.core.detection.surge import DestinationSurgeScorer
from repro.scenarios.case_d import (
    CaseDConfig,
    NUMBER_REPUTATION_DEFENSE,
    run_case_d,
)
from repro.scenarios.case_e import (
    CaseEConfig,
    DESTINATION_SURGE_DEFENSE,
    run_case_e,
)
from repro.scenarios.portfolio import (
    DEFENSE_ALL,
    DEFENSE_CASE_D,
    DEFENSE_NONE,
    PortfolioConfig,
    run_portfolio,
)
from repro.sim.clock import HOUR
from repro.sim.events import EventLoop
from repro.stream import NumberReputationAdapter, RecordFeed


# --------------------------------------------------------------------------
# The adaptive attacker policy, on scripted channels.
# --------------------------------------------------------------------------

class ScriptedChannel:
    """A channel whose P&L accrues at fixed hourly rates while active."""

    def __init__(self, loop, name, earn_per_hour, spend_per_hour):
        self.loop = loop
        self.name = name
        self.earn_per_hour = earn_per_hour
        self.spend_per_hour = spend_per_hour
        self.activations = 0
        self._active_since = None
        self._spent = 0.0
        self._earned = 0.0

    def _settle(self):
        if self._active_since is not None:
            hours = (self.loop.now - self._active_since) / HOUR
            self._spent += hours * self.spend_per_hour
            self._earned += hours * self.earn_per_hour
            self._active_since = self.loop.now

    def activate(self, at=None):
        self.activations += 1
        self._active_since = self.loop.now

    def deactivate(self):
        self._settle()
        self._active_since = None

    def spent(self):
        self._settle()
        return self._spent

    def earned(self):
        self._settle()
        return self._earned


class TestAdaptiveAttacker:
    def _run(self, channels_spec, until=48 * HOUR, **kwargs):
        loop = EventLoop()
        channels = [
            ScriptedChannel(loop, name, earn, spend)
            for name, earn, spend in channels_spec
        ]
        attacker = AdaptiveAttacker(loop, channels, **kwargs)
        attacker.start(at=0.0)
        loop.run_until(until)
        return attacker

    def test_profitable_channel_is_kept(self):
        attacker = self._run([("gold", 10.0, 1.0)], budget=10_000.0)
        assert not attacker.retired
        assert attacker.active_channel == "gold"
        assert [d.action for d in attacker.decisions] == ["activate"]

    def test_losing_channels_tried_in_order_then_retire(self):
        attacker = self._run(
            [("first", 0.0, 1.0), ("second", 0.0, 1.0)],
            budget=10_000.0,
            max_activations=1,
        )
        assert attacker.retired
        assert [
            (d.action, d.channel) for d in attacker.decisions
        ] == [
            ("activate", "first"),
            ("bench", "first"),
            ("activate", "second"),
            ("bench", "second"),
            ("retire", ""),
        ]

    def test_attacker_moves_to_the_open_channel(self):
        attacker = self._run(
            [("closed", 0.0, 1.0), ("open", 5.0, 1.0)], budget=10_000.0
        )
        assert not attacker.retired
        assert attacker.active_channel == "open"
        assert attacker.total_earned() > attacker.total_spent()

    def test_zero_spend_earner_is_not_benched(self):
        # Regression: a channel whose marginal window spend is zero but
        # which still earns (seat spinning between proxy rotations) must
        # read as infinitely good, not dead.
        attacker = self._run([("free", 2.0, 0.0)], budget=100.0)
        assert not attacker.retired
        assert attacker.active_channel == "free"

    def test_budget_exhaustion_stops_the_operation(self):
        # Profitable per window, so the policy never benches it — the
        # shared budget is what finally stops the spend.
        attacker = self._run(
            [("burner", 150.0, 100.0)], budget=300.0, until=96 * HOUR
        )
        assert attacker.retired
        assert attacker.decisions[-1].action == "budget-exhausted"
        # Spend may overshoot by at most one reassessment window.
        assert attacker.total_spent() >= 300.0

    def test_infrastructure_accrues_even_while_losing(self):
        attacker = self._run(
            [("dud", 0.0, 1.0)],
            budget=10_000.0,
            max_activations=1,
            infrastructure_per_day=24.0,
        )
        assert attacker.retired
        assert attacker.infrastructure_cost > 0.0
        assert attacker.net < 0.0

    def test_validation(self):
        loop = EventLoop()
        with pytest.raises(ValueError, match="at least one channel"):
            AdaptiveAttacker(loop, [])
        channel = ScriptedChannel(loop, "x", 1.0, 1.0)
        with pytest.raises(ValueError, match="budget"):
            AdaptiveAttacker(loop, [channel], budget=0.0)
        with pytest.raises(ValueError, match="reassess_interval"):
            AdaptiveAttacker(loop, [channel], reassess_interval=0.0)


# --------------------------------------------------------------------------
# Case D: OTP abuse via disposable-number cycling.
# --------------------------------------------------------------------------

class TestCaseD:
    @pytest.fixture(scope="class")
    def unprotected(self):
        return run_case_d(CaseDConfig())

    @pytest.fixture(scope="class")
    def defended(self):
        return run_case_d(CaseDConfig(variant=NUMBER_REPUTATION_DEFENSE))

    def test_unprotected_campaign_is_profitable(self, unprotected):
        assert unprotected.attacker_roi > 0.0
        assert unprotected.attacker_ledger.net > 0.0
        # Each rental amortises over roughly the planned batch size.
        assert unprotected.mean_otps_per_number > 10.0

    def test_defense_caps_reuse_at_threshold(self, defended):
        config = defended.config
        assert defended.mean_otps_per_number <= config.reuse_threshold + 0.5
        assert defended.burned_numbers > 0

    def test_defense_turns_roi_negative(self, unprotected, defended):
        assert defended.attacker_roi < 0.0
        assert defended.attacker_ledger.net < 0.0
        assert defended.attacker_otps_delivered < (
            unprotected.attacker_otps_delivered
        )

    def test_defense_reacts_quickly(self, defended):
        assert defended.time_to_first_block is not None
        assert defended.time_to_first_block < 1 * HOUR
        assert defended.online_actions > 0

    def test_legit_traffic_survives(self, unprotected, defended):
        assert defended.legit_fp_conviction_rate < 0.01
        # The defense costs the legitimate OTP flow almost nothing.
        assert defended.legit_otps_delivered > (
            0.95 * unprotected.legit_otps_delivered
        )

    def test_rentals_concentrate_in_colluding_markets(self, unprotected):
        by_country = unprotected.bot.rental.rentals_by_country
        assert by_country
        assert all(count > 0 for count in by_country.values())

    def test_variant_validation(self):
        with pytest.raises(ValueError, match="unknown variant"):
            CaseDConfig(variant="nope")
        with pytest.raises(ValueError, match="attack_start"):
            CaseDConfig(attack_start=10.0, duration=5.0)


# --------------------------------------------------------------------------
# Case E: agent-based notification amplification.
# --------------------------------------------------------------------------

class TestCaseE:
    @pytest.fixture(scope="class")
    def unprotected(self):
        return run_case_e(CaseEConfig())

    @pytest.fixture(scope="class")
    def defended(self):
        return run_case_e(CaseEConfig(variant=DESTINATION_SURGE_DEFENSE))

    def test_unprotected_flood_lands(self, unprotected):
        assert unprotected.victim_messages_delivered > 1_000
        assert unprotected.attacker_roi > 0.0

    def test_defense_suppresses_the_flood(self, unprotected, defended):
        assert defended.victim_messages_delivered < (
            0.05 * unprotected.victim_messages_delivered
        )
        assert defended.attacker_roi < 0.0

    def test_surge_detected_and_cap_installed(self, defended):
        assert defended.surge_events > 0
        assert defended.time_to_first_block is not None
        assert defended.cap_installed_at is not None
        assert defended.cap_installed_at < defended.config.duration

    def test_collateral_damage_is_accounted_and_small(
        self, unprotected, defended
    ):
        assert defended.legit_fp_conviction_rate < 0.01
        assert defended.legit_notifications_delivered > (
            0.95 * unprotected.legit_notifications_delivered
        )

    def test_variant_validation(self):
        with pytest.raises(ValueError, match="unknown variant"):
            CaseEConfig(variant="nope")


# --------------------------------------------------------------------------
# Stream/batch equivalence of the two new record families.
# --------------------------------------------------------------------------

class TestRecordFamilyStreamEquivalence:
    """Draining records entry-by-entry through the adapter must produce
    exactly the verdicts of batch-scoring the finished record log."""

    def _incremental(self, records, adapter):
        growing = []
        feed = RecordFeed(growing)
        adapter.attach(feed)
        verdicts = []
        for record in records:
            growing.append(record)
            verdicts.extend(adapter.on_entry(None, now=record.time))
        verdicts.extend(adapter.end_of_stream())
        return verdicts

    def test_number_reputation_stream_equals_batch(self):
        result = run_case_d(CaseDConfig())
        records = list(result.world.sms.records)
        batch = score_sms_records(
            records, NumberReputationScorer(reuse_threshold=5)
        )
        adapter = NumberReputationAdapter(reuse_threshold=5)
        stream = self._incremental(records, adapter)
        assert stream == batch
        assert batch  # the unprotected campaign does trip the family

    def test_destination_surge_stream_equals_batch(self):
        result = run_case_e(CaseEConfig())
        records = list(result.world.sms.records)
        batch_scorer = DestinationSurgeScorer(
            window=600.0, flood_threshold=30
        )
        batch = score_sms_records(records, batch_scorer)
        from repro.stream import DestinationSurgeAdapter

        adapter = DestinationSurgeAdapter(
            window=600.0, flood_threshold=30
        )
        stream = self._incremental(records, adapter)
        assert stream == batch
        assert batch
        assert (
            adapter.scorer.convicted_fingerprints
            == batch_scorer.convicted_fingerprints
        )


# --------------------------------------------------------------------------
# The portfolio: adaptive attacker vs defense postures.
# --------------------------------------------------------------------------

class TestPortfolio:
    @pytest.fixture(scope="class")
    def undefended(self):
        return run_portfolio(PortfolioConfig(defense=DEFENSE_NONE))

    @pytest.fixture(scope="class")
    def single_defense(self):
        return run_portfolio(PortfolioConfig(defense=DEFENSE_CASE_D))

    @pytest.fixture(scope="class")
    def layered(self):
        return run_portfolio(PortfolioConfig(defense=DEFENSE_ALL))

    def test_undefended_attacker_profits(self, undefended):
        assert undefended.attacker_net > 0.0
        assert undefended.attacker_roi > 0.0
        assert not undefended.retired

    def test_single_defense_leaves_an_open_channel(self, single_defense):
        # Case D's number reputation closes OTP cycling, but the
        # attacker simply keeps funding a channel it does not touch.
        assert single_defense.attacker_net > 0.0
        assert not single_defense.retired

    def test_layered_defense_forces_retirement(self, layered):
        assert layered.retired
        assert layered.attacker_net < 0.0
        assert layered.attacker_roi < 0.0

    def test_layered_defense_tries_every_channel_first(self, layered):
        activated = {
            d["channel"]
            for d in layered.decisions
            if d["action"] == "activate"
        }
        assert activated == {c.name for c in layered.channels}

    def test_infrastructure_burn_is_on_the_books(self, layered):
        assert layered.infrastructure_cost > 0.0
        assert layered.attacker_spent >= layered.infrastructure_cost

    def test_no_collateral_on_legit_traffic(self, layered):
        assert layered.legit_fp_conviction_rate < 0.01

    def test_defense_validation(self):
        with pytest.raises(ValueError, match="unknown defense"):
            PortfolioConfig(defense="case-z")
