"""Tests for repro.sim.metrics."""

import pytest

from repro.sim.metrics import MetricsRecorder, summarise


class TestCounters:
    def test_default_zero(self):
        assert MetricsRecorder().counter("missing") == 0.0

    def test_increment_accumulates(self):
        metrics = MetricsRecorder()
        metrics.increment("hits")
        metrics.increment("hits", 2.5)
        assert metrics.counter("hits") == 3.5

    def test_prefix_filter(self):
        metrics = MetricsRecorder()
        metrics.increment("sms.sent")
        metrics.increment("sms.rejected")
        metrics.increment("web.requests")
        assert set(metrics.counters("sms.")) == {"sms.sent", "sms.rejected"}


class TestGauges:
    def test_last_write_wins(self):
        metrics = MetricsRecorder()
        metrics.set_gauge("load", 0.4)
        metrics.set_gauge("load", 0.9)
        assert metrics.gauge("load") == 0.9

    def test_default(self):
        assert MetricsRecorder().gauge("none", default=1.5) == 1.5


class TestSeries:
    def test_record_and_read(self):
        metrics = MetricsRecorder()
        metrics.record("nip", 1.0, 2.0)
        metrics.record("nip", 3.0, 6.0)
        assert metrics.series_values("nip") == [2.0, 6.0]

    def test_time_must_be_nondecreasing(self):
        metrics = MetricsRecorder()
        metrics.record("nip", 5.0, 1.0)
        with pytest.raises(ValueError):
            metrics.record("nip", 4.0, 1.0)

    def test_equal_times_allowed(self):
        metrics = MetricsRecorder()
        metrics.record("nip", 5.0, 1.0)
        metrics.record("nip", 5.0, 2.0)
        assert len(metrics.series("nip")) == 2

    def test_series_names_prefix(self):
        metrics = MetricsRecorder()
        metrics.record("a.x", 0.0, 1.0)
        metrics.record("a.y", 0.0, 1.0)
        metrics.record("b.z", 0.0, 1.0)
        assert metrics.series_names("a.") == ["a.x", "a.y"]

    def test_sum_between_half_open(self):
        metrics = MetricsRecorder()
        for t in (0.0, 1.0, 2.0, 3.0):
            metrics.record("events", t, 1.0)
        assert metrics.series_sum_between("events", 1.0, 3.0) == 2.0

    def test_empty_series(self):
        assert MetricsRecorder().series("nothing") == []


class TestBucketing:
    def test_bucket_counts(self):
        metrics = MetricsRecorder()
        for t in (0.5, 1.5, 1.7, 2.9):
            metrics.record("e", t, 1.0)
        buckets = metrics.bucket_series("e", 1.0, 0.0, 3.0)
        assert buckets == [(0.0, 1.0), (1.0, 2.0), (2.0, 1.0)]

    def test_empty_buckets_present(self):
        metrics = MetricsRecorder()
        metrics.record("e", 2.5, 1.0)
        buckets = metrics.bucket_series("e", 1.0, 0.0, 3.0)
        assert buckets[0] == (0.0, 0.0)
        assert buckets[1] == (1.0, 0.0)

    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            MetricsRecorder().bucket_series("e", 0.0, 0.0, 1.0)


class TestMerge:
    def test_merge_counters_and_series(self):
        a = MetricsRecorder()
        b = MetricsRecorder()
        a.increment("hits", 2)
        b.increment("hits", 3)
        a.record("s", 1.0, 1.0)
        b.record("s", 0.5, 2.0)
        a.merge(b)
        assert a.counter("hits") == 5
        assert [p.time for p in a.series("s")] == [0.5, 1.0]


class TestSummarise:
    def test_empty(self):
        assert summarise([]) == {
            "count": 0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
        }

    def test_basic(self):
        summary = summarise([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
