"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_param, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["launch-missiles"])

    def test_case_c_variant_choices(self):
        args = build_parser().parse_args(["case-c", "--variant", "per-ref"])
        assert args.variant == "per-ref"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["case-c", "--variant", "firewall"])

    def test_seed_override(self):
        args = build_parser().parse_args(["fig1", "--seed", "99"])
        assert args.seed == 99


class TestCommands:
    """Each command runs end-to-end at reduced scale and prints a table."""

    def test_case_b(self, capsys):
        assert main(["case-b"]) == 0
        out = capsys.readouterr().out
        assert "automated coverage" in out
        assert "manual coverage" in out

    def test_table1_scaled(self, capsys):
        assert main(["table1", "--scale", "10"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "UZ" in out

    def test_case_c_scaled_per_ref(self, capsys):
        assert main(
            ["case-c", "--scale", "10", "--variant", "per-ref"]
        ) == 0
        out = capsys.readouterr().out
        assert "detection latency" in out
        assert "per-ref" in out

    def test_behavioural(self, capsys):
        assert main(["behavioural"]) == 0
        out = capsys.readouterr().out
        assert "fusion" in out
        assert "biometrics" in out

    def test_detectors(self, capsys):
        assert main(["detectors"]) == 0
        out = capsys.readouterr().out
        assert "abuse-pipeline" in out


class TestStreamCommands:
    """The streaming/replay surface: capture a run, replay the trace."""

    def test_stream_capture_then_replay(self, capsys, tmp_path):
        trace = str(tmp_path / "run.rptr")
        assert main(["stream", "--capture", trace]) == 0
        out = capsys.readouterr().out
        assert "time to first block" in out
        assert "trace captured" in out

        assert main(["replay", trace, "--compare-batch"]) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "batch equivalence: OK" in out

    def test_stream_ablation_never_blocks(self, capsys):
        assert main(["stream", "--no-streaming"]) == 0
        out = capsys.readouterr().out
        assert "off" in out
        assert "| -" in out  # no first block without the pipeline

    def test_graph_case_a_short(self, capsys):
        assert main(["graph", "case-a", "--ticks-short"]) == 0
        out = capsys.readouterr().out
        assert "session-fusion" in out
        assert "graph-fusion" in out
        assert "campaign recall" in out
        assert "C001" in out

    def test_graph_rejects_unknown_case(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["graph", "case-z"])

    def test_replay_rejects_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.rptr"
        bad.write_bytes(b"not a trace at all")
        from repro.trace import TraceCorruption

        with pytest.raises(TraceCorruption):
            main(["replay", str(bad)])


class TestSweepCommand:
    """The repro.runner-backed sweep/replication surface."""

    def test_param_parsing(self):
        assert _parse_param("hold_ttl=1800,7200.5") == (
            "hold_ttl", [1800, 7200.5]
        )
        assert _parse_param("cap_at=None") == ("cap_at", [None])
        assert _parse_param("variant=per-ref") == ("variant", ["per-ref"])
        with pytest.raises(Exception):
            _parse_param("no-equals-sign")

    def test_sweep_requires_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_sweep_rejects_unknown_scenario(self, capsys):
        # Usage errors exit 2 with the registry's message, no traceback.
        assert main(["sweep", "--scenario", "case-z"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'case-z'" in err
        assert "registered:" in err
        assert "case-a" in err

    def test_replicated_command_rejects_unknown_scenario(self, capsys):
        from repro.cli import _run_replicated
        import argparse

        args = argparse.Namespace(
            reps=2, workers=1, seed=1, cache_dir=None
        )
        assert _run_replicated("case-z", {}, args) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenarios_lists_the_registry(self, capsys):
        from repro.runner import scenario_names

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out
        assert "PortfolioConfig" in out
        assert "CaseDConfig" in out

    def test_sweep_small_case_a(self, capsys):
        assert main([
            "sweep", "--scenario", "case-a",
            "--param", "visitor_rate_per_hour=5.0",
            "--param", "attack_start=86400",
            "--param", "cap_at=None",
            "--param", "departure_time=259200",
            "--param", "target_capacity=120",
            "--param", "attacker_target_seats=60",
            "--param", "hold_ttl=7200,18000",
            "--reps", "2",
            "--metric", "attacker_holds_created",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 points x 2 replications" in out
        assert "attacker_holds_created" in out
        assert "+/-" in out

    def test_case_d_defended(self, capsys):
        assert main(["case-d", "--variant", "number-reputation"]) == 0
        out = capsys.readouterr().out
        assert "Case D" in out
        assert "numbers rented" in out
        assert "attacker ROI" in out

    def test_case_e_defended(self, capsys):
        assert main(["case-e", "--variant", "destination-surge"]) == 0
        out = capsys.readouterr().out
        assert "Case E" in out
        assert "destination cap installed" in out

    def test_portfolio_layered(self, capsys):
        assert main(["portfolio", "--defense", "all"]) == 0
        out = capsys.readouterr().out
        assert "defense='all'" in out
        assert "attacker decision journal" in out
        assert "retire" in out

    def test_portfolio_rejects_unknown_defense(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["portfolio", "--defense", "case-z"])

    def test_case_b_replicated(self, capsys):
        assert main([
            "case-b", "--reps", "2", "--seed", "25",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 replications" in out
        assert "automated_coverage" in out
