"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["launch-missiles"])

    def test_case_c_variant_choices(self):
        args = build_parser().parse_args(["case-c", "--variant", "per-ref"])
        assert args.variant == "per-ref"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["case-c", "--variant", "firewall"])

    def test_seed_override(self):
        args = build_parser().parse_args(["fig1", "--seed", "99"])
        assert args.seed == 99


class TestCommands:
    """Each command runs end-to-end at reduced scale and prints a table."""

    def test_case_b(self, capsys):
        assert main(["case-b"]) == 0
        out = capsys.readouterr().out
        assert "automated coverage" in out
        assert "manual coverage" in out

    def test_table1_scaled(self, capsys):
        assert main(["table1", "--scale", "10"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "UZ" in out

    def test_case_c_scaled_per_ref(self, capsys):
        assert main(
            ["case-c", "--scale", "10", "--variant", "per-ref"]
        ) == 0
        out = capsys.readouterr().out
        assert "detection latency" in out
        assert "per-ref" in out

    def test_behavioural(self, capsys):
        assert main(["behavioural"]) == 0
        out = capsys.readouterr().out
        assert "fusion" in out
        assert "biometrics" in out

    def test_detectors(self, capsys):
        assert main(["detectors"]) == 0
        out = capsys.readouterr().out
        assert "abuse-pipeline" in out
