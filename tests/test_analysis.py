"""Tests for repro.analysis: distributions, evaluation, reports."""

import pytest

from repro.analysis.distributions import (
    nip_counts,
    nip_shares,
    share_of,
    weekly_nip_table,
)
from repro.analysis.evaluation import (
    BinaryEvaluation,
    evaluate_verdicts,
    false_positive_sessions,
    recall_by_class,
)
from repro.analysis.reports import (
    format_percent,
    render_distribution,
    render_table,
    render_weekly_nip,
)
from repro.booking.passengers import Passenger
from repro.booking.reservation import BookingRecord
from repro.common import ClientRef, LEGIT, SCRAPER, SEAT_SPINNER
from repro.core.detection.verdict import Verdict
from repro.web.logs import LogEntry, Session


def record(time, nip, outcome="held", flight_id="F1"):
    passengers = tuple(
        Passenger("A", "B", "1990-01-01", "a@b.c") for _ in range(nip)
    )
    return BookingRecord(
        time=time,
        flight_id=flight_id,
        nip=nip,
        outcome=outcome,
        hold_id=f"H{time}",
        passengers=passengers,
        client=ClientRef("1.1.1.1", "US", True, "fp", "UA"),
        price_quoted=100.0,
        shadow=False,
    )


class TestDistributions:
    def test_nip_counts_window_and_outcome(self):
        records = [
            record(0.0, 1),
            record(5.0, 2),
            record(5.0, 2, outcome="nip-exceeds-cap"),
            record(15.0, 6),
        ]
        counts = nip_counts(records, start=0.0, end=10.0)
        assert counts == {1: 1, 2: 1}

    def test_nip_counts_flight_filter(self):
        records = [record(0.0, 1), record(1.0, 2, flight_id="F2")]
        assert nip_counts(records, flight_id="F2") == {2: 1}

    def test_nip_shares(self):
        assert nip_shares({1: 3, 2: 1}) == {1: 0.75, 2: 0.25}

    def test_nip_shares_empty(self):
        assert nip_shares({}) == {}

    def test_share_of(self):
        assert share_of({1: 3, 6: 1}, 6) == 0.25
        assert share_of({}, 6) == 0.0

    def test_weekly_table(self):
        records = [record(0.0, 1), record(5.0, 2), record(10.0, 6)]
        rows = weekly_nip_table(
            records, week_starts=[0.0, 10.0], week_length=10.0
        )
        assert rows[0][1] == 0.5
        assert rows[0][2] == 0.5
        assert rows[1][6] == 1.0
        assert rows[0][9] == 0.0  # padded to max_nip


def session(session_id, actor_class):
    client = ClientRef(
        "1.1.1.1", "US", True, "fp", "UA", actor_class=actor_class
    )
    entry = LogEntry(
        time=0.0, method="GET", path="/search", status=200, client=client
    )
    return Session(session_id, "1.1.1.1", "fp", [entry])


def verdict(session_id, is_bot):
    return Verdict(
        subject_id=session_id,
        detector="test",
        score=1.0 if is_bot else 0.0,
        is_bot=is_bot,
    )


class TestEvaluation:
    def test_confusion_matrix(self):
        sessions = [
            session("S1", SCRAPER),
            session("S2", SCRAPER),
            session("S3", LEGIT),
            session("S4", LEGIT),
        ]
        verdicts = [
            verdict("S1", True),   # TP
            verdict("S2", False),  # FN
            verdict("S3", True),   # FP
            verdict("S4", False),  # TN
        ]
        evaluation = evaluate_verdicts(sessions, verdicts)
        assert evaluation.true_positives == 1
        assert evaluation.false_negatives == 1
        assert evaluation.false_positives == 1
        assert evaluation.true_negatives == 1
        assert evaluation.precision == 0.5
        assert evaluation.recall == 0.5
        assert evaluation.f1 == 0.5
        assert evaluation.false_positive_rate == 0.5
        assert evaluation.total == 4

    def test_missing_verdicts_count_as_benign(self):
        sessions = [session("S1", SCRAPER), session("S2", LEGIT)]
        evaluation = evaluate_verdicts(sessions, [])
        assert evaluation.false_negatives == 1
        assert evaluation.true_negatives == 1

    def test_recall_by_class(self):
        sessions = [
            session("S1", SCRAPER),
            session("S2", SEAT_SPINNER),
            session("S3", SEAT_SPINNER),
            session("S4", LEGIT),
        ]
        verdicts = [verdict("S1", True), verdict("S2", True)]
        recalls = recall_by_class(sessions, verdicts)
        assert recalls[SCRAPER] == 1.0
        assert recalls[SEAT_SPINNER] == 0.5
        assert LEGIT not in recalls

    def test_false_positive_sessions(self):
        sessions = [session("S1", LEGIT), session("S2", LEGIT)]
        verdicts = [verdict("S1", True)]
        fps = false_positive_sessions(sessions, verdicts)
        assert [s.session_id for s in fps] == ["S1"]

    def test_empty_evaluation_metrics(self):
        evaluation = BinaryEvaluation(0, 0, 0, 0)
        assert evaluation.precision == 0.0
        assert evaluation.recall == 0.0
        assert evaluation.f1 == 0.0


class TestReports:
    def test_format_percent_table1_style(self):
        assert format_percent(160209.0) == "160,209%"
        assert format_percent(19.0) == "19%"
        assert format_percent(float("inf")) == "inf%"

    def test_render_table_alignment(self):
        text = render_table(
            ["Country", "Increase"],
            [["Uzbekistan", "160,209%"], ["Iran", "66,095%"]],
            title="Table I",
        )
        lines = text.splitlines()
        assert lines[0] == "Table I"
        assert "Country" in lines[1]
        assert "Uzbekistan" in lines[3]

    def test_render_table_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_distribution(self):
        text = render_distribution({1: 0.5, 2: 0.3, 6: 0.2}, title="NiP")
        assert text.splitlines()[0] == "NiP"
        assert "50.00%" in text

    def test_render_weekly_nip(self):
        rows = [{1: 0.5, 2: 0.5}, {1: 0.2, 6: 0.8}]
        text = render_weekly_nip(rows, ["average", "attack"])
        assert "average" in text
        assert "attack" in text
        assert "80.00%" in text

    def test_render_weekly_nip_label_mismatch(self):
        with pytest.raises(ValueError):
            render_weekly_nip([{1: 1.0}], ["a", "b"])
