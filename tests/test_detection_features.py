"""Tests for repro.core.detection.features and volume detection."""

import pytest

from repro.common import ClientRef, LEGIT
from repro.core.detection.features import (
    FEATURE_NAMES,
    extract_features,
    feature_matrix,
)
from repro.core.detection.volume import VolumeDetector, VolumeThresholds
from repro.web.logs import LogEntry, Session
from repro.web.request import HOLD, PAY, SEARCH


def make_session(times_paths, session_id="S1", statuses=None):
    client = ClientRef(
        ip_address="1.1.1.1",
        ip_country="US",
        ip_residential=True,
        fingerprint_id="fp",
        user_agent="UA",
        actor_class=LEGIT,
    )
    entries = []
    for index, (time, path) in enumerate(times_paths):
        status = statuses[index] if statuses else 200
        method = "GET" if path == SEARCH else "POST"
        entries.append(
            LogEntry(
                time=time,
                method=method,
                path=path,
                status=status,
                client=client,
            )
        )
    return Session(
        session_id=session_id,
        ip_address="1.1.1.1",
        fingerprint_id="fp",
        entries=entries,
    )


class TestExtractFeatures:
    def test_counts(self):
        session = make_session(
            [(0.0, SEARCH), (10.0, HOLD), (20.0, HOLD), (30.0, PAY)]
        )
        features = extract_features(session)
        assert features.request_count == 4
        assert features.search_count == 1
        assert features.hold_count == 2
        assert features.pay_count == 1
        assert features.hold_to_pay_gap == 1
        assert features.get_fraction == 0.25
        assert features.post_fraction == 0.75

    def test_timing_statistics(self):
        session = make_session([(0.0, SEARCH), (10.0, SEARCH), (20.0, SEARCH)])
        features = extract_features(session)
        assert features.mean_interrequest == 10.0
        assert features.cv_interrequest == 0.0  # perfectly regular

    def test_irregular_timing_has_cv(self):
        session = make_session([(0.0, SEARCH), (1.0, SEARCH), (100.0, SEARCH)])
        assert extract_features(session).cv_interrequest > 0.5

    def test_single_request_session(self):
        features = extract_features(make_session([(5.0, SEARCH)]))
        assert features.request_count == 1
        assert features.duration_minutes == 0.0
        assert features.mean_interrequest == 0.0
        assert features.requests_per_minute == 1.0  # 1-minute floor

    def test_error_fraction(self):
        session = make_session(
            [(0.0, SEARCH), (1.0, SEARCH)], statuses=[200, 403]
        )
        assert extract_features(session).error_fraction == 0.5

    def test_vector_matches_names(self):
        features = extract_features(make_session([(0.0, SEARCH)]))
        vector = features.vector()
        assert len(vector) == len(FEATURE_NAMES)
        assert vector[FEATURE_NAMES.index("request_count")] == 1

    def test_feature_matrix_shape(self):
        sessions = [
            make_session([(0.0, SEARCH)], session_id=f"S{i}")
            for i in range(3)
        ]
        assert feature_matrix(sessions).shape == (3, len(FEATURE_NAMES))

    def test_empty_matrix(self):
        assert feature_matrix([]).shape == (0, len(FEATURE_NAMES))


class TestVolumeDetector:
    def test_low_volume_session_clean(self):
        detector = VolumeDetector()
        session = make_session([(0.0, SEARCH), (60.0, HOLD), (120.0, PAY)])
        verdict = detector.judge(session)
        assert not verdict.is_bot
        assert verdict.score < 0.5

    def test_scraper_volume_flagged(self):
        detector = VolumeDetector()
        entries = [(float(i), SEARCH) for i in range(500)]
        verdict = detector.judge(make_session(entries))
        assert verdict.is_bot
        assert "session-request-count" in verdict.reasons

    def test_high_rate_flagged(self):
        detector = VolumeDetector(
            VolumeThresholds(max_requests_per_minute=5.0)
        )
        # 100 requests in 5 minutes = 20/minute.
        entries = [(i * 3.0, SEARCH) for i in range(100)]
        verdict = detector.judge(make_session(entries))
        assert verdict.is_bot
        assert "request-rate" in verdict.reasons

    def test_short_burst_not_rate_flagged(self):
        """Three fast clicks are not a bot signature."""
        detector = VolumeDetector()
        entries = [(0.0, SEARCH), (0.5, SEARCH), (1.0, SEARCH)]
        assert not detector.judge(make_session(entries)).is_bot

    def test_low_volume_doi_evades(self):
        """The paper's core claim: a seat spinner's session volume is
        indistinguishable from a human shopper's."""
        detector = VolumeDetector()
        spinner_session = make_session(
            [(0.0, SEARCH), (30.0, HOLD), (3600.0, HOLD), (7200.0, HOLD)]
        )
        assert not detector.judge(spinner_session).is_bot

    def test_judge_all(self):
        detector = VolumeDetector()
        sessions = [
            make_session([(0.0, SEARCH)], session_id=f"S{i}")
            for i in range(4)
        ]
        verdicts = detector.judge_all(sessions)
        assert [v.subject_id for v in verdicts] == [
            "S0", "S1", "S2", "S3",
        ]
