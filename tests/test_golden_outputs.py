"""Golden regression tests for the benchmark artifacts.

The benchmarks regenerate the paper's headline figures into
``benchmarks/output/*.txt``.  These tests pin the *science* in those
artifacts — Fig. 1's NiP-share shape, Table I's surge ordering, the
ablation monotonicities — with loose tolerances, so a performance
refactor (like the parallel runner) that silently changed the
distributions would fail here even if every qualitative benchmark
assertion still passed.

They parse the committed artifacts rather than re-running the
minutes-long scenarios; re-running a benchmark rewrites its artifact,
so any drift lands in this suite on the next tier-1 run.
"""

import os
import re

import pytest

OUTPUT_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "output"
)


def artifact_lines(name):
    path = os.path.join(OUTPUT_DIR, f"{name}.txt")
    assert os.path.exists(path), (
        f"missing benchmark artifact {path}; run the {name} benchmark"
    )
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read().splitlines()


def table_rows(lines):
    """Rows of a ``render_table`` artifact as lists of cell strings."""
    rows = []
    for line in lines:
        if " | " not in line or set(line) <= set("-+ |"):
            continue
        rows.append([cell.strip() for cell in line.split("|")])
    return rows[1:]  # drop the header row


def as_number(cell):
    """A table cell like ``'160,209%'`` or ``'33.08%'`` as a float."""
    text = cell.replace(",", "").rstrip("%")
    match = re.match(r"^-?\d+(\.\d+)?", text)
    assert match, f"not numeric: {cell!r}"
    return float(match.group(0))


class TestFig1Golden:
    """Fig. 1: weekly NiP share distributions for Case A."""

    def shares(self):
        rows = table_rows(artifact_lines("fig1_nip_distribution"))
        return {
            int(row[0]): (
                as_number(row[1]),  # average week
                as_number(row[2]),  # attack week
                as_number(row[3]),  # post-cap week
            )
            for row in rows
        }

    def test_average_week_is_dominated_by_small_parties(self):
        shares = self.shares()
        average = {nip: values[0] for nip, values in shares.items()}
        # NiP 1 leads, NiP 1+2 carry the bulk, NiP 6 is marginal.
        assert average[1] == max(average.values())
        assert average[1] + average[2] > 60.0
        assert average[6] < 5.0

    def test_attack_week_surges_at_the_preferred_nip(self):
        shares = self.shares()
        attack_nip6 = shares[6][1]
        average_nip6 = shares[6][0]
        # The paper's signature: NiP 6 jumps from noise to a dominant
        # mode (loose band; exact share is seed-dependent).
        assert attack_nip6 > 25.0
        assert attack_nip6 > 10 * average_nip6

    def test_cap_moves_the_attack_to_nip_4(self):
        shares = self.shares()
        post_cap = {nip: values[2] for nip, values in shares.items()}
        assert post_cap[4] == max(post_cap.values())
        assert post_cap[4] > 35.0
        # Nothing books above the cap once it is in force.
        for nip in (5, 6, 7, 8, 9):
            assert post_cap[nip] == 0.0


class TestTable1Golden:
    """Table I: per-country SMS surge ordering and magnitudes."""

    def rows(self):
        parsed = []
        for row in table_rows(artifact_lines("table1_sms_country_surges")):
            parsed.append(
                {
                    "country": row[0],
                    "baseline": as_number(row[1]),
                    "window": as_number(row[2]),
                    "increase": as_number(row[3]),
                    "paper": as_number(row[4]),
                }
            )
        return parsed

    def test_top3_surge_ordering_matches_the_paper(self):
        rows = self.rows()
        assert [row["country"] for row in rows[:3]] == ["UZ", "IR", "KG"]

    def test_surges_are_within_a_loose_band_of_the_paper(self):
        # Within 2x of the published percentage for every listed row —
        # loose enough for seed noise, tight enough to catch a broken
        # calibration (the paper's values span 4 orders of magnitude).
        for row in self.rows():
            assert row["increase"] > row["paper"] / 2.0, row
            assert row["increase"] < row["paper"] * 2.0, row

    def test_high_cost_destinations_dwarf_large_markets(self):
        rows = {row["country"]: row for row in self.rows()}
        assert rows["UZ"]["increase"] > 50_000.0
        assert rows["TH"]["increase"] < 100.0

    def test_global_increase_near_the_papers_quarter(self):
        lines = artifact_lines("table1_sms_country_surges")
        match = re.search(r"global increase (\d+(\.\d+)?)%", lines[0])
        assert match, lines[0]
        assert 15.0 < float(match.group(1)) < 35.0


class TestAblationGolden:
    """Headline shapes of the runner-based ablation benchmarks."""

    def test_rotation_blocked_fraction_is_monotone(self):
        rows = [
            row
            for row in table_rows(artifact_lines("rotation_ablation"))
            if len(row) == 5
        ]
        fractions = [as_number(row[3]) for row in rows]
        assert len(fractions) == 4
        assert fractions == sorted(fractions)
        assert fractions[0] < 15.0
        assert fractions[-1] > 50.0

    def test_hold_ttl_damage_flat_but_footprint_scales(self):
        rows = [
            row
            for row in table_rows(artifact_lines("hold_ttl_ablation"))
            if len(row) == 6
        ]
        assert len(rows) == 4
        holds = [as_number(row[1]) for row in rows]
        seat_hours = [as_number(row[2]) for row in rows]
        assert holds == sorted(holds, reverse=True)
        assert holds[0] > 5 * holds[-1]
        assert max(seat_hours) < 2.0 * min(seat_hours)


class TestStreamingGolden:
    """Online-mitigation and capture/replay headline numbers."""

    def test_streaming_mitigation_headline(self):
        """Online streaming mitigation: time-to-first-block and the
        inventory the honeypot arm saves (Case A streaming on vs off)."""
        rows = {
            row[0]: row
            for row in table_rows(
                artifact_lines("stream_online_mitigation")
            )
        }
        ttfb = rows["time to first block"]
        assert ttfb[1] == "-"  # streaming off never blocks
        # Streaming blocks inside the attacker's first hold burst —
        # sub-minute, where the periodic controller's floor is its
        # polling interval (an hour).
        assert as_number(ttfb[2]) < 60.0
        assert as_number(ttfb[3]) < 60.0

        seats = rows["legit seats sold (target flight)"]
        off, blocking, honeypot = (as_number(seats[i]) for i in (1, 2, 3))
        # Block-on-conviction feeds the rotation arms race: no seats
        # saved relative to no streaming at all …
        rotations = rows["attacker rotations"]
        assert as_number(rotations[2]) > 20
        assert blocking <= off + 5
        # … while honeypot routing saves real inventory.
        assert as_number(rotations[3]) == 0
        assert honeypot > 1.5 * off

    def test_streaming_replay_is_batch_equivalent(self):
        rows = {
            row[0]: row
            for row in table_rows(
                artifact_lines("stream_replay_throughput")
            )
        }
        verdict_cell = rows["batch-equivalent session verdicts"][1]
        assert verdict_cell.startswith("yes")
        assert as_number(rows["bytes/entry"][1]) < 100.0
        assert as_number(rows["trace entries"][1]) > 5_000


class TestAdversaryPortfolioGolden:
    """The committed adaptive-adversary economics (bench_adversary.json):
    every single-case defense leaves the attacker profitable; only the
    layered posture closes the business."""

    def artifact(self):
        import json

        path = os.path.join(OUTPUT_DIR, "bench_adversary.json")
        assert os.path.exists(path), (
            f"missing benchmark artifact {path}; "
            "run the adversary benchmark"
        )
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def test_single_defenses_leave_an_open_channel(self):
        artifact = self.artifact()
        for defense in ("none", "case-a", "case-c", "case-d", "case-e"):
            posture = artifact[defense]
            assert posture["attacker_net"] > 0.0, defense
            assert posture["attacker_roi"] > 0.0, defense
            assert not posture["retired"], defense

    def test_layered_defense_retires_the_attacker_at_a_loss(self):
        layered = self.artifact()["all"]
        assert layered["retired"]
        assert layered["attacker_net"] < 0.0
        assert layered["attacker_roi"] < 0.0
        # The loss exceeds the standing infrastructure burn: the
        # channels themselves lost money, not just the overhead.
        assert layered["attacker_net"] < -layered["infrastructure_cost"]
        # Nothing was left untried before retiring.
        activations = [
            channel["activations"]
            for channel in layered["channels"].values()
        ]
        assert all(count >= 1 for count in activations)

    def test_collateral_stays_bounded_everywhere(self):
        for defense, posture in self.artifact().items():
            assert posture["legit_fp_conviction_rate"] < 0.01, defense
