"""Tests for repro.booking.reservation (the hold lifecycle facade)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.booking.flight import Flight
from repro.booking.passengers import sample_genuine_party
from repro.booking.pricing import PricingEngine
from repro.booking.reservation import (
    REJECT_DEPARTED,
    REJECT_INVALID_PARTY,
    REJECT_NIP_CAP,
    REJECT_NO_INVENTORY,
    REJECT_UNKNOWN_FLIGHT,
    ReservationSystem,
)
from repro.common import ClientRef
from repro.sim.clock import Clock, HOUR


def make_client(fingerprint_id="fp-1", actor_class="legit"):
    return ClientRef(
        ip_address="9.9.9.9",
        ip_country="FR",
        ip_residential=True,
        fingerprint_id=fingerprint_id,
        user_agent="UA",
        actor_class=actor_class,
    )


@pytest.fixture
def system():
    clock = Clock()
    reservations = ReservationSystem(clock, hold_ttl=1 * HOUR, max_nip=9)
    reservations.add_flight(Flight("F1", "A", "NCE", "CDG", 100 * HOUR, 50))
    return reservations


def party(n, seed=0):
    return sample_genuine_party(random.Random(seed), n)


class TestCreateHold:
    def test_successful_hold(self, system):
        result = system.create_hold("F1", party(3), make_client())
        assert result.ok
        assert result.hold.nip == 3
        assert system.availability("F1") == 47
        assert result.hold.expires_at == 1 * HOUR

    def test_unknown_flight(self, system):
        result = system.create_hold("F9", party(1), make_client())
        assert not result.ok
        assert result.error == REJECT_UNKNOWN_FLIGHT

    def test_empty_party(self, system):
        result = system.create_hold("F1", [], make_client())
        assert not result.ok
        assert result.error == REJECT_INVALID_PARTY

    def test_nip_cap_enforced(self, system):
        system.set_max_nip(4)
        result = system.create_hold("F1", party(5), make_client())
        assert not result.ok
        assert result.error == REJECT_NIP_CAP

    def test_inventory_exhaustion(self, system):
        for _ in range(10):
            assert system.create_hold("F1", party(5), make_client()).ok
        result = system.create_hold("F1", party(1), make_client())
        assert result.error == REJECT_NO_INVENTORY

    def test_departed_flight_rejected(self, system):
        system.clock.advance_to(100 * HOUR)
        result = system.create_hold("F1", party(1), make_client())
        assert result.error == REJECT_DEPARTED

    def test_rejections_are_logged(self, system):
        system.create_hold("F9", party(1), make_client())
        assert system.records[-1].outcome == REJECT_UNKNOWN_FLIGHT
        assert system.metrics.counter("booking.holds_rejected") == 1

    def test_price_quoted_rises_with_load(self, system):
        first = system.create_hold("F1", party(1), make_client())
        for _ in range(8):
            system.create_hold("F1", party(5), make_client())
        later = system.create_hold("F1", party(1), make_client())
        assert later.price_quoted > first.price_quoted


class TestLifecycle:
    def test_confirm_moves_seats(self, system):
        result = system.create_hold("F1", party(4), make_client())
        system.confirm(result.hold.hold_id)
        flight = system.flight("F1")
        assert flight.inventory.confirmed == 4
        assert flight.inventory.held == 0

    def test_cancel_returns_seats(self, system):
        result = system.create_hold("F1", party(4), make_client())
        system.cancel(result.hold.hold_id)
        assert system.availability("F1") == 50

    def test_expiry_returns_seats(self, system):
        system.create_hold("F1", party(4), make_client())
        system.clock.advance_to(2 * HOUR)
        expired = system.expire_due()
        assert len(expired) == 1
        assert system.availability("F1") == 50

    def test_confirm_after_expiry_fails(self, system):
        result = system.create_hold("F1", party(2), make_client())
        system.clock.advance_to(2 * HOUR)
        with pytest.raises(ValueError):
            system.confirm(result.hold.hold_id)

    def test_double_confirm_fails(self, system):
        result = system.create_hold("F1", party(2), make_client())
        system.confirm(result.hold.hold_id)
        with pytest.raises(ValueError):
            system.confirm(result.hold.hold_id)

    def test_cancel_then_confirm_fails(self, system):
        result = system.create_hold("F1", party(2), make_client())
        system.cancel(result.hold.hold_id)
        with pytest.raises(ValueError):
            system.confirm(result.hold.hold_id)

    def test_seat_spinning_rehold_cycle(self, system):
        """The core DoI loop: hold, let expire, immediately re-hold."""
        for cycle in range(5):
            result = system.create_hold("F1", party(5), make_client())
            assert result.ok, f"cycle {cycle}"
            system.clock.advance_by(1 * HOUR + 1)
        assert system.metrics.counter("booking.holds_created") == 5
        assert system.metrics.counter("booking.holds_expired") >= 4


class TestShadowHolds:
    def test_shadow_hold_spares_inventory(self, system):
        result = system.create_hold(
            "F1", party(5), make_client(), shadow=True
        )
        assert result.ok
        assert result.hold.shadow
        assert system.availability("F1") == 50

    def test_shadow_hold_succeeds_when_sold_out(self, system):
        """The honeypot keeps 'accepting' holds on a full flight."""
        for _ in range(10):
            system.create_hold("F1", party(5), make_client())
        assert system.availability("F1") == 0
        result = system.create_hold(
            "F1", party(5), make_client(), shadow=True
        )
        assert result.ok

    def test_shadow_expiry_no_release(self, system):
        system.create_hold("F1", party(5), make_client(), shadow=True)
        system.clock.advance_to(2 * HOUR)
        system.expire_due()
        assert system.availability("F1") == 50


class TestPolicyKnobs:
    def test_set_max_nip_validation(self, system):
        with pytest.raises(ValueError):
            system.set_max_nip(0)

    def test_set_hold_ttl_affects_future_holds(self, system):
        system.set_hold_ttl(10.0)
        result = system.create_hold("F1", party(1), make_client())
        assert result.hold.expires_at == 10.0

    def test_duplicate_flight_rejected(self, system):
        with pytest.raises(ValueError):
            system.add_flight(Flight("F1", "A", "X", "Y", 1.0, 10))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ReservationSystem(Clock(), hold_ttl=0)
        with pytest.raises(ValueError):
            ReservationSystem(Clock(), max_nip=0)


class TestRecordsSince:
    def test_binary_search_window(self, system):
        for i in range(5):
            system.clock.advance_to(float(i * 100))
            system.create_hold("F1", party(1, seed=i), make_client())
        since = system.records_since(200.0)
        assert [r.time for r in since] == [200.0, 300.0, 400.0]


@settings(max_examples=30, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.sampled_from(["hold", "confirm", "cancel", "advance"]),
            st.integers(min_value=1, max_value=6),
        ),
        max_size=40,
    )
)
def test_reservation_invariants_under_random_workload(steps):
    """Property: inventory identity holds and availability never goes
    negative under arbitrary interleavings of operations and time."""
    clock = Clock()
    system = ReservationSystem(clock, hold_ttl=50.0, max_nip=6)
    system.add_flight(Flight("F1", "A", "X", "Y", 1e9, 30))
    rng = random.Random(0)
    open_holds = []
    for op, size in steps:
        if op == "hold":
            result = system.create_hold(
                "F1", party(size, seed=size), make_client()
            )
            if result.ok:
                open_holds.append(result.hold.hold_id)
        elif op == "confirm" and open_holds:
            hold_id = open_holds.pop(rng.randrange(len(open_holds)))
            if system.holds.get(hold_id).is_active:
                system.confirm(hold_id)
        elif op == "cancel" and open_holds:
            hold_id = open_holds.pop(rng.randrange(len(open_holds)))
            if system.holds.get(hold_id).is_active:
                system.cancel(hold_id)
        elif op == "advance":
            clock.advance_by(size * 10.0)
            system.expire_due()
        inventory = system.flight("F1").inventory
        assert (
            inventory.confirmed + inventory.held + inventory.available
            == 30
        )
        assert inventory.available >= 0
