"""Tests for repro.sim.process (the actor base class)."""

import pytest

from repro.sim.events import EventLoop
from repro.sim.process import Process


class CountingProcess(Process):
    """Steps a fixed number of times at a fixed period."""

    def __init__(self, loop, steps=3, period=1.0):
        super().__init__(loop, name="counter")
        self.remaining = steps
        self.period = period
        self.stamps = []

    def step(self):
        self.stamps.append(self.loop.now)
        self.remaining -= 1
        if self.remaining == 0:
            return None
        return self.period


class TestLifecycle:
    def test_runs_fixed_steps_then_stops(self):
        loop = EventLoop()
        process = CountingProcess(loop, steps=3, period=2.0)
        process.start(at=1.0)
        loop.run_until(100.0)
        assert process.stamps == [1.0, 3.0, 5.0]
        assert not process.running
        assert process.steps_taken == 3

    def test_start_defaults_to_now(self):
        loop = EventLoop()
        process = CountingProcess(loop, steps=1)
        process.start()
        loop.run_until(10.0)
        assert process.stamps == [0.0]

    def test_double_start_rejected(self):
        loop = EventLoop()
        process = CountingProcess(loop)
        process.start()
        with pytest.raises(RuntimeError):
            process.start()

    def test_stop_cancels_pending_step(self):
        loop = EventLoop()
        process = CountingProcess(loop, steps=10)
        process.start(at=0.0)
        loop.run_until(2.5)
        process.stop()
        loop.run_until(100.0)
        assert process.steps_taken == 3  # t = 0, 1, 2 only

    def test_stop_is_idempotent(self):
        loop = EventLoop()
        process = CountingProcess(loop)
        process.start()
        process.stop()
        process.stop()
        assert not process.running

    def test_negative_delay_from_step_rejected(self):
        class BadProcess(Process):
            def step(self):
                return -1.0

        loop = EventLoop()
        process = BadProcess(loop)
        process.start()
        with pytest.raises(ValueError):
            loop.run_until(1.0)


class TestHooks:
    def test_on_start_and_on_stop_called(self):
        calls = []

        class HookedProcess(Process):
            def step(self):
                return None

            def on_start(self):
                calls.append("start")

            def on_stop(self):
                calls.append("stop")

        loop = EventLoop()
        process = HookedProcess(loop)
        process.start()
        loop.run_until(1.0)
        assert calls == ["start", "stop"]

    def test_name_defaults_to_class_name(self):
        loop = EventLoop()

        class MyActor(Process):
            def step(self):
                return None

        assert MyActor(loop).name == "MyActor"

    def test_step_can_restart_after_stop(self):
        """A stopped process can be recreated (not restarted in place);
        starting a stopped instance again is allowed once stop() ran."""
        loop = EventLoop()
        process = CountingProcess(loop, steps=1)
        process.start()
        loop.run_until(1.0)
        assert not process.running
        # Restart after completion is permitted (fresh schedule).
        process.remaining = 1
        process.start(at=5.0)
        loop.run_until(10.0)
        assert process.stamps == [0.0, 5.0]
