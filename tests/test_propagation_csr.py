"""CSR propagation kernel vs the dict reference, plus compile caching.

The vectorized Jacobi sweep in :func:`repro.graph.propagation.propagate`
must be *bit-identical* to the retained dict implementation
(:func:`propagate_dict`) — same sorted-neighbour summation order, same
damping factor associativity — so these tests pin exact equality on
random multipartite graphs (including isolated nodes and zero-seed
worlds), identical round counts and convergence flags, and identical
``top()`` rankings.  Alongside: the ``top()`` heap-selection tie-break
regression and the ``CompiledGraph`` version-stamp lifecycle.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.builder import EntityGraph
from repro.graph.entities import EntityId
from repro.graph.propagation import (
    CompiledGraph,
    PropagationConfig,
    PropagationResult,
    compile_graph,
    propagate,
    propagate_dict,
)

_KINDS = ("s", "fp", "ip", "ref")


def _node(kind_index: int, index: int) -> EntityId:
    return EntityId(_KINDS[kind_index % len(_KINDS)], f"{index:03d}")


_EDGES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=11),
        st.floats(min_value=0.05, max_value=1.0),
    ).filter(lambda e: (e[0], e[1]) != (e[2], e[3])),
    max_size=30,
)

_SEEDS = st.dictionaries(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=13),
    ),
    st.floats(min_value=0.0, max_value=1.5),
    max_size=16,
)

_ISOLATED = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=12, max_value=15),
    ),
    max_size=4,
)


def _build(edges, isolated=()) -> EntityGraph:
    graph = EntityGraph()
    for ka, a, kb, b, weight in edges:
        graph.add_edge(_node(ka, a), _node(kb, b), weight)
    for kind, index in isolated:
        graph.add_node(_node(kind, index))
    return graph


class TestCsrMatchesDictReference:
    @settings(max_examples=120, deadline=None)
    @given(edges=_EDGES, seeds=_SEEDS, isolated=_ISOLATED)
    def test_bit_identical_scores_rounds_and_ranking(
        self, edges, seeds, isolated
    ):
        """CSR and dict sweeps agree exactly on random multipartite
        graphs with isolated nodes and off-graph seeds."""
        graph = _build(edges, isolated)
        seed_map = {
            _node(kind, index): value
            for (kind, index), value in seeds.items()
        }
        csr = propagate(graph, seed_map)
        ref = propagate_dict(graph, seed_map)
        assert csr.rounds == ref.rounds
        assert csr.converged == ref.converged
        assert set(csr.scores) == set(ref.scores)
        for node, score in ref.scores.items():
            assert csr.scores[node] == score, node
        assert csr.top(10) == ref.top(10)

    @settings(max_examples=40, deadline=None)
    @given(edges=_EDGES, isolated=_ISOLATED)
    def test_zero_seed_graph(self, edges, isolated):
        """No seeds → all-zero scores, one round, both paths."""
        graph = _build(edges, isolated)
        csr = propagate(graph, {})
        ref = propagate_dict(graph, {})
        assert csr.scores == ref.scores
        assert all(score == 0.0 for score in csr.scores.values())
        assert csr.rounds == ref.rounds
        assert csr.converged and ref.converged

    def test_isolated_and_offgraph_seeds_pass_through(self):
        graph = EntityGraph()
        graph.add_node(_node(0, 0))
        offgraph = _node(1, 9)
        seeds = {_node(0, 0): 0.4, offgraph: 1.7}
        for result in (
            propagate(graph, seeds), propagate_dict(graph, seeds)
        ):
            assert result.scores[_node(0, 0)] == 0.4
            # Off-graph seeds are clipped to [0, 1] and passed through.
            assert result.scores[offgraph] == 1.0


class TestTopSelection:
    def test_tie_break_is_lexicographic_on_node_id(self):
        """Equal scores rank by node id — the order a full sort on
        ``(-score, node)`` produced before the heap-selection switch."""
        scores = {
            _node(0, 3): 0.5,
            _node(0, 1): 0.5,
            _node(1, 2): 0.9,
            _node(0, 2): 0.5,
            _node(2, 0): 0.1,
        }
        result = PropagationResult(
            scores=scores, rounds=1, converged=True
        )
        expected = sorted(
            scores.items(), key=lambda item: (-item[1], item[0])
        )
        assert result.top(len(scores)) == expected
        # Partial selection agrees with the prefix of the full sort.
        for count in range(len(scores) + 2):
            assert result.top(count) == expected[:count]
        assert result.top(0) == []
        assert result.top(-3) == []


class TestCompiledGraphLifecycle:
    def test_version_bumps_on_structural_change_only(self):
        graph = EntityGraph()
        version = graph.version
        graph.add_node(_node(0, 0))
        assert graph.version > version
        version = graph.version
        graph.add_node(_node(0, 0))          # already present: no bump
        assert graph.version == version
        graph.add_edge(_node(0, 0), _node(1, 0), 0.5)
        assert graph.version > version
        version = graph.version
        graph.add_edge(_node(0, 0), _node(1, 0), 0.3)  # weaker: no-op
        assert graph.version == version
        graph.add_edge(_node(0, 0), _node(1, 0), 0.9)  # raise: bump
        assert graph.version > version

    def test_compile_snapshot_matches_graph(self):
        graph = _build(
            [(0, 0, 1, 1, 0.5), (1, 1, 2, 2, 0.25), (0, 0, 2, 2, 1.0)]
        )
        compiled = compile_graph(graph)
        assert compiled.version == graph.version
        assert compiled.node_count == graph.node_count
        # Directed edge count is twice the undirected one.
        assert compiled.edge_count == 2 * graph.edge_count
        for node in graph.nodes():
            assert sorted(compiled.neighbors_of(node)) == sorted(
                graph.neighbors(node)
            )

    def test_stale_compiled_graph_is_rejected(self):
        graph = _build([(0, 0, 1, 1, 0.5)])
        compiled = compile_graph(graph)
        graph.add_edge(_node(0, 0), _node(2, 2), 0.7)
        with pytest.raises(ValueError, match="stale"):
            propagate(graph, {}, compiled=compiled)

    def test_reused_compiled_graph_gives_identical_result(self):
        graph = _build(
            [(0, i, 1, i % 3, 0.5 + 0.1 * (i % 4)) for i in range(8)]
        )
        seeds = {_node(0, 0): 0.9, _node(1, 1): 0.3}
        compiled = compile_graph(graph)
        fresh = propagate(graph, seeds)
        reused = propagate(graph, seeds, compiled=compiled)
        assert fresh.scores == reused.scores
        assert fresh.rounds == reused.rounds

    def test_compile_emits_obs_counters(self):
        from repro.obs.core import ObsRegistry

        registry = ObsRegistry()
        graph = _build([(0, 0, 1, 1, 0.5), (1, 1, 2, 2, 0.25)])
        compiled = compile_graph(graph, obs=registry)
        assert registry.counter("graph.compile.nodes") == float(
            compiled.node_count
        )
        assert registry.counter("graph.compile.edges") == float(
            compiled.edge_count
        )
        assert registry.timers("graph.compile")


class TestConfigEquivalenceAcrossSweeps:
    @settings(max_examples=30, deadline=None)
    @given(
        edges=_EDGES,
        seeds=_SEEDS,
        damping=st.floats(min_value=0.05, max_value=0.95),
        max_rounds=st.integers(min_value=1, max_value=12),
    )
    def test_non_default_configs_also_match(
        self, edges, seeds, damping, max_rounds
    ):
        """Equality holds under early round caps and other dampings —
        including runs that stop *before* convergence."""
        graph = _build(edges)
        seed_map = {
            _node(kind, index): value
            for (kind, index), value in seeds.items()
        }
        config = PropagationConfig(
            damping=damping, max_rounds=max_rounds
        )
        csr = propagate(graph, seed_map, config=config)
        ref = propagate_dict(graph, seed_map, config=config)
        assert csr.scores == ref.scores
        assert (csr.rounds, csr.converged) == (ref.rounds, ref.converged)
