"""Tests for repro.core.detection.rotation (union-find + linkers)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.booking.passengers import Passenger
from repro.booking.reservation import BookingRecord
from repro.common import ClientRef
from repro.core.detection.rotation import (
    UnionFind,
    link_booking_records,
    link_sms_records,
)
from repro.sms.gateway import SmsRecord
from repro.sms.numbers import PhoneNumber


class TestUnionFind:
    def test_initially_disjoint(self):
        union = UnionFind(4)
        assert len(union.groups()) == 4

    def test_union_merges(self):
        union = UnionFind(4)
        union.union(0, 1)
        union.union(2, 3)
        groups = union.groups()
        assert sorted(map(sorted, groups)) == [[0, 1], [2, 3]]

    def test_transitivity(self):
        union = UnionFind(5)
        union.union(0, 1)
        union.union(1, 2)
        union.union(3, 4)
        assert union.find(0) == union.find(2)
        assert union.find(0) != union.find(3)

    def test_self_union_noop(self):
        union = UnionFind(3)
        union.union(1, 1)
        assert len(union.groups()) == 3

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @settings(max_examples=50)
    @given(
        size=st.integers(min_value=1, max_value=30),
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=29),
                st.integers(min_value=0, max_value=29),
            ),
            max_size=60,
        ),
    )
    def test_groups_partition_everything(self, size, pairs):
        union = UnionFind(size)
        for a, b in pairs:
            if a < size and b < size:
                union.union(a, b)
        groups = union.groups()
        members = sorted(m for group in groups for m in group)
        assert members == list(range(size))


def booking(time, fingerprint, ip, names, hold_id):
    client = ClientRef(
        ip_address=ip,
        ip_country="US",
        ip_residential=True,
        fingerprint_id=fingerprint,
        user_agent="UA",
    )
    passengers = tuple(
        Passenger(first, last, "1990-01-01", "x@y.z")
        for first, last in names
    )
    return BookingRecord(
        time=time,
        flight_id="F1",
        nip=len(passengers),
        outcome="held",
        hold_id=hold_id,
        passengers=passengers,
        client=client,
        price_quoted=100.0,
        shadow=False,
    )


class TestLinkBookingRecords:
    def test_fingerprint_links_records(self):
        records = [
            booking(float(i), "fpA", f"ip{i}", [("A", str(i))], f"H{i}")
            for i in range(4)
        ]
        entities = link_booking_records(records, min_cluster=3)
        assert len(entities) == 1
        assert entities[0].record_count == 4
        assert entities[0].distinct_ips == 4

    def test_repeated_name_bridges_rotation(self):
        """The Case B linkage: fixed passenger name across rotating
        fingerprints and IPs reunites the campaign."""
        records = [
            booking(
                float(i) * 3600,
                f"fp{i}",           # rotates every booking
                f"ip{i}",           # rotates every booking
                [("John", "Fixed")],  # ... but the name persists
                f"H{i}",
            )
            for i in range(6)
        ]
        entities = link_booking_records(records, min_cluster=3)
        assert len(entities) == 1
        entity = entities[0]
        assert entity.distinct_fingerprints == 6
        assert entity.rotates_identity
        assert entity.mean_rotation_interval == pytest.approx(3600.0)

    def test_one_off_shared_name_does_not_link(self):
        """Two strangers who happen to share a name key must not merge
        unless the full name pair recurs enough."""
        records = [
            booking(0.0, "fp1", "ip1", [("Ann", "One")], "H1"),
            booking(1.0, "fp2", "ip2", [("Bob", "Two")], "H2"),
            booking(2.0, "fp3", "ip3", [("Cal", "Three")], "H3"),
        ]
        assert link_booking_records(records, min_cluster=2) == []

    def test_min_cluster_filters(self):
        records = [
            booking(0.0, "fpA", "ip1", [("A", "B")], "H1"),
            booking(1.0, "fpA", "ip1", [("C", "D")], "H2"),
        ]
        assert link_booking_records(records, min_cluster=3) == []
        assert len(link_booking_records(records, min_cluster=2)) == 1

    def test_gibberish_rotating_attack_fragments(self):
        """Unique names + full identity rotation per booking defeats
        the linker — the defender-side blind spot the paper reports."""
        records = [
            booking(float(i), f"fp{i}", f"ip{i}", [(f"N{i}", f"S{i}")],
                    f"H{i}")
            for i in range(10)
        ]
        entities = link_booking_records(records, min_cluster=2)
        assert entities == []


def sms(time, fingerprint, ip, booking_ref, delivered=True):
    client = ClientRef(
        ip_address=ip,
        ip_country="UZ",
        ip_residential=True,
        fingerprint_id=fingerprint,
        user_agent="UA",
    )
    return SmsRecord(
        time=time,
        number=PhoneNumber("UZ", "123456789"),
        kind="boarding-pass",
        booking_ref=booking_ref,
        client=client,
        delivered=delivered,
        reject_reason="",
        settlement=None,
    )


class TestLinkSmsRecords:
    def test_booking_ref_anchors_rotating_pumper(self):
        """The Case C linkage: a handful of booking references anchor
        thousands of sends no matter how identities rotate."""
        records = [
            sms(float(i), f"fp{i}", f"ip{i}", f"REF{i % 2}")
            for i in range(10)
        ]
        entities = link_sms_records(records, min_cluster=3)
        assert len(entities) == 2
        assert all(e.rotates_identity for e in entities)

    def test_empty_booking_ref_not_a_key(self):
        records = [
            sms(float(i), f"fp{i}", f"ip{i}", "") for i in range(5)
        ]
        assert link_sms_records(records, min_cluster=2) == []

    def test_entities_sorted_by_size(self):
        records = [sms(float(i), "fpA", "ip1", "BIG") for i in range(6)]
        records += [sms(float(i), "fpB", "ip2", "SMALL") for i in range(3)]
        entities = link_sms_records(records, min_cluster=3)
        assert entities[0].record_count == 6
        assert entities[1].record_count == 3
