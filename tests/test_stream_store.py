"""Tests for repro.stream.store (bounded keyed state)."""

import pytest

from repro.stream import KeyedStore


class TestKeyedStore:
    def test_get_or_create_creates_once(self):
        store = KeyedStore()
        first, overflow = store.get_or_create("a", 0.0, list)
        assert overflow == []
        second, _ = store.get_or_create("a", 1.0, list)
        assert first is second
        assert len(store) == 1

    def test_get_and_contains(self):
        store = KeyedStore()
        assert store.get("a") is None
        assert "a" not in store
        store.get_or_create("a", 0.0, dict)
        assert store.get("a") == {}
        assert "a" in store

    def test_pop_removes(self):
        store = KeyedStore()
        value, _ = store.get_or_create("a", 0.0, list)
        assert store.pop("a") is value
        assert store.pop("a") is None
        assert len(store) == 0

    def test_evict_idle_drops_only_stale_keys(self):
        store = KeyedStore()
        store.get_or_create("old", 0.0, list)
        store.get_or_create("fresh", 90.0, list)
        evicted = store.evict_idle(now=100.0, idle_gap=50.0)
        assert [key for key, _ in evicted] == ["old"]
        assert "fresh" in store
        assert store.evictions == 1

    def test_evict_idle_gap_is_exclusive(self):
        store = KeyedStore()
        store.get_or_create("a", 0.0, list)
        assert store.evict_idle(now=50.0, idle_gap=50.0) == []

    def test_touch_refreshes_idle_clock(self):
        store = KeyedStore()
        store.get_or_create("a", 0.0, list)
        store.touch("a", 99.0)
        assert store.evict_idle(now=100.0, idle_gap=50.0) == []

    def test_get_with_now_refreshes_idle_clock(self):
        """Regression: a read-only-hot key (only ever get(), never
        written) used to be evicted as idle mid-use because get()
        never advanced the idle clock."""
        store = KeyedStore()
        store.get_or_create("a", 0.0, list)
        assert store.get("a", now=99.0) == []
        assert store.evict_idle(now=100.0, idle_gap=50.0) == []
        assert "a" in store

    def test_get_without_now_stays_introspective(self):
        """Plain get() must not extend a key's lifetime — monitoring
        probes are not activity."""
        store = KeyedStore()
        store.get_or_create("a", 0.0, list)
        assert store.get("a") == []
        evicted = store.evict_idle(now=100.0, idle_gap=50.0)
        assert [key for key, _ in evicted] == ["a"]

    def test_get_with_now_on_missing_key_is_harmless(self):
        store = KeyedStore()
        assert store.get("ghost", now=5.0) is None
        # No phantom idle-clock entry was created.
        store.get_or_create("real", 0.0, list)
        assert store.evict_idle(now=100.0, idle_gap=50.0) == [("real", [])]

    def test_max_keys_evicts_oldest_idle_first(self):
        store = KeyedStore(max_keys=2)
        store.get_or_create("a", 0.0, lambda: "A")
        store.get_or_create("b", 1.0, lambda: "B")
        value, overflow = store.get_or_create("c", 2.0, lambda: "C")
        assert value == "C"
        assert overflow == [("a", "A")]
        assert len(store) == 2
        assert "a" not in store

    def test_peak_size_high_water_mark(self):
        store = KeyedStore()
        for i in range(5):
            store.get_or_create(i, float(i), list)
        store.evict_idle(now=100.0, idle_gap=1.0)
        assert len(store) == 0
        assert store.peak_size == 5

    def test_max_keys_bounds_peak_size(self):
        store = KeyedStore(max_keys=3)
        for i in range(100):
            store.get_or_create(i, float(i), list)
        assert store.peak_size <= 3
        assert store.evictions == 97

    def test_invalid_max_keys(self):
        with pytest.raises(ValueError):
            KeyedStore(max_keys=0)

    def test_items_snapshot_safe_to_mutate_during_iteration(self):
        store = KeyedStore()
        store.get_or_create("a", 0.0, list)
        store.get_or_create("b", 0.0, list)
        for key, _ in store.items():
            store.pop(key)
        assert len(store) == 0
