"""Extra property-based tests on pure functions and data structures."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.booking.seatmap import (
    ANY,
    AVAILABLE,
    MIDDLE_BLOCK,
    PREFERENCES,
    SeatMap,
    SeatMapError,
    TOGETHER,
    WINDOW_AISLE,
)
from repro.core.detection.anomaly import chi_square_sf, jensen_shannon
from repro.core.detection.fusion import FusionDetector
from repro.core.detection.verdict import Verdict
from repro.analysis.reports import format_percent, render_table


class TestSeatMapProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=10),
        picks=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=6),
                st.sampled_from(PREFERENCES),
            ),
            max_size=12,
        ),
    )
    def test_picks_never_overlap_and_conserve_capacity(self, rows, picks):
        """Property: successive pick+hold rounds never hand out the
        same seat twice, and held + available == capacity."""
        seat_map = SeatMap(rows=rows)
        handed_out = set()
        for count, preference in picks:
            if count > seat_map.available_count():
                with pytest.raises(SeatMapError):
                    seat_map.pick(count, preference)
                continue
            seats = seat_map.pick(count, preference)
            assert len(seats) == count
            assert len(set(seats)) == count
            assert not (set(seats) & handed_out)
            seat_map.hold(seats)
            handed_out.update(seats)
            assert (
                seat_map.available_count() + len(handed_out)
                == seat_map.capacity
            )

    @settings(max_examples=40, deadline=None)
    @given(rows=st.integers(min_value=2, max_value=10))
    def test_together_pick_is_adjacent(self, rows):
        seat_map = SeatMap(rows=rows)
        seats = seat_map.pick(3, TOGETHER)
        assert len({s.row for s in seats}) == 1
        letters = sorted(ord(s.letter) for s in seats)
        assert letters[2] - letters[0] == 2


class TestFusionProperties:
    @settings(max_examples=60)
    @given(
        scores=st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=1,
            max_size=6,
        )
    )
    def test_fused_score_bounded_and_monotone(self, scores):
        """Property: the noisy-OR score is within [0, 1] and at least
        as large as any single weighted contribution."""
        fusion = FusionDetector(weights={"d": 0.8})
        verdicts = [
            [
                Verdict(
                    subject_id="S",
                    detector="d",
                    score=score,
                    is_bot=score >= 0.5,
                )
            ]
            for score in scores
        ]
        fused = fusion.fuse(verdicts)[0]
        assert 0.0 <= fused.score <= 1.0
        assert fused.score >= 0.8 * max(scores) - 1e-9

    @settings(max_examples=40)
    @given(score=st.floats(min_value=0.0, max_value=1.0))
    def test_adding_evidence_never_lowers_score(self, score):
        fusion = FusionDetector(weights={"d": 0.5})

        def verdict(value):
            return Verdict("S", "d", value, value >= 0.5)

        one = fusion.fuse([[verdict(score)]])[0].score
        two = fusion.fuse([[verdict(score)], [verdict(score)]])[0].score
        assert two >= one - 1e-12


class TestStatsProperties:
    @settings(max_examples=60)
    @given(
        dof=st.integers(min_value=1, max_value=20),
        a=st.floats(min_value=0.0, max_value=100.0),
        b=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_chi_square_sf_monotone(self, dof, a, b):
        low, high = min(a, b), max(a, b)
        assert chi_square_sf(low, dof) >= chi_square_sf(high, dof) - 1e-12

    @settings(max_examples=60)
    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=5.0),
            min_size=1,
            max_size=6,
        ),
        scale=st.floats(min_value=0.1, max_value=100.0),
    )
    def test_jsd_scale_invariant(self, weights, scale):
        p = dict(enumerate(weights))
        q = {k: v * scale for k, v in p.items()}
        assert jensen_shannon(p, q) == pytest.approx(0.0, abs=1e-9)


class TestReportProperties:
    @settings(max_examples=40)
    @given(
        rows=st.lists(
            st.tuples(st.text(max_size=8), st.integers()),
            max_size=8,
        )
    )
    def test_render_table_total_lines(self, rows):
        """Header + separator + one line per row, whatever the data."""
        text = render_table(["a", "b"], [list(r) for r in rows])
        assert len(text.splitlines()) == 2 + len(rows)

    @settings(max_examples=60)
    @given(value=st.floats(min_value=0.0, max_value=1e9))
    def test_format_percent_roundtrip(self, value):
        rendered = format_percent(value)
        assert rendered.endswith("%")
        parsed = float(rendered[:-1].replace(",", ""))
        assert parsed == pytest.approx(round(value), abs=0.51)
