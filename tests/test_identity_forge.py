"""Tests for repro.identity.forge (attacker fingerprints + rotation)."""

import random

import pytest

from repro.identity.fingerprint import (
    automation_artifacts,
    consistency_check,
)
from repro.identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    NAIVE_SPOOF,
    RAW_HEADLESS,
    RotationPolicy,
)


class TestForgeLevels:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            FingerprintForge("quantum")

    def test_raw_headless_has_artifacts(self):
        forge = FingerprintForge(RAW_HEADLESS)
        rng = random.Random(1)
        for _ in range(20):
            fingerprint = forge.forge(rng)
            artifacts = automation_artifacts(fingerprint)
            assert "navigator-webdriver-true" in artifacts
            assert "headless-user-agent" in artifacts

    def test_naive_spoof_scrubs_artifacts(self):
        forge = FingerprintForge(NAIVE_SPOOF)
        rng = random.Random(2)
        for _ in range(50):
            fingerprint = forge.forge(rng)
            assert not fingerprint.webdriver
            assert not fingerprint.headless_ua

    def test_naive_spoof_often_inconsistent(self):
        """Independent attribute mutation leaves detectable
        contradictions a substantial fraction of the time."""
        forge = FingerprintForge(NAIVE_SPOOF)
        rng = random.Random(3)
        inconsistent = sum(
            1
            for _ in range(300)
            if consistency_check(forge.forge(rng))
        )
        assert inconsistent > 60  # at least ~20%

    def test_mimicry_is_clean(self):
        """Mimicry-level fingerprints are indistinguishable from the
        genuine population by rules alone — the paper's core problem."""
        forge = FingerprintForge(MIMICRY)
        rng = random.Random(4)
        for _ in range(200):
            fingerprint = forge.forge(rng)
            assert consistency_check(fingerprint) == []
            assert automation_artifacts(fingerprint) == []


class TestRotationPolicy:
    def test_no_interval_means_no_timed_rotation(self):
        policy = RotationPolicy(mean_interval=None)
        assert policy.next_rotation_delay(random.Random(1)) is None

    def test_interval_sampling_positive(self):
        policy = RotationPolicy(mean_interval=3600.0)
        rng = random.Random(1)
        for _ in range(100):
            assert policy.next_rotation_delay(rng) > 0

    def test_mean_approximates_interval(self):
        policy = RotationPolicy(mean_interval=1000.0)
        rng = random.Random(7)
        draws = [policy.next_rotation_delay(rng) for _ in range(3000)]
        assert 900 < sum(draws) / len(draws) < 1100

    def test_invalid_interval(self):
        policy = RotationPolicy(mean_interval=-5.0)
        with pytest.raises(ValueError):
            policy.next_rotation_delay(random.Random(1))


class TestBotIdentity:
    def _identity(self, **policy_kwargs):
        return BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(**policy_kwargs),
            random.Random(11),
        )

    def test_rotate_changes_fingerprint(self):
        identity = self._identity()
        before = identity.fingerprint.fingerprint_id
        identity.rotate(now=10.0)
        assert identity.fingerprint.fingerprint_id != before
        assert identity.rotations == 1
        assert identity.last_rotation_at == 10.0

    def test_rotate_on_block(self):
        identity = self._identity(rotate_on_block=True)
        assert identity.maybe_rotate(now=5.0, was_blocked=True)
        assert identity.rotations == 1

    def test_no_rotate_without_trigger(self):
        identity = self._identity(mean_interval=None, rotate_on_block=True)
        assert not identity.maybe_rotate(now=5.0, was_blocked=False)
        assert identity.rotations == 0

    def test_block_rotation_disabled(self):
        identity = self._identity(rotate_on_block=False)
        assert not identity.maybe_rotate(now=5.0, was_blocked=True)

    def test_timed_rotation_fires_after_deadline(self):
        identity = self._identity(
            mean_interval=100.0, rotate_on_block=False
        )
        # Far beyond any plausible exponential draw.
        assert identity.maybe_rotate(now=1e7, was_blocked=False)

    def test_timed_rotation_not_before_deadline(self):
        identity = self._identity(
            mean_interval=1e9, rotate_on_block=False
        )
        assert not identity.maybe_rotate(now=1.0, was_blocked=False)
