"""Tests for repro.sim.events (the discrete-event loop)."""

import pytest

from repro.sim.clock import Clock
from repro.sim.events import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(3.0, lambda: seen.append("c"))
        loop.schedule_at(1.0, lambda: seen.append("a"))
        loop.schedule_at(2.0, lambda: seen.append("b"))
        loop.run_until(10.0)
        assert seen == ["a", "b", "c"]

    def test_ties_broken_fifo(self):
        loop = EventLoop()
        seen = []
        for tag in ("first", "second", "third"):
            loop.schedule_at(5.0, lambda t=tag: seen.append(t))
        loop.run_until(10.0)
        assert seen == ["first", "second", "third"]

    def test_clock_advances_to_event_times(self):
        loop = EventLoop()
        stamps = []
        loop.schedule_at(2.0, lambda: stamps.append(loop.now))
        loop.schedule_at(4.0, lambda: stamps.append(loop.now))
        loop.run_until(10.0)
        assert stamps == [2.0, 4.0]

    def test_clock_finishes_at_horizon(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None)
        loop.run_until(10.0)
        assert loop.now == 10.0

    def test_events_beyond_horizon_stay_queued(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(15.0, lambda: seen.append("late"))
        loop.run_until(10.0)
        assert seen == []
        assert loop.pending == 1
        loop.run_until(20.0)
        assert seen == ["late"]

    def test_scheduling_in_past_rejected(self):
        loop = EventLoop(Clock(start=5.0))
        with pytest.raises(ValueError):
            loop.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_in(-1.0, lambda: None)

    def test_schedule_in_relative(self):
        loop = EventLoop(Clock(start=10.0))
        stamps = []
        loop.schedule_in(5.0, lambda: stamps.append(loop.now))
        loop.run_until(20.0)
        assert stamps == [15.0]

    def test_callbacks_can_schedule_more(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule_in(1.0, lambda: seen.append("second"))

        loop.schedule_at(1.0, first)
        loop.run_until(5.0)
        assert seen == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        seen = []
        handle = loop.schedule_at(1.0, lambda: seen.append("x"))
        handle.cancel()
        loop.run_until(5.0)
        assert seen == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        loop = EventLoop()
        keep = loop.schedule_at(1.0, lambda: None)
        drop = loop.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert loop.pending == 1
        assert not keep.cancelled

    def test_handle_exposes_when_and_label(self):
        loop = EventLoop()
        handle = loop.schedule_at(3.0, lambda: None, label="probe")
        assert handle.when == 3.0
        assert handle.label == "probe"


class TestStopAndRunAll:
    def test_stop_halts_processing(self):
        loop = EventLoop()
        seen = []

        def stopper():
            seen.append("stop")
            loop.stop()

        loop.schedule_at(1.0, stopper)
        loop.schedule_at(2.0, lambda: seen.append("never"))
        loop.run_until(10.0)
        assert seen == ["stop"]

    def test_run_resumes_after_stop(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, loop.stop)
        loop.schedule_at(2.0, lambda: seen.append("later"))
        loop.run_until(10.0)
        loop.run_until(10.0)
        assert seen == ["later"]

    def test_run_all_drains_queue(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, lambda: seen.append(1))
        loop.schedule_at(100.0, lambda: seen.append(2))
        loop.run_all()
        assert seen == [1, 2]
        assert loop.now == 100.0

    def test_run_all_limit_catches_runaway(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule_in(1.0, reschedule)

        loop.schedule_at(0.0, reschedule)
        with pytest.raises(RuntimeError):
            loop.run_all(limit=100)

    def test_events_processed_counter(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule_at(float(i), lambda: None)
        loop.run_until(10.0)
        assert loop.events_processed == 5


class TestExceptionPropagation:
    def test_callback_exception_propagates(self):
        loop = EventLoop()

        def boom():
            raise RuntimeError("actor crashed")

        loop.schedule_at(1.0, boom)
        with pytest.raises(RuntimeError, match="actor crashed"):
            loop.run_until(5.0)


class TestScheduleMany:
    def test_bulk_matches_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule_many(
            [5.0, 1.0, 3.0], lambda: seen.append(loop.now)
        )
        loop.run_all()
        assert seen == [1.0, 3.0, 5.0]

    def test_empty_batch(self):
        loop = EventLoop()
        assert loop.schedule_many([], lambda: None) == []
        assert loop.pending == 0

    def test_ties_fifo_across_single_and_bulk(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(5.0, lambda: seen.append("single"))
        loop.schedule_many(
            [5.0, 5.0], lambda: seen.append("bulk")
        )
        loop.schedule_at(5.0, lambda: seen.append("last"))
        loop.run_all()
        assert seen == ["single", "bulk", "bulk", "last"]

    def test_past_time_rejected(self):
        loop = EventLoop(Clock(start=5.0))
        with pytest.raises(ValueError):
            loop.schedule_many([6.0, 4.0], lambda: None)

    def test_handles_cancel(self):
        loop = EventLoop()
        seen = []
        handles = loop.schedule_many(
            [1.0, 2.0, 3.0], lambda: seen.append(loop.now)
        )
        handles[1].cancel()
        loop.run_all()
        assert seen == [1.0, 3.0]

    def test_small_batch_into_large_heap(self):
        # Exercises the per-push path (batch much smaller than heap).
        loop = EventLoop()
        seen = []
        for i in range(100):
            loop.schedule_at(float(2 * i), lambda: None)
        loop.schedule_many([3.0, 1.0], lambda: seen.append(loop.now))
        loop.run_all()
        assert seen == [1.0, 3.0]

    def test_large_batch_into_small_heap(self):
        # Exercises the extend+heapify path (batch dominates the heap).
        loop = EventLoop()
        seen = []
        loop.schedule_at(50.5, lambda: seen.append(-1.0))
        loop.schedule_many(
            [float(i) for i in range(100, 0, -1)],
            lambda: seen.append(loop.now),
        )
        loop.run_all()
        assert seen[:50] == [float(i) for i in range(1, 51)]
        assert seen[50] == -1.0


class TestPendingIsConstantTime:
    def test_pending_fast_on_large_queue(self):
        # ``pending`` used to scan the heap (O(n)); it is now a
        # maintained counter.  20k reads over a 50k-event queue finish
        # in well under a second; the old scan would need ~1e9 entry
        # visits here and take minutes.
        import time

        loop = EventLoop()
        for i in range(50_000):
            loop.schedule_at(float(i), lambda: None)
        started = time.perf_counter()
        for _ in range(20_000):
            loop.pending
        elapsed = time.perf_counter() - started
        assert loop.pending == 50_000
        assert elapsed < 1.0

    def test_pending_tracks_schedule_cancel_dispatch(self):
        loop = EventLoop()
        handles = [
            loop.schedule_at(float(i), lambda: None) for i in range(10)
        ]
        bulk = loop.schedule_many([20.0, 21.0], lambda: None)
        assert loop.pending == 12
        handles[3].cancel()
        bulk[0].cancel()
        assert loop.pending == 10
        loop.run_until(5.0)
        assert loop.pending == 5  # 0,1,2,4,5 ran; 3 cancelled
        loop.run_all()
        assert loop.pending == 0


class TestHeapCompaction:
    def test_cancel_churn_does_not_grow_heap(self):
        # The pre-compaction kernel retired cancelled entries only at
        # pop time: this exact churn ended with a 101x-bloated heap.
        loop = EventLoop()
        slots = 2_000
        handles = [
            loop.schedule_at(1e9 + i, lambda: None) for i in range(slots)
        ]
        for round_index in range(50):
            for i in range(slots):
                handles[i].cancel()
                handles[i] = loop.schedule_at(
                    1e9 + round_index + i, lambda: None
                )
        assert loop.pending == slots
        assert loop.heap_size <= 3 * slots
        assert loop.compactions > 0

    def test_compaction_preserves_dispatch_order(self):
        loop = EventLoop()
        seen = []
        keep = []
        for i in range(2_000):
            handle = loop.schedule_at(
                float(i), lambda t=float(i): seen.append(t)
            )
            if i % 10 == 0:
                keep.append(handle)
            else:
                handle.cancel()
        loop.run_all()
        assert seen == [float(i) for i in range(0, 2_000, 10)]
        assert loop.pending == 0

    def test_tiny_heaps_never_compacted(self):
        loop = EventLoop()
        handles = [
            loop.schedule_at(float(i), lambda: None) for i in range(10)
        ]
        for handle in handles[:9]:
            handle.cancel()
        assert loop.compactions == 0
        assert loop.heap_size == 10  # dead entries retired at pop time
        loop.run_all()
        assert loop.pending == 0

    def test_cancel_after_dispatch_is_noop(self):
        loop = EventLoop()
        handle = loop.schedule_at(1.0, lambda: None)
        loop.run_all()
        assert loop.pending == 0
        handle.cancel()
        handle.cancel()
        assert loop.pending == 0
        loop.schedule_at(2.0, lambda: None)
        assert loop.pending == 1
        loop.run_all()
        assert loop.pending == 0

    def test_double_cancel_counted_once(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None)
        victim = loop.schedule_at(2.0, lambda: None)
        victim.cancel()
        victim.cancel()
        assert loop.pending == 1

    def test_callback_cancelling_mid_dispatch(self):
        # A callback cancels enough future events to trigger compaction
        # while the dispatch loop is iterating the same heap.
        loop = EventLoop()
        seen = []
        victims = []

        def cull():
            seen.append("cull")
            for handle in victims:
                handle.cancel()

        loop.schedule_at(0.5, cull)
        for i in range(2_000):
            victims.append(
                loop.schedule_at(1.0 + i, lambda: seen.append("victim"))
            )
        survivor = loop.schedule_at(5_000.0, lambda: seen.append("end"))
        loop.run_all()
        assert seen == ["cull", "end"]
        assert loop.compactions > 0
        assert loop.pending == 0
        assert not survivor.cancelled
