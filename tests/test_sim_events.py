"""Tests for repro.sim.events (the discrete-event loop)."""

import pytest

from repro.sim.clock import Clock
from repro.sim.events import EventLoop


class TestScheduling:
    def test_events_run_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(3.0, lambda: seen.append("c"))
        loop.schedule_at(1.0, lambda: seen.append("a"))
        loop.schedule_at(2.0, lambda: seen.append("b"))
        loop.run_until(10.0)
        assert seen == ["a", "b", "c"]

    def test_ties_broken_fifo(self):
        loop = EventLoop()
        seen = []
        for tag in ("first", "second", "third"):
            loop.schedule_at(5.0, lambda t=tag: seen.append(t))
        loop.run_until(10.0)
        assert seen == ["first", "second", "third"]

    def test_clock_advances_to_event_times(self):
        loop = EventLoop()
        stamps = []
        loop.schedule_at(2.0, lambda: stamps.append(loop.now))
        loop.schedule_at(4.0, lambda: stamps.append(loop.now))
        loop.run_until(10.0)
        assert stamps == [2.0, 4.0]

    def test_clock_finishes_at_horizon(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None)
        loop.run_until(10.0)
        assert loop.now == 10.0

    def test_events_beyond_horizon_stay_queued(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(15.0, lambda: seen.append("late"))
        loop.run_until(10.0)
        assert seen == []
        assert loop.pending == 1
        loop.run_until(20.0)
        assert seen == ["late"]

    def test_scheduling_in_past_rejected(self):
        loop = EventLoop(Clock(start=5.0))
        with pytest.raises(ValueError):
            loop.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_in(-1.0, lambda: None)

    def test_schedule_in_relative(self):
        loop = EventLoop(Clock(start=10.0))
        stamps = []
        loop.schedule_in(5.0, lambda: stamps.append(loop.now))
        loop.run_until(20.0)
        assert stamps == [15.0]

    def test_callbacks_can_schedule_more(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule_in(1.0, lambda: seen.append("second"))

        loop.schedule_at(1.0, first)
        loop.run_until(5.0)
        assert seen == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        seen = []
        handle = loop.schedule_at(1.0, lambda: seen.append("x"))
        handle.cancel()
        loop.run_until(5.0)
        assert seen == []
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        loop = EventLoop()
        keep = loop.schedule_at(1.0, lambda: None)
        drop = loop.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert loop.pending == 1
        assert not keep.cancelled

    def test_handle_exposes_when_and_label(self):
        loop = EventLoop()
        handle = loop.schedule_at(3.0, lambda: None, label="probe")
        assert handle.when == 3.0
        assert handle.label == "probe"


class TestStopAndRunAll:
    def test_stop_halts_processing(self):
        loop = EventLoop()
        seen = []

        def stopper():
            seen.append("stop")
            loop.stop()

        loop.schedule_at(1.0, stopper)
        loop.schedule_at(2.0, lambda: seen.append("never"))
        loop.run_until(10.0)
        assert seen == ["stop"]

    def test_run_resumes_after_stop(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, loop.stop)
        loop.schedule_at(2.0, lambda: seen.append("later"))
        loop.run_until(10.0)
        loop.run_until(10.0)
        assert seen == ["later"]

    def test_run_all_drains_queue(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(1.0, lambda: seen.append(1))
        loop.schedule_at(100.0, lambda: seen.append(2))
        loop.run_all()
        assert seen == [1, 2]
        assert loop.now == 100.0

    def test_run_all_limit_catches_runaway(self):
        loop = EventLoop()

        def reschedule():
            loop.schedule_in(1.0, reschedule)

        loop.schedule_at(0.0, reschedule)
        with pytest.raises(RuntimeError):
            loop.run_all(limit=100)

    def test_events_processed_counter(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule_at(float(i), lambda: None)
        loop.run_until(10.0)
        assert loop.events_processed == 5


class TestExceptionPropagation:
    def test_callback_exception_propagates(self):
        loop = EventLoop()

        def boom():
            raise RuntimeError("actor crashed")

        loop.schedule_at(1.0, boom)
        with pytest.raises(RuntimeError, match="actor crashed"):
            loop.run_until(5.0)
