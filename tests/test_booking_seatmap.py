"""Tests for repro.booking.seatmap and seat-level reservation flow."""

import random

import pytest

from repro.booking.flight import Flight
from repro.booking.passengers import sample_genuine_party
from repro.booking.reservation import ReservationSystem
from repro.booking.seatmap import (
    AISLE,
    ANY,
    AVAILABLE,
    CONFIRMED,
    HELD,
    MIDDLE,
    MIDDLE_BLOCK,
    Seat,
    SeatMap,
    SeatMapError,
    TOGETHER,
    WINDOW,
    WINDOW_AISLE,
)
from repro.common import ClientRef
from repro.sim.clock import Clock, HOUR


class TestSeat:
    @pytest.mark.parametrize(
        "letter, position",
        [("A", WINDOW), ("B", MIDDLE), ("C", AISLE),
         ("D", AISLE), ("E", MIDDLE), ("F", WINDOW)],
    )
    def test_positions(self, letter, position):
        assert Seat(12, letter).position == position

    def test_label(self):
        assert Seat(3, "C").label == "3C"


class TestSeatMap:
    def test_capacity(self):
        assert SeatMap(rows=10).capacity == 60

    def test_rows_validation(self):
        with pytest.raises(ValueError):
            SeatMap(rows=0)

    def test_hold_release_confirm_lifecycle(self):
        seat_map = SeatMap(rows=2)
        seats = [Seat(1, "A"), Seat(1, "B")]
        seat_map.hold(seats)
        assert seat_map.state_of(Seat(1, "A")) == HELD
        seat_map.release([Seat(1, "A")])
        assert seat_map.state_of(Seat(1, "A")) == AVAILABLE
        seat_map.confirm([Seat(1, "B")])
        assert seat_map.state_of(Seat(1, "B")) == CONFIRMED

    def test_double_hold_rejected(self):
        seat_map = SeatMap(rows=1)
        seat_map.hold([Seat(1, "A")])
        with pytest.raises(SeatMapError):
            seat_map.hold([Seat(1, "A")])

    def test_release_unheld_rejected(self):
        seat_map = SeatMap(rows=1)
        with pytest.raises(SeatMapError):
            seat_map.release([Seat(1, "A")])

    def test_unknown_seat_rejected(self):
        with pytest.raises(SeatMapError):
            SeatMap(rows=1).state_of(Seat(9, "A"))

    def test_pick_prefers_window_aisle(self):
        seat_map = SeatMap(rows=2)
        picked = seat_map.pick(4, WINDOW_AISLE)
        assert all(s.position in (WINDOW, AISLE) for s in picked)

    def test_pick_middle_block(self):
        seat_map = SeatMap(rows=3)
        picked = seat_map.pick(6, MIDDLE_BLOCK)
        assert all(s.position == MIDDLE for s in picked)

    def test_middle_block_falls_back_when_exhausted(self):
        seat_map = SeatMap(rows=1)  # only 2 middle seats
        picked = seat_map.pick(4, MIDDLE_BLOCK)
        middles = [s for s in picked if s.position == MIDDLE]
        assert len(middles) == 2  # both middles first, then others

    def test_pick_together_adjacent_same_row(self):
        seat_map = SeatMap(rows=3)
        picked = seat_map.pick(3, TOGETHER)
        rows = {s.row for s in picked}
        assert len(rows) == 1
        letters = sorted(s.letter for s in picked)
        assert ord(letters[-1]) - ord(letters[0]) == 2

    def test_pick_more_than_available_rejected(self):
        seat_map = SeatMap(rows=1)
        with pytest.raises(SeatMapError):
            seat_map.pick(7)

    def test_pick_validation(self):
        with pytest.raises(ValueError):
            SeatMap(rows=1).pick(0)
        with pytest.raises(ValueError):
            SeatMap(rows=1).pick(1, "best-legroom")

    def test_position_share(self):
        seat_map = SeatMap(rows=1)
        seats = [Seat(1, "B"), Seat(1, "E"), Seat(1, "A")]
        assert seat_map.position_share(seats, MIDDLE) == pytest.approx(
            2 / 3
        )
        assert seat_map.position_share([], MIDDLE) == 0.0


def make_client(fingerprint_id="fp-1"):
    return ClientRef(
        ip_address="1.1.1.1",
        ip_country="US",
        ip_residential=True,
        fingerprint_id=fingerprint_id,
        user_agent="UA",
    )


class TestSeatAwareReservations:
    @pytest.fixture
    def system(self):
        clock = Clock()
        reservations = ReservationSystem(clock, hold_ttl=1 * HOUR)
        reservations.add_flight(
            Flight(
                "F1", "A", "NCE", "CDG", 100 * HOUR, 12,
                seat_map=SeatMap(rows=2),
            )
        )
        return reservations

    def test_capacity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Flight("F1", "A", "X", "Y", 1.0, 10, seat_map=SeatMap(rows=2))

    def test_hold_assigns_specific_seats(self, system):
        party = sample_genuine_party(random.Random(1), 2)
        result = system.create_hold("F1", party, make_client())
        assert len(result.hold.seats) == 2
        seat_map = system.flight("F1").seat_map
        for seat in result.hold.seats:
            assert seat_map.state_of(seat) == HELD

    def test_expiry_frees_seats(self, system):
        party = sample_genuine_party(random.Random(2), 3)
        result = system.create_hold("F1", party, make_client())
        system.clock.advance_to(2 * HOUR)
        system.expire_due()
        seat_map = system.flight("F1").seat_map
        for seat in result.hold.seats:
            assert seat_map.state_of(seat) == AVAILABLE

    def test_confirm_locks_seats(self, system):
        party = sample_genuine_party(random.Random(3), 2)
        result = system.create_hold("F1", party, make_client())
        system.confirm(result.hold.hold_id)
        seat_map = system.flight("F1").seat_map
        for seat in result.hold.seats:
            assert seat_map.state_of(seat) == CONFIRMED

    def test_cancel_frees_seats(self, system):
        party = sample_genuine_party(random.Random(4), 2)
        result = system.create_hold("F1", party, make_client())
        system.cancel(result.hold.hold_id)
        seat_map = system.flight("F1").seat_map
        for seat in result.hold.seats:
            assert seat_map.state_of(seat) == AVAILABLE

    def test_middle_block_preference_honoured(self, system):
        party = sample_genuine_party(random.Random(5), 2)
        result = system.create_hold(
            "F1", party, make_client(), seat_preference=MIDDLE_BLOCK
        )
        assert all(s.position == MIDDLE for s in result.hold.seats)

    def test_shadow_holds_touch_no_seats(self, system):
        party = sample_genuine_party(random.Random(6), 2)
        result = system.create_hold(
            "F1", party, make_client(), shadow=True
        )
        assert result.hold.seats == ()
        seat_map = system.flight("F1").seat_map
        assert seat_map.available_count() == 12

    def test_seat_and_count_inventories_agree(self, system):
        party = sample_genuine_party(random.Random(7), 4)
        system.create_hold("F1", party, make_client())
        flight = system.flight("F1")
        assert (
            flight.seat_map.available_count()
            == flight.inventory.available
        )
