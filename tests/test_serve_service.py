"""Tests for repro.serve.service: journal-first application,
checkpoint/restore equivalence, campaign conviction, digests."""

import pytest

from repro.scenarios.streaming import build_stream_pipeline
from repro.serve.codec import CodecError
from repro.serve.service import (
    DetectionService,
    SeqConflict,
    ServiceFinished,
    ingest_payload,
)
from repro.serve.state import StateStore

from tests.serve_util import campaign_entries, make_entry, write_trace


def make_service(tmp_path, name="s.db", **kwargs):
    kwargs.setdefault("checkpoint_interval", 10_000)
    return DetectionService(
        StateStore(str(tmp_path / name)), **kwargs
    )


class TestIngest:
    def test_ingest_matches_direct_pipeline(self, tmp_path):
        """The serve path adds persistence, not semantics: fused
        verdicts equal a bare pipeline fed the same entries."""
        entries = campaign_entries()
        service = make_service(tmp_path)
        applied = service.ingest(ingest_payload(entries))
        assert applied == len(entries)

        direct = build_stream_pipeline()
        for entry in entries:
            direct.process(entry)
        assert (
            service.pipeline.fusion.fused() == direct.fusion.fused()
        )

    def test_seq_token_detects_double_send(self, tmp_path):
        service = make_service(tmp_path)
        events = ingest_payload([make_entry(1.0), make_entry(2.0)])
        service.ingest(events, seq=0)
        with pytest.raises(SeqConflict) as exc_info:
            service.ingest(events, seq=0)  # client retries blindly
        assert exc_info.value.expected == 2

    def test_bad_batch_rejected_before_any_side_effect(self, tmp_path):
        service = make_service(tmp_path)
        service.ingest(ingest_payload([make_entry(10.0)]))
        bad = ingest_payload([make_entry(20.0)]) + [{"nope": True}]
        with pytest.raises(CodecError):
            service.ingest(bad)
        # Nothing from the rejected batch was journaled or applied.
        assert service.events_ingested == 1
        assert service.store.journal_rows() == 1
        assert service.pipeline.events_processed == 1

    def test_out_of_order_batch_rejected(self, tmp_path):
        service = make_service(tmp_path)
        service.ingest(ingest_payload([make_entry(10.0)]))
        with pytest.raises(CodecError, match="time-ordered"):
            service.ingest(ingest_payload([make_entry(5.0)]))
        assert service.events_ingested == 1

    def test_ingest_after_finish_refused(self, tmp_path):
        service = make_service(tmp_path)
        service.ingest(ingest_payload([make_entry(1.0)]))
        service.finish()
        with pytest.raises(ServiceFinished):
            service.ingest(ingest_payload([make_entry(2.0)]))


class TestReplayFile:
    def test_replay_equals_ingest(self, tmp_path):
        entries = campaign_entries()
        trace = write_trace(tmp_path / "t.rptr", entries)

        replayed = make_service(tmp_path, "a.db")
        result = replayed.replay_file(trace, batch=7)
        assert result["replayed"] == len(entries)

        ingested = make_service(tmp_path, "b.db")
        ingested.ingest(ingest_payload(entries))
        assert (
            replayed.analysis_digest() == ingested.analysis_digest()
        )

    def test_offset_and_limit_chunk_the_trace(self, tmp_path):
        entries = campaign_entries()
        trace = write_trace(tmp_path / "t.rptr", entries)
        service = make_service(tmp_path)
        first = service.replay_file(trace, offset=0, limit=10)
        assert first == {
            "replayed": 10, "skipped": 0, "events_ingested": 10,
        }
        second = service.replay_file(trace, offset=10)
        assert second["skipped"] == 10
        assert second["events_ingested"] == len(entries)

    def test_zero_event_trace(self, tmp_path):
        trace = write_trace(tmp_path / "empty.rptr", [])
        service = make_service(tmp_path)
        assert service.replay_file(trace)["replayed"] == 0

    def test_corrupt_trace_leaves_journal_consistent(self, tmp_path):
        from repro.trace import TraceCorruption

        entries = campaign_entries()
        source = write_trace(tmp_path / "ok.rptr", entries)
        blob = open(source, "rb").read()
        truncated = tmp_path / "bad.rptr"
        truncated.write_bytes(blob[:-13])  # drop the CRC footer
        service = make_service(tmp_path)
        with pytest.raises(TraceCorruption):
            service.replay_file(str(truncated), batch=7)
        # Whatever was applied was journaled first: memory == disk.
        assert service.store.journal_rows() == service.events_ingested
        assert (
            service.pipeline.events_processed == service.events_ingested
        )


class TestRecoveryEquivalence:
    def test_restore_mid_stream_is_bit_identical(self, tmp_path):
        """Kill-and-restore == uninterrupted, down to the digest."""
        entries = campaign_entries()
        events = ingest_payload(entries)

        uninterrupted = make_service(
            tmp_path, "a.db", checkpoint_interval=13
        )
        uninterrupted.ingest(events)
        reference = uninterrupted.analysis_digest()

        # Interrupted run: ingest 60%, abandon the in-memory state
        # (simulated SIGKILL — no checkpoint, no close), restore.
        cut = int(len(events) * 0.6)
        first = DetectionService(
            StateStore(str(tmp_path / "b.db")), checkpoint_interval=13
        )
        first.ingest(events[:cut])
        first.store.close()
        del first

        resumed = DetectionService(
            StateStore(str(tmp_path / "b.db")), checkpoint_interval=13
        )
        assert resumed.restored
        assert resumed.events_ingested == cut
        resumed.ingest(events[cut:], seq=cut)
        assert resumed.analysis_digest() == reference

    def test_restore_replays_journal_tail(self, tmp_path):
        events = ingest_payload(campaign_entries())
        first = DetectionService(
            StateStore(str(tmp_path / "s.db")), checkpoint_interval=13
        )
        # Small batches: checkpoints land on batch boundaries, so the
        # final few events stay journal-only.
        for start in range(0, len(events), 5):
            first.ingest(events[start:start + 5])
        tail = first.events_ingested - first.store.snapshot_seq()
        assert tail > 0
        first.store.close()
        del first

        resumed = DetectionService(
            StateStore(str(tmp_path / "s.db")), checkpoint_interval=13
        )
        assert resumed.journal_replayed == tail
        assert resumed.events_ingested == len(events)

    def test_fresh_db_without_snapshot_replays_full_journal(
        self, tmp_path
    ):
        events = ingest_payload(campaign_entries())
        first = make_service(tmp_path)  # interval huge: no snapshot
        first.ingest(events)
        assert first.store.snapshot_seq() == 0
        first.store.close()
        del first
        resumed = make_service(tmp_path)
        assert not resumed.restored  # no snapshot, cold core
        assert resumed.journal_replayed == len(events)
        assert resumed.events_ingested == len(events)


class TestDetectionOutcomes:
    def test_campaign_convicted_on_finish(self, tmp_path):
        service = make_service(tmp_path)
        service.ingest(ingest_payload(campaign_entries()))
        service.finish()
        campaigns = service.campaigns_view()
        assert len(campaigns) >= 1
        fingerprints = set(campaigns[0]["fingerprints"])
        assert {
            f"fp-rot-{i}" for i in range(4)
        } <= fingerprints
        entities = service.entities_view()
        assert {e["fingerprint_id"] for e in entities} >= {
            f"fp-rot-{i}" for i in range(4)
        }

    def test_periodic_refresh_convicts_mid_stream(self, tmp_path):
        # With a small refresh cadence and aggressive idle eviction
        # (sessions close as event time advances) the campaign lands
        # during ingest — before finish — the live-service story.
        service = make_service(
            tmp_path, refresh_every=2, evict_every=8
        )
        service.ingest(ingest_payload(campaign_entries()))
        assert len(service.campaigns_view()) >= 1

    def test_legit_fingerprints_not_convicted(self, tmp_path):
        service = make_service(tmp_path)
        service.ingest(ingest_payload(campaign_entries()))
        service.finish()
        convicted = {
            e["fingerprint_id"] for e in service.entities_view()
        }
        assert not any(fp.startswith("fp-legit") for fp in convicted)

    def test_status_view_counts(self, tmp_path):
        service = make_service(tmp_path)
        events = ingest_payload(campaign_entries())
        service.ingest(events)
        status = service.status_view()
        assert status["events_ingested"] == len(events)
        assert status["journal_rows"] == len(events)
        assert status["finished"] is False

    def test_finish_is_idempotent(self, tmp_path):
        service = make_service(tmp_path)
        service.ingest(ingest_payload(campaign_entries()))
        first = service.finish()
        assert service.finish() is first
        assert service.analysis_digest() == service.analysis_digest()

    def test_checkpoint_writes_derived_tables(self, tmp_path):
        service = make_service(
            tmp_path, refresh_every=2, evict_every=8
        )
        service.ingest(ingest_payload(campaign_entries()))
        service.checkpoint()
        derived = service.store.read_derived()
        assert len(derived["campaigns"]) >= 1
        assert len(derived["entities"]) >= 4
        assert any(v["is_bot"] for v in derived["verdicts"])
