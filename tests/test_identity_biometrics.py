"""Tests for repro.identity.biometrics (mouse-dynamics detection)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.identity.biometrics import (
    BiometricDetector,
    BotMotionModel,
    HumanMotionModel,
    LINEAR,
    MousePoint,
    MouseTrajectory,
    NO_MOUSE,
    REPLAY,
    SYNTHETIC_CURVE,
    trajectory_features,
)


class TestMouseTrajectory:
    def test_timestamps_must_be_sorted(self):
        with pytest.raises(ValueError):
            MouseTrajectory(
                (MousePoint(1.0, 0, 0), MousePoint(0.5, 10, 10))
            )

    def test_geometry(self):
        trajectory = MouseTrajectory(
            (
                MousePoint(0.0, 0, 0),
                MousePoint(0.1, 3, 4),
                MousePoint(0.2, 6, 8),
            )
        )
        assert trajectory.path_length == pytest.approx(10.0)
        assert trajectory.displacement == pytest.approx(10.0)
        assert trajectory.duration == pytest.approx(0.2)

    def test_shape_hash_stable_and_sensitive(self):
        a = MouseTrajectory(
            (MousePoint(0.0, 0, 0), MousePoint(0.1, 100, 100))
        )
        b = MouseTrajectory(
            (MousePoint(0.0, 0, 0), MousePoint(0.1, 100, 100))
        )
        c = MouseTrajectory(
            (MousePoint(0.0, 0, 0), MousePoint(0.1, 500, 100))
        )
        assert a.shape_hash() == b.shape_hash()
        assert a.shape_hash() != c.shape_hash()


class TestHumanMotion:
    def test_trajectories_are_curved_and_noisy(self):
        model = HumanMotionModel(random.Random(1))
        for _ in range(20):
            features = trajectory_features(model.move())
            assert features.straightness > 1.0
            assert features.tremor_energy > 1.0
            assert features.point_count >= 8

    def test_speed_profile_is_variable(self):
        model = HumanMotionModel(random.Random(2))
        trajectory = model.move(start=(100, 100), end=(900, 600))
        features = trajectory_features(trajectory)
        assert features.speed_cv > 0.12

    def test_trajectories_never_repeat(self):
        model = HumanMotionModel(random.Random(3))
        hashes = {model.move().shape_hash() for _ in range(30)}
        assert len(hashes) == 30

    def test_explicit_endpoints_respected(self):
        model = HumanMotionModel(random.Random(4))
        trajectory = model.move(start=(50, 50), end=(400, 300))
        first, last = trajectory.points[0], trajectory.points[-1]
        assert abs(first.x - 50) < 10 and abs(first.y - 50) < 10
        assert abs(last.x - 400) < 20 and abs(last.y - 300) < 20


class TestBotMotion:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            BotMotionModel("teleport", random.Random(1))

    def test_no_mouse_emits_nothing(self):
        bot = BotMotionModel(NO_MOUSE, random.Random(1))
        assert bot.move() is None

    def test_linear_is_perfectly_straight(self):
        bot = BotMotionModel(LINEAR, random.Random(2))
        features = trajectory_features(bot.move())
        assert features.straightness == pytest.approx(1.0, abs=1e-6)
        assert features.speed_cv < 0.05
        assert features.tremor_energy < 0.5

    def test_replay_repeats_exactly(self):
        bot = BotMotionModel(REPLAY, random.Random(3))
        hashes = {bot.move().shape_hash() for _ in range(5)}
        assert len(hashes) == 1

    def test_synthetic_curve_lacks_tremor(self):
        bot = BotMotionModel(SYNTHETIC_CURVE, random.Random(4))
        for _ in range(10):
            features = trajectory_features(bot.move())
            assert features.tremor_energy < 1.0


class TestBiometricDetector:
    def _human_trajectories(self, seed, count=6):
        model = HumanMotionModel(random.Random(seed))
        return [model.move() for _ in range(count)]

    def test_humans_pass(self):
        detector = BiometricDetector()
        for seed in range(30):
            verdict = detector.judge_subject(
                f"h{seed}", self._human_trajectories(seed)
            )
            assert not verdict.is_bot, (seed, verdict.reasons)

    @pytest.mark.parametrize(
        "mode, expected_reason",
        [
            (NO_MOUSE, "no-pointer-events"),
            (LINEAR, "no-motor-tremor"),
            (REPLAY, "replayed-trajectory"),
            (SYNTHETIC_CURVE, "no-motor-tremor"),
        ],
    )
    def test_every_bot_mode_caught(self, mode, expected_reason):
        detector = BiometricDetector()
        bot = BotMotionModel(mode, random.Random(9))
        verdict = detector.judge_subject(
            mode, [bot.move() for _ in range(6)]
        )
        assert verdict.is_bot
        assert expected_reason in verdict.reasons

    def test_mixed_replay_detected_within_human_noise(self):
        """A bot splicing one recording between generated moves still
        trips replay detection once the recording repeats enough."""
        detector = BiometricDetector()
        human = HumanMotionModel(random.Random(10))
        recording = human.move()
        trajectories = [
            recording, human.move(), recording, human.move(), recording
        ]
        verdict = detector.judge_subject("mix", trajectories)
        assert "replayed-trajectory" in verdict.reasons

    def test_single_human_flick_not_flagged(self):
        """One short fast movement must not convict a human."""
        detector = BiometricDetector()
        model = HumanMotionModel(random.Random(11))
        trajectory = model.move(start=(100, 100), end=(140, 110))
        verdict = detector.judge_subject("flick", [trajectory])
        assert not verdict.is_bot


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_feature_extraction_total(seed):
    """Property: features are finite and well-typed for any generated
    trajectory, human or bot."""
    human = HumanMotionModel(random.Random(seed)).move()
    for trajectory in (
        human,
        BotMotionModel(LINEAR, random.Random(seed)).move(),
        BotMotionModel(SYNTHETIC_CURVE, random.Random(seed)).move(),
    ):
        features = trajectory_features(trajectory)
        assert features.straightness >= 1.0 - 1e-9
        assert features.speed_cv >= 0.0
        assert features.tremor_energy >= 0.0
        assert features.point_count == len(trajectory.points)
