"""Integration tests for the Section V behavioural-stack scenario."""

import pytest

from repro.scenarios.behavioural import (
    BehaviouralConfig,
    run_behavioural_stack,
)
from repro.sim.clock import DAY


@pytest.fixture(scope="module")
def result():
    return run_behavioural_stack(
        BehaviouralConfig(seed=43, duration=2 * DAY)
    )


class TestBehaviouralStack:
    def test_all_detectors_scored(self, result):
        assert set(result.runs) == {
            "volume", "navigation", "biometrics", "fusion",
        }

    def test_every_class_has_sessions(self, result):
        for cls in ("legit", "scraper", "seat-spinner", "manual-spinner"):
            assert result.session_counts_by_class.get(cls, 0) > 0, cls

    def test_volume_misses_evasive_attacks(self, result):
        recall = result.run_for("volume").recall_by_class
        for cls in ("scraper", "seat-spinner", "manual-spinner"):
            assert recall.get(cls, 0.0) <= 0.1, cls

    def test_navigation_catches_teleporters(self, result):
        recall = result.run_for("navigation").recall_by_class
        assert recall.get("seat-spinner", 0.0) > 0.8
        assert recall.get("manual-spinner", 0.0) > 0.8

    def test_biometrics_catch_automation_only(self, result):
        recall = result.run_for("biometrics").recall_by_class
        assert recall.get("scraper", 0.0) > 0.8
        assert recall.get("seat-spinner", 0.0) > 0.8
        assert recall.get("manual-spinner", 0.0) < 0.2  # human!

    def test_fusion_dominates_components(self, result):
        fusion = result.run_for("fusion").recall_by_class
        for name in ("volume", "navigation", "biometrics"):
            component = result.run_for(name).recall_by_class
            for cls, value in component.items():
                assert fusion.get(cls, 0.0) >= value - 1e-9, (name, cls)

    def test_fusion_low_false_positives(self, result):
        assert (
            result.run_for("fusion").evaluation.false_positive_rate
            < 0.02
        )
