"""Tests for repro.web.logs (web log + sessionization)."""

import pytest

from repro.common import ClientRef, LEGIT, SEAT_SPINNER
from repro.web.logs import LogEntry, WebLog, sessionize


def make_entry(time, ip="1.1.1.1", fingerprint="fp1", actor_class=LEGIT,
               path="/search", status=200):
    return LogEntry(
        time=time,
        method="GET",
        path=path,
        status=status,
        client=ClientRef(
            ip_address=ip,
            ip_country="US",
            ip_residential=True,
            fingerprint_id=fingerprint,
            user_agent="UA",
            actor_class=actor_class,
        ),
    )


class TestWebLog:
    def test_append_and_read(self):
        log = WebLog()
        log.append(make_entry(1.0))
        log.append(make_entry(2.0))
        assert len(log) == 2
        assert [e.time for e in log.entries()] == [1.0, 2.0]

    def test_time_ordering_enforced(self):
        log = WebLog()
        log.append(make_entry(5.0))
        with pytest.raises(ValueError):
            log.append(make_entry(4.0))

    def test_entries_between(self):
        log = WebLog()
        for t in (0.0, 5.0, 10.0, 15.0):
            log.append(make_entry(t))
        assert [e.time for e in log.entries_between(5.0, 15.0)] == [
            5.0,
            10.0,
        ]

    def test_out_of_order_rejection_names_both_times(self):
        log = WebLog()
        log.append(make_entry(5.0))
        with pytest.raises(ValueError, match=r"time-ordered: 4\.0 < 5\.0"):
            log.append(make_entry(4.0))

    def test_entries_returns_defensive_copy(self):
        log = WebLog()
        log.append(make_entry(1.0))
        log.entries().clear()
        assert len(log) == 1

    def test_iter_entries_matches_entries_without_copy(self):
        log = WebLog()
        for t in (1.0, 2.0, 3.0):
            log.append(make_entry(t))
        assert list(log.iter_entries()) == log.entries()


class TestWebLogSubscribe:
    def test_observer_sees_each_entry_in_order(self):
        log = WebLog()
        seen = []
        log.subscribe(seen.append)
        for t in (1.0, 2.0, 3.0):
            log.append(make_entry(t))
        assert [e.time for e in seen] == [1.0, 2.0, 3.0]

    def test_observer_only_sees_entries_after_subscription(self):
        log = WebLog()
        log.append(make_entry(1.0))
        seen = []
        log.subscribe(seen.append)
        log.append(make_entry(2.0))
        assert [e.time for e in seen] == [2.0]

    def test_unsubscribe_stops_delivery_and_is_idempotent(self):
        log = WebLog()
        seen = []
        unsubscribe = log.subscribe(seen.append)
        log.append(make_entry(1.0))
        unsubscribe()
        unsubscribe()  # second call is a no-op
        log.append(make_entry(2.0))
        assert [e.time for e in seen] == [1.0]
        assert log.observer_count == 0

    def test_entry_committed_before_observers_run(self):
        log = WebLog()
        lengths = []
        log.subscribe(lambda entry: lengths.append(len(log)))
        log.append(make_entry(1.0))
        assert lengths == [1]

    def test_reentrant_append_raises(self):
        log = WebLog()
        log.subscribe(lambda entry: log.append(make_entry(entry.time)))
        with pytest.raises(RuntimeError, match="re-entrant"):
            log.append(make_entry(1.0))
        # The original entry stayed committed; the log still works.
        assert len(log) == 1

    def test_observer_exception_does_not_wedge_the_log(self):
        log = WebLog()

        def boom(entry):
            raise RuntimeError("observer failure")

        unsubscribe = log.subscribe(boom)
        with pytest.raises(RuntimeError, match="observer failure"):
            log.append(make_entry(1.0))
        unsubscribe()
        log.append(make_entry(2.0))  # no lingering re-entrancy latch
        assert len(log) == 2

    def test_reentrant_error_names_the_offending_observer(self):
        log = WebLog()

        def misbehaving_observer(entry):
            log.append(make_entry(entry.time))

        log.subscribe(misbehaving_observer)
        with pytest.raises(RuntimeError, match="misbehaving_observer"):
            log.append(make_entry(1.0))

    def test_reentrant_error_names_bound_method_owner(self):
        class Consumer:
            def __init__(self, log):
                self.log = log

            def on_entry(self, entry):
                self.log.append(make_entry(entry.time))

            def __repr__(self):
                return "<Consumer under test>"

        log = WebLog()
        consumer = Consumer(log)
        log.subscribe(consumer.on_entry)
        with pytest.raises(
            RuntimeError,
            match=r"Consumer\.on_entry of <Consumer under test>",
        ):
            log.append(make_entry(1.0))

    def test_unsubscribe_method_by_observer(self):
        log = WebLog()
        seen = []
        log.subscribe(seen.append)
        assert log.unsubscribe(seen.append) is True
        assert log.unsubscribe(seen.append) is False  # idempotent
        log.append(make_entry(1.0))
        assert seen == []

    def test_unsubscribe_self_during_dispatch(self):
        # An observer removing itself mid-dispatch still receives the
        # in-flight entry and nothing after — clean service teardown.
        log = WebLog()
        seen = []

        def one_shot(entry):
            seen.append(entry.time)
            assert log.unsubscribe(one_shot) is True

        log.subscribe(one_shot)
        log.append(make_entry(1.0))
        log.append(make_entry(2.0))
        assert seen == [1.0]
        assert log.observer_count == 0

    def test_unsubscribe_peer_during_dispatch_no_skips(self):
        # First observer removes the second mid-dispatch: the second
        # still sees the entry being dispatched (snapshot iteration),
        # then stops receiving.
        log = WebLog()
        second_seen = []

        def second(entry):
            second_seen.append(entry.time)

        def first(entry):
            log.unsubscribe(second)

        log.subscribe(first)
        log.subscribe(second)
        log.append(make_entry(1.0))
        log.append(make_entry(2.0))
        assert second_seen == [1.0]
        assert log.observer_count == 1


class TestSessionize:
    def test_groups_by_ip_and_fingerprint(self):
        log = WebLog()
        log.append(make_entry(0.0, ip="1.1.1.1", fingerprint="a"))
        log.append(make_entry(1.0, ip="2.2.2.2", fingerprint="a"))
        log.append(make_entry(2.0, ip="1.1.1.1", fingerprint="a"))
        sessions = sessionize(log)
        assert len(sessions) == 2

    def test_idle_gap_splits_sessions(self):
        log = WebLog()
        log.append(make_entry(0.0))
        log.append(make_entry(100.0))
        log.append(make_entry(100.0 + 31 * 60))  # past the 30-min gap
        sessions = sessionize(log)
        assert len(sessions) == 2
        assert sessions[0].request_count == 2

    def test_gap_exactly_at_threshold_keeps_session(self):
        log = WebLog()
        log.append(make_entry(0.0))
        log.append(make_entry(30 * 60.0))
        assert len(sessionize(log)) == 1

    def test_rotation_shreds_sessions(self):
        """A client changing fingerprint per request produces one
        session per request — the sessionization blind spot rotation
        exploits."""
        log = WebLog()
        for i in range(5):
            log.append(make_entry(float(i), fingerprint=f"fp{i}"))
        assert len(sessionize(log)) == 5

    def test_session_properties(self):
        log = WebLog()
        log.append(make_entry(10.0))
        log.append(make_entry(40.0))
        session = sessionize(log)[0]
        assert session.start == 10.0
        assert session.end == 40.0
        assert session.duration == 30.0
        assert session.request_count == 2

    def test_actor_class_majority(self):
        log = WebLog()
        log.append(make_entry(0.0, actor_class=SEAT_SPINNER))
        log.append(make_entry(1.0, actor_class=SEAT_SPINNER))
        log.append(make_entry(2.0, actor_class=LEGIT))
        session = sessionize(log)[0]
        assert session.actor_class == SEAT_SPINNER
        assert session.is_attacker

    def test_sessions_sorted_by_start(self):
        log = WebLog()
        log.append(make_entry(5.0, ip="b"))
        log.append(make_entry(6.0, ip="a"))
        log.append(make_entry(7.0, ip="b"))
        sessions = sessionize(log)
        assert [s.start for s in sessions] == [5.0, 6.0]

    def test_invalid_idle_gap(self):
        with pytest.raises(ValueError):
            sessionize(WebLog(), idle_gap=0.0)

    def test_single_entry_sessions(self):
        log = WebLog()
        log.append(make_entry(0.0))
        log.append(make_entry(31 * 60.0))
        sessions = sessionize(log)
        assert [s.request_count for s in sessions] == [1, 1]
        for session in sessions:
            assert session.start == session.end
            assert session.duration == 0.0

    def test_interleaved_clients_split_independently(self):
        """Client A's idle gap closes A's session without touching
        B's, even when their requests interleave in the log."""
        log = WebLog()
        log.append(make_entry(0.0, ip="a"))
        log.append(make_entry(60.0, ip="b"))
        log.append(make_entry(25 * 60.0, ip="b"))  # B gap is only 24 min
        log.append(make_entry(45 * 60.0, ip="a"))  # A idled past 30 min
        sessions = sessionize(log)
        by_ip = {}
        for session in sessions:
            by_ip.setdefault(session.ip_address, []).append(session)
        assert len(by_ip["a"]) == 2
        assert len(by_ip["b"]) == 1
        assert by_ip["b"][0].request_count == 2

    def test_session_ids_unique(self):
        log = WebLog()
        for i in range(10):
            log.append(make_entry(float(i), ip=f"ip{i}"))
        ids = {s.session_id for s in sessionize(log)}
        assert len(ids) == 10
