"""Tests for the evasive scraper and the trap endpoint."""

import pytest

from repro.common import SCRAPER
from repro.core.detection.features import extract_features
from repro.core.detection.volume import VolumeDetector
from repro.identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RAW_HEADLESS,
    RotationPolicy,
)
from repro.scenarios.world import FlightSpec, WorldConfig, build_world
from repro.sim.clock import DAY, HOUR
from repro.traffic.evasive_scraper import (
    EvasiveScraperBot,
    EvasiveScraperConfig,
)
from repro.traffic.scraper import ScraperBot, ScraperConfig
from repro.web.logs import sessionize
from repro.web.request import TRAP


def make_world(seed=1):
    return build_world(
        WorldConfig(
            seed=seed,
            flights=[FlightSpec(f"F{i}", 30 * DAY, 200) for i in range(4)],
        )
    )


def evasive_bot(world, **overrides):
    config = dict(duration=8 * HOUR)
    config.update(overrides)
    return EvasiveScraperBot(
        world.loop,
        world.app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(),
            world.rngs.stream("evasive.identity"),
        ),
        world.rngs.stream("evasive"),
        EvasiveScraperConfig(**config),
    )


class TestTrapEndpoint:
    def test_naive_scraper_hits_trap(self):
        world = make_world()
        bot = ScraperBot(
            world.loop,
            world.app,
            BotIdentity(
                FingerprintForge(RAW_HEADLESS),
                RotationPolicy(),
                world.rngs.stream("scraper.identity"),
            ),
            world.rngs.stream("scraper"),
            ScraperConfig(
                requests_per_hour=800, duration=6 * HOUR,
                trap_probability=0.05,
            ),
        )
        bot.start(at=0.0)
        world.run_until(6 * HOUR)
        assert world.metrics.counter("web.trap_hits") > 10
        sessions = sessionize(world.app.log)
        scraper_sessions = [
            s for s in sessions if s.actor_class == SCRAPER
        ]
        assert any(
            extract_features(s).trap_hits > 0 for s in scraper_sessions
        )

    def test_evasive_scraper_never_hits_trap(self):
        world = make_world()
        bot = evasive_bot(world)
        bot.start(at=0.0)
        world.run_until(8 * HOUR)
        assert world.metrics.counter("web.trap_hits") == 0


class TestEvasiveScraper:
    def test_scrapes_pages_slowly(self):
        world = make_world()
        bot = evasive_bot(world)
        bot.start(at=0.0)
        world.run_until(8 * HOUR)
        assert bot.pages_scraped > 50
        # An order of magnitude below the naive scraper's throughput.
        assert bot.requests_made < 3000

    def test_sessions_stay_under_budget(self):
        world = make_world()
        bot = evasive_bot(world, session_budget=10)
        bot.start(at=0.0)
        world.run_until(8 * HOUR)
        sessions = [
            s
            for s in sessionize(world.app.log)
            if s.actor_class == SCRAPER
        ]
        assert sessions
        assert max(s.request_count for s in sessions) <= 10
        assert bot.sessions_used > 5

    def test_evades_volume_detection(self):
        """The Section III-A evasion result: human-paced, budget-
        rotated scraping produces zero volume verdicts."""
        world = make_world()
        bot = evasive_bot(world)
        bot.start(at=0.0)
        world.run_until(8 * HOUR)
        sessions = [
            s
            for s in sessionize(world.app.log)
            if s.actor_class == SCRAPER
        ]
        verdicts = VolumeDetector().judge_all(sessions)
        assert not any(v.is_bot for v in verdicts)

    def test_backs_off_after_blocks(self):
        world = make_world()
        bot = evasive_bot(world)
        # Block every residential exit the bot could use: all requests
        # from its current identity are denied until it rotates.
        blocked_ids = set()

        def ban_current(request):
            return request.client.fingerprint_id in blocked_ids

        world.app.add_block_rule("ban-list", ban_current)
        blocked_ids.add(bot.identity.fingerprint.fingerprint_id)
        bot.start(at=0.0)
        world.run_until(2 * HOUR)
        assert bot.blocks_encountered >= 1
        assert bot.sessions_used >= 2  # rotated away from the ban

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EvasiveScraperConfig(median_think_time=0)
        with pytest.raises(ValueError):
            EvasiveScraperConfig(session_budget=0)
        with pytest.raises(ValueError):
            EvasiveScraperConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ScraperConfig(trap_probability=1.5)
