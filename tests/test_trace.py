"""Tests for repro.trace: format roundtrip, corruption, capture, replay."""

import struct

import pytest

from repro.common import ClientRef, LEGIT, SEAT_SPINNER
from repro.stream import StreamPipeline
from repro.trace import (
    TRACE_MAGIC,
    TRACE_VERSION,
    TraceCapture,
    TraceCorruption,
    TraceError,
    TraceReader,
    TraceWriter,
    read_entries,
    rebuild_log,
    replay_trace,
)
from repro.web.logs import LogEntry, WebLog


def make_entry(time, ip="1.1.1.1", fingerprint="fp1", path="/search",
               status=200, actor_class=LEGIT, blocked_by="", outcome=""):
    return LogEntry(
        time=time,
        method="GET",
        path=path,
        status=status,
        client=ClientRef(
            ip_address=ip,
            ip_country="IT",
            ip_residential=True,
            fingerprint_id=fingerprint,
            user_agent="UA-1",
            actor_class=actor_class,
        ),
        blocked_by=blocked_by,
        outcome=outcome,
    )


def sample_entries():
    return [
        make_entry(0.5),
        make_entry(1.5, path="/hold", outcome="held"),
        make_entry(2.5, ip="2.2.2.2", fingerprint="fp2",
                   actor_class=SEAT_SPINNER, status=403,
                   blocked_by="block-rule"),
        make_entry(2.5),  # equal timestamps survive the roundtrip
    ]


def write_trace(path, entries, meta=None):
    with TraceWriter(str(path), meta=meta) as writer:
        for entry in entries:
            writer.write(entry)
    return str(path)


class TestRoundtrip:
    def test_entries_identical(self, tmp_path):
        entries = sample_entries()
        path = write_trace(tmp_path / "t.rptr", entries)
        assert list(read_entries(path)) == entries

    def test_meta_roundtrip(self, tmp_path):
        path = write_trace(
            tmp_path / "t.rptr", [], meta={"scenario": "x", "seed": 3}
        )
        with TraceReader(path) as reader:
            assert reader.meta == {"scenario": "x", "seed": 3}
            assert reader.version == TRACE_VERSION

    def test_empty_trace(self, tmp_path):
        path = write_trace(tmp_path / "t.rptr", [])
        assert list(read_entries(path)) == []

    def test_string_interning_pays_off(self, tmp_path):
        entries = [make_entry(float(i)) for i in range(100)]
        path = write_trace(tmp_path / "t.rptr", entries)
        with TraceReader(path) as reader:
            assert len(list(reader)) == 100
        import os

        # 100 identical-client entries: interning keeps the cost near
        # the fixed per-entry frame, far below repeating the strings.
        assert os.path.getsize(path) < 100 * 80

    def test_rebuild_log(self, tmp_path):
        entries = sample_entries()
        path = write_trace(tmp_path / "t.rptr", entries)
        log = rebuild_log(path)
        assert isinstance(log, WebLog)
        assert log.entries() == entries

    def test_writer_refuses_after_close(self, tmp_path):
        writer = TraceWriter(str(tmp_path / "t.rptr"))
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(TraceError):
            writer.write(make_entry(1.0))


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rptr"
        path.write_bytes(b"NOPE" + b"\x00" * 16)
        with pytest.raises(TraceCorruption, match="bad magic"):
            TraceReader(str(path))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "bad.rptr"
        path.write_bytes(
            TRACE_MAGIC + struct.pack("<H", TRACE_VERSION + 1)
            + struct.pack("<I", 2) + b"{}"
        )
        with pytest.raises(TraceError, match="unsupported trace version"):
            TraceReader(str(path))

    def test_missing_footer(self, tmp_path):
        source = write_trace(tmp_path / "ok.rptr", sample_entries())
        blob = open(source, "rb").read()
        truncated = tmp_path / "trunc.rptr"
        truncated.write_bytes(blob[:-13])  # drop the footer frame
        with pytest.raises(TraceCorruption, match="missing footer"):
            list(read_entries(str(truncated)))

    def test_truncated_mid_record(self, tmp_path):
        source = write_trace(tmp_path / "ok.rptr", sample_entries())
        blob = open(source, "rb").read()
        truncated = tmp_path / "trunc.rptr"
        truncated.write_bytes(blob[:-20])
        with pytest.raises(TraceCorruption):
            list(read_entries(str(truncated)))

    def test_flipped_payload_byte_fails_crc(self, tmp_path):
        source = write_trace(tmp_path / "ok.rptr", sample_entries())
        blob = bytearray(open(source, "rb").read())
        # Flip one byte inside an entry's time field (well past the
        # header, well before the footer).
        blob[len(blob) // 2] ^= 0xFF
        corrupt = tmp_path / "crc.rptr"
        corrupt.write_bytes(bytes(blob))
        with pytest.raises(TraceCorruption):
            list(read_entries(str(corrupt)))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "bad.rptr"
        path.write_bytes(TRACE_MAGIC + b"\x01")
        with pytest.raises(TraceCorruption, match="truncated header"):
            TraceReader(str(path))


class TestCapture:
    def test_capture_records_live_appends(self, tmp_path):
        log = WebLog()
        path = str(tmp_path / "cap.rptr")
        with TraceCapture(path, meta={"scenario": "unit"}) as capture:
            capture.attach(log)
            for entry in sample_entries():
                log.append(entry)
            assert capture.entries_written == 4
        # Detached on close: later appends are not recorded …
        log.append(make_entry(10.0))
        assert log.observer_count == 0
        # … and the file has a valid footer.
        assert list(read_entries(path)) == sample_entries()

    def test_capture_only_sees_post_attach_entries(self, tmp_path):
        log = WebLog()
        log.append(make_entry(0.0))
        path = str(tmp_path / "cap.rptr")
        with TraceCapture(path) as capture:
            capture.attach(log)
            log.append(make_entry(1.0))
        assert [e.time for e in read_entries(path)] == [1.0]


class TestReplay:
    def test_replay_feeds_pipeline_and_counts(self, tmp_path):
        entries = [make_entry(float(i)) for i in range(10)]
        path = write_trace(tmp_path / "t.rptr", entries)
        report, stats = replay_trace(path, StreamPipeline(adapters=[]))
        assert stats.entries == 10
        assert stats.elapsed_seconds >= 0.0
        assert report.events_processed == 10
        assert report.sessions_closed == 1

    def test_events_per_second_zero_guard(self):
        from repro.trace import ReplayStats

        assert ReplayStats(5, 0.0).events_per_second == 0.0
        assert ReplayStats(10, 2.0).events_per_second == 5.0


class TestReplayEdgeCases:
    """The failure modes the server's /replay endpoint must survive."""

    def test_truncated_trace_raises_through_replay_path(self, tmp_path):
        # Drop the CRC footer: replay_trace must surface the
        # corruption, not silently treat the prefix as a full trace.
        source = write_trace(tmp_path / "ok.rptr", sample_entries())
        blob = open(source, "rb").read()
        truncated = tmp_path / "trunc.rptr"
        truncated.write_bytes(blob[:-13])
        pipeline = StreamPipeline(adapters=[])
        with pytest.raises(TraceCorruption, match="missing footer"):
            replay_trace(str(truncated), pipeline)
        # Entries framed before the break were already applied; the
        # pipeline remains usable (the server keeps serving after 400).
        assert pipeline.events_processed > 0
        report = pipeline.finish()
        assert report.events_processed == pipeline.events_processed

    def test_zero_event_trace_replays_cleanly(self, tmp_path):
        path = write_trace(tmp_path / "empty.rptr", [])
        report, stats = replay_trace(path, StreamPipeline(adapters=[]))
        assert stats.entries == 0
        assert report.events_processed == 0
        assert report.sessions_closed == 0
        assert report.fused == []

    def test_replay_into_already_warm_pipeline(self, tmp_path):
        # A server that ingested live events and then replays a trace
        # continues the same pipeline: sessions spanning the boundary
        # must merge, and totals must accumulate.
        warm = [make_entry(float(i)) for i in range(5)]
        tail = [make_entry(5.0 + float(i)) for i in range(5)]
        path = write_trace(tmp_path / "tail.rptr", tail)
        pipeline = StreamPipeline(adapters=[])
        for entry in warm:
            pipeline.process(entry)
        report, stats = replay_trace(path, pipeline)
        assert stats.entries == 5
        assert report.events_processed == 10
        # Same client, contiguous times: one session across both feeds.
        assert report.sessions_closed == 1

    def test_replay_out_of_order_against_warm_pipeline(self, tmp_path):
        # Replaying a trace that starts before the pipeline's clock is
        # a caller bug; the sessionizer's ordering contract rejects it.
        early = write_trace(
            tmp_path / "early.rptr", [make_entry(1.0)]
        )
        pipeline = StreamPipeline(adapters=[])
        pipeline.process(make_entry(100.0))
        with pytest.raises(ValueError, match="time-ordered"):
            replay_trace(early, pipeline)
