"""Tests for repro.identity.fingerprint."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.identity.fingerprint import (
    DESKTOP,
    Fingerprint,
    FingerprintPopulation,
    MOBILE,
    NO_PLUGINS_DESKTOP_CHROME,
    SAFARI_NON_APPLE,
    TOUCH_ON_DESKTOP,
    WEBDRIVER_FLAG,
    automation_artifacts,
    consistency_check,
)


def make_fingerprint(**overrides):
    """A fully consistent desktop Chrome baseline."""
    base = dict(
        browser="Chrome",
        browser_version=120,
        os="Windows",
        device_class=DESKTOP,
        screen_width=1920,
        screen_height=1080,
        language="en-US",
        timezone="Europe/Paris",
        hardware_concurrency=8,
        device_memory_gb=16,
        touch_points=0,
        plugins_count=5,
        canvas_hash="abc123",
        webgl_hash="def456",
    )
    base.update(overrides)
    return Fingerprint(**base)


class TestFingerprintId:
    def test_stable(self):
        assert (
            make_fingerprint().fingerprint_id
            == make_fingerprint().fingerprint_id
        )

    def test_sensitive_to_any_attribute(self):
        baseline = make_fingerprint().fingerprint_id
        assert make_fingerprint(browser="Firefox").fingerprint_id != baseline
        assert make_fingerprint(screen_width=1366).fingerprint_id != baseline
        assert make_fingerprint(webdriver=True).fingerprint_id != baseline

    def test_with_changes_returns_new_instance(self):
        original = make_fingerprint()
        changed = original.with_changes(browser="Firefox")
        assert original.browser == "Chrome"
        assert changed.browser == "Firefox"

    def test_user_agent_mentions_browser_and_version(self):
        fingerprint = make_fingerprint()
        assert "Chrome/120.0" in fingerprint.user_agent

    def test_headless_user_agent_marker(self):
        fingerprint = make_fingerprint(headless_ua=True)
        assert "Headless" in fingerprint.user_agent


class TestPopulation:
    def test_genuine_fingerprints_are_consistent(self):
        """Property: the population model never produces fingerprints
        that trip its own consistency rules."""
        population = FingerprintPopulation()
        rng = random.Random(42)
        for _ in range(500):
            fingerprint = population.sample(rng)
            assert consistency_check(fingerprint) == []
            assert automation_artifacts(fingerprint) == []

    def test_mobile_share_respected(self):
        population = FingerprintPopulation(mobile_share=1.0)
        rng = random.Random(1)
        for _ in range(50):
            assert population.sample(rng).device_class == MOBILE

    def test_zero_mobile_share(self):
        population = FingerprintPopulation(mobile_share=0.0)
        rng = random.Random(1)
        for _ in range(50):
            assert population.sample(rng).device_class == DESKTOP

    def test_invalid_mobile_share(self):
        with pytest.raises(ValueError):
            FingerprintPopulation(mobile_share=1.5)

    def test_population_has_diversity(self):
        population = FingerprintPopulation()
        rng = random.Random(3)
        ids = {population.sample(rng).fingerprint_id for _ in range(200)}
        assert len(ids) > 150

    def test_render_hashes_cluster(self):
        """Canvas hashes repeat across users on the same stack."""
        population = FingerprintPopulation()
        rng = random.Random(5)
        hashes = [population.sample(rng).canvas_hash for _ in range(300)]
        assert len(set(hashes)) < 150  # far fewer hashes than users


class TestConsistencyRules:
    def test_safari_on_windows(self):
        fingerprint = make_fingerprint(browser="Safari")
        assert SAFARI_NON_APPLE in consistency_check(fingerprint)

    def test_safari_on_macos_fine(self):
        fingerprint = make_fingerprint(browser="Safari", os="macOS")
        assert SAFARI_NON_APPLE not in consistency_check(fingerprint)

    def test_touch_on_desktop(self):
        fingerprint = make_fingerprint(touch_points=5)
        assert TOUCH_ON_DESKTOP in consistency_check(fingerprint)

    def test_mobile_without_touch(self):
        fingerprint = make_fingerprint(
            device_class=MOBILE,
            os="Android",
            screen_width=390,
            screen_height=844,
            touch_points=0,
            plugins_count=0,
        )
        assert "no-touch-on-mobile" in consistency_check(fingerprint)

    def test_mobile_screen_on_desktop(self):
        fingerprint = make_fingerprint(screen_width=390, screen_height=844)
        assert "mobile-screen-on-desktop" in consistency_check(fingerprint)

    def test_impossible_browser_version(self):
        fingerprint = make_fingerprint(browser_version=999)
        assert "impossible-browser-version" in consistency_check(fingerprint)

    def test_plugins_on_mobile(self):
        fingerprint = make_fingerprint(
            device_class=MOBILE,
            os="Android",
            screen_width=390,
            screen_height=844,
            touch_points=5,
            plugins_count=3,
        )
        assert "plugins-on-mobile" in consistency_check(fingerprint)


class TestAutomationArtifacts:
    def test_webdriver_flag(self):
        fingerprint = make_fingerprint(webdriver=True)
        assert WEBDRIVER_FLAG in automation_artifacts(fingerprint)

    def test_headless_ua(self):
        fingerprint = make_fingerprint(headless_ua=True)
        assert "headless-user-agent" in automation_artifacts(fingerprint)

    def test_zero_plugins_desktop_chrome(self):
        fingerprint = make_fingerprint(plugins_count=0)
        assert NO_PLUGINS_DESKTOP_CHROME in automation_artifacts(fingerprint)

    def test_zero_plugins_firefox_not_flagged(self):
        fingerprint = make_fingerprint(browser="Firefox", plugins_count=0)
        assert NO_PLUGINS_DESKTOP_CHROME not in automation_artifacts(
            fingerprint
        )

    def test_clean_fingerprint_no_artifacts(self):
        assert automation_artifacts(make_fingerprint()) == []


@settings(max_examples=50)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_sampling_deterministic_per_seed(seed):
    population = FingerprintPopulation()
    a = population.sample(random.Random(seed))
    b = population.sample(random.Random(seed))
    assert a == b
