"""Tests for repro.core.mitigation: policies, blocking, honeypot."""

import random

import pytest

from repro.booking.flight import Flight
from repro.booking.passengers import sample_genuine_party
from repro.booking.reservation import ReservationSystem
from repro.common import ClientRef
from repro.core.mitigation.blocking import BlockRuleManager
from repro.core.mitigation.honeypot import HoneypotManager
from repro.core.mitigation.policies import (
    CaptchaPolicy,
    FeatureRestrictionPolicy,
    HoldTtlPolicy,
    NipCapPolicy,
    RateLimitPolicy,
    SmsFeatureTogglePolicy,
    loyalty_members_only,
)
from repro.identity.fingerprint import FingerprintPopulation
from repro.sim.clock import Clock, HOUR
from repro.sms.gateway import BOARDING_PASS, SmsGateway
from repro.web.application import WebApplication
from repro.web.ratelimit import key_by_ip
from repro.web.request import (
    BLOCKED,
    HOLD,
    OK,
    RATE_LIMITED,
    Request,
    SEARCH,
)


@pytest.fixture
def app():
    clock = Clock()
    reservations = ReservationSystem(clock, hold_ttl=1 * HOUR, max_nip=9)
    reservations.add_flight(Flight("F1", "A", "NCE", "CDG", 1000 * HOUR, 60))
    return WebApplication(
        clock, reservations, SmsGateway(clock), random.Random(1)
    )


def make_request(path=SEARCH, fingerprint=None, profile_id="", ip="1.1.1.1",
                 params=None):
    fingerprint = fingerprint or FingerprintPopulation().sample(
        random.Random(3)
    )
    return Request(
        method="GET",
        path=path,
        client=ClientRef(
            ip_address=ip,
            ip_country="US",
            ip_residential=True,
            fingerprint_id=fingerprint.fingerprint_id,
            user_agent=fingerprint.user_agent,
            profile_id=profile_id,
        ),
        params=params or {},
        fingerprint=fingerprint,
    )


class TestPolicies:
    def test_nip_cap_apply_revert(self, app):
        policy = NipCapPolicy(4)
        policy.apply(app)
        assert app.reservations.max_nip == 4
        policy.revert(app)
        assert app.reservations.max_nip == 9

    def test_double_apply_rejected(self, app):
        policy = NipCapPolicy(4)
        policy.apply(app)
        with pytest.raises(RuntimeError):
            policy.apply(app)

    def test_revert_without_apply_rejected(self, app):
        with pytest.raises(RuntimeError):
            NipCapPolicy(4).revert(app)

    def test_rate_limit_policy(self, app):
        policy = RateLimitPolicy("per-ip", key_by_ip, limit=1, window=60.0)
        policy.apply(app)
        assert app.handle(make_request()).ok
        assert app.handle(make_request()).status == RATE_LIMITED
        policy.revert(app)
        assert app.handle(make_request()).ok

    def test_feature_restriction_policy(self, app):
        policy = FeatureRestrictionPolicy(SEARCH)
        policy.apply(app)
        assert app.handle(make_request()).status == BLOCKED
        assert app.handle(
            make_request(profile_id="loyal-7")
        ).status == OK
        policy.revert(app)
        assert app.handle(make_request()).ok

    def test_loyalty_predicate(self, app):
        assert loyalty_members_only(make_request(profile_id="loyal-1"))
        assert not loyalty_members_only(make_request(profile_id="user-1"))
        assert not loyalty_members_only(make_request())

    def test_captcha_policy(self, app):
        policy = CaptchaPolicy(SEARCH)
        policy.apply(app)
        request = make_request()
        bot_request = Request(
            method="GET", path=SEARCH, client=request.client,
            fingerprint=request.fingerprint, captcha_ability="none",
        )
        assert app.handle(bot_request).status == 401
        policy.revert(app)
        assert app.handle(bot_request).ok

    def test_sms_toggle_policy(self, app):
        policy = SmsFeatureTogglePolicy(BOARDING_PASS)
        policy.apply(app)
        assert not app.sms.kind_enabled(BOARDING_PASS)
        policy.revert(app)
        assert app.sms.kind_enabled(BOARDING_PASS)

    def test_hold_ttl_policy(self, app):
        policy = HoldTtlPolicy(120.0)
        policy.apply(app)
        assert app.reservations.hold_ttl == 120.0
        policy.revert(app)
        assert app.reservations.hold_ttl == 1 * HOUR

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            NipCapPolicy(0)
        with pytest.raises(ValueError):
            HoldTtlPolicy(0.0)


class TestBlockRuleManager:
    def test_block_fingerprint_deduplicates(self, app):
        manager = BlockRuleManager(app)
        assert manager.block_fingerprint_id("fp-x") is not None
        assert manager.block_fingerprint_id("fp-x") is None
        assert manager.rules_deployed == 1
        assert manager.is_blocked("fp-x")

    def test_blocked_fingerprint_requests_denied(self, app):
        fingerprint = FingerprintPopulation().sample(random.Random(5))
        manager = BlockRuleManager(app)
        manager.block_fingerprint_id(fingerprint.fingerprint_id)
        response = app.handle(make_request(fingerprint=fingerprint))
        assert response.status == BLOCKED

    def test_effectiveness_window_measured(self, app):
        fingerprint = FingerprintPopulation().sample(random.Random(6))
        manager = BlockRuleManager(app)
        app.clock.advance_to(100.0)
        manager.block_fingerprint_id(fingerprint.fingerprint_id)
        app.clock.advance_to(500.0)
        app.handle(make_request(fingerprint=fingerprint))
        summaries = manager.effectiveness()
        assert len(summaries) == 1
        assert summaries[0].effective_window == pytest.approx(400.0)
        assert manager.mean_effective_window() == pytest.approx(400.0)

    def test_never_matched_rule_has_no_window(self, app):
        manager = BlockRuleManager(app)
        manager.block_fingerprint_id("fp-ghost")
        assert manager.effectiveness()[0].effective_window is None
        assert manager.mean_effective_window() is None

    def test_block_ip(self, app):
        manager = BlockRuleManager(app)
        manager.block_ip("1.1.1.1")
        assert app.handle(make_request(ip="1.1.1.1")).status == BLOCKED
        assert app.handle(make_request(ip="2.2.2.2")).ok
        assert manager.block_ip("1.1.1.1") is None


class TestHoneypotManager:
    def test_install_and_route(self, app):
        manager = HoneypotManager(app)
        fingerprint = FingerprintPopulation().sample(random.Random(7))
        manager.add_suspect_fingerprint(fingerprint.fingerprint_id)
        manager.install()
        party = sample_genuine_party(random.Random(1), 3)
        response = app.handle(
            Request(
                method="POST",
                path=HOLD,
                client=ClientRef(
                    "4.4.4.4", "US", True,
                    fingerprint.fingerprint_id, "UA",
                ),
                params={"flight_id": "F1", "passengers": party},
                fingerprint=fingerprint,
            )
        )
        assert response.ok
        assert response.data.shadow
        assert manager.redirected_requests == 1
        assert manager.shadow_hold_count() == 1
        assert manager.shadow_seats_absorbed() == 3
        assert app.reservations.availability("F1") == 60

    def test_non_suspects_untouched(self, app):
        manager = HoneypotManager(app)
        manager.install()
        party = sample_genuine_party(random.Random(2), 2)
        response = app.handle(
            make_request(
                path=HOLD,
                params={"flight_id": "F1", "passengers": party},
            )
        )
        assert response.ok
        assert not response.data.shadow

    def test_suspect_by_ip(self, app):
        manager = HoneypotManager(app)
        manager.add_suspect_ip("6.6.6.6")
        assert manager.is_suspect(make_request(ip="6.6.6.6"))
        assert not manager.is_suspect(make_request(ip="7.7.7.7"))
        assert manager.suspect_count == 1

    def test_double_install_rejected(self, app):
        manager = HoneypotManager(app)
        manager.install()
        with pytest.raises(RuntimeError):
            manager.install()

    def test_uninstall(self, app):
        manager = HoneypotManager(app)
        manager.install()
        manager.uninstall()
        assert app.honeypot_router is None
        with pytest.raises(RuntimeError):
            manager.uninstall()
