"""Tests for the HTTP layer: routes, error mapping, /metrics shape.

Runs a real :class:`~repro.serve.server.DetectionServer` on an
ephemeral port inside a thread and drives it with the stdlib
:class:`~repro.serve.client.ServeClient` — full wire coverage without
subprocess overhead (the kill/restart test covers the subprocess
path).
"""

import asyncio
import threading

import pytest

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import HttpRequest, HttpResponse
from repro.serve.server import DetectionServer
from repro.serve.service import ingest_payload

from tests.serve_util import campaign_entries, make_entry, write_trace


@pytest.fixture()
def served(tmp_path):
    """A running server + client; tears down cleanly."""
    server = DetectionServer(
        str(tmp_path / "serve.db"),
        port=0,
        quiet=True,
        checkpoint_interval=10_000,
    )
    started = threading.Event()

    def run():
        async def main():
            await server.start()
            started.set()
            await server._shutdown.wait()
            await server._close()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(15), "server never started"
    client = ServeClient(f"http://127.0.0.1:{server.port}")
    client.wait_ready()
    yield server, client
    try:
        client.shutdown()
    except Exception:
        server.request_shutdown()
    thread.join(15)
    assert not thread.is_alive()


class TestEndpoints:
    def test_healthz(self, served):
        _, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["events_ingested"] == 0

    def test_ingest_then_query_verdicts(self, served):
        _, client = served
        entries = campaign_entries()
        result = client.ingest(ingest_payload(entries), seq=0)
        assert result == {
            "applied": len(entries),
            "events_ingested": len(entries),
        }
        finish = client.finish()
        assert finish["campaigns_convicted"] >= 1
        assert len(finish["digest"]) == 64
        bots = client.verdicts(bot_only=True)
        assert {v["subject_id"] for v in bots} >= {
            f"fp:fp-rot-{i}" for i in range(4)
        }
        campaigns = client.campaigns()
        assert campaigns[0]["sessions"] >= 3
        entities = client.entities()
        assert len(entities) >= 4
        analysis = client.analysis()
        assert analysis["events_processed"] == len(entries)

    def test_replay_endpoint(self, served, tmp_path):
        _, client = served
        entries = campaign_entries()
        trace = write_trace(tmp_path / "t.rptr", entries)
        result = client.replay(trace)
        assert result["replayed"] == len(entries)
        status = client.status()
        assert status["events_ingested"] == len(entries)

    def test_replay_offset_limit(self, served, tmp_path):
        _, client = served
        entries = campaign_entries()
        trace = write_trace(tmp_path / "t.rptr", entries)
        assert client.replay(trace, limit=10)["replayed"] == 10
        rest = client.replay(trace, offset=10)
        assert rest["skipped"] == 10
        assert rest["events_ingested"] == len(entries)

    def test_metrics_well_formed(self, served):
        _, client = served
        client.ingest(ingest_payload([make_entry(1.0)]))
        text = client.metrics()
        lines = [line for line in text.splitlines() if line]
        assert lines, "empty exposition"
        for line in lines:
            name, _, value = line.rpartition(" ")
            assert name, f"malformed line: {line!r}"
            float(value)  # every sample value parses
        names = {line.rpartition(" ")[0] for line in lines}
        assert "repro_serve_events_ingested_total" in names
        assert "repro_serve_events_total" in names
        assert "repro_serve_http_requests_total" in names

    def test_snapshot_endpoint(self, served):
        server, client = served
        client.ingest(ingest_payload([make_entry(1.0)]))
        result = client.snapshot()
        assert result["snapshot_seq"] == 1
        assert result["snapshot_bytes"] > 0
        assert server.store.snapshot_seq() == 1


class TestErrorMapping:
    def test_unknown_route_404(self, served):
        _, client = served
        with pytest.raises(ServeClientError) as exc_info:
            client.get("/nope")
        assert exc_info.value.status == 404

    def test_wrong_method_405(self, served):
        _, client = served
        with pytest.raises(ServeClientError) as exc_info:
            client.get("/ingest")
        assert exc_info.value.status == 405

    def test_malformed_json_400(self, served):
        _, client = served
        with pytest.raises(ServeClientError) as exc_info:
            client.post("/ingest", "not an object")
        assert exc_info.value.status == 400

    def test_bad_event_400(self, served):
        _, client = served
        with pytest.raises(ServeClientError) as exc_info:
            client.ingest([{"nope": 1}])
        assert exc_info.value.status == 400

    def test_seq_conflict_409_carries_count(self, served):
        _, client = served
        events = ingest_payload([make_entry(1.0), make_entry(2.0)])
        client.ingest(events, seq=0)
        with pytest.raises(ServeClientError) as exc_info:
            client.ingest(events, seq=0)
        assert exc_info.value.status == 409
        assert exc_info.value.payload["events_ingested"] == 2

    def test_corrupt_trace_400_state_unharmed(self, served, tmp_path):
        server, client = served
        entries = campaign_entries()
        source = write_trace(tmp_path / "ok.rptr", entries)
        blob = open(source, "rb").read()
        bad = tmp_path / "bad.rptr"
        bad.write_bytes(blob[:-13])
        with pytest.raises(ServeClientError) as exc_info:
            client.replay(str(bad))
        assert exc_info.value.status == 400
        # Journal and pipeline stayed consistent; server still serves.
        status = client.status()
        assert status["journal_rows"] == status["events_ingested"]
        assert client.healthz()["status"] == "ok"

    def test_missing_trace_400(self, served):
        _, client = served
        with pytest.raises(ServeClientError) as exc_info:
            client.replay("/no/such/trace.rptr")
        assert exc_info.value.status == 400

    def test_analysis_before_finish_409(self, served):
        _, client = served
        with pytest.raises(ServeClientError) as exc_info:
            client.analysis()
        assert exc_info.value.status == 409

    def test_ingest_after_finish_409(self, served):
        _, client = served
        client.ingest(ingest_payload([make_entry(1.0)]))
        client.finish()
        with pytest.raises(ServeClientError) as exc_info:
            client.ingest(ingest_payload([make_entry(2.0)]))
        assert exc_info.value.status == 409
        assert exc_info.value.payload["finished"] is True


class TestHttpPrimitives:
    def test_request_json_helper(self):
        request = HttpRequest(
            method="POST", path="/x", body=b'{"a": 1}'
        )
        assert request.json() == {"a": 1}

    def test_response_encode_includes_length(self):
        response = HttpResponse.json({"ok": True})
        raw = response.encode()
        assert b"Content-Length: " in raw
        assert raw.endswith(b'{"ok": true}\n')

    def test_keep_alive_header_respected(self):
        request = HttpRequest(
            method="GET", path="/", headers={"connection": "close"}
        )
        assert request.keep_alive is False
        assert HttpRequest(method="GET", path="/").keep_alive is True
