"""Tests for the profiling harness: instrumentation hooks end-to-end.

The expensive fixtures run the ``--ticks-short`` Case A once per module
and share the profile across assertions.
"""

import json

import pytest

from repro.cli import main
from repro.obs import RunContext
from repro.obs.profile import (
    PROFILED_CASES,
    instrument_world,
    profile_case,
    short_overrides,
)
from repro.sim.events import EventLoop


@pytest.fixture(scope="module")
def short_profile():
    return profile_case("case-a", seed=7, ticks_short=True)


class TestEventLoopProfilerHook:
    def test_dispatch_reports_label_and_duration(self):
        loop = EventLoop()
        context = RunContext()
        loop.profiler = context
        loop.schedule_at(1.0, lambda: None, label="tick")
        loop.schedule_at(2.0, lambda: None)  # unlabelled
        loop.run_until(10.0)
        timers = context.registry.timers("sim.event.")
        assert timers["sim.event.tick"].count == 1
        assert timers["sim.event.unlabelled"].count == 1

    def test_no_profiler_means_no_observation(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None, label="tick")
        loop.run_until(10.0)
        assert loop.profiler is None
        assert loop.events_processed == 1

    def test_run_all_also_profiles(self):
        loop = EventLoop()
        context = RunContext()
        loop.profiler = context
        loop.schedule_at(1.0, lambda: None, label="tick")
        loop.run_all()
        assert context.registry.timers()["sim.event.tick"].count == 1


class TestProfileCase:
    def test_rejects_unknown_case(self):
        with pytest.raises(ValueError):
            profile_case("case-z")
        with pytest.raises(ValueError):
            short_overrides("case-z")

    def test_short_overrides_are_copies(self):
        assert short_overrides("case-a") is not short_overrides("case-a")

    def test_report_covers_all_three_subsystems(self, short_profile):
        timers = short_profile.registry.timers()
        assert any(n.startswith("sim.event.") for n in timers)
        assert any(n.startswith("web.request.") for n in timers)
        assert any(n.startswith("stream.stage.") for n in timers)

    def test_sim_kernel_breakdown_is_complete(self, short_profile):
        """Every processed event was attributed to some label."""
        registry = short_profile.registry
        dispatched = sum(
            timer.count
            for timer in registry.timers("sim.event.").values()
        )
        assert dispatched == registry.gauge("sim.events_processed")
        assert dispatched > 0

    def test_web_latency_matches_request_volume(self, short_profile):
        registry = short_profile.registry
        timed = sum(
            timer.count
            for timer in registry.timers("web.request.").values()
        )
        statuses = sum(registry.counters("web.response.").values())
        assert timed == statuses == registry.gauge("web.requests")

    def test_stream_tap_processes_every_log_entry(self, short_profile):
        registry = short_profile.registry
        assert registry.counter("stream.entries") == registry.gauge(
            "web.requests"
        )
        assert registry.gauge("stream.events_per_second") > 0
        assert registry.counter("stream.sessions_closed") > 0

    def test_stream_tap_does_not_change_the_scenario(self):
        """The observational tap must be invisible to the case result."""
        from repro.scenarios.case_a import CaseAConfig, run_case_a

        config = CaseAConfig(**short_overrides("case-a"))
        plain = run_case_a(config)
        profiled = profile_case("case-a", config=config)
        assert (
            profiled.result.attacker_holds_created
            == plain.attacker_holds_created
        )
        assert (
            profiled.result.attacker_rotations == plain.attacker_rotations
        )

    def test_phases_recorded(self, short_profile):
        phases = short_profile.registry.timers("phase.")
        assert "phase.simulate" in phases
        assert "phase.simulate/stream-finish" not in phases  # sequential
        assert "phase.stream-finish" in phases

    def test_run_identity(self, short_profile):
        context = short_profile.context
        assert context.scenario == "case-a"
        assert context.seed == 7
        assert context.finished_at is not None
        assert context.registry.gauge("run.wall_seconds") > 0

    def test_stream_tap_off_leaves_no_stream_metrics(self):
        run = profile_case(
            "case-a", seed=7, ticks_short=True, stream_tap=False
        )
        assert run.registry.timers("stream.") == {}
        assert run.registry.counters("stream.") == {}
        assert run.registry.timers("web.request.") != {}

    def test_all_cases_are_wired(self):
        # case-b / case-c short profiles also produce sim timings; the
        # full three-subsystem assertion runs on case-a above.
        for case in PROFILED_CASES:
            assert short_overrides(case)


class TestInstrumentWorldUnit:
    def test_attaches_all_hooks(self):
        class FakeWorld:
            class loop:
                profiler = None

            class app:
                obs = None

        context = RunContext()
        pipeline = instrument_world(FakeWorld, context, stream_tap=False)
        assert pipeline is None
        assert FakeWorld.loop.profiler is context
        assert FakeWorld.app.obs is context.registry


class TestRunnerObsMerge:
    def test_merged_obs_folds_cells(self, tmp_path):
        from repro.runner import SweepSpec, run_sweep

        result = run_sweep(
            SweepSpec(
                scenario="profile-case-a",
                base=short_overrides("case-a"),
                replications=2,
                master_seed=7,
            ),
            workers=1,
        )
        assert len(result.cells) == 2
        for cell in result.cells:
            assert cell.obs_snapshot  # each cell shipped a registry
        merged = result.merged_obs()
        per_cell = [cell.obs().counter("stream.entries")
                    for cell in result.cells]
        assert merged.counter("stream.entries") == sum(per_cell)
        dispatched = sum(
            timer.count
            for timer in merged.timers("sim.event.").values()
        )
        assert dispatched > 0

    def test_obs_survives_the_cache_round_trip(self, tmp_path):
        from repro.runner import SweepSpec, run_sweep

        spec = SweepSpec(
            scenario="profile-case-a",
            base=short_overrides("case-a"),
            replications=1,
            master_seed=7,
        )
        cache_dir = str(tmp_path / "cache")
        cold = run_sweep(spec, workers=1, cache_dir=cache_dir)
        warm = run_sweep(spec, workers=1, cache_dir=cache_dir)
        assert warm.cache_hits == 1
        assert (
            warm.merged_obs().snapshot() == cold.merged_obs().snapshot()
        )


class TestProfileCli:
    def test_profile_command_writes_parsable_report(self, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        code = main(
            ["profile", "case-a", "--ticks-short", "--out", out]
        )
        assert code == 0
        report = json.load(open(out))
        assert report["schema"] == "repro.obs/1"
        timers = report["timers"]
        assert any(n.startswith("sim.event.") for n in timers)
        assert any(n.startswith("web.request.") for n in timers)
        assert any(n.startswith("stream.stage.") for n in timers)
        stdout = capsys.readouterr().out
        assert "event-loop dispatch" in stdout
        assert "request latency" in stdout
        assert "per-stage latency" in stdout

    def test_profile_command_prom_format(self, tmp_path):
        out = str(tmp_path / "report.prom")
        code = main(
            ["profile", "case-a", "--ticks-short", "--out", out,
             "--format", "prom"]
        )
        assert code == 0
        text = open(out).read()
        assert "repro_run_wall_seconds" in text
        assert "_bucket{le=" in text

    def test_profile_command_rejects_unknown_case(self):
        with pytest.raises(SystemExit):
            main(["profile", "case-z"])
