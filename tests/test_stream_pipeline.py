"""Tests for repro.stream: pipeline, fusion, adapters, online sink."""

import random

import pytest

from repro.common import ClientRef, LEGIT
from repro.core.detection.fusion import FusionDetector
from repro.core.detection.verdict import Verdict
from repro.core.detection.volume import VolumeDetector
from repro.core.mitigation.online import OnlineVerdictSink
from repro.scenarios.case_a import CaseAConfig, run_case_a
from repro.scenarios.streaming import (
    StreamCaseAConfig,
    run_stream_case_a,
)
from repro.sim.clock import DAY, HOUR
from repro.stream import (
    HoldVelocityAdapter,
    IncrementalFusion,
    SessionDetectorAdapter,
    StreamPipeline,
    batch_session_verdicts,
    entity_subject,
)
from repro.web.logs import LogEntry, sessionize
from repro.web.request import HOLD


def make_entry(time, ip="1.1.1.1", fingerprint="fp1", path="/search"):
    return LogEntry(
        time=time,
        method="GET",
        path=path,
        status=200,
        client=ClientRef(
            ip_address=ip,
            ip_country="US",
            ip_residential=True,
            fingerprint_id=fingerprint,
            user_agent="UA",
            actor_class=LEGIT,
        ),
    )


@pytest.fixture(scope="module")
def case_a_log():
    """A real (small) Case A log: legit population + seat spinner."""
    result = run_case_a(
        CaseAConfig(
            seed=3,
            visitor_rate_per_hour=8.0,
            attacker_target_seats=48,
            attack_start=1 * DAY,
            cap_at=None,
            controller_enabled=False,
            departure_time=4 * DAY,
            stop_before_departure=1 * DAY,
        )
    )
    return result.world.app.log


class TestIncrementalFusion:
    def _random_verdicts(self, seed, subjects=6, count=60):
        rng = random.Random(seed)
        detectors = [
            "volume-threshold", "navigation-graph", "unweighted-novel",
        ]
        verdicts = []
        for _ in range(count):
            score = rng.random()
            verdicts.append(
                Verdict(
                    subject_id=f"s{rng.randrange(subjects)}",
                    detector=rng.choice(detectors),
                    score=score,
                    is_bot=score > 0.6,
                    reasons=("synthetic",),
                )
            )
        return verdicts

    @pytest.mark.parametrize("seed", [1, 2])
    def test_matches_batch_fuse(self, seed):
        verdicts = self._random_verdicts(seed)
        incremental = IncrementalFusion()
        for verdict in verdicts:
            incremental.update(verdict)
        batch = FusionDetector().fuse([verdicts])
        assert incremental.fused() == batch

    def test_update_returns_running_fused_verdict(self):
        fusion = IncrementalFusion(FusionDetector(threshold=0.5))
        first = fusion.update(
            Verdict("s1", "volume-threshold", 0.4, False, ())
        )
        assert not first.is_bot
        second = fusion.update(
            Verdict("s1", "navigation-graph", 0.9, True, ())
        )
        assert second.is_bot
        assert second.score > first.score
        assert fusion.current("s1") == second
        assert fusion.current("never-seen") is None

    def test_subjects_tracked(self):
        fusion = IncrementalFusion()
        fusion.update(Verdict("a", "volume-threshold", 0.1, False, ()))
        fusion.update(Verdict("b", "volume-threshold", 0.1, False, ()))
        fusion.update(Verdict("a", "navigation-graph", 0.1, False, ()))
        assert fusion.subjects_tracked == 2


class TestBatchEquivalence:
    def test_session_verdicts_identical_to_batch(self, case_a_log):
        detectors = [VolumeDetector()]
        pipeline = StreamPipeline(
            adapters=[SessionDetectorAdapter(detectors[0])]
        )
        for entry in case_a_log.iter_entries():
            pipeline.process(entry)
        report = pipeline.finish()
        batch = batch_session_verdicts(case_a_log, detectors)
        assert set(report.session_verdicts) == set(batch)
        assert len(report.session_verdicts) == len(batch)

    def test_sessions_identical_to_batch(self, case_a_log):
        pipeline = StreamPipeline(adapters=[])
        for entry in case_a_log.iter_entries():
            pipeline.process(entry)
        report = pipeline.finish()
        batch = sessionize(case_a_log)
        assert [s.session_id for s in report.sessions] == [
            s.session_id for s in batch
        ]
        assert [tuple(e.time for e in s.entries) for s in report.sessions] == [
            tuple(e.time for e in s.entries) for s in batch
        ]

    def test_bounded_memory_on_real_log(self, case_a_log):
        pipeline = StreamPipeline(adapters=[])
        for entry in case_a_log.iter_entries():
            pipeline.process(entry)
        report = pipeline.finish()
        # The streaming working set stays far below the batch total.
        assert report.sessions_closed > 500
        assert report.peak_open_sessions < report.sessions_closed / 5


class TestStreamPipeline:
    def test_live_attach_sees_appended_entries(self):
        from repro.web.logs import WebLog

        log = WebLog()
        pipeline = StreamPipeline(adapters=[])
        unsubscribe = pipeline.attach(log)
        log.append(make_entry(1.0))
        log.append(make_entry(2.0))
        unsubscribe()
        log.append(make_entry(3.0))
        assert pipeline.events_processed == 2

    def test_sink_notified_once_per_subject(self):
        notified = []

        class Sink:
            def handle(self, verdict, now):
                notified.append((verdict.subject_id, now))

        pipeline = StreamPipeline(
            adapters=[HoldVelocityAdapter(threshold=2, window=HOUR)],
            fusion=FusionDetector(weights={"hold-velocity": 0.9}),
            sink=Sink(),
        )
        for i in range(5):
            pipeline.process(
                make_entry(float(i), path=HOLD, fingerprint="bot")
            )
        report = pipeline.finish()
        assert [subject for subject, _ in notified] == [
            entity_subject("bot")
        ]
        assert notified[0][1] == 1.0  # convicted at the second hold
        assert report.sink_notifications == 1

    def test_entity_and_session_subjects_do_not_collide(self):
        pipeline = StreamPipeline(
            adapters=[
                SessionDetectorAdapter(VolumeDetector()),
                HoldVelocityAdapter(threshold=2, window=HOUR),
            ],
        )
        for i in range(4):
            pipeline.process(make_entry(float(i), path=HOLD))
        report = pipeline.finish()
        subjects = {v.subject_id for v in report.fused}
        assert entity_subject("fp1") in subjects
        assert "S0000001" in subjects

    def test_finish_twice_raises(self):
        pipeline = StreamPipeline(adapters=[])
        pipeline.finish()
        with pytest.raises(RuntimeError):
            pipeline.finish()
        with pytest.raises(RuntimeError):
            pipeline.process(make_entry(1.0))

    def test_invalid_evict_every(self):
        with pytest.raises(ValueError):
            StreamPipeline(adapters=[], evict_every=0)


class TestVelocityAdapters:
    def test_convicts_at_threshold_within_window(self):
        adapter = HoldVelocityAdapter(threshold=3, window=100.0)
        verdicts = []
        for i in range(3):
            verdicts.extend(
                adapter.on_entry(make_entry(float(i), path=HOLD), float(i))
            )
        assert len(verdicts) == 1
        assert verdicts[0].subject_id == entity_subject("fp1")
        assert verdicts[0].is_bot
        assert adapter.convictions == 1

    def test_window_slides(self):
        adapter = HoldVelocityAdapter(threshold=3, window=10.0)
        for t in (0.0, 5.0, 20.0, 25.0):
            assert not list(
                adapter.on_entry(make_entry(t, path=HOLD), t)
            )

    def test_ignores_other_paths_and_convicts_once(self):
        adapter = HoldVelocityAdapter(threshold=2, window=100.0)
        assert not list(
            adapter.on_entry(make_entry(0.0, path="/search"), 0.0)
        )
        verdicts = []
        for t in (1.0, 2.0, 3.0, 4.0):
            verdicts.extend(
                adapter.on_entry(make_entry(t, path=HOLD), t)
            )
        assert len(verdicts) == 1  # no re-conviction spam
        assert adapter.tracked_clients == 0  # tally dropped on conviction

    def test_evict_idle_bounds_tracked_clients(self):
        adapter = HoldVelocityAdapter(threshold=5, window=50.0)
        for i in range(200):
            t = float(i * 100)
            adapter.on_entry(
                make_entry(t, path=HOLD, fingerprint=f"fp{i}"), t
            )
            adapter.evict_idle(t, idle_gap=50.0)
        assert adapter.tracked_clients <= 2
        assert adapter.peak_tracked_clients <= 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HoldVelocityAdapter(threshold=0, window=10.0)
        with pytest.raises(ValueError):
            HoldVelocityAdapter(threshold=1, window=0.0)


def _fast_config(**kwargs):
    return StreamCaseAConfig(
        seed=5,
        visitor_rate_per_hour=6.0,
        attacker_target_seats=60,
        attack_start=1 * DAY,
        departure_time=3 * DAY,
        stop_before_departure=1 * DAY,
        **kwargs,
    )


class TestOnlineMitigation:
    def test_streaming_blocks_mid_run(self):
        result = run_stream_case_a(_fast_config())
        assert result.sink is not None
        # The attacker got blocked while the simulation was running …
        assert result.base.attacker_blocks_encountered > 0
        assert result.base.attacker_rotations > 0
        # … starting within the first hold burst.
        assert result.time_to_first_block is not None
        assert result.time_to_first_block < 1 * HOUR
        assert result.online_actions > 1  # chased through rotations

    def test_ablation_never_blocks(self):
        result = run_stream_case_a(_fast_config(streaming=False))
        assert result.report is None
        assert result.time_to_first_block is None
        assert result.online_actions == 0
        assert result.base.attacker_blocks_encountered == 0
        assert result.base.attacker_rotations == 0

    def test_honeypot_mode_routes_instead_of_blocking(self):
        result = run_stream_case_a(_fast_config(honeypot_mode=True))
        # Decoy inventory: the attacker never sees a block, never
        # rotates, and shadow seats absorb the holds.
        assert result.base.attacker_blocks_encountered == 0
        assert result.base.attacker_rotations == 0
        assert result.online_actions == 1
        assert result.sink.honeypot.shadow_seats_absorbed() > 0

    def test_sink_ignores_session_subjects(self):
        from repro.scenarios.world import WorldConfig, build_world
        from repro.scenarios.world import default_flight_schedule

        world = build_world(
            WorldConfig(seed=1, flights=default_flight_schedule(2, DAY))
        )
        sink = OnlineVerdictSink(world.app)
        sink.handle(
            Verdict("S0000001", "fusion", 0.9, True, ()), now=0.0
        )
        assert sink.actions_taken == 0
        assert sink.session_verdicts_ignored == 1
        sink.handle(
            Verdict(entity_subject("fpX"), "fusion", 0.9, True, ()),
            now=5.0,
        )
        assert sink.actions_taken == 1
        assert sink.first_block_time == 5.0


class TestBoundedMemoryAtScale:
    def test_ten_x_traffic_keeps_working_set_bounded(self):
        """Acceptance criterion: peak keyed-store sizes stay bounded on
        a 10x-traffic run (10x the streaming default visitor rate)."""
        result = run_stream_case_a(
            StreamCaseAConfig(
                seed=9,
                visitor_rate_per_hour=120.0,
                attacker_target_seats=60,
                attack_start=12 * HOUR,
                departure_time=2 * DAY,
                stop_before_departure=12 * HOUR,
            )
        )
        report = result.report
        assert report.events_processed > 10_000
        assert report.sessions_closed > 2_000
        # The open-session table tracks concurrency, not history: it
        # must stay around the number of clients active inside one
        # idle-gap window, orders of magnitude below the total.
        assert report.peak_open_sessions < 600
        assert report.peak_open_sessions < report.sessions_closed / 10
        assert result.peak_tracked_clients < 600
