"""Regression + property tests for the snapshot merges sharding uses.

The first three test classes pin bugs found while wiring the shard
merge — each failed against the pre-fix implementation:

* ``MetricsRecorder.merge`` created empty series entries when folding
  a snapshot that carried them, so merging an "empty" recorder was not
  an identity (snapshot equality broke);
* ``MetricsRecorder.merge`` broke equal-timestamp ties by fold order,
  so a shard fold's series depended on shard completion order;
* ``ObsRegistry.merge`` materialised missing timers with *default*
  bounds, so folding a custom-bounds timer into a fresh registry (the
  first step of every worker/shard fold) raised ``ValueError``.

The hypothesis classes then pin the algebra the shard fold needs:
merging payloads is associative and commutative up to gauge
last-write-wins, and the entity-graph snapshot fold is a commutative,
associative, idempotent union.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import EntityGraph
from repro.graph.entities import EntityId
from repro.obs.core import DEFAULT_TIME_BOUNDS, ObsRegistry, Timer
from repro.shard.merge import (
    MAX,
    MEAN,
    SUM,
    merge_payloads,
    reduce_metric,
    reduction_for,
)
from repro.sim.metrics import MetricsRecorder


class TestEmptyMergeIsIdentity:
    def test_merging_fresh_recorder_preserves_snapshot(self):
        recorder = MetricsRecorder()
        recorder.increment("holds", 3.0)
        recorder.record("rate", 1.0, 2.0)
        before = recorder.snapshot()
        recorder.merge(MetricsRecorder())
        assert recorder.snapshot() == before

    def test_snapshot_with_empty_series_list_is_identity(self):
        # A snapshot can legitimately carry a series name with zero
        # points (e.g. rebuilt from JSON); folding it in must not
        # create an empty series entry on the target.
        recorder = MetricsRecorder()
        recorder.increment("holds", 3.0)
        before = recorder.snapshot()
        hollow = MetricsRecorder.from_snapshot(
            {"counters": {}, "gauges": {}, "series": {"ghost": []}}
        )
        recorder.merge(hollow)
        assert recorder.snapshot() == before
        assert "ghost" not in recorder.series_names()

    def test_merge_into_empty_recorder_copies_exactly(self):
        recorder = MetricsRecorder()
        recorder.increment("holds", 3.0)
        recorder.set_gauge("open", 2.0)
        recorder.record("rate", 1.0, 2.0)
        target = MetricsRecorder()
        target.merge(recorder)
        assert target.snapshot() == recorder.snapshot()


class TestSeriesMergeOrderIndependence:
    def test_equal_timestamp_ties_do_not_depend_on_fold_order(self):
        a = MetricsRecorder()
        b = MetricsRecorder()
        a.record("load", 5.0, 2.0)
        b.record("load", 5.0, 1.0)
        ab = MetricsRecorder()
        ab.merge(a)
        ab.merge(b)
        ba = MetricsRecorder()
        ba.merge(b)
        ba.merge(a)
        assert ab.snapshot()["series"] == ba.snapshot()["series"]

    def test_three_way_shard_fold_is_schedule_independent(self):
        shards = []
        for value in (3.0, 1.0, 2.0):
            shard = MetricsRecorder()
            shard.record("events", 10.0, value)
            shard.record("events", 20.0, value)
            shards.append(shard)
        folds = []
        for order in ((0, 1, 2), (2, 0, 1), (1, 2, 0)):
            fold = MetricsRecorder()
            for index in order:
                fold.merge(shards[index])
            folds.append(fold.snapshot())
        assert folds[0] == folds[1] == folds[2]


class TestObsTimerMerge:
    def test_custom_bounds_timer_merges_into_fresh_registry(self):
        source = ObsRegistry()
        timer = source._timers["stage"] = Timer(bounds=(0.5, 1.0, 2.0))
        timer.observe(0.7)
        target = ObsRegistry()
        target.merge(source)  # pre-fix: ValueError (bounds mismatch)
        merged = target.timer("stage")
        assert merged.histogram.bounds == (0.5, 1.0, 2.0)
        assert merged.count == 1

    def test_default_bounds_still_default(self):
        source = ObsRegistry()
        source.timer("stage").observe(0.1)
        target = ObsRegistry()
        target.merge(source)
        assert target.timer("stage").histogram.bounds == DEFAULT_TIME_BOUNDS


def node(value):
    return EntityId("fp", value)


class TestGraphSnapshotMerge:
    def build(self, edges):
        graph = EntityGraph()
        for a, b, w, t in edges:
            graph.add_edge(node(a), node(b), w, time=t)
        return graph

    def test_round_trip(self):
        graph = self.build([("a", "b", 0.5, 1.0), ("b", "c", 0.9, 3.0)])
        clone = EntityGraph.from_snapshot(graph.snapshot(include_spans=True))
        assert clone.snapshot(include_spans=True) == graph.snapshot(
            include_spans=True
        )

    def test_merge_is_union_with_max_weight_and_span_envelope(self):
        left = self.build([("a", "b", 0.5, 1.0)])
        right = self.build([("a", "b", 0.8, 9.0), ("b", "c", 0.3, 4.0)])
        merged = EntityGraph.from_snapshot(
            left.snapshot(include_spans=True)
        )
        merged.merge_snapshot(right.snapshot(include_spans=True))
        assert merged.neighbors(node("a"))[node("b")] == 0.8
        assert merged.first_seen(node("a")) == 1.0
        assert merged.last_seen(node("a")) == 9.0
        assert merged.edge_count == 2

    def test_json_round_trip_listifies_entity_ids(self):
        import json

        graph = self.build([("a", "b", 0.5, 1.0)])
        rehydrated = json.loads(
            json.dumps(graph.snapshot(include_spans=True))
        )
        clone = EntityGraph.from_snapshot(rehydrated)
        assert clone.snapshot(include_spans=True) == graph.snapshot(
            include_spans=True
        )

    edge_lists = st.lists(
        st.tuples(
            st.sampled_from("abcd"),
            st.sampled_from("efgh"),
            st.floats(min_value=0.1, max_value=1.0),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        max_size=8,
    )

    @settings(max_examples=60, deadline=None)
    @given(left=edge_lists, right=edge_lists)
    def test_merge_commutes(self, left, right):
        a, b = self.build(left), self.build(right)
        ab = EntityGraph()
        ab.merge_snapshot(a.snapshot(include_spans=True))
        ab.merge_snapshot(b.snapshot(include_spans=True))
        ba = EntityGraph()
        ba.merge_snapshot(b.snapshot(include_spans=True))
        ba.merge_snapshot(a.snapshot(include_spans=True))
        assert ab.snapshot(include_spans=True) == ba.snapshot(
            include_spans=True
        )

    @settings(max_examples=60, deadline=None)
    @given(parts=st.lists(edge_lists, min_size=3, max_size=3))
    def test_merge_associates(self, parts):
        graphs = [
            self.build(part).snapshot(include_spans=True) for part in parts
        ]
        left = EntityGraph()
        left.merge_snapshot(graphs[0])
        left.merge_snapshot(graphs[1])
        left_then = EntityGraph.from_snapshot(
            left.snapshot(include_spans=True)
        )
        left_then.merge_snapshot(graphs[2])
        inner = EntityGraph()
        inner.merge_snapshot(graphs[1])
        inner.merge_snapshot(graphs[2])
        right_then = EntityGraph.from_snapshot(graphs[0])
        right_then.merge_snapshot(inner.snapshot(include_spans=True))
        assert left_then.snapshot(include_spans=True) == right_then.snapshot(
            include_spans=True
        )

    @settings(max_examples=60, deadline=None)
    @given(edges=edge_lists)
    def test_merge_is_idempotent(self, edges):
        graph = self.build(edges)
        snap = graph.snapshot(include_spans=True)
        graph.merge_snapshot(snap)
        assert graph.snapshot(include_spans=True) == snap


class TestMetricReduction:
    def test_counts_sum_and_ratios_average(self):
        assert reduction_for("case-a", "attacker_holds_created") == SUM
        assert reduction_for("case-a", "blocked_fraction") == MEAN
        assert reduction_for("case-b", "legit_false_positive_rate") == MEAN
        assert reduction_for("case-c", "countries_targeted") == MAX
        assert reduction_for("case-c", "detection_latency") == MEAN

    def test_mean_skips_not_measured_sentinels(self):
        assert reduce_metric(MEAN, [-1.0, 4.0, 2.0]) == 3.0
        assert reduce_metric(MEAN, [-1.0, -1.0]) == -1.0

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError):
            reduce_metric("median", [1.0])


def payload(counter, series_value, metric, gauge=None):
    recorder = MetricsRecorder()
    recorder.increment("events", counter)
    recorder.record("load", 1.0, series_value)
    if gauge is not None:
        recorder.set_gauge("open", gauge)
    return {
        "metrics": {"web_requests": metric, "blocked_fraction": 0.5},
        "info": {"tag": counter},
        "recorder": recorder.snapshot(),
    }


class TestMergePayloads:
    def test_single_payload_passes_through(self):
        single = payload(1.0, 2.0, 3.0)
        assert merge_payloads("case-a", [single]) == single

    def test_extensive_sums_intensive_averages(self):
        merged = merge_payloads(
            "case-a", [payload(1.0, 2.0, 10.0), payload(2.0, 1.0, 30.0)]
        )
        assert merged["metrics"]["web_requests"] == 40.0
        assert merged["metrics"]["blocked_fraction"] == 0.5
        recorder = MetricsRecorder.from_snapshot(merged["recorder"])
        assert recorder.counter("events") == 3.0
        assert merged["info"]["shard_count"] == 2

    def test_merge_commutes_up_to_gauges(self):
        a, b = payload(1.0, 2.0, 10.0), payload(2.0, 1.0, 30.0)
        ab = merge_payloads("case-a", [a, b])
        ba = merge_payloads("case-a", [b, a])
        assert ab["metrics"] == ba["metrics"]
        assert ab["recorder"]["counters"] == ba["recorder"]["counters"]
        assert ab["recorder"]["series"] == ba["recorder"]["series"]

    def test_case_c_ratio_recomputed_from_summed_components(self):
        shard0 = {
            "metrics": {
                "global_increase_percent": 300.0,
                "sms_baseline_total": 100.0,
                "sms_window_total": 400.0,
            },
            "info": {},
            "recorder": {},
        }
        shard1 = {
            "metrics": {
                "global_increase_percent": 0.0,
                "sms_baseline_total": 300.0,
                "sms_window_total": 300.0,
            },
            "info": {},
            "recorder": {},
        }
        merged = merge_payloads("case-c", [shard0, shard1])
        # (700 - 400) / 400, not mean(300%, 0%).
        assert merged["metrics"]["global_increase_percent"] == 75.0

    def test_zero_payloads_rejected(self):
        with pytest.raises(ValueError):
            merge_payloads("case-a", [])

    def test_graph_snapshots_union(self):
        left = EntityGraph()
        left.add_edge(node("a"), node("b"), 0.5, time=1.0)
        right = EntityGraph()
        right.add_edge(node("b"), node("c"), 0.9, time=2.0)
        merged = merge_payloads(
            "graph-case-a",
            [
                {
                    "metrics": {"campaigns_found": 1.0},
                    "recorder": {},
                    "graph": left.snapshot(include_spans=True),
                },
                {
                    "metrics": {"campaigns_found": 2.0},
                    "recorder": {},
                    "graph": right.snapshot(include_spans=True),
                },
            ],
        )
        union = EntityGraph.from_snapshot(merged["graph"])
        assert union.edge_count == 2
        assert union.node_count == 3
