"""Tests for repro.web.ratelimit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import ClientRef
from repro.web.ratelimit import (
    RateLimitEngine,
    RateLimitRule,
    SlidingWindowLimiter,
    TokenBucket,
    key_by_booking_ref,
    key_by_fingerprint,
    key_by_ip,
    key_by_path,
    key_by_profile,
)
from repro.web.request import BOARDING_PASS_SMS, HOLD, Request


def make_request(path=HOLD, profile_id="", booking_ref=None, ip="1.1.1.1",
                 fingerprint_id="fp"):
    params = {}
    if booking_ref is not None:
        params["booking_ref"] = booking_ref
    return Request(
        method="POST",
        path=path,
        client=ClientRef(
            ip_address=ip,
            ip_country="US",
            ip_residential=True,
            fingerprint_id=fingerprint_id,
            user_agent="UA",
            profile_id=profile_id,
        ),
        params=params,
    )


class TestTokenBucket:
    def test_burst_up_to_capacity(self):
        bucket = TokenBucket(capacity=3, rate=1.0)
        assert bucket.allow(0.0)
        assert bucket.allow(0.0)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)

    def test_refill_over_time(self):
        bucket = TokenBucket(capacity=1, rate=0.5)  # 1 token / 2 s
        assert bucket.allow(0.0)
        assert not bucket.allow(1.0)
        assert bucket.allow(2.0)

    def test_refill_capped_at_capacity(self):
        bucket = TokenBucket(capacity=2, rate=10.0)
        bucket.allow(0.0)
        bucket.allow(100.0)
        assert bucket.tokens <= 2.0

    def test_time_backwards_rejected(self):
        bucket = TokenBucket(capacity=1, rate=1.0)
        bucket.allow(5.0)
        with pytest.raises(ValueError):
            bucket.allow(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, rate=1.0)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1, rate=0.0)

    @settings(max_examples=50)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=1,
            max_size=50,
        )
    )
    def test_never_exceeds_budget(self, deltas):
        """Property: allowed events never exceed capacity + rate*time."""
        bucket = TokenBucket(capacity=5, rate=2.0)
        now = 0.0
        allowed = 0
        for delta in deltas:
            now += delta
            if bucket.allow(now):
                allowed += 1
        assert allowed <= 5 + 2.0 * now + 1e-6


class TestSlidingWindow:
    def test_limit_enforced(self):
        limiter = SlidingWindowLimiter(limit=2, window=10.0)
        assert limiter.allow(0.0)
        assert limiter.allow(1.0)
        assert not limiter.allow(2.0)

    def test_window_slides(self):
        limiter = SlidingWindowLimiter(limit=2, window=10.0)
        limiter.allow(0.0)
        limiter.allow(1.0)
        assert limiter.allow(10.5)  # first event left the window

    def test_rejected_events_not_counted(self):
        limiter = SlidingWindowLimiter(limit=1, window=10.0)
        limiter.allow(0.0)
        for t in (1.0, 2.0, 3.0):
            limiter.allow(t)
        # Only the accepted event occupies the window.
        assert limiter.count(4.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowLimiter(limit=0, window=1.0)
        with pytest.raises(ValueError):
            SlidingWindowLimiter(limit=1, window=0.0)

    def test_exact_window_boundary_is_rejected(self):
        """Regression: the window is closed at both ends.  An event at
        t=0 still occupies the window at t=window exactly, so limit=1
        must reject the second attempt — pre-fix it was allowed,
        letting a client double its budget by timing the edge."""
        limiter = SlidingWindowLimiter(limit=1, window=10.0)
        assert limiter.allow(0.0)
        assert not limiter.allow(10.0)
        assert limiter.allow(10.0 + 1e-9)

    def test_boundary_event_still_counted(self):
        limiter = SlidingWindowLimiter(limit=5, window=10.0)
        limiter.allow(0.0)
        assert limiter.count(10.0) == 1
        assert limiter.count(10.0 + 1e-9) == 0

    def test_count_is_non_mutating(self):
        """Regression: count() used to expire events from the deque,
        so a monitoring read could change a later allow() decision."""
        limiter = SlidingWindowLimiter(limit=1, window=10.0)
        limiter.allow(0.0)
        for _ in range(3):
            assert limiter.count(10.0) == 1
        assert not limiter.allow(10.0)

    @settings(max_examples=200)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=5.0),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=4),
    )
    def test_no_closed_window_exceeds_limit(self, deltas, limit):
        """Property: no closed interval of length ``window`` ever
        contains more than ``limit`` allowed events — including
        intervals that start or end exactly on an event."""
        window = 10.0
        limiter = SlidingWindowLimiter(limit=limit, window=window)
        now = 0.0
        allowed = []
        for delta in deltas:
            now += delta
            if limiter.allow(now):
                allowed.append(now)
        for start in allowed:
            inside = [t for t in allowed if start <= t <= start + window]
            assert len(inside) <= limit


class TestKeyFunctions:
    def test_key_by_path(self):
        assert key_by_path(make_request(path=HOLD)) == HOLD

    def test_key_by_profile_anonymous_is_none(self):
        assert key_by_profile(make_request()) is None
        assert key_by_profile(make_request(profile_id="u1")) == "u1"

    def test_key_by_booking_ref(self):
        assert key_by_booking_ref(make_request()) is None
        assert key_by_booking_ref(make_request(booking_ref="R1")) == "R1"

    def test_key_by_ip_and_fingerprint(self):
        request = make_request(ip="2.2.2.2", fingerprint_id="fpX")
        assert key_by_ip(request) == "2.2.2.2"
        assert key_by_fingerprint(request) == "fpX"


class TestEngine:
    def test_rule_keys_independently(self):
        """Per-booking-ref rule: ref A's budget is separate from B's —
        the control that would have strangled Case C early."""
        engine = RateLimitEngine()
        engine.add_rule(
            RateLimitRule(
                rule_id="per-ref",
                key_fn=key_by_booking_ref,
                limit=2,
                window=100.0,
                paths=(BOARDING_PASS_SMS,),
            )
        )
        req_a = make_request(path=BOARDING_PASS_SMS, booking_ref="A")
        req_b = make_request(path=BOARDING_PASS_SMS, booking_ref="B")
        assert engine.check(req_a, 0.0) is None
        assert engine.check(req_a, 1.0) is None
        assert engine.check(req_a, 2.0) == "per-ref"
        assert engine.check(req_b, 3.0) is None

    def test_paths_scope_rules(self):
        engine = RateLimitEngine()
        engine.add_rule(
            RateLimitRule(
                rule_id="bp-only",
                key_fn=key_by_ip,
                limit=1,
                window=100.0,
                paths=(BOARDING_PASS_SMS,),
            )
        )
        assert engine.check(make_request(path=HOLD), 0.0) is None
        assert engine.check(make_request(path=HOLD), 1.0) is None

    def test_requests_without_key_skip_rule(self):
        engine = RateLimitEngine()
        engine.add_rule(
            RateLimitRule(
                rule_id="per-profile",
                key_fn=key_by_profile,
                limit=1,
                window=100.0,
            )
        )
        # Anonymous requests have no profile key; never limited here.
        for t in range(5):
            assert engine.check(make_request(), float(t)) is None

    def test_first_violated_rule_wins(self):
        engine = RateLimitEngine()
        engine.add_rule(
            RateLimitRule("tight", key_by_ip, limit=1, window=100.0)
        )
        engine.add_rule(
            RateLimitRule("loose", key_by_ip, limit=10, window=100.0)
        )
        engine.check(make_request(), 0.0)
        assert engine.check(make_request(), 1.0) == "tight"

    def test_duplicate_rule_id_rejected(self):
        engine = RateLimitEngine()
        engine.add_rule(RateLimitRule("r", key_by_ip, 1, 1.0))
        with pytest.raises(ValueError):
            engine.add_rule(RateLimitRule("r", key_by_ip, 2, 2.0))

    def test_remove_rule(self):
        engine = RateLimitEngine()
        engine.add_rule(RateLimitRule("r", key_by_ip, 1, 100.0))
        engine.check(make_request(), 0.0)
        engine.remove_rule("r")
        assert engine.check(make_request(), 1.0) is None

    def test_hit_and_rejection_counters(self):
        engine = RateLimitEngine()
        rule = RateLimitRule("r", key_by_ip, 1, 100.0)
        engine.add_rule(rule)
        engine.check(make_request(), 0.0)
        engine.check(make_request(), 1.0)
        assert rule.hits == 2
        assert rule.rejections == 1
