"""Tests for repro.booking.pricing."""

import pytest
from hypothesis import given, strategies as st

from repro.booking.flight import Flight
from repro.booking.pricing import PricingEngine


class TestPricingEngine:
    def test_empty_flight_at_base_fare(self):
        engine = PricingEngine(base_fare=100.0)
        assert engine.price_at_load(0.0) == pytest.approx(100.0)

    def test_full_flight_at_max(self):
        engine = PricingEngine(base_fare=100.0, alpha=2.0)
        assert engine.price_at_load(1.0) == pytest.approx(300.0)

    def test_load_clamped(self):
        engine = PricingEngine()
        assert engine.price_at_load(-0.5) == engine.price_at_load(0.0)
        assert engine.price_at_load(1.5) == engine.price_at_load(1.0)

    @given(
        low=st.floats(min_value=0.0, max_value=1.0),
        delta=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotone_in_load(self, low, delta):
        engine = PricingEngine()
        high = min(low + delta, 1.0)
        assert engine.price_at_load(high) >= engine.price_at_load(low)

    def test_convexity(self):
        """The last seats cost more per unit of load than the first —
        which is why hoarding near departure is so damaging."""
        engine = PricingEngine()
        early = engine.price_at_load(0.2) - engine.price_at_load(0.1)
        late = engine.price_at_load(0.9) - engine.price_at_load(0.8)
        assert late > early

    def test_quote_scales_with_seats(self):
        engine = PricingEngine(base_fare=100.0)
        flight = Flight("F1", "A", "X", "Y", 1.0, 100)
        assert engine.quote(flight, 3) == pytest.approx(
            3 * engine.quote(flight, 1)
        )

    def test_quote_reflects_held_seats(self):
        """DoI price manipulation channel: holds move the quote."""
        engine = PricingEngine()
        flight = Flight("F1", "A", "X", "Y", 1.0, 100)
        before = engine.quote(flight, 1)
        flight.inventory.take_hold(60)
        after = engine.quote(flight, 1)
        assert after > before

    def test_quote_validation(self):
        engine = PricingEngine()
        flight = Flight("F1", "A", "X", "Y", 1.0, 100)
        with pytest.raises(ValueError):
            engine.quote(flight, 0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PricingEngine(base_fare=0)
        with pytest.raises(ValueError):
            PricingEngine(alpha=-1)
        with pytest.raises(ValueError):
            PricingEngine(beta=0)
