"""Tests for repro.core.detection.passenger_details."""

import random

import pytest

from repro.booking.passengers import (
    Passenger,
    misspell,
    sample_genuine_party,
    sample_gibberish_passenger,
)
from repro.booking.reservation import BookingRecord
from repro.common import ClientRef
from repro.core.detection.passenger_details import (
    AUTOMATED_HINT,
    AnalyzerConfig,
    BIRTHDATE_ROTATION,
    GIBBERISH_NAMES,
    MANUAL_HINT,
    MISSPELLING_CLUSTER,
    NAME_SET_PERMUTATION,
    PassengerDetailAnalyzer,
    REPEATED_NAME,
)


def record(hold_id, passengers, time=0.0):
    client = ClientRef(
        ip_address="1.1.1.1",
        ip_country="US",
        ip_residential=True,
        fingerprint_id="fp",
        user_agent="UA",
    )
    return BookingRecord(
        time=time,
        flight_id="F1",
        nip=len(passengers),
        outcome="held",
        hold_id=hold_id,
        passengers=tuple(passengers),
        client=client,
        price_quoted=100.0,
        shadow=False,
    )


def legit_records(count, seed=0):
    rng = random.Random(seed)
    return [
        record(f"L{i}", sample_genuine_party(rng, rng.randint(1, 3)))
        for i in range(count)
    ]


def passenger(first, last, birthdate="1990-01-01"):
    return Passenger(first, last, birthdate, "x@y.z")


class TestGibberish:
    def test_detects_keyboard_mash(self):
        rng = random.Random(1)
        records = legit_records(20) + [
            record(f"G{i}", [sample_gibberish_passenger(rng)])
            for i in range(5)
        ]
        findings = PassengerDetailAnalyzer().analyze(records)
        gib = [f for f in findings if f.kind == GIBBERISH_NAMES]
        assert gib
        assert gib[0].mode_hint == AUTOMATED_HINT
        flagged = set(gib[0].hold_ids)
        assert len(flagged & {f"G{i}" for i in range(5)}) >= 3
        assert not flagged & {f"L{i}" for i in range(20)}

    def test_clean_traffic_no_gibberish_finding(self):
        findings = PassengerDetailAnalyzer().analyze(legit_records(30))
        assert not [f for f in findings if f.kind == GIBBERISH_NAMES]


class TestRepeatedNames:
    def test_repeated_name_flagged(self):
        records = legit_records(15) + [
            record(f"R{i}", [passenger("John", "Fixed", f"19{70+i}-01-01")])
            for i in range(6)
        ]
        findings = PassengerDetailAnalyzer().analyze(records)
        repeated = [f for f in findings if f.kind == REPEATED_NAME]
        assert len(repeated) == 1
        assert set(repeated[0].hold_ids) == {f"R{i}" for i in range(6)}

    def test_threshold_respected(self):
        records = [
            record(f"R{i}", [passenger("John", "Fixed")]) for i in range(3)
        ]
        config = AnalyzerConfig(repeat_threshold=4)
        findings = PassengerDetailAnalyzer(config).analyze(records)
        assert not [f for f in findings if f.kind == REPEATED_NAME]


class TestBirthdateRotation:
    def test_airline_b_pattern(self):
        """Fixed name + systematically rotating birthdate = automation."""
        records = [
            record(
                f"B{i}",
                [passenger("John", "Fixed", f"19{60 + i}-03-0{1 + i % 9}")],
            )
            for i in range(6)
        ]
        findings = PassengerDetailAnalyzer().analyze(records)
        rotation = [f for f in findings if f.kind == BIRTHDATE_ROTATION]
        assert rotation
        assert rotation[0].mode_hint == AUTOMATED_HINT

    def test_stable_birthdate_not_flagged(self):
        """A frequent flyer books often with one birthdate: repeated
        name yes, rotation no."""
        records = [
            record(f"B{i}", [passenger("John", "Fixed", "1980-05-05")])
            for i in range(6)
        ]
        findings = PassengerDetailAnalyzer().analyze(records)
        assert not [f for f in findings if f.kind == BIRTHDATE_ROTATION]


class TestNameSetPermutation:
    def _manual_records(self, count=8, seed=3):
        """The Airline C pattern: a fixed pool of people reshuffled."""
        rng = random.Random(seed)
        people = [
            passenger("Maria", "Lopez", "1985-01-01"),
            passenger("Karl", "Weber", "1979-02-02"),
            passenger("Nina", "Rossi", "1991-03-03"),
            passenger("Omar", "Hassan", "1988-04-04"),
        ]
        records = []
        for i in range(count):
            chosen = rng.sample(people, rng.randint(1, 3))
            records.append(record(f"M{i}", chosen))
        return records

    def test_airline_c_pattern(self):
        records = legit_records(15) + self._manual_records()
        findings = PassengerDetailAnalyzer().analyze(records)
        permutation = [
            f for f in findings if f.kind == NAME_SET_PERMUTATION
        ]
        assert permutation
        flagged = set(permutation[0].hold_ids)
        assert len(flagged & {f"M{i}" for i in range(8)}) >= 6

    def test_min_bookings_threshold(self):
        records = self._manual_records(count=3)
        config = AnalyzerConfig(permutation_min_bookings=5)
        findings = PassengerDetailAnalyzer(config).analyze(records)
        assert not [f for f in findings if f.kind == NAME_SET_PERMUTATION]


class TestMisspellings:
    def test_typo_near_frequent_name(self):
        rng = random.Random(5)
        base = [
            record(f"T{i}", [passenger("Maria", "Schneider")])
            for i in range(4)
        ]
        typo = record("TX", [passenger("Maria", misspell("Schneider", rng))])
        findings = PassengerDetailAnalyzer().analyze(base + [typo])
        clusters = [f for f in findings if f.kind == MISSPELLING_CLUSTER]
        assert clusters
        assert clusters[0].mode_hint == MANUAL_HINT
        assert "TX" in clusters[0].hold_ids

    def test_only_misspelled_bookings_implicated(self):
        rng = random.Random(6)
        base = [
            record(f"T{i}", [passenger("Maria", "Schneider")])
            for i in range(4)
        ]
        typo = record("TX", [passenger("Maria", "Schneide")])
        findings = PassengerDetailAnalyzer().analyze(base + [typo])
        clusters = [f for f in findings if f.kind == MISSPELLING_CLUSTER]
        assert clusters
        assert set(clusters[0].hold_ids) == {"TX"}


class TestAnalyzeOverall:
    def test_only_held_records_considered(self):
        rejected = BookingRecord(
            time=0.0,
            flight_id="F1",
            nip=1,
            outcome="nip-exceeds-cap",
            hold_id="",
            passengers=(passenger("John", "Fixed"),),
            client=ClientRef("1.1.1.1", "US", True, "fp", "UA"),
            price_quoted=0.0,
            shadow=False,
        )
        findings = PassengerDetailAnalyzer().analyze([rejected] * 10)
        assert findings == []

    def test_findings_sorted_by_score(self):
        records = legit_records(10)
        records += [
            record(f"R{i}", [passenger("John", "Fixed", f"19{60+i}-01-01")])
            for i in range(8)
        ]
        findings = PassengerDetailAnalyzer().analyze(records)
        scores = [f.score for f in findings]
        assert scores == sorted(scores, reverse=True)

    def test_flagged_hold_ids_union(self):
        records = [
            record(f"R{i}", [passenger("John", "Fixed", f"19{60+i}-01-01")])
            for i in range(6)
        ]
        analyzer = PassengerDetailAnalyzer()
        flagged = analyzer.flagged_hold_ids(records)
        assert flagged == {f"R{i}" for i in range(6)}

    def test_clean_traffic_produces_nothing(self):
        findings = PassengerDetailAnalyzer().analyze(legit_records(40))
        assert findings == []
