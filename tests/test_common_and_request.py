"""Tests for repro.common and repro.web.request basics."""

import pytest

from repro.common import (
    AMPLIFIER,
    ATTACK_CLASSES,
    ClientRef,
    LEGIT,
    MANUAL_SPINNER,
    OTP_ABUSER,
    SCRAPER,
    SEAT_SPINNER,
    SMS_PUMPER,
)
from repro.web.request import (
    ALL_PATHS,
    BOARDING_PASS_SMS,
    CAPTCHA_HUMAN,
    HOLD,
    OK,
    Request,
    Response,
    SEARCH,
    TRAP,
)


def make_client(actor_class=LEGIT):
    return ClientRef(
        ip_address="1.2.3.4",
        ip_country="FR",
        ip_residential=True,
        fingerprint_id="fp",
        user_agent="UA",
        actor_class=actor_class,
    )


class TestClientRef:
    def test_legit_is_not_attacker(self):
        assert not make_client().is_attacker

    @pytest.mark.parametrize(
        "actor_class",
        [SEAT_SPINNER, MANUAL_SPINNER, SMS_PUMPER, SCRAPER,
         OTP_ABUSER, AMPLIFIER],
    )
    def test_attack_classes_are_attackers(self, actor_class):
        assert make_client(actor_class).is_attacker

    def test_attack_classes_constant_complete(self):
        assert set(ATTACK_CLASSES) == {
            SEAT_SPINNER, MANUAL_SPINNER, SMS_PUMPER, SCRAPER,
            OTP_ABUSER, AMPLIFIER,
        }

    def test_frozen(self):
        client = make_client()
        with pytest.raises(AttributeError):
            client.ip_address = "5.6.7.8"


class TestRequest:
    def test_param_accessor(self):
        request = Request(
            method="POST",
            path=HOLD,
            client=make_client(),
            params={"flight_id": "F1"},
        )
        assert request.param("flight_id") == "F1"

    def test_missing_param_raises_with_context(self):
        request = Request(method="GET", path=SEARCH, client=make_client())
        with pytest.raises(KeyError, match="flight_id"):
            request.param("flight_id")

    def test_default_captcha_ability(self):
        request = Request(method="GET", path=SEARCH, client=make_client())
        assert request.captcha_ability == CAPTCHA_HUMAN


class TestResponse:
    def test_ok(self):
        assert Response(status=OK).ok
        assert not Response(status=403).ok


class TestPathRegistry:
    def test_all_paths_unique(self):
        assert len(ALL_PATHS) == len(set(ALL_PATHS))

    def test_abusable_features_present(self):
        assert HOLD in ALL_PATHS
        assert BOARDING_PASS_SMS in ALL_PATHS
        assert TRAP in ALL_PATHS
