"""Tests for the streaming graph adapter.

The headline property: with periodic refresh disabled, the adapter's
end-of-stream analysis is *identical* to the batch detector's on the
same records — same propagation scores bit-for-bit, same campaigns.
Periodic refresh then only changes *when* convictions are emitted,
never the final analysis.
"""

import pytest

from repro.core.detection.verdict import Verdict
from repro.core.mitigation.online import OnlineVerdictSink
from repro.graph.campaigns import CAMPAIGN_DETECTOR
from repro.graph.detector import GraphDetector, GraphDetectorConfig
from repro.graph.stream import GraphStreamAdapter, RecordFeed
from repro.stream.adapters import FP_SUBJECT_PREFIX

from tests.test_graph_builder import (
    make_booking,
    make_session,
    make_sms,
)


def _config() -> GraphDetectorConfig:
    return GraphDetectorConfig(
        seed_weights={"volume-threshold": 0.9}
    )


def _campaign_records():
    """Rotated fingerprints glued by a recurring name and a shared
    booking reference, plus a clean visitor."""
    sessions, bookings, sms = [], [], []
    for index, fp in enumerate(["r1", "r2", "r3"]):
        ip = f"10.1.{index}.1"
        base = index * 1000.0
        sessions.append(
            make_session(
                f"s-{fp}", fp, ip, [base, base + 60.0, base + 120.0]
            )
        )
        bookings.append(
            make_booking(base + 30.0, fp, ip, [("anna", "nowak")])
        )
        for send in range(30):
            sms.append(
                make_sms(
                    base + 40.0 + send, fp, ip,
                    f"60010{index:02d}{send:02d}", ref="REFSHARED",
                )
            )
    sessions.append(
        make_session("s-clean", "visitor", "10.9.9.9", [50.0, 80.0])
    )
    return sessions, bookings, sms


def _seed_verdicts():
    return [
        Verdict(f"s-{fp}", "volume-threshold", 1.0, True)
        for fp in ["r1", "r2", "r3"]
    ]


def _run_stream(refresh_every=None, campaign_sink=None):
    sessions, bookings, sms = _campaign_records()
    adapter = GraphStreamAdapter(
        config=_config(),
        booking_feed=RecordFeed(bookings),
        sms_feed=RecordFeed(sms),
        refresh_every=refresh_every,
        campaign_sink=campaign_sink,
    )
    verdicts = []
    for session in sessions:
        for entry in session.entries:
            verdicts.extend(adapter.on_entry(entry, entry.time))
        verdicts.extend(adapter.on_session_closed(session))
    # Fold the other families' convictions in the way the pipeline's
    # fusion stage would hand them over: as accumulated seeds.
    from repro.graph.detector import accumulate_seed, seed_from_verdicts

    seed_from_verdicts(adapter._seeds, _seed_verdicts(), adapter.config)
    verdicts.extend(adapter.end_of_stream())
    return adapter, verdicts


def _run_batch():
    sessions, bookings, sms = _campaign_records()
    detector = GraphDetector(_config())
    detector.judge_all(
        sessions,
        bookings=bookings,
        sms=sms,
        seed_verdicts=_seed_verdicts(),
    )
    return detector


class TestStreamingEqualsBatch:
    def test_final_analysis_matches_batch_exactly(self):
        adapter, _ = _run_stream(refresh_every=None)
        batch = _run_batch()
        streaming = adapter.final_analysis
        assert streaming is not None
        assert (
            streaming.graph.snapshot()
            == batch.last_analysis.graph.snapshot()
        )
        # Bit-identical scores: same graph, same seeds, same sweep.
        assert (
            streaming.propagation.scores
            == batch.last_analysis.propagation.scores
        )
        assert [
            (c.campaign_id, c.members, c.risk)
            for c in streaming.campaigns
        ] == [
            (c.campaign_id, c.members, c.risk)
            for c in batch.last_analysis.campaigns
        ]

    def test_periodic_refresh_does_not_change_final_analysis(self):
        lazy, _ = _run_stream(refresh_every=None)
        eager, _ = _run_stream(refresh_every=1)
        assert eager.refreshes > lazy.refreshes
        assert (
            eager.final_analysis.propagation.scores
            == lazy.final_analysis.propagation.scores
        )
        assert [
            c.members for c in eager.final_campaigns
        ] == [c.members for c in lazy.final_campaigns]


class TestStreamConvictions:
    def test_cluster_conviction_covers_every_member_fingerprint(self):
        adapter, verdicts = _run_stream()
        campaign_fps = {
            fp
            for campaign in adapter.final_campaigns
            for fp in campaign.fingerprint_ids
        }
        assert campaign_fps == {"r1", "r2", "r3"}
        assert adapter.convicted_fingerprints == ["r1", "r2", "r3"]
        subjects = {v.subject_id for v in verdicts}
        assert subjects == {
            f"{FP_SUBJECT_PREFIX}{fp}" for fp in campaign_fps
        }
        for verdict in verdicts:
            assert verdict.detector == CAMPAIGN_DETECTOR
            assert verdict.is_bot

    def test_each_fingerprint_convicted_at_most_once(self):
        adapter, verdicts = _run_stream(refresh_every=1)
        subjects = [v.subject_id for v in verdicts]
        assert len(subjects) == len(set(subjects))
        assert adapter.convicted_fingerprints == ["r1", "r2", "r3"]

    def test_campaign_sink_receives_the_campaign(self):
        received = []
        _run_stream(
            campaign_sink=lambda campaign, now: received.append(
                (campaign, now)
            )
        )
        assert len(received) == 1
        campaign, now = received[0]
        assert set(campaign.fingerprint_ids) == {"r1", "r2", "r3"}
        assert now >= campaign.last_seen

    def test_refresh_every_validation(self):
        with pytest.raises(ValueError):
            GraphStreamAdapter(refresh_every=0)

    def test_record_feed_drains_only_the_tail(self):
        source = [1, 2]
        feed = RecordFeed(source)
        assert list(feed.drain()) == [1, 2]
        assert list(feed.drain()) == []
        source.extend([3, 4])
        assert list(feed.drain()) == [3, 4]
        assert feed.consumed == 4


class TestCampaignMitigation:
    def test_handle_campaign_blocks_every_member_fingerprint(self):
        from repro.scenarios.world import (
            WorldConfig,
            build_world,
            default_flight_schedule,
        )
        from repro.sim.clock import DAY

        world = build_world(
            WorldConfig(
                seed=1, flights=default_flight_schedule(2, DAY)
            )
        )
        sink = OnlineVerdictSink(world.app)
        adapter, _ = _run_stream(
            campaign_sink=sink.handle_campaign
        )
        assert sink.actions_taken == 1
        assert sink.timeline[0].kind == "stream-campaign-block"
        assert sink.first_block_time is not None
        for fp in ["r1", "r2", "r3"]:
            assert sink.blocks.is_blocked(fp)
        # A second identical campaign is a no-op: every member is
        # already blocked, so no duplicate action lands.
        sink.handle_campaign(adapter.final_campaigns[0], now=1e9)
        assert sink.actions_taken == 1
