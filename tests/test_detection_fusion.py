"""Tests for repro.core.detection.fusion (noisy-OR combination)."""

import pytest

from repro.core.detection.fusion import DEFAULT_WEIGHTS, FusionDetector
from repro.core.detection.verdict import Verdict


def verdict(subject, detector, score, is_bot=None):
    if is_bot is None:
        is_bot = score >= 0.5
    return Verdict(
        subject_id=subject, detector=detector, score=score, is_bot=is_bot
    )


class TestFusionDetector:
    def test_single_confident_detector_convicts(self):
        fusion = FusionDetector()
        fused = fusion.fuse(
            [[verdict("S1", "fingerprint-rules", 1.0)]]
        )
        assert len(fused) == 1
        assert fused[0].is_bot
        assert fused[0].score == pytest.approx(0.95)

    def test_weak_signals_accumulate(self):
        fusion = FusionDetector()
        fused = fusion.fuse(
            [
                [verdict("S1", "navigation-graph", 0.6, is_bot=False)],
                [verdict("S1", "kmeans-behaviour", 0.6, is_bot=False)],
                [verdict("S1", "logistic-behaviour", 0.6, is_bot=False)],
            ]
        )
        # 1 - (1-.36)(1-.30)(1-.42) = 0.74
        assert fused[0].score > 0.5
        assert fused[0].is_bot

    def test_clean_subject_stays_clean(self):
        fusion = FusionDetector()
        fused = fusion.fuse(
            [
                [verdict("S1", "volume-threshold", 0.0)],
                [verdict("S1", "fingerprint-rules", 0.0)],
            ]
        )
        assert fused[0].score == 0.0
        assert not fused[0].is_bot

    def test_reasons_name_contributing_detectors(self):
        fusion = FusionDetector()
        fused = fusion.fuse(
            [
                [verdict("S1", "volume-threshold", 0.9)],
                [verdict("S1", "navigation-graph", 0.8)],
                [verdict("S1", "kmeans-behaviour", 0.1, is_bot=False)],
            ]
        )
        assert fused[0].reasons == ("volume-threshold", "navigation-graph")

    def test_subjects_kept_separate(self):
        fusion = FusionDetector()
        fused = fusion.fuse(
            [
                [
                    verdict("S1", "volume-threshold", 1.0),
                    verdict("S2", "volume-threshold", 0.0),
                ]
            ]
        )
        by_subject = {v.subject_id: v for v in fused}
        assert by_subject["S1"].is_bot
        assert not by_subject["S2"].is_bot

    def test_unknown_detector_uses_default_weight(self):
        fusion = FusionDetector(default_weight=0.2)
        fused = fusion.fuse([[verdict("S1", "new-detector", 1.0)]])
        assert fused[0].score == pytest.approx(0.2)
        assert not fused[0].is_bot

    def test_custom_weights(self):
        fusion = FusionDetector(weights={"x": 1.0})
        fused = fusion.fuse([[verdict("S1", "x", 0.7)]])
        assert fused[0].score == pytest.approx(0.7)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            FusionDetector(weights={"x": 1.5})
        with pytest.raises(ValueError):
            FusionDetector(threshold=0.0)

    def test_output_sorted_by_subject(self):
        fusion = FusionDetector()
        fused = fusion.fuse(
            [
                [
                    verdict("S3", "volume-threshold", 0.1, is_bot=False),
                    verdict("S1", "volume-threshold", 0.1, is_bot=False),
                    verdict("S2", "volume-threshold", 0.1, is_bot=False),
                ]
            ]
        )
        assert [v.subject_id for v in fused] == ["S1", "S2", "S3"]

    def test_default_weights_cover_library_detectors(self):
        for name in (
            "fingerprint-rules",
            "volume-threshold",
            "mouse-biometrics",
            "navigation-graph",
        ):
            assert name in DEFAULT_WEIGHTS
