"""Fails-on-pre-fix regressions for the three verdict/feature bugs.

Each test class pins one bug this PR fixed; every test here fails on
the pre-fix code:

* **verdict merge** — ``evaluate_verdicts`` resolved duplicate
  verdicts for one subject last-write-wins, so a benign verdict
  arriving after a bot verdict silently un-flagged the subject and the
  measured recall depended on detector order;
* **zero-entry sessions** — ``extract_features`` indexed
  ``entries[0]`` and ``session_actor`` called ``max()`` on an empty
  counter, so a session surfaced at a stream-eviction boundary before
  its first entry landed crashed the pipeline;
* **constant columns** — standardisation clamped zero-variance
  columns with an exact ``std == 0.0`` test, missing columns constant
  at a non-zero value whose float std is rounding residue (~1e-17);
  dividing by the residue amplified an information-free column into
  O(1e16) garbage.
"""

import numpy as np
import pytest

from repro.analysis.evaluation import (
    evaluate_verdicts,
    predicted_bot_map,
    recall_by_class,
    session_actor,
)
from repro.common import ClientRef, LEGIT, SCRAPER
from repro.core.detection.features import FEATURE_NAMES, extract_features
from repro.core.detection.verdict import Verdict
from repro.ml import LogisticHead, MLPHead, Standardiser, build_dataset
from repro.web.logs import LogEntry, Session
from repro.web.request import SEARCH


def make_session(session_id, actor=SCRAPER, entry_count=3):
    client = ClientRef(
        ip_address="9.9.9.9",
        ip_country="US",
        ip_residential=True,
        fingerprint_id=f"fp-{session_id}",
        user_agent="UA",
        actor="actor-1" if actor != LEGIT else "",
        actor_class=actor,
    )
    entries = [
        LogEntry(
            time=10.0 * i,
            method="GET",
            path=SEARCH,
            status=200,
            client=client,
        )
        for i in range(entry_count)
    ]
    return Session(
        session_id=session_id,
        ip_address=client.ip_address,
        fingerprint_id=client.fingerprint_id,
        entries=entries,
    )


def verdict(subject_id, is_bot, detector="volume"):
    return Verdict(
        subject_id=subject_id,
        detector=detector,
        score=0.9 if is_bot else 0.1,
        is_bot=is_bot,
        reasons=("flagged",) if is_bot else (),
    )


class TestVerdictMergeAnyBotWins:
    """A bot verdict must never be cancelled by a later benign one."""

    def test_benign_after_bot_keeps_subject_flagged(self):
        sessions = [make_session("S1")]
        verdicts = [
            verdict("S1", True, detector="volume"),
            verdict("S1", False, detector="clustering"),
        ]
        evaluation = evaluate_verdicts(sessions, verdicts)
        assert evaluation.true_positives == 1
        assert evaluation.false_negatives == 0
        assert evaluation.recall == 1.0

    def test_merge_is_order_independent(self):
        sessions = [
            make_session("S1"),
            make_session("S2", actor=LEGIT),
            make_session("S3"),
        ]
        verdicts = [
            verdict("S1", True, detector="a"),
            verdict("S1", False, detector="b"),
            verdict("S2", False, detector="a"),
            verdict("S3", False, detector="a"),
            verdict("S3", True, detector="b"),
        ]
        forward = evaluate_verdicts(sessions, verdicts)
        reverse = evaluate_verdicts(sessions, verdicts[::-1])
        assert forward == reverse
        assert forward.true_positives == 2
        assert predicted_bot_map(verdicts) == predicted_bot_map(
            verdicts[::-1]
        )

    def test_recall_by_class_uses_merged_flags(self):
        sessions = [make_session("S1", actor=SCRAPER)]
        verdicts = [
            verdict("S1", True, detector="a"),
            verdict("S1", False, detector="b"),
        ]
        assert recall_by_class(sessions, verdicts) == {SCRAPER: 1.0}

    def test_benign_only_subject_stays_benign(self):
        sessions = [make_session("S1", actor=LEGIT)]
        verdicts = [
            verdict("S1", False, detector="a"),
            verdict("S1", False, detector="b"),
        ]
        evaluation = evaluate_verdicts(sessions, verdicts)
        assert evaluation.false_positives == 0
        assert evaluation.true_negatives == 1


class TestZeroEntrySessionGuards:
    """Zero-entry sessions must not crash features or attribution."""

    def empty_session(self):
        return Session(
            session_id="empty",
            ip_address="1.2.3.4",
            fingerprint_id="fp-empty",
            entries=[],
        )

    def test_extract_features_returns_all_zeros(self):
        features = extract_features(self.empty_session())
        assert features.session_id == "empty"
        assert features.vector().tolist() == [0.0] * len(FEATURE_NAMES)

    def test_session_actor_is_unattributed(self):
        assert session_actor(self.empty_session()) == ""

    def test_ground_truth_counts_as_legit(self):
        session = self.empty_session()
        assert session.actor_class == LEGIT
        assert not session.is_attacker

    def test_evaluation_handles_empty_session(self):
        sessions = [self.empty_session(), make_session("S1")]
        evaluation = evaluate_verdicts(
            sessions, [verdict("S1", True)]
        )
        assert evaluation.true_negatives == 1
        assert evaluation.true_positives == 1

    def test_dataset_build_handles_empty_session(self):
        dataset = build_dataset([self.empty_session()], with_truth=True)
        assert dataset.features.tolist() == [[0.0] * len(FEATURE_NAMES)]
        assert dataset.labels.tolist() == [0.0]


class TestConstantColumnStandardisation:
    """Constant non-zero columns must transform to exactly 0.0."""

    def test_float_residue_column_clamps_to_zero(self):
        # Three identical doubles whose float mean is NOT the value
        # itself: np.std is rounding residue (~1e-17), not 0.0, so the
        # pre-fix exact ``std == 0.0`` clamp misses it and divides an
        # information-free column by ~1e-17.
        column = np.full(3, 0.1)
        assert np.std(column) != 0.0  # the residue the old code divided by
        matrix = np.column_stack([column, np.array([1.0, 2.0, 3.0])])
        standardiser = Standardiser.fit(matrix)
        transformed = standardiser.transform(matrix)
        assert (transformed[:, 0] == 0.0).all()
        # The varying column still standardises normally.
        assert transformed[:, 1] == pytest.approx(
            (matrix[:, 1] - 2.0) / np.std(matrix[:, 1])
        )

    def test_transform_of_nearby_value_stays_bounded(self):
        # Pre-fix, an inference input one ulp from the training
        # constant divided by the ~1e-17 residue std → O(1e16)
        # activations reaching the weights.
        column = np.full(5, 0.1)
        standardiser = Standardiser.fit(
            np.column_stack([column, np.arange(5.0)])
        )
        probe = np.array([[np.nextafter(0.1, 1.0), 2.0]])
        assert abs(standardiser.transform(probe)[0, 0]) < 1e-10

    def test_exact_zero_column_also_clamps(self):
        matrix = np.column_stack(
            [np.zeros(4), np.array([1.0, 2.0, 3.0, 4.0])]
        )
        transformed = Standardiser.fit(matrix).transform(matrix)
        assert (transformed[:, 0] == 0.0).all()

    @pytest.mark.parametrize(
        "model",
        [LogisticHead(epochs=100), MLPHead(epochs=100)],
        ids=["logistic", "mlp"],
    )
    def test_training_with_constant_feature_stays_finite(self, model):
        """Every session here has identical duration/rate/path-mix, so
        most feature columns are constant at non-zero values — training
        must stay finite and still separate on the varying columns."""
        sessions = (
            [
                make_session(f"H{i}", actor=LEGIT, entry_count=3)
                for i in range(8)
            ]
            + [
                make_session(f"B{i}", actor=SCRAPER, entry_count=30)
                for i in range(8)
            ]
        )
        dataset = build_dataset(
            sessions, labels=[False] * 8 + [True] * 8
        )
        feature_std = dataset.features.std(axis=0)
        assert (feature_std[feature_std != 0.0] > 0).any()
        report = model.fit(dataset, np.random.default_rng(0))
        assert np.isfinite(report.final_loss)
        _, arrays = model.get_state()
        for name, array in arrays.items():
            assert np.isfinite(array).all(), name
        probabilities = model.predict_proba(dataset)
        assert np.isfinite(probabilities).all()
        assert report.training_accuracy == 1.0
