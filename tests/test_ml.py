"""Tests for repro.ml: datasets, model ladder, RPML io, detector."""

import numpy as np
import pytest

from repro.common import ClientRef, LEGIT, SCRAPER
from repro.core.detection.features import FEATURE_NAMES
from repro.ml import (
    Dataset,
    FeatureStore,
    FeatureStoreAdapter,
    LearnedSessionDetector,
    LogisticHead,
    MLPHead,
    SequenceEncoder,
    Standardiser,
    TrainConfig,
    build_dataset,
    encode_sequence,
    load_model,
    save_model,
    train_model,
    weights_digest,
)
from repro.ml.data import MAX_SEQUENCE_LENGTH, PAD_TOKEN, VOCAB_SIZE, entry_token
from repro.ml.io import ModelFormatError
from repro.ml.train import calibrate_threshold
from repro.stream import SessionDetectorAdapter, StreamPipeline
from repro.web.logs import LogEntry, Session, sessionize
from repro.web.logs import WebLog
from repro.web.request import FLIGHT_DETAILS, HOLD, SEARCH


def make_client(ip="1.1.1.1", fingerprint="fp", actor=LEGIT):
    return ClientRef(
        ip_address=ip,
        ip_country="US",
        ip_residential=True,
        fingerprint_id=fingerprint,
        user_agent="UA",
        actor_class=actor,
    )


def make_session(
    session_id,
    request_count,
    spacing=10.0,
    actor=LEGIT,
    paths=(SEARCH,),
    status=200,
    start=0.0,
):
    client = make_client(actor=actor)
    entries = [
        LogEntry(
            time=start + i * spacing,
            method="GET",
            path=paths[i % len(paths)],
            status=status,
            client=client,
        )
        for i in range(request_count)
    ]
    return Session(
        session_id=session_id,
        ip_address=client.ip_address,
        fingerprint_id=client.fingerprint_id,
        entries=entries,
    )


def separable_sessions(humans=16, bots=16):
    """Human browse cadence vs scripted hold-loop cadence."""
    sessions = [
        make_session(
            f"H{i}",
            request_count=4 + i % 3,
            spacing=35.0 + i,
            paths=(SEARCH, FLIGHT_DETAILS),
        )
        for i in range(humans)
    ] + [
        make_session(
            f"B{i}",
            request_count=24,
            spacing=2.0,
            actor=SCRAPER,
            paths=(SEARCH, FLIGHT_DETAILS, HOLD),
            start=1000.0 * i,
        )
        for i in range(bots)
    ]
    labels = [False] * humans + [True] * bots
    return sessions, labels


def separable_dataset(humans=16, bots=16):
    sessions, labels = separable_sessions(humans, bots)
    return build_dataset(sessions, labels=labels)


# -- sequence encoding -------------------------------------------------------


class TestEncoding:
    def test_tokens_and_gaps(self):
        session = make_session(
            "S1", 3, spacing=10.0, paths=(SEARCH, HOLD)
        )
        tokens, gaps = encode_sequence(session)
        assert tokens.shape == (MAX_SEQUENCE_LENGTH,)
        assert tokens[0] == entry_token(SEARCH, 200)
        assert tokens[1] == entry_token(HOLD, 200)
        assert (tokens[3:] == PAD_TOKEN).all()
        assert gaps[0] == 0.0
        assert gaps[1] == pytest.approx(np.log1p(10.0))
        assert (gaps[3:] == 0.0).all()

    def test_unknown_path_and_error_status(self):
        token = entry_token("/no-such-endpoint", 404)
        assert 0 <= token < VOCAB_SIZE
        assert token % 2 == 1  # error bucket

    def test_long_session_truncates(self):
        session = make_session("S1", MAX_SEQUENCE_LENGTH + 40)
        tokens, _ = encode_sequence(session)
        assert (tokens != PAD_TOKEN).all()

    def test_build_dataset_alignment(self):
        dataset = separable_dataset(humans=3, bots=2)
        assert len(dataset) == 5
        assert dataset.features.shape == (5, len(FEATURE_NAMES))
        assert dataset.labelled
        assert dataset.labels.tolist() == [0, 0, 0, 1, 1]
        sub = dataset.subset([4, 0])
        assert sub.session_ids == ["B1", "H0"]
        assert sub.labels.tolist() == [1, 0]

    def test_label_count_mismatch_rejected(self):
        sessions, _ = separable_sessions(2, 0)
        with pytest.raises(ValueError):
            build_dataset(sessions, labels=[True])


# -- model ladder ------------------------------------------------------------


class TestLadder:
    @pytest.mark.parametrize(
        "model",
        [
            LogisticHead(),
            MLPHead(epochs=200),
            SequenceEncoder(d_model=8, epochs=40),
        ],
        ids=["logistic", "mlp", "encoder"],
    )
    def test_learns_separable_data(self, model):
        dataset = separable_dataset()
        report = model.fit(dataset, np.random.default_rng(0))
        assert report.training_accuracy == 1.0
        probabilities = model.predict_proba(dataset)
        assert probabilities[:16].max() < 0.5
        assert probabilities[16:].min() > 0.5

    def test_unlabelled_dataset_rejected(self):
        sessions, _ = separable_sessions(4, 4)
        dataset = build_dataset(sessions)  # no labels
        with pytest.raises(ValueError):
            MLPHead().fit(dataset, np.random.default_rng(0))

    def test_single_class_rejected(self):
        sessions, _ = separable_sessions(4, 0)
        dataset = build_dataset(sessions, labels=[False] * 4)
        with pytest.raises(ValueError):
            LogisticHead().fit(dataset, np.random.default_rng(0))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            SequenceEncoder().predict_proba(separable_dataset(1, 1))


class TestEncoderGradients:
    def test_analytic_gradients_match_finite_differences(self):
        """The encoder's hand-written backprop is exact: every
        parameter tensor's analytic gradient matches central finite
        differences on a padded mixed batch."""
        rng = np.random.default_rng(42)
        encoder = SequenceEncoder(d_model=6, l2=1e-3)
        encoder.init_params(rng)
        n = 5
        tokens = rng.integers(
            0, VOCAB_SIZE, size=(n, MAX_SEQUENCE_LENGTH)
        ).astype(np.int16)
        for row in range(n):
            tokens[row, int(rng.integers(2, MAX_SEQUENCE_LENGTH)):] = (
                PAD_TOKEN
            )
        gaps = np.abs(rng.normal(0.0, 1.0, size=tokens.shape))
        gaps[tokens == PAD_TOKEN] = 0.0
        labels = np.array([0.0, 1.0, 1.0, 0.0, 1.0])
        weights = np.array([1.0, 0.5, 1.5, 1.0, 1.0])

        _, grads = encoder.loss_and_grads(tokens, gaps, labels, weights)
        eps = 1e-6
        for name, array in encoder.params.items():
            flat = array.reshape(-1)
            for index in rng.choice(
                flat.size, size=min(4, flat.size), replace=False
            ):
                original = flat[index]
                flat[index] = original + eps
                loss_plus, _ = encoder.loss_and_grads(
                    tokens, gaps, labels, weights
                )
                flat[index] = original - eps
                loss_minus, _ = encoder.loss_and_grads(
                    tokens, gaps, labels, weights
                )
                flat[index] = original
                numeric = (loss_plus - loss_minus) / (2 * eps)
                analytic = grads[name].reshape(-1)[index]
                assert analytic == pytest.approx(
                    numeric, rel=1e-4, abs=1e-8
                ), name


# -- RPML round trip ---------------------------------------------------------


class TestModelIO:
    @pytest.mark.parametrize(
        "model",
        [
            LogisticHead(epochs=50),
            MLPHead(epochs=50),
            SequenceEncoder(d_model=8, epochs=10),
        ],
        ids=["logistic", "mlp", "encoder"],
    )
    def test_save_load_round_trips_exactly(self, model, tmp_path):
        dataset = separable_dataset(humans=8, bots=8)
        model.fit(dataset, np.random.default_rng(3))
        model.threshold = 0.625
        path = tmp_path / "model.rpml"
        save_model(path, model, meta={"note": "test"})
        loaded, meta = load_model(path)
        assert meta == {"note": "test"}
        assert type(loaded) is type(model)
        assert loaded.threshold == model.threshold
        _, original_arrays = model.get_state()
        _, loaded_arrays = loaded.get_state()
        assert set(original_arrays) == set(loaded_arrays)
        for name, array in original_arrays.items():
            assert np.array_equal(loaded_arrays[name], array), name
        assert np.array_equal(
            loaded.predict_proba(dataset), model.predict_proba(dataset)
        )
        assert weights_digest(loaded) == weights_digest(model)

    def test_rejects_garbage_and_wrong_version(self, tmp_path):
        path = tmp_path / "bad.rpml"
        path.write_bytes(b"not a model")
        with pytest.raises(ModelFormatError):
            load_model(path)
        path.write_bytes(b"RPML\xff\xff\x00\x00\x00\x00")
        with pytest.raises(ModelFormatError):
            load_model(path)

    def test_unfitted_model_cannot_be_saved(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_model(tmp_path / "m.rpml", MLPHead())


# -- threshold calibration ---------------------------------------------------


class TestCalibration:
    def test_threshold_meets_target_fpr(self):
        rng = np.random.default_rng(0)
        probabilities = np.concatenate(
            [rng.uniform(0.0, 0.6, 200), rng.uniform(0.7, 1.0, 50)]
        )
        labels = np.concatenate([np.zeros(200), np.ones(50)])
        for target in (0.005, 0.02, 0.1):
            threshold = calibrate_threshold(
                probabilities, labels, target
            )
            legit = probabilities[labels < 0.5]
            fpr = float((legit >= threshold).mean())
            assert fpr <= target

    def test_zero_allowed_goes_above_max_legit(self):
        probabilities = np.array([0.1, 0.4, 0.9])
        labels = np.array([0.0, 0.0, 1.0])
        threshold = calibrate_threshold(probabilities, labels, 0.01)
        assert threshold > 0.4

    def test_no_legit_rows_defaults(self):
        assert calibrate_threshold(
            np.array([0.9]), np.array([1.0]), 0.01
        ) == 0.5


# -- feature store -----------------------------------------------------------


class TestFeatureStore:
    def test_round_trips_through_npz(self, tmp_path):
        sessions, _ = separable_sessions(5, 3)
        store = FeatureStore()
        store.extend(sessions)
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = FeatureStore.load(path)
        original = store.to_dataset()
        restored = loaded.to_dataset()
        assert restored.session_ids == original.session_ids
        assert restored.actor_classes == original.actor_classes
        assert np.array_equal(restored.features, original.features)
        assert np.array_equal(restored.tokens, original.tokens)
        assert np.array_equal(restored.gaps, original.gaps)
        assert np.array_equal(restored.labels, original.labels)

    def test_without_truth_is_unlabelled(self):
        sessions, _ = separable_sessions(2, 2)
        store = FeatureStore()
        store.extend(sessions, with_truth=False)
        dataset = store.to_dataset()
        assert np.isnan(dataset.labels).all()
        assert not dataset.labelled

    def test_empty_store_dataset(self):
        dataset = FeatureStore().to_dataset()
        assert len(dataset) == 0
        assert dataset.features.shape == (0, len(FEATURE_NAMES))

    def test_adapter_matches_batch_sessionization(self):
        """Sessions captured by the stream adapter are exactly the
        batch ``sessionize`` output, feature for feature."""
        log = WebLog()
        client_a = make_client(ip="1.1.1.1", fingerprint="fpA")
        client_b = make_client(
            ip="2.2.2.2", fingerprint="fpB", actor=SCRAPER
        )
        time = 0.0
        for burst in range(3):
            for step in range(4):
                log.append(LogEntry(
                    time=time,
                    method="GET",
                    path=SEARCH,
                    status=200,
                    client=client_a if burst % 2 == 0 else client_b,
                ))
                time += 60.0
            time += 3 * 3600.0  # idle gap closes the session
        adapter = FeatureStoreAdapter()
        pipeline = StreamPipeline(adapters=[adapter])
        for entry in log.entries():
            pipeline.process(entry)
        pipeline.finish()
        batch = build_dataset(sessionize(log), with_truth=True)
        streamed = adapter.store.to_dataset()
        assert sorted(streamed.session_ids) == sorted(batch.session_ids)
        order = [
            streamed.session_ids.index(sid)
            for sid in batch.session_ids
        ]
        assert np.array_equal(streamed.features[order], batch.features)
        assert np.array_equal(streamed.tokens[order], batch.tokens)
        assert np.array_equal(streamed.labels[order], batch.labels)


# -- learned detector --------------------------------------------------------


@pytest.fixture(scope="module")
def trained_mlp():
    sessions, labels = separable_sessions()
    dataset = build_dataset(sessions, labels=labels)
    model = train_model(
        dataset, TrainConfig(model="mlp", master_seed=11)
    ).model
    # Pin the decision threshold away from every score: single-row and
    # batch matmuls differ in the last ulp, so a threshold calibrated
    # to sit exactly one ulp above a training score would flip flags.
    model.threshold = 0.5
    return model


def assert_verdicts_close(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.subject_id == want.subject_id
        assert got.detector == want.detector
        assert got.is_bot == want.is_bot
        assert got.score == pytest.approx(want.score, rel=1e-9)


class TestLearnedDetector:
    def test_requires_fitted_model(self):
        with pytest.raises(ValueError):
            LearnedSessionDetector(MLPHead())

    def test_judge_matches_judge_all(self, trained_mlp):
        """Scoring one session at a time (the streaming path) matches
        batch scoring to float round-off — the standardiser and
        weights are frozen at train time."""
        sessions, _ = separable_sessions(6, 6)
        detector = LearnedSessionDetector(trained_mlp)
        batch = detector.judge_all(sessions)
        single = [detector.judge(session) for session in sessions]
        assert_verdicts_close(single, batch)
        assert all(v.detector == "learned-sequence" for v in batch)
        assert not any(v.is_bot for v in batch[:6])
        assert all(v.is_bot for v in batch[6:])

    def test_stream_adapter_equivalence(self, trained_mlp):
        """The learned arm behind SessionDetectorAdapter emits the
        same verdict set as the batch pipeline on the same log."""
        log = WebLog()
        clients = [
            make_client(ip=f"10.0.0.{i}", fingerprint=f"fp{i}")
            for i in range(4)
        ] + [
            make_client(
                ip=f"10.0.1.{i}",
                fingerprint=f"bot{i}",
                actor=SCRAPER,
            )
            for i in range(4)
        ]
        entries = []
        for rank, client in enumerate(clients):
            bot = client.actor_class == SCRAPER
            count = 20 if bot else 5
            spacing = 2.0 if bot else 40.0
            for step in range(count):
                entries.append(LogEntry(
                    time=rank * 7.0 + step * spacing,
                    method="GET",
                    path=(SEARCH, FLIGHT_DETAILS, HOLD)[step % 3]
                    if bot
                    else (SEARCH, FLIGHT_DETAILS)[step % 2],
                    status=200,
                    client=client,
                ))
        for entry in sorted(entries, key=lambda e: e.time):
            log.append(entry)
        detector = LearnedSessionDetector(trained_mlp)
        pipeline = StreamPipeline(
            adapters=[SessionDetectorAdapter(detector)]
        )
        for entry in log.entries():
            pipeline.process(entry)
        report = pipeline.finish()
        batch = detector.judge_all(sessionize(log))
        streamed = sorted(
            report.session_verdicts, key=lambda v: v.subject_id
        )
        assert_verdicts_close(
            streamed, sorted(batch, key=lambda v: v.subject_id)
        )
