"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.analysis.aggregate
import repro.analysis.reports
import repro.runner.spec
import repro.sim.clock
import repro.sim.rng


@pytest.mark.parametrize(
    "module",
    [
        repro.sim.clock,
        repro.sim.rng,
        repro.analysis.reports,
        repro.analysis.aggregate,
        repro.runner.spec,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, raise_on_error=False)
    assert results.failed == 0
    assert results.attempted > 0  # the examples actually exist
