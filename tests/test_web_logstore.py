"""Columnar web-log store: golden equality against the list backend.

The :class:`~repro.web.logstore.ColumnarLogStore` must be invisible to
every consumer: the ``LogEntry`` views it materialises have to compare
equal — field for field, including the interned strings and the
``ClientRef`` — to what the plain list-of-objects backend records for
the same run.  The golden tests below run each case study twice with
identical seeds, once per backend, and require entry-for-entry
equality of the whole log (and of the sessions built from it).

The unit tests pin the block machinery's edges: empty store, a block
filled to exactly its capacity, appends landing after a view was
taken, and the half-open ``entries_between`` window.
"""

import pytest

from repro.common import ClientRef
from repro.sim.clock import DAY
from repro.web.logs import COLUMNAR, LIST, LogEntry, WebLog, sessionize
from repro.web.logstore import ColumnarLogStore


def client(tag: str = "a") -> ClientRef:
    return ClientRef(
        ip_address=f"198.51.100.{tag}",
        ip_country="DE",
        ip_residential=True,
        fingerprint_id=f"fp-{tag}",
        user_agent="Mozilla/5.0",
        profile_id=f"visitor-{tag}",
        actor="legit",
        actor_class="legit",
    )


def entry(time: float, who: ClientRef, path: str = "/search") -> LogEntry:
    return LogEntry(
        time=time, method="GET", path=path, status=200, client=who
    )


class TestEmptyStore:
    def test_empty_everything(self):
        store = ColumnarLogStore()
        assert len(store) == 0
        assert store.block_count == 0
        assert list(store.iter_entries()) == []
        assert store.times().shape == (0,)
        assert store.entries_between(0.0, 1e9) == []
        assert store.nbytes() == 0

    def test_last_time_and_get_raise(self):
        store = ColumnarLogStore()
        with pytest.raises(IndexError):
            store.last_time()
        with pytest.raises(IndexError):
            store.get(0)


class TestBlockBoundaries:
    def test_exactly_one_block(self):
        store = ColumnarLogStore(block_rows=4)
        who = client()
        for i in range(4):
            store.append_entry(entry(float(i), who))
        assert store.block_count == 1
        assert len(store) == 4
        assert [e.time for e in store.iter_entries()] == [0.0, 1.0, 2.0, 3.0]

    def test_append_past_capacity_opens_new_block(self):
        store = ColumnarLogStore(block_rows=4)
        who = client()
        for i in range(5):
            store.append_entry(entry(float(i), who))
        assert store.block_count == 2
        assert store.get(4).time == 4.0
        assert [e.time for e in store.iter_entries()] == [
            0.0, 1.0, 2.0, 3.0, 4.0,
        ]

    def test_rows_straddle_blocks_in_order(self):
        store = ColumnarLogStore(block_rows=3)
        who = client()
        for i in range(10):
            store.append_entry(entry(float(i), who, path=f"/p{i % 4}"))
        assert store.block_count == 4
        assert [e.path for e in store.iter_entries()] == [
            f"/p{i % 4}" for i in range(10)
        ]

    def test_nbytes_tracks_blocks_not_rows(self):
        store = ColumnarLogStore(block_rows=4)
        who = client()
        store.append_entry(entry(0.0, who))
        one_block = store.nbytes()
        assert one_block > 0
        for i in range(1, 4):
            store.append_entry(entry(float(i), who))
        # Filling the rest of the block allocates nothing new.
        assert store.nbytes() == one_block
        store.append_entry(entry(4.0, who))
        assert store.nbytes() == 2 * one_block

    def test_get_bounds(self):
        store = ColumnarLogStore(block_rows=2)
        store.append_entry(entry(0.0, client()))
        with pytest.raises(IndexError):
            store.get(1)
        with pytest.raises(IndexError):
            store.get(-1)

    def test_block_rows_validated(self):
        with pytest.raises(ValueError):
            ColumnarLogStore(block_rows=0)


class TestViewsAndInterning:
    def test_view_taken_before_append_is_pinned(self):
        store = ColumnarLogStore(block_rows=2)
        who = client()
        store.append_entry(entry(0.0, who))
        store.append_entry(entry(1.0, who))
        view = store.iter_entries()
        store.append_entry(entry(2.0, who))
        assert [e.time for e in view] == [0.0, 1.0]
        assert [e.time for e in store.iter_entries()] == [0.0, 1.0, 2.0]

    def test_materialised_entries_are_bit_faithful(self):
        store = ColumnarLogStore()
        who = client()
        original = LogEntry(
            time=3.5, method="POST", path="/hold", status=201,
            client=who, blocked_by="", outcome="hold-created",
        )
        store.append_entry(original)
        back = store.get(0)
        assert back == original
        # Interning returns the *same* objects, not equal copies.
        assert back.client is who
        assert back.path is original.path

    def test_repeated_fields_intern_once(self):
        store = ColumnarLogStore()
        who = client()
        for i in range(100):
            store.append_entry(entry(float(i), who))
        assert store.interned_clients == 1
        # "GET", "/search", "" (blocked_by and outcome share the table).
        assert store.interned_strings == 3

    def test_entries_between_is_half_open(self):
        store = ColumnarLogStore(block_rows=2)
        who = client()
        for time in (0.0, 1.0, 1.0, 2.0, 3.0):
            store.append_entry(entry(time, who))
        window = store.entries_between(1.0, 3.0)
        assert [e.time for e in window] == [1.0, 1.0, 2.0]


class TestWebLogBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            WebLog(backend="parquet")

    def test_backends_record_identical_entries(self):
        who_a, who_b = client("a"), client("b")
        logs = [WebLog(backend=COLUMNAR), WebLog(backend=LIST)]
        for log in logs:
            log.append(entry(0.0, who_a))
            log.append_fields(
                time=1.0, method="POST", path="/hold", status=201,
                client=who_b, outcome="hold-created",
            )
        assert logs[0].entries() == logs[1].entries()
        assert len(logs[0]) == len(logs[1]) == 2
        assert (
            logs[0].entries_between(0.5, 1.5)
            == logs[1].entries_between(0.5, 1.5)
        )

    def test_observer_sees_materialised_entry_from_append_fields(self):
        log = WebLog(backend=COLUMNAR)
        seen = []
        log.subscribe(seen.append)
        who = client()
        log.append_fields(
            time=2.0, method="GET", path="/search", status=200, client=who
        )
        assert seen == [entry(2.0, who)]
        assert seen[0].client is who

    def test_out_of_order_append_raises_on_columnar(self):
        log = WebLog(backend=COLUMNAR)
        log.append(entry(5.0, client()))
        with pytest.raises(ValueError):
            log.append(entry(4.0, client()))
        with pytest.raises(ValueError):
            log.append_fields(
                time=4.0, method="GET", path="/", status=200, client=client()
            )

    def test_reentrant_append_raises_on_columnar(self):
        log = WebLog(backend=COLUMNAR)

        def evil(seen_entry):
            log.append_fields(
                time=seen_entry.time + 1.0, method="GET", path="/",
                status=200, client=client(),
            )

        log.subscribe(evil)
        with pytest.raises(RuntimeError):
            log.append(entry(0.0, client()))


# -- golden equality on the case studies -------------------------------------


def run_both(monkeypatch, builder):
    """Run ``builder`` per backend: columnar (default), then list."""
    columnar_world = builder()
    import repro.web.application as application

    monkeypatch.setattr(
        application, "WebLog", lambda: WebLog(backend=LIST)
    )
    return columnar_world, builder()


def assert_logs_match(columnar_world, list_world):
    columnar_log, list_log = columnar_world.app.log, list_world.app.log
    assert columnar_log.backend == COLUMNAR
    assert list_log.backend == LIST
    columnar_entries = columnar_log.entries()
    list_entries = list_log.entries()
    assert len(columnar_entries) == len(list_entries)
    assert columnar_entries == list_entries
    columnar_sessions = sessionize(columnar_log)
    list_sessions = sessionize(list_log)
    assert [s.session_id for s in columnar_sessions] == [
        s.session_id for s in list_sessions
    ]
    assert [s.entries for s in columnar_sessions] == [
        s.entries for s in list_sessions
    ]


class TestCaseGoldenEquality:
    def _case_a(self):
        from repro.scenarios.case_a import CaseAConfig, run_case_a

        return run_case_a(
            CaseAConfig(
                seed=3,
                visitor_rate_per_hour=5.0,
                attack_start=1 * DAY,
                cap_at=2 * DAY,
                departure_time=4 * DAY,
                target_capacity=80,
                attacker_target_seats=40,
            )
        ).world

    def _case_b(self):
        from repro.scenarios.case_b import CaseBConfig, run_case_b

        return run_case_b(CaseBConfig(seed=5, duration=3 * DAY)).world

    def _case_c(self):
        from repro.scenarios.case_c import CaseCConfig, run_case_c

        return run_case_c(
            CaseCConfig(
                seed=2,
                baseline_weekly_total=4_800,
                attack_start=1 * DAY,
                duration=3 * DAY,
            )
        ).world

    def test_case_a_logs_identical(self, monkeypatch):
        assert_logs_match(*run_both(monkeypatch, self._case_a))

    def test_case_b_logs_identical(self, monkeypatch):
        assert_logs_match(*run_both(monkeypatch, self._case_b))

    def test_case_c_logs_identical(self, monkeypatch):
        assert_logs_match(*run_both(monkeypatch, self._case_c))
