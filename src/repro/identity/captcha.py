"""CAPTCHA challenges and solver-service economics.

Section V of the paper recommends CAPTCHAs at critical points not
because bots cannot pass them — commercial solver services solve them
for a fee — but because "these measures add cost and complexity to
automated attacks".  The model therefore has two sides:

* outcome: humans pass with high probability after a delay; bots pass
  only by paying a solver service, with its own latency and failure
  rate;
* cost: every bot solve is charged to the attacker's ledger, which the
  economics benchmarks use to find the profitability frontier.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class CaptchaOutcome:
    """Result of one CAPTCHA presentation."""

    passed: bool
    latency: float
    cost_to_client: float


@dataclass
class CaptchaGateModel:
    """Behavioural model of a CAPTCHA challenge at an endpoint.

    Defaults approximate published figures: humans pass ~96% of the
    time in a few seconds; solver services charge roughly $1-3 per
    thousand solves and take tens of seconds.
    """

    human_pass_rate: float = 0.96
    human_mean_latency: float = 6.0
    solver_pass_rate: float = 0.92
    solver_mean_latency: float = 25.0
    solver_cost_per_solve: float = 0.002

    def __post_init__(self) -> None:
        for name in ("human_pass_rate", "solver_pass_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")

    def present_to_human(self, rng: random.Random) -> CaptchaOutcome:
        """A genuine user attempts the challenge (no monetary cost)."""
        passed = rng.random() < self.human_pass_rate
        latency = rng.expovariate(1.0 / self.human_mean_latency)
        return CaptchaOutcome(passed=passed, latency=latency, cost_to_client=0.0)

    def present_to_bot(
        self, rng: random.Random, uses_solver_service: bool = True
    ) -> CaptchaOutcome:
        """A bot attempts the challenge.

        Without a solver service the bot simply fails (we do not model
        CAPTCHA-breaking ML).  With one, it pays per attempt whether or
        not the solve succeeds — solver services bill on submission.
        """
        if not uses_solver_service:
            return CaptchaOutcome(passed=False, latency=1.0, cost_to_client=0.0)
        passed = rng.random() < self.solver_pass_rate
        latency = rng.expovariate(1.0 / self.solver_mean_latency)
        return CaptchaOutcome(
            passed=passed,
            latency=latency,
            cost_to_client=self.solver_cost_per_solve,
        )
