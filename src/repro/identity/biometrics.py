"""Behavioural biometrics: mouse-movement trajectories.

Section V of the paper points at "biometric indicators (e.g., mouse
trajectory tracking)" as the promising future direction for functional-
abuse detection, citing the mouse-dynamics bot-detection literature
[41]-[44].  This module supplies that substrate:

* :class:`HumanMotionModel` — generates trajectories with the motor
  signatures real pointer data shows: curved paths, asymmetric
  speed bells, tremor, overshoot-and-correct endings, think pauses;
* :class:`BotMotionModel` — the automation signatures: no pointer at
  all (headless), straight constant-speed segments, replayed recordings
  (identical trajectories), or synthetic curves that are *too* smooth;
* :func:`trajectory_features` — the standard kinematic feature vector
  (straightness, speed variability, jerk, pauses, tremor energy);
* :class:`BiometricDetector` — scores trajectories human-vs-bot and
  catches replay attacks by trajectory fingerprinting.

Coordinates are CSS pixels on a 1280x800 viewport; timestamps are
seconds from trajectory start.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.detection.verdict import Verdict

VIEWPORT_W = 1280
VIEWPORT_H = 800


@dataclass(frozen=True)
class MousePoint:
    """One pointer sample."""

    time: float
    x: float
    y: float


@dataclass(frozen=True)
class MouseTrajectory:
    """A pointer path between two UI targets."""

    points: Tuple[MousePoint, ...]

    def __post_init__(self) -> None:
        times = [p.time for p in self.points]
        if times != sorted(times):
            raise ValueError("trajectory timestamps must be sorted")

    @property
    def duration(self) -> float:
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].time - self.points[0].time

    @property
    def path_length(self) -> float:
        total = 0.0
        for a, b in zip(self.points, self.points[1:]):
            total += math.hypot(b.x - a.x, b.y - a.y)
        return total

    @property
    def displacement(self) -> float:
        if len(self.points) < 2:
            return 0.0
        first, last = self.points[0], self.points[-1]
        return math.hypot(last.x - first.x, last.y - first.y)

    def shape_hash(self, grid: int = 24) -> str:
        """Quantised shape digest used for replay detection.

        Two captures of the *same recording* hash identically; two
        genuinely human movements essentially never do.
        """
        cells = []
        for point in self.points:
            cells.append(
                (int(point.x) // grid, int(point.y) // grid)
            )
        deduplicated = [cells[0]] if cells else []
        for cell in cells[1:]:
            if cell != deduplicated[-1]:
                deduplicated.append(cell)
        payload = ";".join(f"{cx},{cy}" for cx, cy in deduplicated)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _bezier(
    p0: Tuple[float, float],
    p1: Tuple[float, float],
    p2: Tuple[float, float],
    p3: Tuple[float, float],
    t: float,
) -> Tuple[float, float]:
    """Cubic Bezier point."""
    mt = 1.0 - t
    x = (
        mt ** 3 * p0[0]
        + 3 * mt ** 2 * t * p1[0]
        + 3 * mt * t ** 2 * p2[0]
        + t ** 3 * p3[0]
    )
    y = (
        mt ** 3 * p0[1]
        + 3 * mt ** 2 * t * p1[1]
        + 3 * mt * t ** 2 * p2[1]
        + t ** 3 * p3[1]
    )
    return x, y


def _minimum_jerk_profile(t: float) -> float:
    """Minimum-jerk position profile s(t) on [0, 1] — the asymmetric
    bell-shaped speed curve characteristic of human reaching."""
    return 10 * t ** 3 - 15 * t ** 4 + 6 * t ** 5


class HumanMotionModel:
    """Generates human-like pointer trajectories.

    Each instance carries a per-user motor signature (curvature bias,
    tremor amplitude, speed) so trajectories from one user are similar
    in style yet never identical.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self.curvature_bias = rng.uniform(-0.25, 0.25)
        self.tremor = rng.uniform(0.6, 2.2)       # tremor amplitude (px)
        self.speed = rng.uniform(700.0, 1400.0)   # px/s peak-ish

    def _random_target(self) -> Tuple[float, float]:
        return (
            self._rng.uniform(40, VIEWPORT_W - 40),
            self._rng.uniform(40, VIEWPORT_H - 40),
        )

    def move(
        self,
        start: Optional[Tuple[float, float]] = None,
        end: Optional[Tuple[float, float]] = None,
        sample_rate: float = 60.0,
    ) -> MouseTrajectory:
        """One human movement from ``start`` to ``end``."""
        rng = self._rng
        p0 = start if start is not None else self._random_target()
        p3 = end if end is not None else self._random_target()
        distance = math.hypot(p3[0] - p0[0], p3[1] - p0[1])
        distance = max(distance, 10.0)
        duration = max(distance / self.speed, 0.15) * rng.uniform(0.85, 1.3)

        # Curved control points perpendicular to the line of motion.
        dx, dy = p3[0] - p0[0], p3[1] - p0[1]
        norm = math.hypot(dx, dy) or 1.0
        perp = (-dy / norm, dx / norm)
        bow = distance * (self.curvature_bias + rng.uniform(-0.12, 0.12))
        p1 = (
            p0[0] + dx * 0.3 + perp[0] * bow,
            p0[1] + dy * 0.3 + perp[1] * bow,
        )
        p2 = (
            p0[0] + dx * 0.7 + perp[0] * bow * rng.uniform(0.4, 1.2),
            p0[1] + dy * 0.7 + perp[1] * bow * rng.uniform(0.4, 1.2),
        )

        count = max(int(duration * sample_rate), 8)
        points: List[MousePoint] = []
        for index in range(count + 1):
            t = index / count
            s = _minimum_jerk_profile(t)
            x, y = _bezier(p0, p1, p2, p3, s)
            x += rng.gauss(0.0, self.tremor)
            y += rng.gauss(0.0, self.tremor)
            points.append(MousePoint(t * duration, x, y))

        # Overshoot-and-correct ending (common in real pointer data).
        if distance > 120 and rng.random() < 0.6:
            overshoot = rng.uniform(3.0, 14.0)
            t_end = duration
            points.append(
                MousePoint(
                    t_end + 0.03,
                    p3[0] + perp[0] * overshoot,
                    p3[1] + perp[1] * overshoot,
                )
            )
            points.append(
                MousePoint(t_end + 0.09, p3[0], p3[1])
            )
        return MouseTrajectory(tuple(points))


#: Bot motion modes.
NO_MOUSE = "no-mouse"
LINEAR = "linear"
REPLAY = "replay"
SYNTHETIC_CURVE = "synthetic-curve"

_BOT_MODES = (NO_MOUSE, LINEAR, REPLAY, SYNTHETIC_CURVE)


class BotMotionModel:
    """Generates automation-style pointer data (or none at all)."""

    def __init__(
        self,
        mode: str,
        rng: random.Random,
        replay_source: Optional[MouseTrajectory] = None,
    ) -> None:
        if mode not in _BOT_MODES:
            raise ValueError(
                f"unknown bot motion mode {mode!r}; expected {_BOT_MODES}"
            )
        self.mode = mode
        self._rng = rng
        if mode == REPLAY:
            if replay_source is None:
                # Ship with one "recorded" human movement.
                replay_source = HumanMotionModel(rng).move()
            self._replay_source = replay_source

    def move(self) -> Optional[MouseTrajectory]:
        """One bot 'movement' (None when the bot emits no mouse events)."""
        rng = self._rng
        if self.mode == NO_MOUSE:
            return None
        if self.mode == REPLAY:
            return self._replay_source
        start = (rng.uniform(0, VIEWPORT_W), rng.uniform(0, VIEWPORT_H))
        end = (rng.uniform(0, VIEWPORT_W), rng.uniform(0, VIEWPORT_H))
        if self.mode == LINEAR:
            # Straight line, perfectly uniform sampling and speed.
            count = 24
            duration = 0.4
            points = tuple(
                MousePoint(
                    index / count * duration,
                    start[0] + (end[0] - start[0]) * index / count,
                    start[1] + (end[1] - start[1]) * index / count,
                )
                for index in range(count + 1)
            )
            return MouseTrajectory(points)
        # SYNTHETIC_CURVE: a Bezier with *zero* tremor and a perfectly
        # symmetric speed profile — smooth, but inhumanly clean.
        mid = (
            (start[0] + end[0]) / 2 + 60.0,
            (start[1] + end[1]) / 2 - 60.0,
        )
        count = 30
        duration = 0.5
        points = []
        for index in range(count + 1):
            t = index / count
            x, y = _bezier(start, mid, mid, end, t)
            points.append(MousePoint(t * duration, x, y))
        return MouseTrajectory(tuple(points))


@dataclass(frozen=True)
class TrajectoryFeatures:
    """Kinematic features of one trajectory."""

    straightness: float       # path length / displacement (1.0 = line)
    speed_cv: float           # coefficient of variation of speed
    mean_speed: float
    jerk_energy: float        # mean squared speed change
    tremor_energy: float      # high-frequency perpendicular deviation
    point_count: int


def trajectory_features(trajectory: MouseTrajectory) -> TrajectoryFeatures:
    """Compute the kinematic feature bundle used by the detector."""
    points = trajectory.points
    if len(points) < 3:
        return TrajectoryFeatures(1.0, 0.0, 0.0, 0.0, 0.0, len(points))

    displacement = max(trajectory.displacement, 1e-9)
    straightness = trajectory.path_length / displacement

    speeds = []
    for a, b in zip(points, points[1:]):
        dt = max(b.time - a.time, 1e-6)
        speeds.append(math.hypot(b.x - a.x, b.y - a.y) / dt)
    mean_speed = sum(speeds) / len(speeds)
    if mean_speed > 0:
        variance = sum((s - mean_speed) ** 2 for s in speeds) / len(speeds)
        speed_cv = math.sqrt(variance) / mean_speed
    else:
        speed_cv = 0.0

    jerk = 0.0
    for s0, s1 in zip(speeds, speeds[1:]):
        jerk += (s1 - s0) ** 2
    jerk_energy = jerk / max(len(speeds) - 1, 1)

    # Tremor: mean absolute *third* difference of position.  Third
    # differences vanish for smooth low-order curves (a cubic Bezier's
    # are a tiny constant) but are dominated by motor noise in real
    # pointer data — this is what separates a too-perfect synthetic
    # curve from a human one.
    tremor = 0.0
    for a, b, c, d in zip(points, points[1:], points[2:], points[3:]):
        tremor += abs(d.x - 3 * c.x + 3 * b.x - a.x) + abs(
            d.y - 3 * c.y + 3 * b.y - a.y
        )
    tremor_energy = tremor / max(len(points) - 3, 1)

    return TrajectoryFeatures(
        straightness=straightness,
        speed_cv=speed_cv,
        mean_speed=mean_speed,
        jerk_energy=jerk_energy,
        tremor_energy=tremor_energy,
        point_count=len(points),
    )


@dataclass
class BiometricThresholds:
    """Decision thresholds for :class:`BiometricDetector`.

    A trajectory is bot-like when it is too straight, too uniform in
    speed, or too tremor-free; a *session* is bot-like when it has no
    pointer data at all or repeats identical trajectory shapes.
    """

    max_straightness_for_line: float = 1.02
    min_speed_cv: float = 0.12
    min_tremor_energy: float = 1.0
    #: Identical shape hashes within one subject before calling replay.
    replay_repeats: int = 3


class BiometricDetector:
    """Judges pointer data per subject (e.g. per session).

    Subjects are caller-chosen ids; feed each subject's trajectories
    (possibly none) and read a verdict.
    """

    name = "mouse-biometrics"

    def __init__(
        self, thresholds: BiometricThresholds = BiometricThresholds()
    ) -> None:
        self.thresholds = thresholds

    def judge_trajectory(self, trajectory: MouseTrajectory) -> List[str]:
        """Per-trajectory bot indicators (empty list = human-like)."""
        features = trajectory_features(trajectory)
        reasons = []
        if features.straightness <= (
            self.thresholds.max_straightness_for_line
        ):
            reasons.append("perfectly-straight-path")
        if features.speed_cv < self.thresholds.min_speed_cv:
            reasons.append("uniform-speed")
        if features.tremor_energy < self.thresholds.min_tremor_energy:
            reasons.append("no-motor-tremor")
        return reasons

    def judge_subject(
        self,
        subject_id: str,
        trajectories: Sequence[Optional[MouseTrajectory]],
    ) -> Verdict:
        """Judge one subject from all its (possibly absent) pointer data."""
        present = [t for t in trajectories if t is not None]
        if not present:
            return Verdict(
                subject_id=subject_id,
                detector=self.name,
                score=0.9,
                is_bot=True,
                reasons=("no-pointer-events",),
            )

        # Indicator weights: missing motor tremor is decisive on its
        # own (clean separation from human data); geometric indicators
        # alone are only suggestive — a short, confident human flick
        # can be straight and fast.
        weights = {
            "no-motor-tremor": 1.0,
            "perfectly-straight-path": 0.45,
            "uniform-speed": 0.45,
        }
        shape_counts: Dict[str, int] = {}
        total_weight = 0.0
        reasons: List[str] = []
        for trajectory in present:
            trajectory_reasons = self.judge_trajectory(trajectory)
            total_weight += min(
                sum(weights[reason] for reason in trajectory_reasons),
                1.0,
            )
            for reason in trajectory_reasons:
                if reason not in reasons:
                    reasons.append(reason)
            digest = trajectory.shape_hash()
            shape_counts[digest] = shape_counts.get(digest, 0) + 1

        max_repeats = max(shape_counts.values())
        if max_repeats >= self.thresholds.replay_repeats:
            reasons.append("replayed-trajectory")
        score = min(
            total_weight / len(present)
            + (0.8 if "replayed-trajectory" in reasons else 0.0),
            1.0,
        )
        return Verdict(
            subject_id=subject_id,
            detector=self.name,
            score=score,
            is_bot=score >= 0.5,
            reasons=tuple(reasons),
        )
