"""Client identity substrate: fingerprints, rotation, IPs, CAPTCHAs.

Models everything a website can observe about *who* is talking to it —
and everything an attacker can do to manipulate those observations:

* genuine fingerprint population and consistency rules
  (:mod:`repro.identity.fingerprint`),
* attacker fingerprint forging and rotation policies
  (:mod:`repro.identity.forge`),
* datacenter vs residential IP pools (:mod:`repro.identity.ip`),
* CAPTCHA and solver-service model (:mod:`repro.identity.captcha`).
"""

from .biometrics import (
    BiometricDetector,
    BiometricThresholds,
    BotMotionModel,
    HumanMotionModel,
    LINEAR,
    MousePoint,
    MouseTrajectory,
    NO_MOUSE,
    REPLAY,
    SYNTHETIC_CURVE,
    TrajectoryFeatures,
    trajectory_features,
)
from .captcha import CaptchaGateModel, CaptchaOutcome
from .fingerprint import (
    DESKTOP,
    MOBILE,
    Fingerprint,
    FingerprintPopulation,
    automation_artifacts,
    consistency_check,
)
from .forge import (
    MIMICRY,
    NAIVE_SPOOF,
    RAW_HEADLESS,
    BotIdentity,
    FingerprintForge,
    RotationPolicy,
)
from .ip import (
    DatacenterPool,
    HomeIpAssigner,
    IpAddress,
    ResidentialProxyPool,
    is_datacenter,
)

__all__ = [
    "BiometricDetector",
    "BiometricThresholds",
    "BotMotionModel",
    "HumanMotionModel",
    "LINEAR",
    "MousePoint",
    "MouseTrajectory",
    "NO_MOUSE",
    "REPLAY",
    "SYNTHETIC_CURVE",
    "TrajectoryFeatures",
    "trajectory_features",
    "CaptchaGateModel",
    "CaptchaOutcome",
    "DESKTOP",
    "MOBILE",
    "Fingerprint",
    "FingerprintPopulation",
    "automation_artifacts",
    "consistency_check",
    "MIMICRY",
    "NAIVE_SPOOF",
    "RAW_HEADLESS",
    "BotIdentity",
    "FingerprintForge",
    "RotationPolicy",
    "DatacenterPool",
    "HomeIpAssigner",
    "IpAddress",
    "ResidentialProxyPool",
    "is_datacenter",
]
