"""Attacker-side fingerprint forging and rotation.

The paper's attackers "continuously altered their bots' fingerprints"
and "rotated their technical features ... within an average of 5.3
hours" (Section IV-A/IV-C).  This module models the attacker side of
that arms race:

* :class:`FingerprintForge` produces bot fingerprints at three
  sophistication levels (raw headless, naive spoofing, population
  mimicry),
* :class:`RotationPolicy` decides *when* a bot swaps identity —
  either on a timer or reactively after being blocked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .fingerprint import (
    DESKTOP,
    Fingerprint,
    FingerprintPopulation,
)

#: Sophistication levels, in increasing order of evasiveness.
RAW_HEADLESS = "raw-headless"
NAIVE_SPOOF = "naive-spoof"
MIMICRY = "mimicry"

_LEVELS = (RAW_HEADLESS, NAIVE_SPOOF, MIMICRY)


class FingerprintForge:
    """Produces attacker fingerprints at a chosen sophistication level.

    * ``raw-headless`` — an instrumented headless browser left as-is:
      ``navigator.webdriver`` set, headless UA, zero plugins.  Trivially
      caught by artifact checks.
    * ``naive-spoof`` — attributes overridden independently of each
      other, which hides the automation artifacts but usually creates
      cross-attribute *inconsistencies* (e.g. Safari on Windows).
    * ``mimicry`` — fingerprints sampled from the same population model
      as genuine users: internally consistent, artifact-free, and
      indistinguishable attribute-by-attribute.  This is the level the
      paper's advanced attackers operate at.
    """

    def __init__(
        self,
        level: str,
        population: Optional[FingerprintPopulation] = None,
    ) -> None:
        if level not in _LEVELS:
            raise ValueError(
                f"unknown forge level {level!r}; expected one of {_LEVELS}"
            )
        self.level = level
        self.population = population or FingerprintPopulation()

    def forge(self, rng: random.Random) -> Fingerprint:
        """Produce one fresh attacker fingerprint."""
        if self.level == RAW_HEADLESS:
            base = self.population.sample(rng)
            return base.with_changes(
                browser="Chrome",
                os="Linux",
                device_class=DESKTOP,
                touch_points=0,
                plugins_count=0,
                webdriver=True,
                headless_ua=True,
            )
        if self.level == NAIVE_SPOOF:
            return self._naive_spoof(rng)
        return self.population.sample(rng)

    def _naive_spoof(self, rng: random.Random) -> Fingerprint:
        """Independently mutate attributes of a genuine-looking base.

        Automation artifacts are scrubbed, but because each attribute is
        mutated without regard to the others, the result frequently
        violates hardware/software co-occurrence constraints.
        """
        base = self.population.sample(rng).with_changes(
            webdriver=False, headless_ua=False
        )
        mutations = {}
        if rng.random() < 0.5:
            mutations["browser"] = rng.choice(
                ["Chrome", "Firefox", "Safari", "Edge"]
            )
        if rng.random() < 0.5:
            mutations["os"] = rng.choice(
                ["Windows", "macOS", "Linux", "Android", "iOS"]
            )
        if rng.random() < 0.4:
            mutations["touch_points"] = rng.choice([0, 5])
        if rng.random() < 0.4:
            mutations["screen_width"], mutations["screen_height"] = rng.choice(
                [(1920, 1080), (390, 844), (1366, 768), (412, 915)]
            )
        if rng.random() < 0.3:
            mutations["plugins_count"] = rng.randint(0, 7)
        return base.with_changes(**mutations)


@dataclass
class RotationPolicy:
    """When an attacker swaps fingerprint (and usually IP).

    ``mean_interval`` — if set, rotate on an exponential timer with this
    mean (seconds).  The paper measured an average of 5.3 hours between
    rotations during the Case A attack.

    ``rotate_on_block`` — if True, rotate immediately after a request is
    blocked (the reactive behaviour the paper describes: "attackers
    quickly adjusted to each new fingerprint-based rule").
    """

    mean_interval: Optional[float] = None
    rotate_on_block: bool = True

    def next_rotation_delay(self, rng: random.Random) -> Optional[float]:
        """Sample the delay until the next timed rotation (None = never)."""
        if self.mean_interval is None:
            return None
        if self.mean_interval <= 0:
            raise ValueError(
                f"mean_interval must be positive: {self.mean_interval}"
            )
        return rng.expovariate(1.0 / self.mean_interval)

    def should_rotate_after_block(self) -> bool:
        return self.rotate_on_block


class BotIdentity:
    """The mutable identity a bot presents: fingerprint + rotation state.

    Tracks when the identity was last rotated and how many rotations
    have occurred, which the Case A benchmark uses to measure the
    empirical rotation interval against the paper's 5.3 h figure.
    """

    def __init__(
        self,
        forge: FingerprintForge,
        policy: RotationPolicy,
        rng: random.Random,
        now: float = 0.0,
    ) -> None:
        self.forge = forge
        self.policy = policy
        self._rng = rng
        self.fingerprint = forge.forge(rng)
        self.created_at = now
        self.last_rotation_at = now
        self.rotations = 0
        self._next_timed_rotation = self._schedule_timed_rotation(now)

    def _schedule_timed_rotation(self, now: float) -> Optional[float]:
        delay = self.policy.next_rotation_delay(self._rng)
        return None if delay is None else now + delay

    def rotate(self, now: float) -> Fingerprint:
        """Swap to a freshly forged fingerprint."""
        self.fingerprint = self.forge.forge(self._rng)
        self.rotations += 1
        self.last_rotation_at = now
        self._next_timed_rotation = self._schedule_timed_rotation(now)
        return self.fingerprint

    def maybe_rotate(self, now: float, was_blocked: bool) -> bool:
        """Apply the rotation policy; return True if a rotation happened."""
        if was_blocked and self.policy.should_rotate_after_block():
            self.rotate(now)
            return True
        if (
            self._next_timed_rotation is not None
            and now >= self._next_timed_rotation
        ):
            self.rotate(now)
            return True
        return False
