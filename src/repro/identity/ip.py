"""IP address pools: datacenter ranges and residential proxy networks.

The paper's attackers "leverag[ed] residential proxies to rotate their
bots' IP addresses while matching the countries associated with the
mobile numbers" (Section IV-C).  Defenders can cheaply flag datacenter
ASNs, but residential proxy exits look like ordinary home connections —
which is exactly why attackers pay for them.

* :class:`IpAddress` — an observed client address with its ASN, country
  and a ``residential`` flag (what an IP-intelligence feed would say).
* :class:`DatacenterPool` — a handful of hosting ASNs; cheap, flagged.
* :class:`ResidentialProxyPool` — a large geo-distributed pool with
  per-lease pricing and country targeting; models commercial
  residential proxy services.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class IpAddress:
    """An observed client IP with the metadata an intel feed provides."""

    address: str
    country: str
    asn: int
    residential: bool

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.address


#: ASNs our IP-intelligence feed classifies as hosting/datacenter.
DATACENTER_ASNS = (14618, 16509, 15169, 8075, 24940, 16276)

#: Default country mix for residential proxy exits when the caller does
#: not request a specific country (weights sum to 1).
_DEFAULT_EXIT_MIX: Sequence = (
    ("US", 0.22),
    ("GB", 0.08),
    ("DE", 0.07),
    ("FR", 0.06),
    ("BR", 0.08),
    ("IN", 0.12),
    ("ID", 0.08),
    ("VN", 0.07),
    ("NG", 0.06),
    ("TH", 0.05),
    ("UZ", 0.04),
    ("IR", 0.04),
    ("SG", 0.03),
)


class DatacenterPool:
    """IPs from a small set of hosting ASNs, all in one country.

    The cheap option: free or near-free for an attacker running bots on
    cloud instances, but every lease is flagged ``residential=False``
    and shares an ASN with millions of other bots, so a defender can
    block the whole class with one rule.
    """

    def __init__(self, country: str = "US", cost_per_lease: float = 0.0) -> None:
        self.country = country
        self.cost_per_lease = cost_per_lease
        self.leases_granted = 0
        self.total_cost = 0.0

    def lease(self, rng: random.Random, country: Optional[str] = None) -> IpAddress:
        """Lease a datacenter IP.  Country targeting is not supported —
        the pool lives where the cloud region lives."""
        asn = rng.choice(DATACENTER_ASNS)
        address = (
            f"{rng.randint(3, 54)}.{rng.randint(0, 255)}"
            f".{rng.randint(0, 255)}.{rng.randint(1, 254)}"
        )
        self.leases_granted += 1
        self.total_cost += self.cost_per_lease
        return IpAddress(
            address=address,
            country=self.country,
            asn=asn,
            residential=False,
        )


class ResidentialProxyPool:
    """A commercial residential proxy service.

    Exits are real home connections recruited into the pool (the paper
    cites Khan et al. on user-installed residential proxies).  Each
    lease costs money — this is what makes the economic-deterrence
    analysis in Section V meaningful — and can target a country, which
    the SMS-pumping bot uses to match its exit to the destination
    mobile number's country.
    """

    def __init__(
        self,
        cost_per_lease: float = 0.004,
        exit_mix: Sequence = _DEFAULT_EXIT_MIX,
    ) -> None:
        if cost_per_lease < 0:
            raise ValueError(f"negative cost_per_lease: {cost_per_lease}")
        self.cost_per_lease = cost_per_lease
        self._exit_countries = [country for country, _ in exit_mix]
        self._exit_weights = [weight for _, weight in exit_mix]
        self.leases_granted = 0
        self.total_cost = 0.0
        self.leases_by_country: Dict[str, int] = {}

    def lease(self, rng: random.Random, country: Optional[str] = None) -> IpAddress:
        """Lease a residential exit, optionally pinned to ``country``."""
        if country is None:
            country = rng.choices(
                self._exit_countries, weights=self._exit_weights
            )[0]
        # Residential ASNs: a large, per-country space of access networks.
        asn = 7000 + (sum(ord(c) for c in country) * 37 + rng.randrange(40))
        address = (
            f"{rng.randint(60, 200)}.{rng.randint(0, 255)}"
            f".{rng.randint(0, 255)}.{rng.randint(1, 254)}"
        )
        self.leases_granted += 1
        self.total_cost += self.cost_per_lease
        self.leases_by_country[country] = (
            self.leases_by_country.get(country, 0) + 1
        )
        return IpAddress(
            address=address,
            country=country,
            asn=asn,
            residential=True,
        )


class HomeIpAssigner:
    """Assigns stable home IPs to legitimate users.

    Genuine users keep one address for a whole visit (and usually much
    longer); their country follows the site's customer geography.
    """

    def __init__(self, country_mix: Sequence = _DEFAULT_EXIT_MIX) -> None:
        self._countries = [country for country, _ in country_mix]
        self._weights = [weight for _, weight in country_mix]

    def assign(self, rng: random.Random, country: Optional[str] = None) -> IpAddress:
        if country is None:
            country = rng.choices(self._countries, weights=self._weights)[0]
        asn = 7000 + (sum(ord(c) for c in country) * 37 + rng.randrange(40))
        address = (
            f"{rng.randint(60, 200)}.{rng.randint(0, 255)}"
            f".{rng.randint(0, 255)}.{rng.randint(1, 254)}"
        )
        return IpAddress(
            address=address, country=country, asn=asn, residential=True
        )


def is_datacenter(ip: IpAddress) -> bool:
    """What an IP-reputation feed reports for this address."""
    return ip.asn in DATACENTER_ASNS or not ip.residential
