"""Browser fingerprints and a realistic fingerprint population model.

Knowledge-based bot detection (paper Section III-B) works on the
attributes a website can observe about a client: user agent, OS, screen
geometry, languages, rendering hashes (canvas / WebGL), hardware hints
and automation artifacts such as ``navigator.webdriver``.

This module defines:

* :class:`Fingerprint` — an immutable record of those attributes with a
  stable ``fingerprint_id`` hash,
* :class:`FingerprintPopulation` — a generative model of *genuine* user
  fingerprints with realistic cross-attribute correlations (Safari only
  on Apple platforms, touch only on mobile, screen sizes tied to device
  class, ...),
* :func:`consistency_check` — the inconsistency detector that flags
  fingerprints whose attributes could not co-occur on real hardware
  (the "FP-inconsistent" style check the paper cites).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, replace
from functools import cached_property
from typing import Dict, List, Optional, Tuple

# Device classes used to correlate attributes.
DESKTOP = "desktop"
MOBILE = "mobile"

#: Operating systems per device class with genuine market-like weights.
_OS_BY_CLASS: Dict[str, List[Tuple[str, float]]] = {
    DESKTOP: [("Windows", 0.62), ("macOS", 0.24), ("Linux", 0.14)],
    MOBILE: [("Android", 0.68), ("iOS", 0.32)],
}

#: Browsers valid per OS (Safari is Apple-only; Edge is not on mobile here).
_BROWSERS_BY_OS: Dict[str, List[Tuple[str, float]]] = {
    "Windows": [("Chrome", 0.66), ("Edge", 0.20), ("Firefox", 0.14)],
    "macOS": [("Safari", 0.48), ("Chrome", 0.42), ("Firefox", 0.10)],
    "Linux": [("Chrome", 0.55), ("Firefox", 0.45)],
    "Android": [("Chrome", 0.88), ("Firefox", 0.12)],
    "iOS": [("Safari", 0.85), ("Chrome", 0.15)],
}

#: Plausible screen geometries per device class.
_SCREENS_BY_CLASS: Dict[str, List[Tuple[int, int]]] = {
    DESKTOP: [
        (1920, 1080),
        (1366, 768),
        (1536, 864),
        (2560, 1440),
        (1440, 900),
        (3840, 2160),
    ],
    MOBILE: [(390, 844), (412, 915), (375, 812), (414, 896), (360, 800)],
}

_LANGUAGES = [
    "en-US",
    "en-GB",
    "fr-FR",
    "de-DE",
    "es-ES",
    "it-IT",
    "pt-BR",
    "zh-CN",
    "ja-JP",
    "ar-SA",
    "ru-RU",
    "th-TH",
]

_TIMEZONES = [
    "America/New_York",
    "Europe/London",
    "Europe/Paris",
    "Europe/Berlin",
    "Asia/Singapore",
    "Asia/Shanghai",
    "Asia/Bangkok",
    "Asia/Tokyo",
    "Asia/Dubai",
    "America/Sao_Paulo",
]

#: Browser major-version ranges current at simulation time.
_VERSION_RANGES: Dict[str, Tuple[int, int]] = {
    "Chrome": (118, 126),
    "Firefox": (118, 127),
    "Safari": (16, 17),
    "Edge": (118, 126),
}


@dataclass(frozen=True)
class Fingerprint:
    """An observable client fingerprint.

    Instances are immutable; "rotating" a fingerprint means creating a
    new instance.  ``fingerprint_id`` is a stable digest of all
    attributes, matching how real anti-bot systems key their verdicts.
    """

    browser: str
    browser_version: int
    os: str
    device_class: str
    screen_width: int
    screen_height: int
    language: str
    timezone: str
    hardware_concurrency: int
    device_memory_gb: int
    touch_points: int
    plugins_count: int
    canvas_hash: str
    webgl_hash: str
    webdriver: bool = False
    headless_ua: bool = False

    @cached_property
    def fingerprint_id(self) -> str:
        """Stable 16-hex-digit digest of every observable attribute.

        Cached per instance: the digest is requested on every request a
        client makes (the edge keys verdicts on it), and instances are
        immutable, so hashing the payload once is free speedup.
        """
        payload = "|".join(
            str(value)
            for value in (
                self.browser,
                self.browser_version,
                self.os,
                self.device_class,
                self.screen_width,
                self.screen_height,
                self.language,
                self.timezone,
                self.hardware_concurrency,
                self.device_memory_gb,
                self.touch_points,
                self.plugins_count,
                self.canvas_hash,
                self.webgl_hash,
                self.webdriver,
                self.headless_ua,
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def user_agent(self) -> str:
        """A synthetic but structurally realistic User-Agent string."""
        headless = "Headless" if self.headless_ua else ""
        return (
            f"Mozilla/5.0 ({self.os}) {headless}{self.browser}/"
            f"{self.browser_version}.0"
        )

    def with_changes(self, **changes: object) -> "Fingerprint":
        """Return a copy with the given attributes replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


def _weighted_choice(
    rng: random.Random, options: List[Tuple[str, float]]
) -> str:
    roll = rng.random()
    cumulative = 0.0
    for value, weight in options:
        cumulative += weight
        if roll < cumulative:
            return value
    return options[-1][0]


def _render_hash(rng: random.Random, kind: str, os: str, browser: str) -> str:
    """Canvas/WebGL hashes cluster by (os, browser, gpu-bucket).

    Real render hashes are shared by users with identical hardware and
    software stacks; we model a small number of gpu buckets per
    platform so genuine hashes repeat across the population.
    """
    gpu_bucket = rng.randrange(6)
    payload = f"{kind}:{os}:{browser}:{gpu_bucket}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


class FingerprintPopulation:
    """Generative model of genuine user fingerprints.

    Draws fingerprints whose attributes are *mutually consistent*: the
    browser is valid for the OS, the screen matches the device class,
    touch support matches mobility, and render hashes cluster the way
    shared hardware makes them cluster in real populations.
    """

    def __init__(self, mobile_share: float = 0.42) -> None:
        if not 0.0 <= mobile_share <= 1.0:
            raise ValueError(f"mobile_share must be in [0, 1]: {mobile_share}")
        self.mobile_share = mobile_share

    def sample(self, rng: random.Random) -> Fingerprint:
        """Draw one genuine fingerprint."""
        device_class = MOBILE if rng.random() < self.mobile_share else DESKTOP
        os = _weighted_choice(rng, _OS_BY_CLASS[device_class])
        browser = _weighted_choice(rng, _BROWSERS_BY_OS[os])
        low, high = _VERSION_RANGES[browser]
        width, height = rng.choice(_SCREENS_BY_CLASS[device_class])
        return Fingerprint(
            browser=browser,
            browser_version=rng.randint(low, high),
            os=os,
            device_class=device_class,
            screen_width=width,
            screen_height=height,
            language=rng.choice(_LANGUAGES),
            timezone=rng.choice(_TIMEZONES),
            hardware_concurrency=rng.choice(
                [4, 8, 12, 16] if device_class == DESKTOP else [4, 6, 8]
            ),
            device_memory_gb=rng.choice(
                [8, 16, 32] if device_class == DESKTOP else [4, 6, 8]
            ),
            touch_points=0 if device_class == DESKTOP else 5,
            plugins_count=rng.randint(3, 7)
            if device_class == DESKTOP
            else 0,
            canvas_hash=_render_hash(rng, "canvas", os, browser),
            webgl_hash=_render_hash(rng, "webgl", os, browser),
            webdriver=False,
            headless_ua=False,
        )


#: Inconsistency rule identifiers (returned by :func:`consistency_check`).
SAFARI_NON_APPLE = "safari-on-non-apple-os"
TOUCH_ON_DESKTOP = "touch-points-on-desktop"
NO_TOUCH_ON_MOBILE = "no-touch-on-mobile"
MOBILE_SCREEN_ON_DESKTOP = "mobile-screen-on-desktop"
DESKTOP_SCREEN_ON_MOBILE = "desktop-screen-on-mobile"
PLUGINS_ON_MOBILE = "plugins-on-mobile"
EDGE_ON_MOBILE = "edge-on-mobile"
IMPOSSIBLE_VERSION = "impossible-browser-version"

_MOBILE_OSES = {"Android", "iOS"}


def consistency_check(fingerprint: Fingerprint) -> List[str]:
    """Return the list of inconsistency rule ids the fingerprint trips.

    A genuine fingerprint from :class:`FingerprintPopulation` trips no
    rules; naively forged fingerprints (independent attribute mutation)
    usually trip at least one.  This mirrors the fingerprint-
    inconsistency detection literature the paper cites [51].
    """
    findings: List[str] = []
    if fingerprint.browser == "Safari" and fingerprint.os not in (
        "macOS",
        "iOS",
    ):
        findings.append(SAFARI_NON_APPLE)
    if fingerprint.device_class == DESKTOP and fingerprint.touch_points > 0:
        findings.append(TOUCH_ON_DESKTOP)
    if fingerprint.device_class == MOBILE and fingerprint.touch_points == 0:
        findings.append(NO_TOUCH_ON_MOBILE)
    if (
        fingerprint.device_class == DESKTOP
        and (fingerprint.screen_width, fingerprint.screen_height)
        in _SCREENS_BY_CLASS[MOBILE]
    ):
        findings.append(MOBILE_SCREEN_ON_DESKTOP)
    if (
        fingerprint.device_class == MOBILE
        and (fingerprint.screen_width, fingerprint.screen_height)
        in _SCREENS_BY_CLASS[DESKTOP]
    ):
        findings.append(DESKTOP_SCREEN_ON_MOBILE)
    if fingerprint.device_class == MOBILE and fingerprint.plugins_count > 0:
        findings.append(PLUGINS_ON_MOBILE)
    if fingerprint.browser == "Edge" and fingerprint.os in _MOBILE_OSES:
        findings.append(EDGE_ON_MOBILE)
    version_range = _VERSION_RANGES.get(fingerprint.browser)
    if version_range is not None:
        low, high = version_range
        if not low - 30 <= fingerprint.browser_version <= high + 5:
            findings.append(IMPOSSIBLE_VERSION)
    return findings


#: Automation artifact rule identifiers.
WEBDRIVER_FLAG = "navigator-webdriver-true"
HEADLESS_USER_AGENT = "headless-user-agent"
NO_PLUGINS_DESKTOP_CHROME = "zero-plugins-on-desktop-chrome"


def automation_artifacts(fingerprint: Fingerprint) -> List[str]:
    """Return automation-tooling artifacts present in the fingerprint.

    These are the classic headless-browser giveaways (paper Section
    III-B): the ``navigator.webdriver`` flag, a ``HeadlessChrome``-style
    user agent, and an empty plugin list on a desktop Chrome.
    """
    findings: List[str] = []
    if fingerprint.webdriver:
        findings.append(WEBDRIVER_FLAG)
    if fingerprint.headless_ua:
        findings.append(HEADLESS_USER_AGENT)
    if (
        fingerprint.device_class == DESKTOP
        and fingerprint.browser == "Chrome"
        and fingerprint.plugins_count == 0
    ):
        findings.append(NO_PLUGINS_DESKTOP_CHROME)
    return findings
