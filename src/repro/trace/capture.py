"""Live trace capture from a running scenario.

:class:`TraceCapture` bridges :meth:`WebLog.subscribe` to a
:class:`~repro.trace.format.TraceWriter`: attach it to a world's log
before traffic starts and every request lands in the trace file as it
is served.  Use as a context manager so the footer (count + CRC) is
written even when the scenario raises.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..web.logs import WebLog
from .format import TraceWriter


class TraceCapture:
    """Subscribes a trace writer to one (or more) live web logs."""

    def __init__(
        self, path: str, meta: Optional[Dict[str, object]] = None
    ) -> None:
        self.writer = TraceWriter(path, meta=meta)
        self._unsubscribes: list = []

    def attach(self, log: WebLog) -> Callable[[], None]:
        """Start recording ``log``; returns the unsubscribe callable."""
        unsubscribe = log.subscribe(self.writer.write)
        self._unsubscribes.append(unsubscribe)
        return unsubscribe

    def __enter__(self) -> "TraceCapture":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()
        self.writer.close()

    @property
    def entries_written(self) -> int:
        return self.writer.entries_written
