"""Offline replay of captured traces.

Replaying feeds every recorded entry through a
:class:`~repro.stream.pipeline.StreamPipeline` in original event
order — the pipeline cannot tell a replayed stream from a live one,
which is exactly what makes capture/replay a valid harness for
batch-vs-stream equivalence checks and replay-at-speed throughput
benchmarks (events/sec with the simulation cost stripped away).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Iterator, Tuple

from ..stream.pipeline import StreamPipeline, StreamReport
from ..web.logs import LogEntry, WebLog
from .format import TraceReader


@dataclass(frozen=True)
class ReplayStats:
    """Wall-clock accounting for one replay run."""

    entries: int
    elapsed_seconds: float

    @property
    def events_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.entries / self.elapsed_seconds


def read_entries(path: str) -> Iterator[LogEntry]:
    """Iterate a trace's entries (validating framing and CRC)."""
    with TraceReader(path) as reader:
        yield from reader


def rebuild_log(path: str) -> WebLog:
    """Reconstruct the full :class:`WebLog` a trace was captured from —
    the input the *batch* pipeline needs for equivalence comparison."""
    log = WebLog()
    for entry in read_entries(path):
        log.append(entry)
    return log


def replay_trace(
    path: str, pipeline: StreamPipeline
) -> Tuple[StreamReport, ReplayStats]:
    """Feed a trace through ``pipeline`` and finish it."""
    started = _time.perf_counter()
    entries = 0
    for entry in read_entries(path):
        pipeline.process(entry)
        entries += 1
    report = pipeline.finish()
    return report, ReplayStats(
        entries=entries,
        elapsed_seconds=_time.perf_counter() - started,
    )
