"""repro.trace — capture and replay of request streams.

A trace is a compact, append-only, checksummed record of every
:class:`~repro.web.logs.LogEntry` a scenario emitted.  Capturing
decouples traffic generation from detection evaluation: record a
scenario once, then replay it through :mod:`repro.stream` offline —
for detector tuning, replay-at-speed throughput benchmarks, or
batch-vs-stream equivalence checks — without re-simulating the world.

* :mod:`~repro.trace.format` — the ``RPTR`` binary format (versioned
  header, string interning, CRC32 framing) with writer and reader;
* :mod:`~repro.trace.capture` — attach a writer to a live
  :class:`~repro.web.logs.WebLog`;
* :mod:`~repro.trace.replay` — feed a trace back through a
  :class:`~repro.stream.pipeline.StreamPipeline`.
"""

from .capture import TraceCapture
from .format import (
    TRACE_MAGIC,
    TRACE_VERSION,
    TraceCorruption,
    TraceError,
    TraceReader,
    TraceWriter,
)
from .replay import ReplayStats, read_entries, rebuild_log, replay_trace

__all__ = [
    "ReplayStats",
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "TraceCapture",
    "TraceCorruption",
    "TraceError",
    "TraceReader",
    "TraceWriter",
    "read_entries",
    "rebuild_log",
    "replay_trace",
]
