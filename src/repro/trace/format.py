"""The ``RPTR`` trace file format.

Layout (all integers little-endian)::

    header   magic b"RPTR" | u16 version | u32 meta_len | meta JSON
    records  repeated, each framed as  u8 kind | payload
             kind 0x01  string definition: u32 id | u16 len | utf-8
             kind 0x02  log entry:
                        f64 time | u16 status | u8 residential
                        | 11 x u32 string ids
                        (method, path, blocked_by, outcome, ip,
                         country, fingerprint, user_agent, profile,
                         actor, actor_class)
    footer   kind 0xFF  u64 entry_count | u32 crc32

Strings are interned: each distinct string is written once as a
definition record and referenced by id afterwards — client identity
fields repeat across almost every entry, so a trace costs a few bytes
per request instead of a few hundred.  The footer CRC covers every
record byte between header and footer; a reader hitting a bad CRC,
truncated frame, or missing footer raises :class:`TraceCorruption`
instead of returning silently short data.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import BinaryIO, Dict, Iterator, List, Optional

from ..common import ClientRef
from ..web.logs import LogEntry

TRACE_MAGIC = b"RPTR"
TRACE_VERSION = 1

_KIND_STRING = 0x01
_KIND_ENTRY = 0x02
_KIND_FOOTER = 0xFF

_ENTRY_STRUCT = struct.Struct("<dHB11I")
_STRING_HEAD = struct.Struct("<IH")
_FOOTER_STRUCT = struct.Struct("<QI")
_META_LEN = struct.Struct("<I")
_VERSION_STRUCT = struct.Struct("<H")


class TraceError(Exception):
    """Base error for trace I/O."""


class TraceCorruption(TraceError):
    """The file violates the format: bad magic/CRC, truncation, ..."""


class TraceWriter:
    """Append-only trace writer.

    Use as a context manager (or call :meth:`close`) — the footer with
    the entry count and CRC is only written on close, and a trace
    without a footer reads as corrupt (by design: a crashed capture
    should not pass for a complete one).
    """

    def __init__(self, path: str, meta: Optional[Dict[str, object]] = None):
        self.path = path
        self.meta = dict(meta or {})
        self._handle: Optional[BinaryIO] = open(path, "wb")
        self._strings: Dict[str, int] = {}
        self._crc = 0
        self.entries_written = 0
        meta_blob = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        self._handle.write(TRACE_MAGIC)
        self._handle.write(_VERSION_STRUCT.pack(TRACE_VERSION))
        self._handle.write(_META_LEN.pack(len(meta_blob)))
        self._handle.write(meta_blob)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _emit(self, payload: bytes) -> None:
        assert self._handle is not None
        self._crc = zlib.crc32(payload, self._crc)
        self._handle.write(payload)

    def _intern(self, text: str) -> int:
        string_id = self._strings.get(text)
        if string_id is None:
            string_id = len(self._strings)
            self._strings[text] = string_id
            blob = text.encode("utf-8")
            if len(blob) > 0xFFFF:
                raise TraceError(
                    f"string too long for trace format: {len(blob)} bytes"
                )
            self._emit(
                bytes([_KIND_STRING])
                + _STRING_HEAD.pack(string_id, len(blob))
                + blob
            )
        return string_id

    def write(self, entry: LogEntry) -> None:
        if self._handle is None:
            raise TraceError("trace writer is closed")
        client = entry.client
        ids = [
            self._intern(text)
            for text in (
                entry.method,
                entry.path,
                entry.blocked_by,
                entry.outcome,
                client.ip_address,
                client.ip_country,
                client.fingerprint_id,
                client.user_agent,
                client.profile_id,
                client.actor,
                client.actor_class,
            )
        ]
        self._emit(
            bytes([_KIND_ENTRY])
            + _ENTRY_STRUCT.pack(
                entry.time,
                entry.status,
                1 if client.ip_residential else 0,
                *ids,
            )
        )
        self.entries_written += 1

    def close(self) -> None:
        if self._handle is None:
            return
        self._handle.write(
            bytes([_KIND_FOOTER])
            + _FOOTER_STRUCT.pack(self.entries_written, self._crc)
        )
        self._handle.close()
        self._handle = None

    @property
    def distinct_strings(self) -> int:
        return len(self._strings)


class TraceReader:
    """Streaming trace reader; iterates :class:`LogEntry` objects.

    Validates magic and version eagerly (constructor) and the CRC and
    entry count lazily (when iteration reaches the footer).
    """

    def __init__(self, path: str):
        self.path = path
        self._handle: BinaryIO = open(path, "rb")
        magic = self._handle.read(4)
        if magic != TRACE_MAGIC:
            self._handle.close()
            raise TraceCorruption(
                f"{path}: bad magic {magic!r} (expected {TRACE_MAGIC!r})"
            )
        raw_version = self._handle.read(_VERSION_STRUCT.size)
        if len(raw_version) < _VERSION_STRUCT.size:
            self._handle.close()
            raise TraceCorruption(f"{path}: truncated header")
        (self.version,) = _VERSION_STRUCT.unpack(raw_version)
        if self.version != TRACE_VERSION:
            self._handle.close()
            raise TraceError(
                f"{path}: unsupported trace version {self.version} "
                f"(this reader speaks {TRACE_VERSION})"
            )
        raw_len = self._handle.read(_META_LEN.size)
        if len(raw_len) < _META_LEN.size:
            self._handle.close()
            raise TraceCorruption(f"{path}: truncated header")
        (meta_len,) = _META_LEN.unpack(raw_len)
        meta_blob = self._handle.read(meta_len)
        if len(meta_blob) < meta_len:
            self._handle.close()
            raise TraceCorruption(f"{path}: truncated metadata")
        try:
            self.meta: Dict[str, object] = json.loads(
                meta_blob.decode("utf-8")
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._handle.close()
            raise TraceCorruption(f"{path}: bad metadata: {error}")

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None  # type: ignore[assignment]

    def _read_exact(self, size: int) -> bytes:
        blob = self._handle.read(size)
        if len(blob) < size:
            raise TraceCorruption(f"{self.path}: truncated record")
        return blob

    def __iter__(self) -> Iterator[LogEntry]:
        strings: List[str] = []
        crc = 0
        count = 0
        while True:
            kind_byte = self._handle.read(1)
            if not kind_byte:
                raise TraceCorruption(
                    f"{self.path}: missing footer (truncated capture?)"
                )
            kind = kind_byte[0]
            if kind == _KIND_FOOTER:
                expected_count, expected_crc = _FOOTER_STRUCT.unpack(
                    self._read_exact(_FOOTER_STRUCT.size)
                )
                if expected_count != count:
                    raise TraceCorruption(
                        f"{self.path}: footer says {expected_count} "
                        f"entries, read {count}"
                    )
                if expected_crc != crc:
                    raise TraceCorruption(
                        f"{self.path}: CRC mismatch "
                        f"(footer {expected_crc:#010x}, "
                        f"computed {crc:#010x})"
                    )
                return
            if kind == _KIND_STRING:
                head = self._read_exact(_STRING_HEAD.size)
                string_id, length = _STRING_HEAD.unpack(head)
                blob = self._read_exact(length)
                crc = zlib.crc32(head, zlib.crc32(kind_byte, crc))
                crc = zlib.crc32(blob, crc)
                if string_id != len(strings):
                    raise TraceCorruption(
                        f"{self.path}: out-of-order string id {string_id}"
                    )
                strings.append(blob.decode("utf-8"))
                continue
            if kind == _KIND_ENTRY:
                payload = self._read_exact(_ENTRY_STRUCT.size)
                crc = zlib.crc32(payload, zlib.crc32(kind_byte, crc))
                unpacked = _ENTRY_STRUCT.unpack(payload)
                time, status, residential = unpacked[:3]
                try:
                    (
                        method, path, blocked_by, outcome, ip, country,
                        fingerprint, user_agent, profile, actor,
                        actor_class,
                    ) = (strings[i] for i in unpacked[3:])
                except IndexError:
                    raise TraceCorruption(
                        f"{self.path}: entry references undefined string"
                    )
                count += 1
                yield LogEntry(
                    time=time,
                    method=method,
                    path=path,
                    status=status,
                    client=ClientRef(
                        ip_address=ip,
                        ip_country=country,
                        ip_residential=bool(residential),
                        fingerprint_id=fingerprint,
                        user_agent=user_agent,
                        profile_id=profile,
                        actor=actor,
                        actor_class=actor_class,
                    ),
                    blocked_by=blocked_by,
                    outcome=outcome,
                )
                continue
            raise TraceCorruption(
                f"{self.path}: unknown record kind {kind:#04x}"
            )
