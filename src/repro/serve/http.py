"""Minimal asyncio HTTP/1.1 plumbing — just enough for the service.

No third-party web framework: request parsing, a response type, and
stream read/write helpers over ``asyncio`` streams. Supports the
subset the service speaks — ``GET``/``POST``, ``Content-Length``
bodies, query strings, ``keep-alive``/``close`` — and nothing else
(no chunked transfer, no pipelining guarantees beyond sequential
request handling per connection).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qs, urlsplit

#: Don't buffer arbitrarily large bodies (ingest batches are bounded
#: by the client; 32 MiB is orders of magnitude above any sane batch).
MAX_BODY_BYTES = 32 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class BadRequest(Exception):
    """The bytes on the wire are not a request we can serve."""


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """Parse the body as JSON; :class:`BadRequest` on garbage."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"body is not valid JSON: {error}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class HttpResponse:
    """One response ready to serialize."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"

    @classmethod
    def json(cls, payload: object, status: int = 200) -> "HttpResponse":
        return cls(
            status=status,
            body=(json.dumps(payload) + "\n").encode("utf-8"),
        )

    @classmethod
    def text(cls, text: str, status: int = 200) -> "HttpResponse":
        return cls(
            status=status,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @classmethod
    def error(cls, status: int, message: str, **extra) -> "HttpResponse":
        payload = {"error": message}
        payload.update(extra)
        return cls.json(payload, status=status)

    def encode(self, keep_alive: bool = True) -> bytes:
        reason = _STATUS_TEXT.get(self.status, "Unknown")
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(self.body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("ascii") + self.body


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Read one request; ``None`` on clean EOF before a request line."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise BadRequest(f"malformed request line: {parts!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise BadRequest(f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise BadRequest("headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise BadRequest("undecodable header")
        headers[name.strip().lower()] = value.strip()
    length = 0
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise BadRequest(
                f"bad Content-Length {headers['content-length']!r}"
            )
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(f"refusing body of {length} bytes")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(
            split.query, keep_blank_values=True
        ).items()
    }
    return HttpRequest(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


async def write_response(
    writer: asyncio.StreamWriter,
    response: HttpResponse,
    keep_alive: bool = True,
) -> None:
    writer.write(response.encode(keep_alive=keep_alive))
    await writer.drain()
