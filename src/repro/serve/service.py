"""The detection service core: one pipeline, one journal, one truth.

:class:`DetectionService` owns a :class:`~repro.stream.pipeline.
StreamPipeline` with the standard adapter set plus a
:class:`~repro.graph.stream.GraphStreamAdapter` (campaign detection,
seeded from the pipeline's own velocity/volume verdicts via
``seed_feeds``), applies ingested events journal-first through a
:class:`~repro.serve.state.StateStore`, and checkpoints the pickled
core every ``checkpoint_interval`` events.

Everything in the core is deliberately plain picklable Python — the
sink records verdicts instead of touching a live
:class:`~repro.web.WebApplication`, the campaign sink is a log, and
``obs`` instrumentation lives on the *service*, never inside the
pickled core — so a snapshot is one ``pickle.dumps`` with no
detach/reattach dance, and a restored core is bit-identical to the
uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import time as _time
from typing import Dict, List, Optional, Tuple

from ..core.detection.verdict import Verdict
from ..graph.campaigns import Campaign
from ..graph.detector import GraphDetectorConfig
from ..graph.stream import GraphStreamAdapter, RecordFeed
from ..scenarios.streaming import build_stream_pipeline
from ..stream.pipeline import StreamPipeline, StreamReport
from ..trace.replay import read_entries
from ..web.logs import LogEntry
from .codec import CodecError, entry_to_dict, parse_events
from .state import StateStore

#: Default events between checkpoints (the CLI flag overrides).
DEFAULT_CHECKPOINT_INTERVAL = 2000

#: Default closed-session cadence for periodic campaign re-analysis.
DEFAULT_REFRESH_EVERY = 64


class SeqConflict(Exception):
    """Client/server event-count mismatch on an ingest batch."""

    def __init__(self, expected: int, got: int) -> None:
        super().__init__(
            f"ingest seq mismatch: client says {got} events precede "
            f"this batch, server has {expected}"
        )
        self.expected = expected
        self.got = got


class ServiceFinished(Exception):
    """Ingest/replay after :meth:`DetectionService.finish`."""


class RecordingSink:
    """Picklable verdict sink: remembers each subject's first
    bot-positive fused verdict with its event-time timestamp.

    The batch scenarios wire :class:`~repro.core.mitigation.online.
    OnlineVerdictSink` here to block live traffic; a detection service
    has no application to act on, so conviction *records* are the
    product — queryable over HTTP and replayed into mitigation by
    whoever deploys behind the service.
    """

    def __init__(self) -> None:
        self.records: List[Tuple[float, Verdict]] = []

    def handle(self, verdict: Verdict, now: float) -> None:
        self.records.append((now, verdict))


class CampaignLog:
    """Picklable ``campaign_sink``: the convicted-campaign ledger."""

    def __init__(self) -> None:
        self.records: List[Tuple[float, Campaign]] = []

    def __call__(self, campaign: Campaign, now: float) -> None:
        self.records.append((now, campaign))


def build_core(
    refresh_every: Optional[int],
    graph_config: Optional[GraphDetectorConfig],
    evict_every: int,
) -> Dict[str, object]:
    """Fresh detection core: pipeline + graph adapter + record sinks.

    The graph adapter goes *last* in the adapter list and reads the
    pipeline's own verdict accumulators through ``seed_feeds``, so by
    the time a refresh (or the final analysis) runs, every velocity and
    volume conviction emitted so far is already folded into the seeds.
    """
    sink = RecordingSink()
    campaigns = CampaignLog()
    pipeline = build_stream_pipeline(sink=sink, evict_every=evict_every)
    graph = GraphStreamAdapter(
        config=graph_config,
        refresh_every=refresh_every,
        campaign_sink=campaigns,
        seed_feeds=[
            RecordFeed(pipeline._session_verdicts),
            RecordFeed(pipeline._entity_verdicts),
        ],
    )
    pipeline.adapters.append(graph)
    return {
        "pipeline": pipeline,
        "graph": graph,
        "sink": sink,
        "campaigns": campaigns,
    }


def _verdict_dict(verdict: Verdict) -> Dict[str, object]:
    return {
        "subject_id": verdict.subject_id,
        "detector": verdict.detector,
        "score": verdict.score,
        "is_bot": verdict.is_bot,
        "reasons": list(verdict.reasons),
    }


class DetectionService:
    """Journal-first event application over a persistent pipeline.

    On construction the service restores itself from ``store``: load
    the latest pickled core (or build a fresh one), then re-apply the
    journal tail. Because the core is a deterministic function of the
    acknowledged event prefix, a service restored after ``SIGKILL``
    continues *exactly* where the uninterrupted one would be.

    Write protocol per batch: validate everything up front
    (:func:`~repro.serve.codec.parse_events`), journal + commit, then
    apply to the pipeline — so no acknowledged event can be lost and no
    half-applied batch can diverge memory from disk.
    """

    def __init__(
        self,
        store: StateStore,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        refresh_every: Optional[int] = DEFAULT_REFRESH_EVERY,
        graph_config: Optional[GraphDetectorConfig] = None,
        evict_every: int = 256,
        obs: Optional[object] = None,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1: {checkpoint_interval}"
            )
        self.store = store
        self.checkpoint_interval = checkpoint_interval
        self.obs = obs
        self.started_at = _time.time()
        snapshot = store.load_snapshot()
        if snapshot is None:
            self._seq = 0
            self._core = build_core(
                refresh_every, graph_config, evict_every
            )
            self.restored = False
        else:
            self._seq, self._core = snapshot
            self.restored = True
        replayed = 0
        for journal_seq, entry in store.journal_tail(self._seq):
            self.pipeline.process(entry)
            self._seq = journal_seq
            replayed += 1
        self.journal_replayed = replayed
        self._events_since_checkpoint = 0
        self._report: Optional[StreamReport] = None
        if obs is not None:
            obs.increment("serve.restores" if self.restored else
                          "serve.cold_starts")
            obs.set_gauge("serve.journal_replayed", float(replayed))

    # -- core accessors --------------------------------------------------------

    @property
    def pipeline(self) -> StreamPipeline:
        return self._core["pipeline"]  # type: ignore[return-value]

    @property
    def graph(self) -> GraphStreamAdapter:
        return self._core["graph"]  # type: ignore[return-value]

    @property
    def sink(self) -> RecordingSink:
        return self._core["sink"]  # type: ignore[return-value]

    @property
    def campaign_log(self) -> CampaignLog:
        return self._core["campaigns"]  # type: ignore[return-value]

    @property
    def events_ingested(self) -> int:
        """Durable event count — the seq a client resumes from."""
        return self._seq

    @property
    def finished(self) -> bool:
        return self.pipeline._finished

    def last_time(self) -> Optional[float]:
        return self.pipeline.sessionizer._last_time

    # -- ingestion -------------------------------------------------------------

    def ingest(
        self, payload: object, seq: Optional[int] = None
    ) -> int:
        """Validate, journal, apply one batch; returns events applied.

        ``seq`` (optional) is the client's idea of how many events
        precede this batch — a cheap idempotency token: after a
        reconnect the client sends its running count, and a mismatch
        (server already has these events, or lost an unacknowledged
        batch) raises :class:`SeqConflict` carrying the authoritative
        count instead of silently double-applying.
        """
        if self.finished:
            raise ServiceFinished("service already finished")
        # Seq check first: a blind retry of an already-applied batch
        # should surface as a conflict (with the count to resync to),
        # not as a confusing out-of-order error.
        if seq is not None and seq != self._seq:
            raise SeqConflict(expected=self._seq, got=seq)
        entries = parse_events(payload, self.last_time())
        if entries:
            self._apply(entries)
        return len(entries)

    def replay_file(
        self,
        path: str,
        offset: int = 0,
        limit: Optional[int] = None,
        batch: int = 512,
    ) -> Dict[str, int]:
        """Replay an RPTR trace through the service, journal-first.

        ``offset`` skips the first N trace entries (resume-after-crash:
        pass the server's durable ``events_ingested``); ``limit`` caps
        how many are applied this call, which lets callers replay in
        bounded chunks. Entries are journaled and applied in ``batch``
        groups — one SQLite commit per group, the throughput lever that
        keeps the server path within 2x of direct replay.
        """
        if self.finished:
            raise ServiceFinished("service already finished")
        if offset < 0:
            raise ValueError(f"offset must be >= 0: {offset}")
        applied = 0
        skipped = 0
        pending: List[LogEntry] = []
        for entry in read_entries(path):
            if skipped < offset:
                skipped += 1
                continue
            if limit is not None and applied >= limit:
                break
            pending.append(entry)
            applied += 1
            if len(pending) >= batch:
                self._apply(tuple(pending))
                pending.clear()
        if pending:
            self._apply(tuple(pending))
        return {
            "replayed": applied,
            "skipped": skipped,
            "events_ingested": self._seq,
        }

    def _apply(self, entries: Tuple[LogEntry, ...]) -> None:
        """Journal-then-apply one validated, time-ordered batch."""
        last = self.last_time()
        if last is not None and entries[0].time < last:
            raise CodecError(
                f"events must be time-ordered: batch starts at "
                f"{entries[0].time}, pipeline is at {last}"
            )
        self.store.append_events(self._seq + 1, entries)
        pipeline = self.pipeline
        for entry in entries:
            pipeline.process(entry)
        self._seq += len(entries)
        self._events_since_checkpoint += len(entries)
        if self.obs is not None:
            self.obs.increment("serve.events_ingested", len(entries))
        if self._events_since_checkpoint >= self.checkpoint_interval:
            self.checkpoint()

    # -- checkpoint / finish ---------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the core at the current seq; returns blob bytes."""
        size = self.store.write_snapshot(
            self._seq,
            self._core,
            created_at=_time.time(),
            derived={
                "verdicts": self.verdicts_view(),
                "campaigns": self.campaigns_view(),
                "entities": self.entities_view(),
            },
        )
        self._events_since_checkpoint = 0
        if self.obs is not None:
            self.obs.increment("serve.checkpoints")
            self.obs.set_gauge("serve.snapshot_bytes", float(size))
            self.obs.set_gauge("serve.snapshot_seq", float(self._seq))
        return size

    def finish(self) -> StreamReport:
        """Flush the pipeline, run the final graph analysis, and
        checkpoint the terminal state. Idempotent via the cached
        report; no further ingest is accepted."""
        if self._report is None:
            if self.finished:
                raise ServiceFinished(
                    "restored core is already finished"
                )
            self._report = self.pipeline.finish()
            self.checkpoint()
        return self._report

    # -- query views (all JSON-able) -------------------------------------------

    def verdicts_view(self) -> List[Dict[str, object]]:
        """Current fused verdict per subject, sorted by subject id."""
        return [_verdict_dict(v) for v in self.pipeline.fusion.fused()]

    def campaigns_view(self) -> List[Dict[str, object]]:
        """Convicted campaigns in first-conviction order.

        A campaign re-convicts at later graph refreshes as it grows;
        the view keeps the latest state under the original
        ``convicted_at``, one row per campaign id.
        """
        by_id: Dict[str, Dict[str, object]] = {}
        for convicted_at, campaign in self.campaign_log.records:
            previous = by_id.get(campaign.campaign_id)
            by_id[campaign.campaign_id] = {
                "campaign_id": campaign.campaign_id,
                "risk": campaign.risk,
                "first_seen": campaign.first_seen,
                "last_seen": campaign.last_seen,
                "sessions": campaign.session_count,
                "fingerprints": list(campaign.fingerprint_ids),
                "ips": list(campaign.ip_addresses),
                "convicted_at": (
                    previous["convicted_at"] if previous else convicted_at
                ),
            }
        return list(by_id.values())

    def entities_view(self) -> List[Dict[str, object]]:
        """Convicted ``fp:`` entities (first conviction per
        fingerprint), in conviction order."""
        seen: set = set()
        out: List[Dict[str, object]] = []
        for convicted_at, verdict in self.sink.records:
            if not verdict.subject_id.startswith("fp:"):
                continue
            fingerprint_id = verdict.subject_id[3:]
            if fingerprint_id in seen:
                continue
            seen.add(fingerprint_id)
            out.append(
                {
                    "fingerprint_id": fingerprint_id,
                    "convicted_at": convicted_at,
                    "detector": verdict.detector,
                    "score": verdict.score,
                }
            )
        return out

    def status_view(self) -> Dict[str, object]:
        return {
            "events_ingested": self._seq,
            "snapshot_seq": self.store.snapshot_seq(),
            "journal_rows": self.store.journal_rows(),
            "checkpoint_interval": self.checkpoint_interval,
            "sessions_closed": len(self.pipeline._sessions),
            "subjects_tracked": self.pipeline.fusion.subjects_tracked,
            "campaigns_convicted": len(self.campaigns_view()),
            "entities_convicted": len(self.entities_view()),
            "restored": self.restored,
            "journal_replayed": self.journal_replayed,
            "finished": self.finished,
        }

    # -- final-analysis digest -------------------------------------------------

    def analysis_summary(self) -> Dict[str, object]:
        """Canonical JSON-able dump of the *finished* run: fused
        verdicts, propagation scores, campaigns and campaign verdicts
        — everything the batch graph detector would report."""
        report = self.finish()
        analysis = self.graph.final_analysis
        assert analysis is not None  # finish() ran end_of_stream
        return {
            "events_processed": report.events_processed,
            "sessions_closed": report.sessions_closed,
            "fused": [_verdict_dict(v) for v in report.fused],
            "propagation": {
                "scores": {
                    str(node): score
                    for node, score in analysis.propagation.scores.items()
                },
                "rounds": analysis.propagation.rounds,
                "converged": analysis.propagation.converged,
            },
            "campaigns": [
                {
                    "campaign_id": campaign.campaign_id,
                    "members": [str(m) for m in campaign.members],
                    "risk": campaign.risk,
                    "first_seen": campaign.first_seen,
                    "last_seen": campaign.last_seen,
                }
                for campaign in analysis.campaigns
            ],
            "campaign_verdicts": [
                {
                    "campaign_id": cv.campaign.campaign_id,
                    "verdict": _verdict_dict(cv.verdict),
                    "member_verdicts": [
                        _verdict_dict(v) for v in cv.member_verdicts
                    ],
                }
                for cv in analysis.campaign_verdicts
            ],
        }

    def analysis_digest(self) -> str:
        """SHA-256 over the canonical analysis summary.

        ``json.dumps`` with sorted keys and ``repr``-exact floats makes
        this digest equal *iff* the analyses are bit-identical — the
        recovery-equivalence test compares exactly this string between
        a SIGKILLed-and-restored run and an uninterrupted one.
        """
        canonical = json.dumps(
            self.analysis_summary(),
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def ingest_payload(entries) -> List[Dict[str, object]]:
    """Helper for clients/tests: entries → POST /ingest JSON body."""
    return [entry_to_dict(entry) for entry in entries]
