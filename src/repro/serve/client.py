"""Stdlib HTTP client for the detection service.

``urllib``-based, no dependencies — the counterpart tests, benchmarks
and the CI smoke job drive the server with. Every JSON endpoint gets a
typed convenience method; errors come back as
:class:`ServeClientError` carrying the HTTP status and the decoded
error payload (including ``events_ingested`` on a 409 seq conflict,
which is how a reconnecting client resynchronises).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple


class ServeClientError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: object) -> None:
        message = (
            payload.get("error", str(payload))
            if isinstance(payload, dict)
            else str(payload)
        )
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServeClient:
    """One service endpoint, e.g. ``ServeClient("http://127.0.0.1:8940")``."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
    ) -> Tuple[int, object]:
        """One round trip; JSON bodies both ways, text passed through."""
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"}
            if body is not None
            else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, self._decode(
                    response.read(),
                    response.headers.get("Content-Type", ""),
                )
        except urllib.error.HTTPError as error:
            decoded = self._decode(
                error.read(), error.headers.get("Content-Type", "")
            )
            raise ServeClientError(error.code, decoded)

    @staticmethod
    def _decode(body: bytes, content_type: str) -> object:
        text = body.decode("utf-8")
        if content_type.startswith("application/json"):
            return json.loads(text)
        return text

    def get(self, path: str) -> object:
        return self.request("GET", path)[1]

    def post(self, path: str, payload: Optional[object] = None) -> object:
        return self.request("POST", path, payload)[1]

    # -- readiness -------------------------------------------------------------

    def wait_ready(self, deadline_seconds: float = 15.0) -> Dict:
        """Poll ``/healthz`` until the server answers (or time out)."""
        deadline = time.monotonic() + deadline_seconds
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (urllib.error.URLError, ConnectionError,
                    OSError) as error:
                last_error = error
                time.sleep(0.05)
        raise TimeoutError(
            f"server at {self.base_url} not ready after "
            f"{deadline_seconds}s: {last_error}"
        )

    # -- endpoints -------------------------------------------------------------

    def healthz(self) -> Dict:
        return self.get("/healthz")  # type: ignore[return-value]

    def status(self) -> Dict:
        return self.get("/status")  # type: ignore[return-value]

    def metrics(self) -> str:
        return self.get("/metrics")  # type: ignore[return-value]

    def ingest(
        self, events: List[Dict], seq: Optional[int] = None
    ) -> Dict:
        payload: Dict[str, object] = {"events": events}
        if seq is not None:
            payload["seq"] = seq
        return self.post("/ingest", payload)  # type: ignore[return-value]

    def replay(
        self,
        path: str,
        offset: int = 0,
        limit: Optional[int] = None,
        batch: Optional[int] = None,
    ) -> Dict:
        payload: Dict[str, object] = {"path": path, "offset": offset}
        if limit is not None:
            payload["limit"] = limit
        if batch is not None:
            payload["batch"] = batch
        return self.post("/replay", payload)  # type: ignore[return-value]

    def verdicts(self, bot_only: bool = False) -> List[Dict]:
        suffix = "?bot=1" if bot_only else ""
        return self.get(f"/verdicts{suffix}")["verdicts"]  # type: ignore[index]

    def campaigns(self) -> List[Dict]:
        return self.get("/campaigns")["campaigns"]  # type: ignore[index]

    def entities(self) -> List[Dict]:
        return self.get("/entities")["entities"]  # type: ignore[index]

    def analysis(self) -> Dict:
        return self.get("/analysis")  # type: ignore[return-value]

    def snapshot(self) -> Dict:
        return self.post("/snapshot")  # type: ignore[return-value]

    def finish(self) -> Dict:
        return self.post("/finish")  # type: ignore[return-value]

    def shutdown(self) -> Dict:
        return self.post("/shutdown")  # type: ignore[return-value]
