"""``repro.serve`` — the long-running detection service.

The operational layer the paper's closing argument calls for: the
streaming pipeline (:mod:`repro.stream`) plus incremental campaign
detection (:mod:`repro.graph.stream`) behind a stdlib/asyncio HTTP
API, with journal-first SQLite persistence so a killed server restores
to a state whose subsequent verdicts are bit-identical to an
uninterrupted run.

Layers, bottom up:

* :mod:`~repro.serve.codec` — LogEntry ⇄ JSON/row wire format;
* :mod:`~repro.serve.state` — SQLite snapshot + write-ahead journal;
* :mod:`~repro.serve.service` — journal-first event application over
  a persistent pipeline core, checkpointing, final-analysis digest;
* :mod:`~repro.serve.http` / :mod:`~repro.serve.app` — minimal
  HTTP/1.1 plumbing and the route table;
* :mod:`~repro.serve.server` — socket/signal lifecycle
  (``repro serve`` lands here);
* :mod:`~repro.serve.client` — stdlib client for tests/benchmarks/CI.
"""

from .codec import (
    ENTRY_FIELDS,
    CodecError,
    entry_from_dict,
    entry_to_dict,
    parse_events,
)
from .client import ServeClient, ServeClientError
from .server import DetectionServer, run_server
from .service import (
    DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_REFRESH_EVERY,
    DetectionService,
    SeqConflict,
    ServiceFinished,
    ingest_payload,
)
from .state import StateStore, StateStoreError

__all__ = [
    "ENTRY_FIELDS",
    "CodecError",
    "entry_from_dict",
    "entry_to_dict",
    "parse_events",
    "ServeClient",
    "ServeClientError",
    "DetectionServer",
    "run_server",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "DEFAULT_REFRESH_EVERY",
    "DetectionService",
    "SeqConflict",
    "ServiceFinished",
    "ingest_payload",
    "StateStore",
    "StateStoreError",
]
