"""Persistent service state: SQLite snapshot + write-ahead journal.

Durability model (classic checkpoint/WAL):

* every acknowledged event is first appended to the ``journal`` table
  and **committed** — an ack therefore promises the event survives a
  ``SIGKILL``;
* every ``checkpoint_interval`` events the service pickles its full
  in-memory detection core (pipeline, adapters, graph, fusion — all
  pure deterministic Python state) into the ``snapshots`` table and
  truncates the journal prefix the snapshot now covers;
* restore = load latest snapshot, then re-apply the journal tail
  through the restored pipeline.  Because the pipeline is a
  deterministic function of its event prefix and pickling preserves
  floats, dict order and shared references exactly, the restored
  process is *bit-identical* to an uninterrupted run over the same
  acknowledged prefix — the recovery-equivalence test pins this.

Alongside the authoritative blob+journal, checkpoints also write the
queryable derived tables (``verdicts``, ``campaigns``, ``entities``)
so an operator can inspect the last checkpointed detection state with
plain SQL while the server is down.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
from typing import Dict, List, Optional, Tuple

from ..web.logs import LogEntry
from .codec import ENTRY_FIELDS, entry_from_row, entry_to_row

#: Bumped when the on-disk schema changes.
SCHEMA_VERSION = 1

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS journal (
    seq INTEGER PRIMARY KEY,
    {", ".join(f"{name} {'REAL' if name == 'time' else 'INTEGER' if name in ('status', 'ip_residential') else 'TEXT'} NOT NULL" for name in ENTRY_FIELDS)}
);
CREATE TABLE IF NOT EXISTS snapshots (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    seq        INTEGER NOT NULL,
    created_at REAL NOT NULL,
    pipeline   BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS verdicts (
    subject_id TEXT PRIMARY KEY,
    detector   TEXT NOT NULL,
    score      REAL NOT NULL,
    is_bot     INTEGER NOT NULL,
    reasons    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id  TEXT PRIMARY KEY,
    risk         REAL NOT NULL,
    first_seen   REAL NOT NULL,
    last_seen    REAL NOT NULL,
    sessions     INTEGER NOT NULL,
    fingerprints TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entities (
    fingerprint_id TEXT PRIMARY KEY,
    convicted_at   REAL NOT NULL,
    detector       TEXT NOT NULL,
    score          REAL NOT NULL
);
"""


class StateStoreError(Exception):
    """The database is unusable (wrong schema version, corrupt blob)."""


class StateStore:
    """One SQLite database holding a detection service's durable state.

    All writes happen on the event-loop thread; SQLite's default
    serialized mode plus one connection per store keeps this simple.
    ``commit`` batching is the caller's choice: :meth:`append_events`
    commits by default (ingest-path durability), but bulk replay may
    pass ``commit=False`` and :meth:`commit` every N events — the
    throughput/durability dial the benchmark exercises.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        # check_same_thread off: access is already serialized (every
        # caller funnels through the single service/event-loop thread),
        # but the *constructing* thread may differ from the serving one
        # (test harnesses build the server, then run it on a thread).
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        existing = self.get_meta("schema_version")
        if existing is None:
            self.set_meta("schema_version", str(SCHEMA_VERSION))
        elif int(existing) != SCHEMA_VERSION:
            raise StateStoreError(
                f"{path}: schema version {existing} "
                f"(this build speaks {SCHEMA_VERSION})"
            )
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- meta -----------------------------------------------------------------

    def get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    # -- journal --------------------------------------------------------------

    def append_events(
        self,
        first_seq: int,
        entries: Tuple[LogEntry, ...],
        commit: bool = True,
    ) -> None:
        """Append ``entries`` as seq ``first_seq..first_seq+n-1``."""
        self._conn.executemany(
            f"INSERT INTO journal (seq, {', '.join(ENTRY_FIELDS)}) "
            f"VALUES ({', '.join('?' * (len(ENTRY_FIELDS) + 1))})",
            [
                (first_seq + offset,) + entry_to_row(entry)
                for offset, entry in enumerate(entries)
            ],
        )
        if commit:
            self._conn.commit()

    def commit(self) -> None:
        self._conn.commit()

    def journal_tail(self, after_seq: int) -> List[Tuple[int, LogEntry]]:
        """Every journaled ``(seq, entry)`` with ``seq > after_seq``."""
        rows = self._conn.execute(
            f"SELECT seq, {', '.join(ENTRY_FIELDS)} FROM journal "
            "WHERE seq > ? ORDER BY seq",
            (after_seq,),
        ).fetchall()
        return [(row[0], entry_from_row(row[1:])) for row in rows]

    def durable_seq(self) -> int:
        """Highest committed event seq (snapshot floor included)."""
        row = self._conn.execute("SELECT MAX(seq) FROM journal").fetchone()
        if row[0] is not None:
            return int(row[0])
        return self.snapshot_seq()

    def journal_rows(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM journal"
        ).fetchone()[0]

    # -- snapshots ------------------------------------------------------------

    def snapshot_seq(self) -> int:
        """Event seq the latest snapshot covers (0 = no snapshot)."""
        row = self._conn.execute(
            "SELECT seq FROM snapshots ORDER BY id DESC LIMIT 1"
        ).fetchone()
        return int(row[0]) if row else 0

    def write_snapshot(
        self,
        seq: int,
        core: object,
        created_at: float,
        derived: Optional[Dict[str, object]] = None,
    ) -> int:
        """Checkpoint: persist the pickled core at ``seq``, drop the
        journal prefix it covers and any older snapshot, and rewrite
        the derived query tables — one atomic transaction, so a kill
        mid-checkpoint leaves the previous checkpoint intact."""
        blob = pickle.dumps(core, protocol=pickle.HIGHEST_PROTOCOL)
        self._conn.execute(
            "INSERT INTO snapshots (seq, created_at, pipeline) "
            "VALUES (?, ?, ?)",
            (seq, created_at, sqlite3.Binary(blob)),
        )
        self._conn.execute(
            "DELETE FROM snapshots WHERE id NOT IN "
            "(SELECT id FROM snapshots ORDER BY id DESC LIMIT 1)"
        )
        self._conn.execute("DELETE FROM journal WHERE seq <= ?", (seq,))
        if derived is not None:
            self._write_derived(derived)
        self._conn.commit()
        return len(blob)

    def load_snapshot(self) -> Optional[Tuple[int, object]]:
        """Latest ``(seq, unpickled core)``; ``None`` if never
        checkpointed."""
        row = self._conn.execute(
            "SELECT seq, pipeline FROM snapshots ORDER BY id DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        try:
            return int(row[0]), pickle.loads(row[1])
        except Exception as error:  # corrupt blob: fail loudly
            raise StateStoreError(
                f"{self.path}: cannot unpickle snapshot: {error}"
            )

    # -- derived query tables --------------------------------------------------

    def _write_derived(self, derived: Dict[str, object]) -> None:
        self._conn.execute("DELETE FROM verdicts")
        self._conn.executemany(
            "INSERT INTO verdicts VALUES (?, ?, ?, ?, ?)",
            [
                (
                    v["subject_id"], v["detector"], v["score"],
                    int(v["is_bot"]), json.dumps(v["reasons"]),
                )
                for v in derived.get("verdicts", [])
            ],
        )
        self._conn.execute("DELETE FROM campaigns")
        self._conn.executemany(
            "INSERT INTO campaigns VALUES (?, ?, ?, ?, ?, ?)",
            [
                (
                    c["campaign_id"], c["risk"], c["first_seen"],
                    c["last_seen"], c["sessions"],
                    json.dumps(c["fingerprints"]),
                )
                for c in derived.get("campaigns", [])
            ],
        )
        self._conn.execute("DELETE FROM entities")
        self._conn.executemany(
            "INSERT INTO entities VALUES (?, ?, ?, ?)",
            [
                (
                    e["fingerprint_id"], e["convicted_at"],
                    e["detector"], e["score"],
                )
                for e in derived.get("entities", [])
            ],
        )

    def read_derived(self) -> Dict[str, List[Dict[str, object]]]:
        """The checkpointed derived tables, JSON-able."""
        verdicts = [
            {
                "subject_id": row[0], "detector": row[1],
                "score": row[2], "is_bot": bool(row[3]),
                "reasons": json.loads(row[4]),
            }
            for row in self._conn.execute(
                "SELECT * FROM verdicts ORDER BY subject_id"
            )
        ]
        campaigns = [
            {
                "campaign_id": row[0], "risk": row[1],
                "first_seen": row[2], "last_seen": row[3],
                "sessions": row[4], "fingerprints": json.loads(row[5]),
            }
            for row in self._conn.execute(
                "SELECT * FROM campaigns ORDER BY campaign_id"
            )
        ]
        entities = [
            {
                "fingerprint_id": row[0], "convicted_at": row[1],
                "detector": row[2], "score": row[3],
            }
            for row in self._conn.execute(
                "SELECT * FROM entities ORDER BY fingerprint_id"
            )
        ]
        return {
            "verdicts": verdicts,
            "campaigns": campaigns,
            "entities": entities,
        }
