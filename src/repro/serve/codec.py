"""Wire codec: :class:`~repro.web.logs.LogEntry` ⇄ JSON-able dicts.

The ingest endpoint, the SQLite journal and the query responses all
speak the same flat field set — exactly the eleven strings plus three
scalars the RPTR trace format serialises, so a trace entry, an ingested
event and a journaled row are interchangeable representations of the
same request.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..common import ClientRef
from ..web.logs import LogEntry

#: Journal/ingest column order (stable: the journal schema pins it).
ENTRY_FIELDS: Tuple[str, ...] = (
    "time",
    "method",
    "path",
    "status",
    "blocked_by",
    "outcome",
    "ip_address",
    "ip_country",
    "ip_residential",
    "fingerprint_id",
    "user_agent",
    "profile_id",
    "actor",
    "actor_class",
)

_REQUIRED = ("time", "method", "path", "status", "ip_address",
             "fingerprint_id")


class CodecError(ValueError):
    """An ingested event dict does not describe a valid log entry."""


def entry_to_dict(entry: LogEntry) -> Dict[str, object]:
    """Flatten one entry (client fields inlined) for JSON transport."""
    client = entry.client
    return {
        "time": entry.time,
        "method": entry.method,
        "path": entry.path,
        "status": entry.status,
        "blocked_by": entry.blocked_by,
        "outcome": entry.outcome,
        "ip_address": client.ip_address,
        "ip_country": client.ip_country,
        "ip_residential": client.ip_residential,
        "fingerprint_id": client.fingerprint_id,
        "user_agent": client.user_agent,
        "profile_id": client.profile_id,
        "actor": client.actor,
        "actor_class": client.actor_class,
    }


def entry_from_dict(data: Mapping[str, object]) -> LogEntry:
    """Parse one flat event dict; raises :class:`CodecError` on bad
    shape so the ingest endpoint can reject the batch *before* any of
    it touches pipeline or journal."""
    if not isinstance(data, Mapping):
        raise CodecError(f"event must be an object, got {type(data).__name__}")
    missing = [name for name in _REQUIRED if name not in data]
    if missing:
        raise CodecError(f"event missing required fields: {missing}")
    try:
        return LogEntry(
            time=float(data["time"]),  # type: ignore[arg-type]
            method=str(data["method"]),
            path=str(data["path"]),
            status=int(data["status"]),  # type: ignore[arg-type]
            client=ClientRef(
                ip_address=str(data["ip_address"]),
                ip_country=str(data.get("ip_country", "")),
                ip_residential=bool(data.get("ip_residential", False)),
                fingerprint_id=str(data["fingerprint_id"]),
                user_agent=str(data.get("user_agent", "")),
                profile_id=str(data.get("profile_id", "")),
                actor=str(data.get("actor", "")),
                actor_class=str(data.get("actor_class", "legit")),
            ),
            blocked_by=str(data.get("blocked_by", "")),
            outcome=str(data.get("outcome", "")),
        )
    except (TypeError, ValueError) as error:
        raise CodecError(f"bad event field: {error}")


def entry_to_row(entry: LogEntry) -> Tuple[object, ...]:
    """Journal row in :data:`ENTRY_FIELDS` order."""
    data = entry_to_dict(entry)
    return tuple(
        int(data[name]) if name == "ip_residential" else data[name]
        for name in ENTRY_FIELDS
    )


def entry_from_row(row: Sequence[object]) -> LogEntry:
    """Rebuild an entry from a journal row (inverse of
    :func:`entry_to_row`)."""
    data = dict(zip(ENTRY_FIELDS, row))
    data["ip_residential"] = bool(data["ip_residential"])
    return entry_from_dict(data)


def parse_events(
    payload: object, last_time: Optional[float]
) -> Tuple[LogEntry, ...]:
    """Validate a full ingest batch up front.

    Checks shape *and* time-ordering (against ``last_time``, the
    pipeline's latest observed event time, and within the batch) so
    the caller can journal-then-apply knowing neither step can fail
    halfway — a partially applied batch would diverge the in-memory
    pipeline from its own journal.
    """
    if not isinstance(payload, Sequence) or isinstance(payload, (str, bytes)):
        raise CodecError("events must be a list of event objects")
    entries = tuple(entry_from_dict(item) for item in payload)
    previous = last_time
    for index, entry in enumerate(entries):
        if previous is not None and entry.time < previous:
            raise CodecError(
                f"events must be time-ordered: event {index} at "
                f"{entry.time} arrives before {previous}"
            )
        previous = entry.time
    return entries
