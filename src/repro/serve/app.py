"""HTTP routes → :class:`~repro.serve.service.DetectionService` calls.

The application is a plain synchronous dispatcher: the service core is
single-threaded by design (determinism is the product), so handlers
run inline on the event loop — one request at a time mutates state,
which is exactly the ordering guarantee the journal needs.

Routes:

==========  =============  ================================================
``GET``     ``/healthz``   liveness probe (no service state touched)
``GET``     ``/metrics``   Prometheus exposition of the obs registry
``GET``     ``/status``    durable seq, snapshot seq, counts
``GET``     ``/verdicts``  fused verdict per subject (``?bot=1`` filters)
``GET``     ``/campaigns`` convicted campaigns so far
``GET``     ``/entities``  convicted ``fp:`` entities so far
``GET``     ``/analysis``  full final-analysis summary (after finish)
``POST``    ``/ingest``    ``{"events": [...], "seq": N?}`` — journal+apply
``POST``    ``/replay``    ``{"path", "offset"?, "limit"?}`` — trace replay
``POST``    ``/snapshot``  force a checkpoint now
``POST``    ``/finish``    end-of-stream: final analysis + digest
``POST``    ``/shutdown``  checkpoint and stop the server
==========  =============  ================================================

Error mapping: malformed JSON / bad events / out-of-order times / trace
corruption → 400; ingest seq mismatch and ingest-after-finish → 409
(with the authoritative ``events_ingested`` so clients resync); unknown
path → 404; wrong method → 405.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, Optional, Tuple

from ..obs.core import ObsRegistry
from ..obs.report import render_prometheus
from ..trace.format import TraceCorruption
from .codec import CodecError
from .http import BadRequest, HttpRequest, HttpResponse
from .service import DetectionService, SeqConflict, ServiceFinished

Handler = Callable[[HttpRequest], HttpResponse]


class ServeApp:
    """Route table plus the error-to-status mapping."""

    def __init__(
        self,
        service: DetectionService,
        obs: Optional[ObsRegistry] = None,
        on_shutdown: Optional[Callable[[], None]] = None,
    ) -> None:
        self.service = service
        self.obs = obs if obs is not None else service.obs
        self.on_shutdown = on_shutdown
        self._routes: Dict[Tuple[str, str], Handler] = {
            ("GET", "/healthz"): self._healthz,
            ("GET", "/metrics"): self._metrics,
            ("GET", "/status"): self._status,
            ("GET", "/verdicts"): self._verdicts,
            ("GET", "/campaigns"): self._campaigns,
            ("GET", "/entities"): self._entities,
            ("GET", "/analysis"): self._analysis,
            ("POST", "/ingest"): self._ingest,
            ("POST", "/replay"): self._replay,
            ("POST", "/snapshot"): self._snapshot,
            ("POST", "/finish"): self._finish,
            ("POST", "/shutdown"): self._shutdown,
        }

    # -- dispatch --------------------------------------------------------------

    def handle(self, request: HttpRequest) -> HttpResponse:
        if self.obs is not None:
            self.obs.increment("serve.http.requests")
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            known_paths = {path for _, path in self._routes}
            if request.path in known_paths:
                return HttpResponse.error(
                    405, f"method {request.method} not allowed "
                    f"on {request.path}"
                )
            return HttpResponse.error(404, f"no route {request.path}")
        try:
            return handler(request)
        except (BadRequest, CodecError, TraceCorruption,
                ValueError) as error:
            if self.obs is not None:
                self.obs.increment("serve.http.bad_requests")
            return HttpResponse.error(400, str(error))
        except FileNotFoundError as error:
            return HttpResponse.error(400, f"no such file: {error}")
        except SeqConflict as error:
            return HttpResponse.error(
                409, str(error), events_ingested=error.expected
            )
        except ServiceFinished as error:
            return HttpResponse.error(
                409,
                str(error),
                events_ingested=self.service.events_ingested,
                finished=True,
            )

    # -- handlers --------------------------------------------------------------

    def _healthz(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json(
            {
                "status": "ok",
                "events_ingested": self.service.events_ingested,
                "finished": self.service.finished,
            }
        )

    def _metrics(self, request: HttpRequest) -> HttpResponse:
        if self.obs is None:
            return HttpResponse.text("")
        self._refresh_gauges()
        return HttpResponse.text(render_prometheus(self.obs))

    def _refresh_gauges(self) -> None:
        obs = self.obs
        service = self.service
        obs.set_gauge(
            "serve.events_total", float(service.events_ingested)
        )
        obs.set_gauge(
            "serve.sessions_closed",
            float(len(service.pipeline._sessions)),
        )
        obs.set_gauge(
            "serve.subjects_tracked",
            float(service.pipeline.fusion.subjects_tracked),
        )
        obs.set_gauge(
            "serve.campaigns_convicted",
            float(len(service.campaign_log.records)),
        )
        obs.set_gauge(
            "serve.uptime_seconds",
            _time.time() - service.started_at,
        )

    def _status(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json(self.service.status_view())

    def _verdicts(self, request: HttpRequest) -> HttpResponse:
        verdicts = self.service.verdicts_view()
        if request.query.get("bot") in ("1", "true"):
            verdicts = [v for v in verdicts if v["is_bot"]]
        subject = request.query.get("subject")
        if subject is not None:
            verdicts = [v for v in verdicts if v["subject_id"] == subject]
        return HttpResponse.json({"verdicts": verdicts})

    def _campaigns(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json(
            {"campaigns": self.service.campaigns_view()}
        )

    def _entities(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json(
            {"entities": self.service.entities_view()}
        )

    def _analysis(self, request: HttpRequest) -> HttpResponse:
        if not self.service.finished:
            return HttpResponse.error(
                409, "analysis is available after POST /finish"
            )
        return HttpResponse.json(self.service.analysis_summary())

    def _ingest(self, request: HttpRequest) -> HttpResponse:
        payload = request.json()
        if not isinstance(payload, dict) or "events" not in payload:
            raise BadRequest('body must be {"events": [...], "seq"?: N}')
        seq = payload.get("seq")
        if seq is not None and not isinstance(seq, int):
            raise BadRequest(f'"seq" must be an integer, got {seq!r}')
        applied = self.service.ingest(payload["events"], seq=seq)
        return HttpResponse.json(
            {
                "applied": applied,
                "events_ingested": self.service.events_ingested,
            }
        )

    def _replay(self, request: HttpRequest) -> HttpResponse:
        payload = request.json()
        if not isinstance(payload, dict) or "path" not in payload:
            raise BadRequest(
                'body must be {"path": "...", "offset"?: N, "limit"?: N}'
            )
        limit = payload.get("limit")
        result = self.service.replay_file(
            str(payload["path"]),
            offset=int(payload.get("offset", 0)),
            limit=int(limit) if limit is not None else None,
            batch=int(payload.get("batch", 512)),
        )
        return HttpResponse.json(result)

    def _snapshot(self, request: HttpRequest) -> HttpResponse:
        size = self.service.checkpoint()
        return HttpResponse.json(
            {
                "snapshot_bytes": size,
                "snapshot_seq": self.service.events_ingested,
            }
        )

    def _finish(self, request: HttpRequest) -> HttpResponse:
        report = self.service.finish()
        return HttpResponse.json(
            {
                "events_processed": report.events_processed,
                "sessions_closed": report.sessions_closed,
                "campaigns_convicted": len(
                    self.service.campaigns_view()
                ),
                "entities_convicted": len(self.service.entities_view()),
                "digest": self.service.analysis_digest(),
            }
        )

    def _shutdown(self, request: HttpRequest) -> HttpResponse:
        if not self.service.finished:
            self.service.checkpoint()
        if self.on_shutdown is not None:
            self.on_shutdown()
        return HttpResponse.json(
            {
                "status": "shutting down",
                "events_ingested": self.service.events_ingested,
            }
        )
