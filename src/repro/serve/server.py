"""Server lifecycle: sockets, signals, graceful shutdown.

:class:`DetectionServer` glues the pieces together — a
:class:`~repro.serve.state.StateStore` on the ``--db`` path, a
:class:`~repro.serve.service.DetectionService` restored from it, the
:class:`~repro.serve.app.ServeApp` router — and runs a sequential
HTTP/1.1 accept loop on asyncio streams. Handlers execute inline on
the loop (the core is single-threaded on purpose), so requests are
applied in arrival order and the journal's ordering guarantee holds
without locks.

On startup the server prints one machine-parseable line::

    repro-serve listening on http://127.0.0.1:43621

which is how tests and the CI smoke job discover the real port when
launched with ``--port 0``. ``SIGINT``/``SIGTERM`` and ``POST
/shutdown`` all trigger the same graceful path: checkpoint, stop
accepting, close the store. A ``SIGKILL`` skips all of that — which
is exactly the case the snapshot+journal design exists for.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Optional

from ..obs.core import ObsRegistry
from .app import ServeApp
from .http import (
    BadRequest,
    HttpResponse,
    read_request,
    write_response,
)
from .service import (
    DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_REFRESH_EVERY,
    DetectionService,
)
from .state import StateStore


class DetectionServer:
    """One store + service + router bound to a listening socket."""

    def __init__(
        self,
        db_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        refresh_every: Optional[int] = DEFAULT_REFRESH_EVERY,
        obs: Optional[ObsRegistry] = None,
        quiet: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.quiet = quiet
        self.obs = obs if obs is not None else ObsRegistry()
        self.store = StateStore(db_path)
        self.service = DetectionService(
            self.store,
            checkpoint_interval=checkpoint_interval,
            refresh_every=refresh_every,
            obs=self.obs,
        )
        self.app = ServeApp(
            self.service, obs=self.obs, on_shutdown=self.request_shutdown
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None

    # -- lifecycle -------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Safe from handlers and signal callbacks alike."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def start(self) -> int:
        """Bind and start accepting; returns the real port."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._log(
            f"repro-serve listening on http://{self.host}:{self.port}"
        )
        if self.service.restored:
            self._log(
                f"restored snapshot seq={self.store.snapshot_seq()} "
                f"+ {self.service.journal_replayed} journaled events "
                f"-> {self.service.events_ingested} total"
            )
        return self.port

    async def serve(self, replay: Optional[str] = None) -> None:
        """Start, optionally bootstrap-replay a trace, serve until
        shutdown is requested, then tear down gracefully."""
        await self.start()
        try:
            if replay is not None:
                # Synchronous on the loop: bootstrap replay finishes
                # before any queued request is handled, so queries
                # always see a consistent prefix.
                offset = self.service.events_ingested
                result = self.service.replay_file(replay, offset=offset)
                self._log(
                    f"replayed {result['replayed']} events from "
                    f"{replay} (skipped {result['skipped']} already "
                    f"ingested)"
                )
            assert self._shutdown is not None
            await self._shutdown.wait()
        finally:
            await self._close()

    async def _close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if not self.service.finished:
            self.service.checkpoint()
        self.store.close()
        self._log(
            f"repro-serve stopped at seq "
            f"{self.service.events_ingested} (checkpointed)"
        )

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest as error:
                    await write_response(
                        writer,
                        HttpResponse.error(400, str(error)),
                        keep_alive=False,
                    )
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                try:
                    response = self.app.handle(request)
                except Exception as error:  # noqa: BLE001 — 500 backstop
                    response = HttpResponse.error(
                        500, f"{type(error).__name__}: {error}"
                    )
                keep = request.keep_alive
                try:
                    await write_response(
                        writer, response, keep_alive=keep
                    )
                except ConnectionError:
                    return
                if not keep:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(message, flush=True)


def run_server(
    db_path: str,
    host: str = "127.0.0.1",
    port: int = 0,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    refresh_every: Optional[int] = DEFAULT_REFRESH_EVERY,
    replay: Optional[str] = None,
    quiet: bool = False,
) -> int:
    """Blocking entrypoint for ``repro serve``; returns an exit code."""
    server = DetectionServer(
        db_path,
        host=host,
        port=port,
        checkpoint_interval=checkpoint_interval,
        refresh_every=refresh_every,
        quiet=quiet,
    )

    async def main() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, server.request_shutdown
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-unix loops: ctrl-C still raises
        await server.serve(replay=replay)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    return 0
