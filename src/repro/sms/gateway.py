"""The application's SMS gateway.

Sends OTPs, boarding passes and notifications through the primary
operator, settling the telco money flow for every delivered message.
Models the two operational failure modes the paper highlights
(Section II-B):

* the application owner pays per message, so pumped traffic is a direct
  financial loss, and
* the contract carries a weekly quota — once an attack exhausts it,
  *legitimate* users can no longer receive OTPs or boarding passes.

The gateway also supports feature toggles (the Case C mitigation was
"the SMS option was then temporarily removed").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Set

from ..common import ClientRef
from ..sim.clock import Clock, WEEK
from ..sim.metrics import MetricsRecorder
from .numbers import PhoneNumber
from .telco import Settlement, TelcoNetwork

# Message kinds.
OTP = "otp"
BOARDING_PASS = "boarding-pass"
NOTIFICATION = "notification"

KINDS = (OTP, BOARDING_PASS, NOTIFICATION)

# Rejection reasons.
REJECT_FEATURE_DISABLED = "feature-disabled"
REJECT_QUOTA_EXHAUSTED = "quota-exhausted"
REJECT_UNKNOWN_KIND = "unknown-kind"


@dataclass(frozen=True)
class SmsRecord:
    """One SMS send attempt as it would appear in the gateway log."""

    time: float
    number: PhoneNumber
    kind: str
    booking_ref: str
    client: ClientRef
    delivered: bool
    reject_reason: str
    settlement: Optional[Settlement]

    @property
    def country_code(self) -> str:
        return self.number.country_code


class SmsGateway:
    """Application-side SMS sending with quota and feature toggles."""

    def __init__(
        self,
        clock: Clock,
        telco: Optional[TelcoNetwork] = None,
        metrics: Optional[MetricsRecorder] = None,
        weekly_quota: Optional[int] = None,
    ) -> None:
        if weekly_quota is not None and weekly_quota < 0:
            raise ValueError(f"weekly_quota must be >= 0: {weekly_quota}")
        self.clock = clock
        self.telco = telco if telco is not None else TelcoNetwork()
        self.metrics = metrics if metrics is not None else MetricsRecorder()
        self.weekly_quota = weekly_quota
        self.records: List[SmsRecord] = []
        self._record_times: List[float] = []
        self._enabled_kinds: Set[str] = set(KINDS)
        self._quota_week_index = -1
        self._quota_used = 0

    # -- feature toggles -------------------------------------------------------

    def disable_kind(self, kind: str) -> None:
        """Turn an SMS feature off (e.g. remove boarding-pass-via-SMS)."""
        self._require_known(kind)
        self._enabled_kinds.discard(kind)
        self.metrics.increment(f"sms.feature_disabled.{kind}")

    def enable_kind(self, kind: str) -> None:
        self._require_known(kind)
        self._enabled_kinds.add(kind)

    def kind_enabled(self, kind: str) -> bool:
        self._require_known(kind)
        return kind in self._enabled_kinds

    @staticmethod
    def _require_known(kind: str) -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown SMS kind {kind!r}; expected {KINDS}")

    # -- quota ------------------------------------------------------------------

    def _quota_remaining(self) -> Optional[int]:
        if self.weekly_quota is None:
            return None
        week_index = int(self.clock.now // WEEK)
        if week_index != self._quota_week_index:
            self._quota_week_index = week_index
            self._quota_used = 0
        return self.weekly_quota - self._quota_used

    @property
    def quota_used_this_week(self) -> int:
        self._quota_remaining()  # roll the window if needed
        return self._quota_used

    # -- sending -----------------------------------------------------------------

    def send(
        self,
        number: PhoneNumber,
        kind: str,
        client: ClientRef,
        booking_ref: str = "",
    ) -> SmsRecord:
        """Attempt to send one SMS; always returns a log record."""
        self._require_known(kind)
        now = self.clock.now

        reject = ""
        if kind not in self._enabled_kinds:
            reject = REJECT_FEATURE_DISABLED
        else:
            remaining = self._quota_remaining()
            if remaining is not None and remaining <= 0:
                reject = REJECT_QUOTA_EXHAUSTED

        if reject:
            record = SmsRecord(
                time=now,
                number=number,
                kind=kind,
                booking_ref=booking_ref,
                client=client,
                delivered=False,
                reject_reason=reject,
                settlement=None,
            )
            self._record_times.append(now)
            self.records.append(record)
            self.metrics.increment("sms.rejected")
            self.metrics.increment(f"sms.reject.{reject}")
            return record

        settlement = self.telco.settle(number)
        if self.weekly_quota is not None:
            self._quota_used += 1
        record = SmsRecord(
            time=now,
            number=number,
            kind=kind,
            booking_ref=booking_ref,
            client=client,
            delivered=True,
            reject_reason="",
            settlement=settlement,
        )
        self._record_times.append(now)
        self.records.append(record)
        self.metrics.increment("sms.sent")
        self.metrics.increment(f"sms.sent.{kind}")
        self.metrics.increment("sms.cost", settlement.app_owner_cost)
        self.metrics.record("sms.sent_events", now, 1.0)
        return record

    # -- log access ---------------------------------------------------------------

    def delivered_records(self) -> List[SmsRecord]:
        return [record for record in self.records if record.delivered]

    def records_between(self, start: float, end: float) -> List[SmsRecord]:
        """Delivered records with ``start <= time < end``.

        Records are appended in time order, so the window is located by
        binary search — repeated monitoring scans stay cheap even with
        hundreds of thousands of records.
        """
        low = bisect.bisect_left(self._record_times, start)
        high = bisect.bisect_left(self._record_times, end)
        return [
            record
            for record in self.records[low:high]
            if record.delivered
        ]
