"""Destination-country registry for the SMS substrate.

Each country carries the economic attributes that make SMS Pumping
work (Section II-B): the wholesale price the application owner pays
per message, the termination fee the destination carrier collects, and
whether the destination is a high-cost route.  High termination fees
with little legitimate traffic are exactly the destinations the paper's
attackers prioritised (Table I: Uzbekistan, Iran, Kyrgyzstan, ...).

``legit_weight`` is each country's share of the airline's *legitimate*
SMS traffic (boarding passes and OTPs), used to synthesise the baseline
week that Table I's surge percentages are computed against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Country:
    """One SMS destination country."""

    code: str          # ISO 3166-1 alpha-2
    name: str
    dial_code: str
    sms_cost: float    # USD the application owner pays per SMS
    termination_fee: float  # USD the terminating carrier collects
    high_cost: bool
    legit_weight: float  # share of legitimate SMS traffic


def _c(
    code: str,
    name: str,
    dial: str,
    sms_cost: float,
    termination_fee: float,
    high_cost: bool,
    legit_weight: float,
) -> Country:
    return Country(code, name, dial, sms_cost, termination_fee, high_cost,
                   legit_weight)


#: The registry. Weights are relative (normalised on use).  The ten
#: Table I countries are present along with a tail of other markets so
#: the attack can span the paper's 42 destination countries.
COUNTRIES: List[Country] = [
    # -- Table I high-surge destinations (tiny legit traffic, pricey) --
    _c("UZ", "Uzbekistan", "+998", 0.160, 0.120, True, 0.00004),
    _c("IR", "Iran", "+98", 0.150, 0.110, True, 0.00012),
    _c("KG", "Kyrgyzstan", "+996", 0.170, 0.130, True, 0.00006),
    _c("JO", "Jordan", "+962", 0.120, 0.085, True, 0.00015),
    _c("NG", "Nigeria", "+234", 0.110, 0.080, True, 0.00030),
    _c("KH", "Cambodia", "+855", 0.130, 0.095, True, 0.00012),
    # -- Table I large-market destinations (big legit traffic) --
    _c("SG", "Singapore", "+65", 0.040, 0.020, False, 0.0110),
    _c("GB", "United Kingdom", "+44", 0.035, 0.015, False, 0.0380),
    _c("CN", "China", "+86", 0.045, 0.022, False, 0.0310),
    _c("TH", "Thailand", "+66", 0.030, 0.014, False, 0.0160),
    # -- Other major legitimate markets --
    _c("US", "United States", "+1", 0.010, 0.004, False, 0.2200),
    _c("FR", "France", "+33", 0.070, 0.030, False, 0.0750),
    _c("DE", "Germany", "+49", 0.085, 0.035, False, 0.0700),
    _c("ES", "Spain", "+34", 0.065, 0.028, False, 0.0480),
    _c("IT", "Italy", "+39", 0.075, 0.032, False, 0.0450),
    _c("IN", "India", "+91", 0.020, 0.008, False, 0.0620),
    _c("BR", "Brazil", "+55", 0.025, 0.010, False, 0.0430),
    _c("JP", "Japan", "+81", 0.060, 0.026, False, 0.0340),
    _c("AU", "Australia", "+61", 0.040, 0.018, False, 0.0260),
    _c("CA", "Canada", "+1", 0.012, 0.005, False, 0.0310),
    _c("MX", "Mexico", "+52", 0.030, 0.012, False, 0.0240),
    _c("NL", "Netherlands", "+31", 0.090, 0.038, False, 0.0210),
    _c("AE", "United Arab Emirates", "+971", 0.055, 0.024, False, 0.0290),
    _c("SA", "Saudi Arabia", "+966", 0.050, 0.022, False, 0.0200),
    _c("TR", "Turkey", "+90", 0.028, 0.012, False, 0.0190),
    _c("KR", "South Korea", "+82", 0.045, 0.020, False, 0.0230),
    _c("ID", "Indonesia", "+62", 0.028, 0.012, False, 0.0260),
    _c("MY", "Malaysia", "+60", 0.032, 0.014, False, 0.0180),
    _c("PH", "Philippines", "+63", 0.026, 0.011, False, 0.0170),
    _c("VN", "Vietnam", "+84", 0.050, 0.022, False, 0.0150),
    _c("EG", "Egypt", "+20", 0.080, 0.036, False, 0.0110),
    _c("ZA", "South Africa", "+27", 0.024, 0.010, False, 0.0120),
    _c("PT", "Portugal", "+351", 0.045, 0.020, False, 0.0110),
    _c("GR", "Greece", "+30", 0.050, 0.022, False, 0.0090),
    _c("SE", "Sweden", "+46", 0.055, 0.024, False, 0.0100),
    _c("CH", "Switzerland", "+41", 0.060, 0.026, False, 0.0130),
    _c("PL", "Poland", "+48", 0.040, 0.018, False, 0.0120),
    # -- Other high-cost, low-traffic routes in the attack's long tail --
    _c("TJ", "Tajikistan", "+992", 0.180, 0.140, True, 0.00003),
    _c("TM", "Turkmenistan", "+993", 0.190, 0.150, True, 0.00002),
    _c("AZ", "Azerbaijan", "+994", 0.140, 0.100, True, 0.00020),
    _c("IQ", "Iraq", "+964", 0.130, 0.095, True, 0.00018),
    _c("YE", "Yemen", "+967", 0.160, 0.120, True, 0.00005),
    _c("SD", "Sudan", "+249", 0.150, 0.110, True, 0.00006),
    _c("SO", "Somalia", "+252", 0.170, 0.130, True, 0.00003),
    _c("AF", "Afghanistan", "+93", 0.165, 0.125, True, 0.00004),
    _c("LY", "Libya", "+218", 0.145, 0.105, True, 0.00007),
    _c("ML", "Mali", "+223", 0.155, 0.115, True, 0.00005),
    _c("BJ", "Benin", "+229", 0.150, 0.112, True, 0.00004),
    _c("GN", "Guinea", "+224", 0.158, 0.118, True, 0.00003),
    _c("LK", "Sri Lanka", "+94", 0.090, 0.045, True, 0.00090),
    _c("BD", "Bangladesh", "+880", 0.095, 0.050, True, 0.00110),
    _c("NP", "Nepal", "+977", 0.100, 0.055, True, 0.00060),
    _c("MM", "Myanmar", "+95", 0.120, 0.080, True, 0.00030),
]

_BY_CODE: Dict[str, Country] = {country.code: country for country in COUNTRIES}


def get_country(code: str) -> Country:
    """Look up a country by ISO code (raises ``KeyError`` if unknown)."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise KeyError(f"unknown country code {code!r}") from None


def all_codes() -> List[str]:
    return [country.code for country in COUNTRIES]


def high_cost_codes() -> List[str]:
    return [country.code for country in COUNTRIES if country.high_cost]


def legit_weights() -> Dict[str, float]:
    """Normalised legitimate-traffic share per country code."""
    total = sum(country.legit_weight for country in COUNTRIES)
    return {
        country.code: country.legit_weight / total for country in COUNTRIES
    }
