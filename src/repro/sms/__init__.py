"""SMS substrate: gateway, destination countries, telco economics.

Implements the abusable SMS feature set of the paper's Case C: the
application-side gateway (:mod:`repro.sms.gateway`), the destination
country registry with per-route costs (:mod:`repro.sms.countries`),
phone numbers (:mod:`repro.sms.numbers`) and the operator/carrier
revenue-share chain that makes SMS Pumping profitable
(:mod:`repro.sms.telco`).
"""

from .countries import (
    COUNTRIES,
    Country,
    all_codes,
    get_country,
    high_cost_codes,
    legit_weights,
)
from .gateway import (
    BOARDING_PASS,
    KINDS,
    NOTIFICATION,
    OTP,
    REJECT_FEATURE_DISABLED,
    REJECT_QUOTA_EXHAUSTED,
    SmsGateway,
    SmsRecord,
)
from .numbers import PhoneNumber, sample_number
from .telco import LocalCarrier, Settlement, TelcoNetwork

__all__ = [
    "COUNTRIES",
    "Country",
    "all_codes",
    "get_country",
    "high_cost_codes",
    "legit_weights",
    "BOARDING_PASS",
    "KINDS",
    "NOTIFICATION",
    "OTP",
    "REJECT_FEATURE_DISABLED",
    "REJECT_QUOTA_EXHAUSTED",
    "SmsGateway",
    "SmsRecord",
    "PhoneNumber",
    "sample_number",
    "LocalCarrier",
    "Settlement",
    "TelcoNetwork",
]
