"""Phone numbers and per-country number generation."""

from __future__ import annotations

import random
from dataclasses import dataclass

from .countries import Country, get_country


@dataclass(frozen=True)
class PhoneNumber:
    """A destination mobile number.

    ``controlled_by_attacker`` is ground truth used only by the
    economics ledger (revenue share flows to the attacker when the
    number sits behind a colluding carrier); detection code never
    reads it.
    """

    country_code: str
    subscriber: str
    controlled_by_attacker: bool = False

    @property
    def e164(self) -> str:
        country = get_country(self.country_code)
        return f"{country.dial_code}{self.subscriber}"

    @property
    def country(self) -> Country:
        return get_country(self.country_code)


def sample_number(
    rng: random.Random,
    country_code: str,
    controlled_by_attacker: bool = False,
) -> PhoneNumber:
    """Draw a random subscriber number in the given country."""
    get_country(country_code)  # validate the code early
    subscriber = "".join(str(rng.randint(0, 9)) for _ in range(9))
    return PhoneNumber(
        country_code=country_code,
        subscriber=subscriber,
        controlled_by_attacker=controlled_by_attacker,
    )
