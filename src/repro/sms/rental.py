"""Disposable virtual-number rental: the OTP-abuse supply chain.

The "Your Code is 0000" ecosystem study describes commercial services
renting *disposable virtual numbers* — real mobile numbers, usually in
cheap high-termination-fee markets, leased by the message or by the
hour so a fraudster can receive OTPs without owning a SIM.  Case D's
attacker cycles such rentals against the OTP login endpoint: each
number collects a handful of OTP deliveries (monetised through the
colluding terminating carrier) and is then discarded for a fresh one.

:class:`NumberRentalService` models the service side: per-number rental
pricing, deterministic number generation off the caller's RNG stream,
and cost/inventory accounting the economics ledger reads
(:data:`repro.economics.ledger.NUMBER_RENTAL`).
"""

from __future__ import annotations

import random
from typing import Dict, List

from .countries import get_country
from .numbers import PhoneNumber, sample_number


class NumberRentalService:
    """Rents attacker-controlled disposable numbers, one at a time.

    Every rented number is ``controlled_by_attacker=True`` — the
    ground-truth flag the telco settlement uses to route colluding
    kickbacks — and lands in ``rented`` in rental order so scenarios
    can audit exactly which destinations the campaign cycled through.
    """

    def __init__(self, cost_per_number: float = 0.05) -> None:
        if cost_per_number < 0:
            raise ValueError(
                f"negative cost_per_number: {cost_per_number}"
            )
        self.cost_per_number = cost_per_number
        self.rented: List[PhoneNumber] = []
        self.rentals_by_country: Dict[str, int] = {}
        self.total_cost = 0.0

    def rent(self, rng: random.Random, country_code: str) -> PhoneNumber:
        """Rent one fresh disposable number in ``country_code``."""
        get_country(country_code)  # validate the code early
        number = sample_number(
            rng, country_code, controlled_by_attacker=True
        )
        self.rented.append(number)
        self.rentals_by_country[country_code] = (
            self.rentals_by_country.get(country_code, 0) + 1
        )
        self.total_cost += self.cost_per_number
        return number

    @property
    def numbers_rented(self) -> int:
        return len(self.rented)
