"""Telephony-network economics: operators, carriers, revenue share.

Section II-B describes the money flow behind SMS Pumping: the
application owner pays its primary operator per message; the primary
operator pays a *termination fee* to the local carrier that delivers
the message (FCC-style intercarrier compensation); and a fraudulent
local carrier kicks part of that fee back to the attacker who generated
the traffic.

:class:`TelcoNetwork` models that chain per delivered SMS and supports
the Section V mitigation of refusing compensation to carriers flagged
as involved in functional abuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .countries import get_country
from .numbers import PhoneNumber


@dataclass
class LocalCarrier:
    """A terminating carrier in one country.

    ``colluding`` carriers share ``attacker_revenue_share`` of every
    termination fee with the attacker whose traffic they terminate.
    ``flagged`` carriers have been identified as abusive; under a
    non-compensation policy they stop receiving termination fees.
    """

    carrier_id: str
    country_code: str
    colluding: bool = False
    attacker_revenue_share: float = 0.5
    flagged: bool = False
    fees_collected: float = 0.0
    messages_terminated: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.attacker_revenue_share <= 1.0:
            raise ValueError(
                "attacker_revenue_share must be in [0, 1]: "
                f"{self.attacker_revenue_share}"
            )


@dataclass(frozen=True)
class Settlement:
    """Money flow for one delivered SMS."""

    country_code: str
    app_owner_cost: float      # what the application owner paid
    termination_fee_paid: float  # what the carrier actually received
    attacker_revenue: float    # kickback to the attacker (if colluding)
    carrier_id: str
    withheld: bool             # fee withheld under non-compensation policy


class TelcoNetwork:
    """Primary operator plus the per-country local carriers.

    By default every country gets one honest carrier; scenarios register
    colluding carriers in the countries the attacker monetises.  The
    ``non_compensation_policy`` switch implements the paper's proposed
    mitigation: once enabled, *flagged* carriers receive nothing, which
    zeroes the attacker's revenue stream through them.
    """

    def __init__(self) -> None:
        self._carriers: Dict[str, LocalCarrier] = {}
        self.non_compensation_policy = False
        self.settlements: List[Settlement] = []

    def register_carrier(self, carrier: LocalCarrier) -> None:
        if carrier.country_code in self._carriers:
            raise ValueError(
                f"carrier already registered for {carrier.country_code!r}"
            )
        get_country(carrier.country_code)  # validate
        self._carriers[carrier.country_code] = carrier

    def carrier_for(self, country_code: str) -> LocalCarrier:
        """The terminating carrier for a country (honest default)."""
        if country_code not in self._carriers:
            self._carriers[country_code] = LocalCarrier(
                carrier_id=f"carrier-{country_code.lower()}",
                country_code=country_code,
            )
        return self._carriers[country_code]

    def carriers(self) -> List[LocalCarrier]:
        return list(self._carriers.values())

    def flag_carrier(self, country_code: str) -> None:
        """Mark a carrier as involved in functional abuse."""
        self.carrier_for(country_code).flagged = True

    def enable_non_compensation_policy(self) -> None:
        """Stop paying termination fees to flagged carriers (Section V)."""
        self.non_compensation_policy = True

    def settle(self, number: PhoneNumber) -> Settlement:
        """Settle the money flow for one SMS delivered to ``number``."""
        country = get_country(number.country_code)
        carrier = self.carrier_for(number.country_code)
        withheld = self.non_compensation_policy and carrier.flagged
        fee_paid = 0.0 if withheld else country.termination_fee
        attacker_revenue = 0.0
        if (
            carrier.colluding
            and number.controlled_by_attacker
            and fee_paid > 0
        ):
            attacker_revenue = fee_paid * carrier.attacker_revenue_share
        carrier.fees_collected += fee_paid
        carrier.messages_terminated += 1
        settlement = Settlement(
            country_code=number.country_code,
            app_owner_cost=country.sms_cost,
            termination_fee_paid=fee_paid,
            attacker_revenue=attacker_revenue,
            carrier_id=carrier.carrier_id,
            withheld=withheld,
        )
        self.settlements.append(settlement)
        return settlement

    def total_attacker_revenue(self) -> float:
        return sum(s.attacker_revenue for s in self.settlements)

    def total_app_owner_cost(self) -> float:
        return sum(s.app_owner_cost for s in self.settlements)
