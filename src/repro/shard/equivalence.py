"""The shard-equivalence harness.

The contract a sharded run makes: *K independently-simulated shards of
1/K-scale worlds, merged, tell the same story as the single world*.
Two strengths of that claim, both checked here:

* ``shards=1`` must be **bit-identical** to an unsharded run — the
  pass-through guarantee.  Any divergence is a wiring bug, never noise.
* ``shards=K>1`` is **metrics-level equivalent**: a shard draws its
  own RNG substream, so a K-sharded Poisson population is a
  *statistically* identical superposition of the unsharded one, not a
  bit-identical replay.  Extensive metrics must land within a pinned
  relative band of the unsharded run and intensive ones within a
  pinned absolute band; the bands are part of the repo's contract
  (committed in ``tests/test_shard_equivalence.py`` and documented in
  ``EXPERIMENTS.md``), not free parameters.

:func:`check_equivalence` packages both checks for any
``case x shard_count x worker_count`` combination so the test suite —
and the CI ``scale-smoke`` job — can parametrize over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..runner.core import SweepResult, run_sweep
from ..runner.spec import SweepSpec
from .merge import MEAN, reduction_for

#: (relative, absolute) slack; a metric passes if EITHER band holds —
#: relative bands are meaningless near zero, absolute bands are
#: meaningless for large counts, so each covers the other's blind
#: spot.
Tolerance = Tuple[float, float]


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across the unsharded and sharded runs."""

    name: str
    baseline: float
    sharded: float
    tolerance: Tolerance

    @property
    def abs_delta(self) -> float:
        return abs(self.sharded - self.baseline)

    @property
    def rel_delta(self) -> float:
        if self.baseline == 0.0:
            return 0.0 if self.sharded == 0.0 else float("inf")
        return self.abs_delta / abs(self.baseline)

    @property
    def ok(self) -> bool:
        rel, absolute = self.tolerance
        return self.rel_delta <= rel or self.abs_delta <= absolute

    def describe(self) -> str:
        rel, absolute = self.tolerance
        return (
            f"{self.name}: baseline={self.baseline:g} "
            f"sharded={self.sharded:g} rel={self.rel_delta:.3f} "
            f"abs={self.abs_delta:g} (tol rel<={rel:g} or abs<={absolute:g})"
        )


@dataclass
class EquivalenceReport:
    """Outcome of one ``case x shard_count x workers`` check."""

    scenario: str
    shard_count: int
    workers: int
    #: True iff the sharded run's cell payloads (metrics + recorder +
    #: obs + graph) are exactly the unsharded ones.  Required when
    #: ``shard_count == 1``; informational otherwise.
    bit_identical: bool
    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def failures(self) -> List[MetricDelta]:
        return [delta for delta in self.deltas if not delta.ok]

    @property
    def ok(self) -> bool:
        if self.shard_count == 1:
            return self.bit_identical
        return not self.failures

    def describe(self) -> str:
        head = (
            f"{self.scenario} K={self.shard_count} workers={self.workers}: "
            f"{'OK' if self.ok else 'FAIL'}"
            f"{' (bit-identical)' if self.bit_identical else ''}"
        )
        lines = [head] + [
            ("  " + delta.describe() + ("" if delta.ok else "  <-- FAIL"))
            for delta in self.deltas
        ]
        return "\n".join(lines)


def _cell_payloads(result: SweepResult) -> List[Dict[str, object]]:
    return [
        {
            "metrics": cell.metrics,
            "recorder": cell.recorder_snapshot,
            "obs": cell.obs_snapshot,
            "graph": cell.graph_snapshot,
        }
        for cell in result.cells
    ]


#: Default bands for K>1 runs.  Extensive metrics (sums of Poisson-ish
#: counts) concentrate, so a 15% relative band is generous; intensive
#: metrics live on [0, 1]-ish scales where an absolute band is the
#: meaningful one.  Cases pin tighter or looser per-metric bands in
#: the test suite where these defaults do not fit.
DEFAULT_EXTENSIVE_TOL: Tolerance = (0.15, 5.0)
DEFAULT_INTENSIVE_TOL: Tolerance = (0.25, 0.15)


def check_equivalence(
    scenario: str,
    params: Optional[Mapping[str, object]] = None,
    shard_count: int = 4,
    workers: int = 1,
    master_seed: int = 0,
    tolerances: Optional[Mapping[str, Tolerance]] = None,
    ignore: Tuple[str, ...] = (),
    cache_dir: Optional[str] = None,
) -> EquivalenceReport:
    """Run ``scenario`` unsharded and with ``shard_count`` shards and
    compare.

    ``tolerances`` maps metric names to explicit ``(rel, abs)`` bands;
    unlisted metrics get the extensive/intensive default matching
    their merge reduction.  ``ignore`` drops metrics from the
    comparison entirely (e.g. per-world artifacts with no cross-shard
    meaning).  The two runs share neither cache entries nor RNG
    streams, so a passing check is evidence about the simulation, not
    about cache plumbing.
    """
    spec = SweepSpec(
        scenario=scenario,
        base=dict(params or {}),
        master_seed=master_seed,
    )
    baseline = run_sweep(spec, workers=1, backend="serial")
    sharded = run_sweep(
        spec,
        workers=workers,
        backend="process" if workers > 1 else "serial",
        shards=shard_count,
        cache_dir=cache_dir,
    )

    bit_identical = _cell_payloads(baseline) == _cell_payloads(sharded)
    deltas: List[MetricDelta] = []
    if shard_count > 1:
        for base_cell, shard_cell in zip(baseline.cells, sharded.cells):
            for name in sorted(base_cell.metrics):
                if name in ignore:
                    continue
                tolerance = (tolerances or {}).get(name)
                if tolerance is None:
                    tolerance = (
                        DEFAULT_INTENSIVE_TOL
                        if reduction_for(scenario, name) == MEAN
                        else DEFAULT_EXTENSIVE_TOL
                    )
                deltas.append(
                    MetricDelta(
                        name=name,
                        baseline=base_cell.metrics[name],
                        sharded=shard_cell.metrics.get(
                            name, float("nan")
                        ),
                        tolerance=tolerance,
                    )
                )
    return EquivalenceReport(
        scenario=scenario,
        shard_count=shard_count,
        workers=workers,
        bit_identical=bit_identical,
        deltas=deltas,
    )
