"""Merging K shard payloads back into one cell payload.

Every piece of a cell payload already has merge machinery or a
well-defined reduction:

* ``recorder`` — :meth:`repro.sim.metrics.MetricsRecorder.merge`
  (counters sum; series interleave order-independently);
* ``obs`` — :func:`repro.obs.merge_snapshots` (worker-merge
  semantics);
* ``graph`` — :meth:`repro.graph.builder.EntityGraph.merge_snapshot`
  (union nodes, max-weight edges, min/max spans);
* ``metrics`` — scalar reduction per metric: *extensive* metrics
  (counts, totals, costs) sum across shards, *intensive* ones
  (fractions, rates, recalls, intervals) average.  Classification is
  by name convention with a per-scenario override table; negative
  values are the repo's "not measured" sentinel and are excluded from
  averages (a mean over sentinels stays ``-1.0``).

``info`` dicts are scenario-shaped free text, so they are kept
per-shard under ``info["shards"]`` rather than guessed at.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..graph.builder import EntityGraph
from ..obs.core import merge_snapshots
from ..sim.metrics import MetricsRecorder

SUM = "sum"
MEAN = "mean"
MAX = "max"
MIN = "min"

#: Substrings that mark a metric as intensive (averaged, not summed).
_MEAN_MARKERS = (
    "fraction",
    "rate",
    "percent",
    "coverage",
    "recall",
    "precision",
    "share",
    "ratio",
    "interval",
    "latency",
    "fpr",
)

#: Per-scenario reduction overrides for names the convention misses.
_OVERRIDES: Dict[str, Dict[str, str]] = {
    "case-a": {
        # Final NiP is a per-attacker state, not a volume.
        "attacker_final_nip": MEAN,
    },
    "case-c": {
        # Country coverage is a union-like breadth measure and the
        # kill-switch flag is an "any shard" condition: both reduce
        # by max, not by sum.
        "countries_targeted": MAX,
        "feature_disabled": MAX,
    },
}
_OVERRIDES["profile-case-a"] = _OVERRIDES["case-a"]
_OVERRIDES["profile-case-c"] = _OVERRIDES["case-c"]


def _recompute_case_c(metrics: Dict[str, float]) -> Dict[str, float]:
    # A ratio of sums is not a mean of ratios: rebuild the global
    # surge from the summed window totals (mirrors
    # SmsSurgeMonitor.global_increase_percent).
    baseline = metrics.get("sms_baseline_total", 0.0)
    window = metrics.get("sms_window_total", 0.0)
    if baseline > 0.0:
        metrics["global_increase_percent"] = (
            (window - baseline) / baseline * 100.0
        )
    return metrics


#: Post-merge hooks: derived/ratio metrics that must be recomputed
#: from their summed extensive components after reduction.
_POSTMERGE: Dict[str, object] = {
    "case-c": _recompute_case_c,
    "profile-case-c": _recompute_case_c,
}


def reduction_for(scenario: str, name: str) -> str:
    """The reduction applied to metric ``name`` across shards."""
    override = _OVERRIDES.get(scenario, {}).get(name)
    if override is not None:
        return override
    if name.startswith("mean_"):
        return MEAN
    if any(marker in name for marker in _MEAN_MARKERS):
        return MEAN
    return SUM


def reduce_metric(reduction: str, values: Sequence[float]) -> float:
    if not values:
        raise ValueError("cannot reduce an empty value list")
    if reduction == SUM:
        return float(sum(values))
    if reduction == MAX:
        return float(max(values))
    if reduction == MIN:
        return float(min(values))
    if reduction == MEAN:
        # Negative values are the "not measured" sentinel (-1.0 for
        # latencies/intervals that never happened); an average over
        # the shards that did measure is the meaningful one.
        present = [value for value in values if value >= 0.0]
        if not present:
            return -1.0
        return float(sum(present) / len(present))
    raise ValueError(f"unknown reduction {reduction!r}")


def merge_payloads(
    scenario: str, payloads: Sequence[Dict[str, object]]
) -> Dict[str, object]:
    """Fold K shard payloads into one cell payload.

    Deterministic in shard order (payloads must be passed in shard-id
    order: gauges are last-write-wins, everything else is
    order-independent).
    """
    if not payloads:
        raise ValueError("cannot merge zero shard payloads")
    if len(payloads) == 1:
        return dict(payloads[0])

    metric_names = sorted(
        {name for payload in payloads for name in payload["metrics"]}
    )
    metrics = {}
    for name in metric_names:
        values = [
            float(payload["metrics"][name])
            for payload in payloads
            if name in payload["metrics"]
        ]
        metrics[name] = reduce_metric(reduction_for(scenario, name), values)
    postmerge = _POSTMERGE.get(scenario)
    if postmerge is not None:
        metrics = postmerge(metrics)

    recorder = MetricsRecorder()
    for payload in payloads:
        recorder.merge(
            MetricsRecorder.from_snapshot(dict(payload.get("recorder", {})))
        )

    merged: Dict[str, object] = {
        "metrics": metrics,
        "info": {
            "shard_count": len(payloads),
            "shards": [dict(payload.get("info", {})) for payload in payloads],
        },
        "recorder": recorder.snapshot(),
    }

    obs_snapshots = [
        payload["obs"] for payload in payloads if payload.get("obs")
    ]
    if obs_snapshots:
        merged["obs"] = merge_snapshots(obs_snapshots).snapshot()

    graph_snapshots: List[Dict[str, object]] = [
        payload["graph"] for payload in payloads if payload.get("graph")
    ]
    if graph_snapshots:
        graph = EntityGraph()
        for snapshot in graph_snapshots:
            graph.merge_snapshot(snapshot)
        merged["graph"] = graph.snapshot(include_spans=True)

    return merged
