"""Shard planning: split one sweep cell into K independent sub-worlds.

A *shard* is a full, independently-simulated world carrying ``1/K`` of
the cell's population: extensive quantities (arrival rates, capacities,
attack budgets) are divided across shards so the K worlds jointly model
the original one, while intensive quantities (thresholds, probabilities,
TTLs) are left alone.  Each shard draws from its own RNG substream —
:func:`~repro.sim.rng.derive_shard_seed` folds the shard id *and* the
shard count into the seed, so re-partitioning never reuses streams or
result-cache entries — and runs through the unmodified scenario cell
function on the existing runner backends.

How a scenario's parameters split is scenario knowledge, so it lives
here as a registered *sharder*: a pure function
``(params, shard_id, shard_count) -> params`` over the scenario's full
parameter dict (defaults filled in from the config dataclass, seed
excluded).  Scenarios without a sharder simply cannot be sharded —
``run_sweep(shards=K)`` fails loudly instead of silently mis-scaling.
"""

from __future__ import annotations

from dataclasses import MISSING, fields
from typing import Callable, Dict, List

from ..runner.registry import get_scenario
from ..runner.spec import CellSpec, config_hash
from ..sim.rng import derive_shard_seed

#: A sharder maps the full parameter dict of a cell to one shard's
#: parameter dict.  Must be pure and must not mutate its input.
Sharder = Callable[[Dict[str, object], int, int], Dict[str, object]]

_SHARDERS: Dict[str, Sharder] = {}


def register_sharder(scenario: str, sharder: Sharder) -> None:
    """Register (or re-register) the sharder for ``scenario``."""
    _SHARDERS[scenario] = sharder


def get_sharder(scenario: str) -> Sharder:
    if scenario not in _SHARDERS:
        raise KeyError(
            f"scenario {scenario!r} has no registered sharder; "
            f"shardable scenarios: {shardable_scenarios()}"
        )
    return _SHARDERS[scenario]


def shardable_scenarios() -> List[str]:
    return sorted(_SHARDERS)


def split_int(total: int, shard_id: int, shard_count: int) -> int:
    """Shard ``shard_id``'s share of an integer resource.

    Shares differ by at most one and always sum to ``total`` across
    the K shards (the first ``total % K`` shards carry the remainder).
    """
    base, extra = divmod(int(total), shard_count)
    return base + (1 if shard_id < extra else 0)


def split_positive_int(
    name: str, total: int, shard_id: int, shard_count: int
) -> int:
    """Like :func:`split_int` but every shard's share must stay >= 1.

    Raises ``ValueError`` when ``shard_count > total`` — a world whose
    per-shard budget rounds to zero is not a smaller version of the
    original, it is a different scenario.
    """
    if shard_count > int(total):
        raise ValueError(
            f"cannot split {name}={total} across {shard_count} shards: "
            "at least one shard would get 0"
        )
    return split_int(total, shard_id, shard_count)


def full_params(scenario: str, params: Dict[str, object]) -> Dict[str, object]:
    """The cell's complete parameter dict: explicit params over the
    config dataclass's defaults, seed excluded (the runner derives it).
    """
    entry = get_scenario(scenario)
    config = entry.build_config(dict(params), seed=0)
    complete: Dict[str, object] = {}
    for spec in fields(config):
        if spec.name == "seed":
            continue
        if (
            spec.default is MISSING
            and spec.default_factory is MISSING  # type: ignore[misc]
            and spec.name not in params
        ):
            raise ValueError(
                f"scenario {scenario!r} field {spec.name!r} has no "
                "default and was not supplied"
            )
        complete[spec.name] = getattr(config, spec.name)
    return complete


def shard_cell(
    cell: CellSpec, master_seed: int, shard_count: int
) -> List[CellSpec]:
    """Expand one cell into its ``shard_count`` shard cells.

    ``shard_count == 1`` is a strict pass-through: the original cell,
    the original seed, the original config hash — so an unsharded and
    a ``shards=1`` sweep are bit-for-bit identical by construction.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1: {shard_count}")
    if shard_count == 1:
        return [cell]
    sharder = get_sharder(cell.scenario)
    complete = full_params(cell.scenario, cell.params_dict())
    shards = []
    for shard_id in range(shard_count):
        sharded = sharder(dict(complete), shard_id, shard_count)
        shards.append(
            CellSpec(
                scenario=cell.scenario,
                params=tuple(sorted(sharded.items())),
                replication=cell.replication,
                # The shard's own config hash keys the result cache;
                # the *parent* hash seeds the substream, so the same
                # shard params under two different parent cells still
                # draw independently.
                config_hash=config_hash(sharded),
                seed=derive_shard_seed(
                    master_seed,
                    cell.config_hash,
                    shard_id,
                    shard_count,
                    cell.replication,
                ),
            )
        )
    return shards


# -- built-in sharders --------------------------------------------------------


def _shard_case_a(
    params: Dict[str, object], shard_id: int, shard_count: int
) -> Dict[str, object]:
    out = dict(params)
    out["visitor_rate_per_hour"] = (
        float(params["visitor_rate_per_hour"]) / shard_count
    )
    out["target_capacity"] = split_positive_int(
        "target_capacity", params["target_capacity"], shard_id, shard_count
    )
    out["attacker_target_seats"] = split_positive_int(
        "attacker_target_seats",
        params["attacker_target_seats"],
        shard_id,
        shard_count,
    )
    return out


def _shard_case_b(
    params: Dict[str, object], shard_id: int, shard_count: int
) -> Dict[str, object]:
    out = dict(params)
    out["visitor_rate_per_hour"] = (
        float(params["visitor_rate_per_hour"]) / shard_count
    )
    out["automated_target_seats"] = split_positive_int(
        "automated_target_seats",
        params["automated_target_seats"],
        shard_id,
        shard_count,
    )
    return out


def _shard_case_c(
    params: Dict[str, object], shard_id: int, shard_count: int
) -> Dict[str, object]:
    """Case C: split the *population*, not the campaign.

    The SMS-pumping attack is one bot at a fixed cadence anchored on a
    handful of tickets — an intensive campaign, not a population — so
    replicating it per shard would multiply the attack by K.  Shard 0
    carries the whole campaign (full ticket stock, full send rate);
    the other shards run attack-free with identical measurement
    windows, simulating only their slice of the legitimate baseline.
    Rate limits stay at full strength everywhere: they are defensive
    thresholds, and the attack they exist to catch is entirely inside
    shard 0.
    """
    out = dict(params)
    out["baseline_weekly_total"] = split_positive_int(
        "baseline_weekly_total",
        params["baseline_weekly_total"],
        shard_id,
        shard_count,
    )
    out["attack_enabled"] = shard_id == 0 and bool(
        params.get("attack_enabled", True)
    )
    return out


def _shard_scale(
    params: Dict[str, object], shard_id: int, shard_count: int
) -> Dict[str, object]:
    out = dict(params)
    out["visitors"] = split_positive_int(
        "visitors", params["visitors"], shard_id, shard_count
    )
    out["flights"] = split_positive_int(
        "flights", params["flights"], shard_id, shard_count
    )
    return out


register_sharder("case-a", _shard_case_a)
register_sharder("scale-world", _shard_scale)
register_sharder("case-b", _shard_case_b)
register_sharder("case-c", _shard_case_c)
# Instrumented variants share their base scenario's parameter space.
register_sharder("profile-case-a", _shard_case_a)
register_sharder("profile-case-b", _shard_case_b)
register_sharder("profile-case-c", _shard_case_c)
