"""Sharded worlds: split a cell into K sub-worlds, merge them back.

``run_sweep(spec, shards=K)`` is the entry point; this package holds
the three pieces it composes:

* :mod:`repro.shard.plan` — per-scenario *sharders* that scale
  extensive parameters down by K, plus shard seed/cell derivation;
* :mod:`repro.shard.merge` — folding K shard payloads (metrics,
  recorder, obs, graph) back into one cell payload;
* :mod:`repro.shard.equivalence` — the harness proving a sharded run
  equivalent to the unsharded one (bit-identical at K=1,
  pinned metric bands at K>1).
"""

from .equivalence import (
    DEFAULT_EXTENSIVE_TOL,
    DEFAULT_INTENSIVE_TOL,
    EquivalenceReport,
    MetricDelta,
    check_equivalence,
)
from .merge import merge_payloads, reduce_metric, reduction_for
from .plan import (
    Sharder,
    full_params,
    get_sharder,
    register_sharder,
    shard_cell,
    shardable_scenarios,
    split_int,
    split_positive_int,
)

__all__ = [
    "DEFAULT_EXTENSIVE_TOL",
    "DEFAULT_INTENSIVE_TOL",
    "EquivalenceReport",
    "MetricDelta",
    "check_equivalence",
    "merge_payloads",
    "reduce_metric",
    "reduction_for",
    "Sharder",
    "full_params",
    "get_sharder",
    "register_sharder",
    "shard_cell",
    "shardable_scenarios",
    "split_int",
    "split_positive_int",
]
