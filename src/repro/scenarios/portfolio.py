"""The whole-portfolio scenario: adaptive attacker vs layered defense.

One world hosts all four abuse channels (seat spinning, SMS pumping,
OTP number cycling, notification amplification) behind an
:class:`~repro.adversary.attacker.AdaptiveAttacker` that funds one at a
time from a shared budget and abandons channels whose windowed ROI
falls below threshold.  The ``defense`` axis selects what the platform
deploys:

* ``none`` — nothing;
* ``case-a`` — streaming hold-velocity with honeypot routing (shadow
  inventory absorbs convicted spinners);
* ``case-c`` — per-booking-ref and per-profile limits on the
  boarding-pass path;
* ``case-d`` — streaming number reputation with online blocking;
* ``case-e`` — streaming destination surge + the per-destination cap
  response;
* ``all`` — every layer at once.

The headline result the benchmark pins: under any **single** defense
the attacker finds an open channel and retains positive ROI; under the
**whole portfolio** every channel's return collapses, the attacker
retires, and the fixed infrastructure burn leaves the operation net
negative — the paper's closing argument about systemic (not
per-feature) fraud prevention, stated in the attacker's own currency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..adversary import (
    AdaptiveAttacker,
    AmplifyChannel,
    OtpAbuseChannel,
    SeatSpinChannel,
    SmsPumpChannel,
)
from ..common import LEGIT
from ..core.mitigation.online import OnlineVerdictSink
from ..sim.clock import DAY, HOUR, MINUTE
from ..sms.countries import high_cost_codes
from ..sms.numbers import sample_number
from ..stream import (
    DestinationSurgeAdapter,
    HoldVelocityAdapter,
    NumberReputationAdapter,
    RecordFeed,
)
from ..traffic.sms_baseline import BaselineSmsConfig, BaselineSmsTraffic
from ..web.ratelimit import (
    RateLimitRule,
    key_by_booking_ref,
    key_by_destination,
    key_by_profile,
)
from ..web.request import BLOCKED, BOARDING_PASS_SMS, NOTIFY
from .streaming import build_stream_pipeline
from .world import FlightSpec, World, WorldConfig, build_world

SPIN_FLIGHT = "PORT-SPIN"
SETUP_FLIGHT = "PORT-SETUP"

# Defense axis values.
DEFENSE_NONE = "none"
DEFENSE_CASE_A = "case-a"
DEFENSE_CASE_C = "case-c"
DEFENSE_CASE_D = "case-d"
DEFENSE_CASE_E = "case-e"
DEFENSE_ALL = "all"

DEFENSES = (
    DEFENSE_NONE,
    DEFENSE_CASE_A,
    DEFENSE_CASE_C,
    DEFENSE_CASE_D,
    DEFENSE_CASE_E,
    DEFENSE_ALL,
)

#: The single-case arms the benchmark compares against ``all``.
SINGLE_DEFENSES = (
    DEFENSE_CASE_A,
    DEFENSE_CASE_C,
    DEFENSE_CASE_D,
    DEFENSE_CASE_E,
)


@dataclass
class PortfolioConfig:
    """Parameters for one adaptive-attacker portfolio run."""

    seed: int = 17
    defense: str = DEFENSE_NONE
    duration: float = 3 * DAY
    attack_start: float = 2 * HOUR
    # -- attacker -----------------------------------------------------
    budget: float = 500.0
    roi_threshold: float = 0.0
    reassess_interval: float = 2 * HOUR
    infrastructure_per_day: float = 5.0
    # -- channel knobs ------------------------------------------------
    value_per_seat_hour: float = 0.05
    spin_target_seats: int = 60
    pump_sms_per_hour: float = 80.0
    pump_tickets: int = 2
    otp_per_hour: float = 120.0
    otps_per_number: int = 16
    rental_cost_per_number: float = 0.40
    amplify_per_hour: float = 600.0
    value_per_delivered: float = 0.01
    victim_country: str = "GB"
    # -- legitimate background ----------------------------------------
    baseline_sms_per_hour: float = 60.0
    otp_fraction: float = 0.25
    notification_fraction: float = 0.20
    arrival_block_size: int = 256
    # -- defense knobs ------------------------------------------------
    hold_velocity_threshold: int = 5
    hold_velocity_window: float = 6 * HOUR
    per_ref_limit_per_day: int = 5
    per_profile_limit_per_day: int = 10
    reuse_threshold: int = 5
    reuse_window: float = 1 * HOUR
    surge_window: float = 600.0
    flood_threshold: int = 30
    destination_cap: int = 5
    response_poll: float = 5 * MINUTE

    def __post_init__(self) -> None:
        if self.defense not in DEFENSES:
            raise ValueError(
                f"unknown defense {self.defense!r}; expected {DEFENSES}"
            )
        if self.attack_start >= self.duration:
            raise ValueError(
                f"attack_start {self.attack_start} must precede "
                f"duration {self.duration}"
            )


@dataclass
class ChannelOutcome:
    """Final P&L of one channel."""

    name: str
    spent: float
    earned: float
    activations: int

    @property
    def net(self) -> float:
        return self.earned - self.spent

    @property
    def roi(self) -> float:
        return self.net / self.spent if self.spent > 0 else 0.0


@dataclass
class PortfolioResult:
    """Everything the portfolio tests and benchmark assert on."""

    config: PortfolioConfig
    attacker_spent: float
    attacker_earned: float
    attacker_net: float
    attacker_roi: float
    infrastructure_cost: float
    retired: bool
    decisions: List[Dict[str, object]]
    channels: List[ChannelOutcome]
    legit_requests_blocked: int
    legit_fp_conviction_rate: float
    world: World
    attacker: AdaptiveAttacker = field(repr=False, default=None)

    def channel(self, name: str) -> ChannelOutcome:
        for outcome in self.channels:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no channel outcome for {name!r}")


def run_portfolio(
    config: Optional[PortfolioConfig] = None,
    on_world: Optional[Callable[[World], None]] = None,
) -> PortfolioResult:
    """Run the adaptive attacker against the chosen defense posture."""
    config = config or PortfolioConfig()

    world = build_world(
        WorldConfig(
            seed=config.seed,
            flights=[
                FlightSpec(
                    flight_id=SPIN_FLIGHT,
                    departure_time=config.duration + 1 * HOUR,
                    capacity=200,
                    airline="AirlineP",
                ),
                FlightSpec(
                    flight_id=SETUP_FLIGHT,
                    departure_time=config.duration + 2 * DAY,
                    capacity=300,
                    airline="AirlineP",
                ),
            ],
            colluding_countries=tuple(high_cost_codes()),
        )
    )
    if on_world is not None:
        on_world(world)
    loop, rngs, app = world.loop, world.rngs, world.app

    # -- defense wiring -----------------------------------------------
    defense = config.defense
    pipelines = []
    record_adapters = []

    if defense in (DEFENSE_CASE_A, DEFENSE_ALL):
        # Honeypot routing: convicted spinners keep "winning" shadow
        # holds that displace nothing — their revenue model starves
        # without the feedback a hard block would give them.
        honeypot_sink = OnlineVerdictSink(app, honeypot_mode=True)
        hold_pipeline = build_stream_pipeline(
            adapters=[
                HoldVelocityAdapter(
                    threshold=config.hold_velocity_threshold,
                    window=config.hold_velocity_window,
                )
            ],
            sink=honeypot_sink,
        )
        hold_pipeline.attach(app.log)
        pipelines.append(hold_pipeline)

    if defense in (DEFENSE_CASE_C, DEFENSE_ALL):
        app.ratelimits.add_rule(
            RateLimitRule(
                rule_id="bp-sms-per-booking-ref",
                key_fn=key_by_booking_ref,
                limit=config.per_ref_limit_per_day,
                window=1 * DAY,
                paths=(BOARDING_PASS_SMS,),
            )
        )
        app.ratelimits.add_rule(
            RateLimitRule(
                rule_id="bp-sms-per-profile",
                key_fn=key_by_profile,
                limit=config.per_profile_limit_per_day,
                window=1 * DAY,
                paths=(BOARDING_PASS_SMS,),
            )
        )

    surge_adapter: Optional[DestinationSurgeAdapter] = None
    if defense in (DEFENSE_CASE_D, DEFENSE_CASE_E, DEFENSE_ALL):
        adapters = []
        if defense in (DEFENSE_CASE_D, DEFENSE_ALL):
            adapters.append(
                NumberReputationAdapter(
                    feed=RecordFeed(world.sms.records),
                    reuse_threshold=config.reuse_threshold,
                    reuse_window=config.reuse_window,
                )
            )
        if defense in (DEFENSE_CASE_E, DEFENSE_ALL):
            surge_adapter = DestinationSurgeAdapter(
                feed=RecordFeed(world.sms.records),
                window=config.surge_window,
                flood_threshold=config.flood_threshold,
            )
            adapters.append(surge_adapter)
        record_adapters = adapters
        record_pipeline = build_stream_pipeline(
            adapters=adapters, sink=OnlineVerdictSink(app)
        )
        record_pipeline.attach(app.log)
        pipelines.append(record_pipeline)

    if surge_adapter is not None:
        scorer = surge_adapter.scorer

        def respond_to_surges() -> None:
            if scorer.surging_destinations:
                app.ratelimits.add_rule(
                    RateLimitRule(
                        rule_id="notify-per-destination",
                        key_fn=key_by_destination,
                        limit=config.destination_cap,
                        window=1 * DAY,
                        paths=(NOTIFY,),
                    )
                )
                return
            loop.schedule_in(config.response_poll, respond_to_surges)

        loop.schedule_in(config.response_poll, respond_to_surges)

    # -- legitimate background ----------------------------------------
    baseline = BaselineSmsTraffic(
        loop,
        app,
        rngs.stream("traffic.sms-baseline"),
        BaselineSmsConfig(
            sms_per_hour=config.baseline_sms_per_hour,
            otp_fraction=config.otp_fraction,
            notification_fraction=config.notification_fraction,
            arrival_block_size=config.arrival_block_size,
        ),
        arrival_rng=rngs.numpy_stream("traffic.sms-baseline.arrivals"),
    )
    baseline.start(at=0.0)

    # -- the adversary ------------------------------------------------
    victim = sample_number(
        rngs.stream("portfolio.victim"), config.victim_country
    )
    channels = [
        SeatSpinChannel(
            world,
            SPIN_FLIGHT,
            value_per_seat_hour=config.value_per_seat_hour,
            target_seats=config.spin_target_seats,
        ),
        SmsPumpChannel(
            world,
            SETUP_FLIGHT,
            sms_per_hour=config.pump_sms_per_hour,
            tickets_to_buy=config.pump_tickets,
        ),
        OtpAbuseChannel(
            world,
            otp_per_hour=config.otp_per_hour,
            otps_per_number=config.otps_per_number,
            rental_cost_per_number=config.rental_cost_per_number,
        ),
        AmplifyChannel(
            world,
            [victim],
            notifications_per_hour=config.amplify_per_hour,
            value_per_delivered=config.value_per_delivered,
        ),
    ]
    attacker = AdaptiveAttacker(
        loop,
        channels,
        budget=config.budget,
        roi_threshold=config.roi_threshold,
        reassess_interval=config.reassess_interval,
        infrastructure_per_day=config.infrastructure_per_day,
    )
    attacker.start(at=config.attack_start)

    world.run_until(config.duration)
    for pipeline in pipelines:
        pipeline.finish()

    # -- harvest ------------------------------------------------------
    legit_blocked = 0
    legit_fps: set = set()
    for entry in app.log.iter_entries():
        if entry.client.actor_class == LEGIT:
            legit_fps.add(entry.client.fingerprint_id)
            if entry.status == BLOCKED:
                legit_blocked += 1
    convicted: set = set()
    for adapter in record_adapters:
        convicted.update(adapter.convicted_fingerprints)
    legit_fp_rate = (
        len(convicted & legit_fps) / len(legit_fps) if legit_fps else 0.0
    )

    return PortfolioResult(
        config=config,
        attacker_spent=attacker.total_spent(),
        attacker_earned=attacker.total_earned(),
        attacker_net=attacker.net,
        attacker_roi=attacker.roi(),
        infrastructure_cost=attacker.infrastructure_cost,
        retired=attacker.retired,
        decisions=[
            {
                "time": d.time,
                "action": d.action,
                "channel": d.channel,
                "window_roi": d.window_roi,
            }
            for d in attacker.decisions
        ],
        channels=[
            ChannelOutcome(
                name=c.name,
                spent=c.spent(),
                earned=c.earned(),
                activations=c.activations,
            )
            for c in channels
        ],
        legit_requests_blocked=legit_blocked,
        legit_fp_conviction_rate=legit_fp_rate,
        world=world,
        attacker=attacker,
    )


def portfolio_cell(config: PortfolioConfig) -> Dict[str, object]:
    """Picklable sweep-cell entry point for the portfolio scenario."""
    result = run_portfolio(config)
    metrics: Dict[str, float] = {
        "attacker_spent": result.attacker_spent,
        "attacker_earned": result.attacker_earned,
        "attacker_net": result.attacker_net,
        "attacker_roi": result.attacker_roi,
        "infrastructure_cost": result.infrastructure_cost,
        "retired": 1.0 if result.retired else 0.0,
        "decision_count": float(len(result.decisions)),
        "legit_requests_blocked": float(result.legit_requests_blocked),
        "legit_fp_conviction_rate": result.legit_fp_conviction_rate,
    }
    for outcome in result.channels:
        key = outcome.name.replace("adv-", "").replace("-", "_")
        metrics[f"{key}_spent"] = outcome.spent
        metrics[f"{key}_earned"] = outcome.earned
        metrics[f"{key}_roi"] = outcome.roi
        metrics[f"{key}_activations"] = float(outcome.activations)
    return {
        "metrics": metrics,
        "info": {
            "defense": result.config.defense,
            "decisions": result.decisions,
        },
        "recorder": result.world.metrics.snapshot(),
    }
