"""Graph-vs-session fusion on the rotated case-study campaigns.

The acceptance experiment for :mod:`repro.graph`: run a case study
whose attacker rotates identity (Case A's seat spinner on a mimicry
forge, Case C's geo-matched SMS pumper), score the same sessions with
two fusion arms, and compare them campaign-for-campaign:

* **session arm** — volume thresholds, k-means clustering and
  fingerprint rules fused per session.  Rotation keeps every
  reconstructed session under each family's radar, so the fused
  scores stay weak too;
* **graph arm** — the *same* family verdicts, plus
  :class:`~repro.graph.detector.GraphDetector` convictions fused in.
  The graph family seeds those weak scores onto the entity graph,
  where shared infrastructure (passenger names, booking references,
  subnets) amplifies them into campaign convictions.

Both arms share the session-level detector verdicts, so any
false-positive difference is attributable to the graph family alone.
The pinned acceptance property (``repro graph case-a``, and the
``graph-smoke`` CI job): the graph arm's campaign recall is strictly
higher than the session arm's at a same-or-lower false-positive rate,
and at least one recovered campaign spans multiple fingerprints —
the defeat-rotation claim in one assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.evaluation import (
    BinaryEvaluation,
    CampaignEvaluation,
    campaign_recall_from_verdicts,
    evaluate_campaigns,
    evaluate_verdicts,
)
from ..core.detection.clustering import ClusteringDetector
from ..core.detection.fingerprint_rules import FingerprintDetector
from ..core.detection.fusion import DEFAULT_WEIGHTS, FusionDetector
from ..core.detection.session_index import SessionIndex
from ..core.detection.verdict import Verdict
from ..core.detection.volume import VolumeDetector
from ..graph.campaigns import CAMPAIGN_DETECTOR, Campaign
from ..graph.detector import GraphDetector, GraphDetectorConfig
from ..sim.clock import DAY, HOUR
from ..traffic.seat_spinner import FIXED_NAME_ROTATING_DOB
from ..web.logs import Session
from .world import World

CASE_A = "case-a"
CASE_C = "case-c"

#: Cases the graph experiment knows how to stand up.
GRAPH_CASES: Tuple[str, ...] = (CASE_A, CASE_C)

#: Graph-seed trust per detector family, keyed by the *verdict* name
#: each family emits.  Mirrors the fusion weights except k-means,
#: whose binary 1.0 scores at a double-digit false-positive rate make
#: it a hint, not evidence.
SEED_WEIGHTS: Dict[str, float] = {
    "volume-threshold": 0.9,
    "kmeans-behaviour": 0.05,
    "fingerprint-rules": 0.9,
}


@dataclass
class GraphCaseConfig:
    """Parameters for one graph-vs-session comparison run."""

    seed: int = 7
    case: str = CASE_A
    #: Compressed timeline for smoke/CI runs (same code paths, a few
    #: seconds of wall clock).
    ticks_short: bool = False
    #: Fusion trust for campaign-graph verdicts in the graph arm.
    graph_fusion_weight: float = 0.95
    #: Share of a true campaign's sessions that must be flagged for
    #: the campaign to count as recovered (both arms, same bar).
    coverage_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.case not in GRAPH_CASES:
            raise ValueError(
                f"unknown graph case {self.case!r}; expected {GRAPH_CASES}"
            )


@dataclass
class ArmResult:
    """One fusion arm's session- and campaign-level scores."""

    arm: str
    verdicts: List[Verdict]
    evaluation: BinaryEvaluation
    #: Campaign recall achievable from these per-session verdicts.
    campaign_recall: float


@dataclass
class GraphCaseResult:
    """Both arms plus the graph family's campaign-level evaluation."""

    config: GraphCaseConfig
    case_config: object
    sessions: List[Session]
    session_arm: ArmResult
    graph_arm: ArmResult
    campaigns: List[Campaign]
    campaign_evaluation: CampaignEvaluation
    detector: GraphDetector
    world: World

    @property
    def multi_fingerprint_campaigns(self) -> List[Campaign]:
        """Recovered campaigns spanning >1 fingerprint — the ones
        per-session detection structurally cannot assemble."""
        return [
            campaign
            for campaign in self.campaigns
            if len(campaign.fingerprint_ids) > 1
        ]


def _case_a_config(config: GraphCaseConfig):
    """A compressed Case A tuned for campaign detection, not Fig. 1.

    Mitigation is disabled (no controller, no NiP cap) so the arms
    compare pure detection; the spinner rotates on a timer instead,
    and uses the Case B fixed-lead-passenger style so the graph has
    the paper's passenger-name side channel to link across rotations.
    """
    from .case_a import CaseAConfig

    params: Dict[str, object] = dict(
        seed=config.seed,
        visitor_rate_per_hour=8.0,
        target_capacity=160,
        attacker_target_seats=80,
        preferred_nip=4,
        passenger_style=FIXED_NAME_ROTATING_DOB,
        attack_start=1 * DAY,
        cap_at=None,
        controller_enabled=False,
        rotation_mean_interval=3 * HOUR,
        departure_time=6 * DAY,
        stop_before_departure=1 * DAY,
    )
    if config.ticks_short:
        params.update(
            visitor_rate_per_hour=5.0,
            target_capacity=120,
            attacker_target_seats=60,
            attack_start=0.5 * DAY,
            departure_time=3 * DAY,
            stop_before_departure=0.5 * DAY,
        )
    return CaseAConfig(**params)


def _case_c_config(config: GraphCaseConfig):
    """A compressed unprotected Case C (clean pumping measurement)."""
    from .case_c import CaseCConfig

    params: Dict[str, object] = dict(
        seed=config.seed,
        baseline_weekly_total=9_600,
        attack_start=2 * DAY,
        duration=5 * DAY,
    )
    if config.ticks_short:
        params.update(
            baseline_weekly_total=4_800,
            attack_start=1 * DAY,
            duration=3 * DAY,
        )
    return CaseCConfig(**params)


def _run_case(config: GraphCaseConfig) -> Tuple[object, World]:
    """Stand up the configured case study; return (case config, world)."""
    if config.case == CASE_A:
        from .case_a import run_case_a

        case_config = _case_a_config(config)
        return case_config, run_case_a(case_config).world
    from .case_c import run_case_c

    case_config = _case_c_config(config)
    return case_config, run_case_c(case_config).world


def _fingerprint_session_verdicts(
    world: World, index: SessionIndex
) -> List[Verdict]:
    """Sessions inherit their fingerprint's rule verdict (family 4)."""
    detector = FingerprintDetector()
    verdicts = []
    # Fingerprints repeat across sessions; judge each digest once.
    judged: Dict[str, bool] = {}
    for session_id, fingerprint_id in zip(
        index.session_ids, index.fingerprints
    ):
        is_bot = judged.get(fingerprint_id)
        if is_bot is None:
            fingerprint = world.app.fingerprints_seen.get(fingerprint_id)
            is_bot = (
                fingerprint is not None
                and detector.judge(fingerprint).is_bot
            )
            judged[fingerprint_id] = is_bot
        verdicts.append(
            Verdict(
                subject_id=session_id,
                detector=detector.name,
                score=1.0 if is_bot else 0.0,
                is_bot=is_bot,
            )
        )
    return verdicts


def _timed(obs: Optional[object], family: str, run: Callable[[], List[Verdict]]):
    """Run one detector family under a ``detect.family.<name>`` timer."""
    if obs is None:
        return run()
    with obs.timer(f"detect.family.{family}").time():
        return run()


def run_graph_case(
    config: Optional[GraphCaseConfig] = None,
    obs: Optional[object] = None,
) -> GraphCaseResult:
    """Run one case study and score both fusion arms on its sessions."""
    config = config or GraphCaseConfig()
    case_config, world = _run_case(config)
    # One columnar pass sessionizes the log and extracts every feature
    # vector; the matrix families judge straight off it and Session
    # objects are materialised once, only for the consumers that need
    # per-entry data (graph builder, evaluation).
    index = SessionIndex.from_log(world.app.log, obs=obs)
    sessions = index.sessions()

    # Shared session-level families — identical inputs to both arms.
    volume = _timed(
        obs, "volume-threshold",
        lambda: VolumeDetector().judge_index(index),
    )
    kmeans_detector = ClusteringDetector(
        world.rngs.numpy_stream("detector.kmeans")
    )
    kmeans = _timed(
        obs, "kmeans-behaviour",
        lambda: kmeans_detector.judge_index(index),
    )
    fingerprint = _timed(
        obs, "fingerprint-rules",
        lambda: _fingerprint_session_verdicts(world, index),
    )
    base_families = [volume, kmeans, fingerprint]

    session_fused = FusionDetector().fuse(base_families)
    session_arm = ArmResult(
        arm="session-fusion",
        verdicts=session_fused,
        evaluation=evaluate_verdicts(sessions, session_fused),
        campaign_recall=campaign_recall_from_verdicts(
            sessions, session_fused, config.coverage_threshold
        ),
    )

    detector = GraphDetector(
        GraphDetectorConfig(seed_weights=dict(SEED_WEIGHTS)), obs=obs
    )
    graph_verdicts = detector.judge_all(
        sessions,
        bookings=world.reservations.records,
        sms=world.sms.delivered_records(),
        seed_verdicts=[v for family in base_families for v in family],
    )
    graph_fused = FusionDetector(
        weights={
            **DEFAULT_WEIGHTS,
            CAMPAIGN_DETECTOR: config.graph_fusion_weight,
        }
    ).fuse(base_families + [graph_verdicts])
    graph_arm = ArmResult(
        arm="graph-fusion",
        verdicts=graph_fused,
        evaluation=evaluate_verdicts(sessions, graph_fused),
        campaign_recall=campaign_recall_from_verdicts(
            sessions, graph_fused, config.coverage_threshold
        ),
    )

    campaigns = detector.campaigns
    return GraphCaseResult(
        config=config,
        case_config=case_config,
        sessions=sessions,
        session_arm=session_arm,
        graph_arm=graph_arm,
        campaigns=campaigns,
        campaign_evaluation=evaluate_campaigns(
            sessions, campaigns, config.coverage_threshold
        ),
        detector=detector,
        world=world,
    )


def graph_case_cell(config: GraphCaseConfig) -> Dict[str, object]:
    """Picklable sweep-cell entry point (plain data only)."""
    result = run_graph_case(config)
    detection_times = list(
        result.campaign_evaluation.time_to_detection.values()
    )
    propagation = (
        result.detector.last_analysis.propagation
        if result.detector.last_analysis is not None
        else None
    )
    return {
        "metrics": {
            "session_fpr": result.session_arm.evaluation.false_positive_rate,
            "session_recall": result.session_arm.evaluation.recall,
            "session_campaign_recall": result.session_arm.campaign_recall,
            "graph_fpr": result.graph_arm.evaluation.false_positive_rate,
            "graph_recall": result.graph_arm.evaluation.recall,
            "graph_campaign_recall": result.graph_arm.campaign_recall,
            "campaigns_found": float(len(result.campaigns)),
            "multi_fingerprint_campaigns": float(
                len(result.multi_fingerprint_campaigns)
            ),
            "campaign_precision": (
                result.campaign_evaluation.campaign_precision
            ),
            "campaign_level_recall": (
                result.campaign_evaluation.campaign_recall
            ),
            "mean_time_to_detection_hours": (
                sum(detection_times) / len(detection_times) / HOUR
                if detection_times
                else -1.0
            ),
            "propagation_rounds": (
                float(propagation.rounds) if propagation is not None else 0.0
            ),
        },
        "info": {
            "case": config.case,
            "campaigns": [
                {
                    "campaign_id": campaign.campaign_id,
                    "risk": campaign.risk,
                    "sessions": len(campaign.session_ids),
                    "fingerprints": len(campaign.fingerprint_ids),
                }
                for campaign in result.campaigns
            ],
        },
        "recorder": result.world.metrics.snapshot(),
        # Plain-data graph view so shard/worker merges can union the
        # per-shard entity graphs (EntityGraph.merge_snapshot).
        "graph": (
            result.detector.last_analysis.graph.snapshot(
                include_spans=True
            )
            if result.detector.last_analysis is not None
            else {}
        ),
    }


def graph_case_a_cell(config: GraphCaseConfig) -> Dict[str, object]:
    return graph_case_cell(replace(config, case=CASE_A))


def graph_case_c_cell(config: GraphCaseConfig) -> Dict[str, object]:
    return graph_case_cell(replace(config, case=CASE_C))
