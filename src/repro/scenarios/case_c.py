"""Case C — advanced SMS Pumping on Airline D (Section IV-C, Table I).

Two simulated weeks of boarding-pass/OTP SMS traffic:

* **week 1** — the global legitimate baseline: large markets receive
  thousands of messages, high-cost destinations a handful;
* **week 2** — the pumping campaign: the attacker buys a few tickets
  with fake data and stolen cards, then pumps boarding-pass SMS to
  attacker-controlled numbers across 42 countries, geo-matching
  residential proxy exits to each destination and rotating
  fingerprints.

Calibration: the attacker's per-country targeting weights are *derived
from Table I* — for each listed country the paper's surge percentage
times our baseline volume gives the attack volume — so the reproduction
regenerates the table's ordering and magnitudes by construction, and
the overall volume lands at the paper's ~25% global increase.

Protection variants reproduce the case study's operational lesson:

* ``unprotected`` — no limits at all (clean Table I measurement);
* ``path-limit`` — only a global per-path rate limit exists (the
  paper's actual situation: "detected only after the total number of
  boarding pass requests via SMS triggered the rate limit for the
  targeted path"); once it trips, the SMS option is removed;
* ``per-ref`` — per-booking-reference and per-profile limits are in
  place from the start (the Section V recommendation), strangling the
  attack almost immediately.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..common import SMS_PUMPER
from ..core.detection.anomaly import CountrySurge, SmsSurgeMonitor
from ..economics.ledger import Ledger
from ..economics.reports import build_attacker_ledger
from ..identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from ..identity.ip import ResidentialProxyPool
from ..sim.clock import DAY, HOUR, WEEK
from ..sms.countries import all_codes, high_cost_codes, legit_weights
from ..sms.gateway import BOARDING_PASS
from ..traffic.sms_baseline import BaselineSmsConfig, BaselineSmsTraffic
from ..traffic.sms_pumper import SmsPumperBot, SmsPumperConfig
from ..web.ratelimit import (
    RateLimitRule,
    key_by_booking_ref,
    key_by_path,
    key_by_profile,
)
from ..web.request import BOARDING_PASS_SMS
from .world import FlightSpec, World, WorldConfig, build_world

SETUP_FLIGHT = "AirlineD-SETUP"

# Protection variants.
UNPROTECTED = "unprotected"
PATH_LIMIT = "path-limit"
PER_REF = "per-ref"

_VARIANTS = (UNPROTECTED, PATH_LIMIT, PER_REF)

#: Baseline weekly SMS volumes pinned for the ten Table I countries.
#: Large markets get thousands of messages a week, the high-cost
#: destinations a handful — that asymmetry is what turns a flat-ish
#: attack volume into five-digit surge percentages.
TABLE1_BASELINE_PINS: Dict[str, int] = {
    "UZ": 2, "IR": 5, "KG": 3, "JO": 8, "NG": 12, "KH": 6,
    "SG": 110, "GB": 450, "CN": 400, "TH": 200,
}

#: Table I surge percentages (the calibration targets).
TABLE1_SURGES: Dict[str, float] = {
    "UZ": 160_209.0, "IR": 66_095.0, "KG": 37_614.0, "JO": 12_251.0,
    "NG": 10_986.0, "KH": 4_990.0, "SG": 67.0, "GB": 44.0, "CN": 43.0,
    "TH": 19.0,
}

#: Order Table I lists its rows in (descending surge).
TABLE1_ORDER = ("UZ", "IR", "KG", "JO", "NG", "KH", "SG", "GB", "CN", "TH")


def case_c_baseline_weekly(total: int = 48_000) -> Dict[str, int]:
    """Expected weekly legitimate SMS count per country.

    The ten Table I countries are pinned; the remainder of ``total`` is
    distributed over all other countries proportionally to the
    registry's legitimate-traffic weights.
    """
    remaining = total - sum(TABLE1_BASELINE_PINS.values())
    weights = legit_weights()
    other_codes = [c for c in all_codes() if c not in TABLE1_BASELINE_PINS]
    other_weight = sum(weights[c] for c in other_codes)
    counts = dict(TABLE1_BASELINE_PINS)
    for code in other_codes:
        counts[code] = max(int(round(remaining * weights[code] / other_weight)), 1)
    return counts


#: Countries in the campaign beyond the Table I ten: 32 more, bringing
#: the total to the paper's 42 distinct destinations.
ATTACK_TAIL_COUNT = 32


def case_c_attack_totals(
    baseline: Optional[Dict[str, int]] = None,
    tail_per_country: int = 9,
) -> Dict[str, int]:
    """Attack SMS volume per country, derived from Table I.

    For the ten listed countries: ``surge% x baseline``.  A further 32
    countries get a small tail volume so the campaign spans exactly the
    paper's 42 distinct destinations.
    """
    baseline = baseline or case_c_baseline_weekly()
    totals: Dict[str, int] = {}
    for code, surge in TABLE1_SURGES.items():
        totals[code] = max(int(round(surge / 100.0 * baseline[code])), 1)
    tail = [code for code in all_codes() if code not in totals]
    for code in tail[:ATTACK_TAIL_COUNT]:
        totals[code] = tail_per_country
    return totals


def case_c_attack_weights() -> Dict[str, float]:
    """Normalised attacker country-targeting weights."""
    totals = case_c_attack_totals()
    grand = sum(totals.values())
    return {code: count / grand for code, count in totals.items()}


@dataclass
class CaseCConfig:
    """Scenario parameters."""

    seed: int = 1
    variant: str = UNPROTECTED
    baseline_weekly_total: int = 48_000
    #: Arrival-gap block size for the vectorized traffic generators;
    #: the run is bit-identical for any value (1 = scalar reference).
    arrival_block_size: int = 256
    attack_start: float = 1 * WEEK
    duration: float = 2 * WEEK
    tickets_to_buy: int = 5
    #: Path-level limit (requests per day on the boarding-pass path).
    path_limit_per_day: int = 6000
    #: Per-booking-ref / per-profile limits for the PER_REF variant.
    per_ref_limit_per_day: int = 5
    per_profile_limit_per_day: int = 10
    otp_fraction: float = 0.25
    #: False runs the same world and measurement windows without the
    #: pumping campaign — the attack-free shards of a sharded run.
    attack_enabled: bool = True

    def __post_init__(self) -> None:
        if self.variant not in _VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; expected {_VARIANTS}"
            )


@dataclass
class CaseCResult:
    """Everything the Table I / Case C benchmarks assert on."""

    config: CaseCConfig
    #: All-country surge table, descending surge, measured week-1
    #: baseline (one noisy window, as the paper measured it).
    surge_table: List[CountrySurge]
    #: Surge table against the *expected* historical baseline (what a
    #: fraud team with months of history would divide by) — this is the
    #: view that regenerates Table I's exact ordering.
    surge_table_expected: List[CountrySurge]
    global_increase_percent: float
    #: Total SMS volume in the pre-attack and attack windows — the
    #: extensive components ``global_increase_percent`` is a ratio of
    #: (shard merges sum these and recompute the ratio).
    sms_baseline_total: int
    sms_window_total: int
    countries_targeted: int
    attacker_sms_delivered: int
    attacker_sms_attempts_blocked: int
    #: When the defence first noticed (first rate-limit rejection on
    #: the boarding-pass path); None if it never fired.
    detection_time: Optional[float]
    #: When boarding-pass-via-SMS was switched off; None if never.
    feature_disabled_at: Optional[float]
    defender_sms_cost: float
    attacker_ledger: Ledger
    world: World
    bot: SmsPumperBot

    @property
    def detection_latency(self) -> Optional[float]:
        """Seconds from attack start to first defensive signal."""
        if self.detection_time is None:
            return None
        return self.detection_time - self.config.attack_start

    def surge_for(self, country_code: str) -> CountrySurge:
        for surge in self.surge_table_expected:
            if surge.country_code == country_code:
                return surge
        raise KeyError(f"no surge row for {country_code!r}")

    def table1_rows(self, top: int = 10, min_window: int = 50) -> List[CountrySurge]:
        """The Table I view: top-``top`` surging countries with at
        least ``min_window`` messages in the attack window (tiny-volume
        destinations are below the table's reporting floor)."""
        rows = [
            surge
            for surge in self.surge_table_expected
            if surge.window_count >= min_window
        ]
        return rows[:top]


def case_c_cell(config: CaseCConfig) -> Dict[str, object]:
    """Picklable sweep-cell entry point for Case C.

    Pure function of ``config`` returning plain data only (scalar
    metrics, the Table I view, recorder snapshot) so
    :mod:`repro.runner` workers can return it across the pickle
    boundary.
    """
    result = run_case_c(config)
    latency = result.detection_latency
    return {
        "metrics": {
            "attacker_sms_delivered": float(result.attacker_sms_delivered),
            "attacker_sms_attempts_blocked": float(
                result.attacker_sms_attempts_blocked
            ),
            "global_increase_percent": result.global_increase_percent,
            "sms_baseline_total": float(result.sms_baseline_total),
            "sms_window_total": float(result.sms_window_total),
            "countries_targeted": float(result.countries_targeted),
            "detection_latency": latency if latency is not None else -1.0,
            "defender_sms_cost": result.defender_sms_cost,
            "attacker_net": result.attacker_ledger.net,
            "feature_disabled": (
                1.0 if result.feature_disabled_at is not None else 0.0
            ),
        },
        "info": {
            "table1": [
                {
                    "country": surge.country_code,
                    "baseline": surge.baseline_count,
                    "window": surge.window_count,
                    "surge_percent": surge.surge_percent,
                }
                for surge in result.table1_rows()
            ],
        },
        "recorder": result.world.metrics.snapshot(),
    }


def run_case_c(
    config: Optional[CaseCConfig] = None,
    on_world: Optional[Callable[[World], None]] = None,
) -> CaseCResult:
    """Run the two-week Case C scenario in the chosen variant.

    ``on_world`` runs right after world construction, before any actor
    starts (streaming/trace wiring hook).
    """
    config = config or CaseCConfig()

    world = build_world(
        WorldConfig(
            seed=config.seed,
            flights=[
                FlightSpec(
                    flight_id=SETUP_FLIGHT,
                    departure_time=config.duration + 2 * DAY,
                    capacity=300,
                    airline="AirlineD",
                )
            ],
            colluding_countries=tuple(high_cost_codes()),
        )
    )
    if on_world is not None:
        on_world(world)
    loop, rngs, app = world.loop, world.rngs, world.app

    baseline_weekly = case_c_baseline_weekly(config.baseline_weekly_total)
    baseline_total = sum(baseline_weekly.values())
    weights = {
        code: count / baseline_total
        for code, count in baseline_weekly.items()
    }
    baseline_traffic = BaselineSmsTraffic(
        loop,
        app,
        rngs.stream("traffic.sms-baseline"),
        BaselineSmsConfig(
            sms_per_hour=baseline_total / (WEEK / HOUR),
            otp_fraction=config.otp_fraction,
            country_weights=weights,
            arrival_block_size=config.arrival_block_size,
        ),
        arrival_rng=rngs.numpy_stream("traffic.sms-baseline.arrivals"),
    )
    baseline_traffic.start(at=0.0)

    attack_totals = case_c_attack_totals(baseline_weekly)
    attack_total = sum(attack_totals.values())
    proxy_pool = ResidentialProxyPool()
    bot = SmsPumperBot(
        loop,
        app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(mean_interval=5.3 * HOUR, rotate_on_block=True),
            rngs.stream("attacker.pumper.identity"),
        ),
        proxy_pool,
        rngs.stream("attacker.pumper"),
        SmsPumperConfig(
            setup_flight=SETUP_FLIGHT,
            tickets_to_buy=config.tickets_to_buy,
            sms_per_hour=attack_total / (WEEK / HOUR),
            target_weights=case_c_attack_weights(),
        ),
    )
    if config.attack_enabled:
        bot.start(at=config.attack_start)

    # -- protection variant wiring ------------------------------------------

    feature_disabled_at: List[float] = []
    if config.variant == PATH_LIMIT:
        app.ratelimits.add_rule(
            RateLimitRule(
                rule_id="bp-sms-path",
                key_fn=key_by_path,
                limit=config.path_limit_per_day,
                window=1 * DAY,
                paths=(BOARDING_PASS_SMS,),
            )
        )

        def watch_path_limit() -> None:
            rule = next(
                r
                for r in app.ratelimits.rules()
                if r.rule_id == "bp-sms-path"
            )
            if rule.rejections > 0 and not feature_disabled_at:
                # The paper's emergency response: remove the SMS option.
                app.sms.disable_kind(BOARDING_PASS)
                feature_disabled_at.append(loop.now)
                return
            if not feature_disabled_at:
                loop.schedule_in(1 * HOUR, watch_path_limit)

        loop.schedule_in(1 * HOUR, watch_path_limit)
    elif config.variant == PER_REF:
        app.ratelimits.add_rule(
            RateLimitRule(
                rule_id="bp-sms-per-booking-ref",
                key_fn=key_by_booking_ref,
                limit=config.per_ref_limit_per_day,
                window=1 * DAY,
                paths=(BOARDING_PASS_SMS,),
            )
        )
        app.ratelimits.add_rule(
            RateLimitRule(
                rule_id="bp-sms-per-profile",
                key_fn=key_by_profile,
                limit=config.per_profile_limit_per_day,
                window=1 * DAY,
                paths=(BOARDING_PASS_SMS,),
            )
        )

    world.run_until(config.duration)

    # -- harvest ----------------------------------------------------------------

    # Table I compares total SMS volume per destination country (all
    # message kinds), before vs during the attack.
    baseline_counts = Counter(
        r.country_code
        for r in world.sms.records_between(0.0, config.attack_start)
    )
    window_counts = Counter(
        r.country_code
        for r in world.sms.records_between(
            config.attack_start, config.duration
        )
    )
    monitor = SmsSurgeMonitor()
    surge_table = monitor.evaluate(baseline_counts, window_counts)
    surge_table_expected = monitor.evaluate(
        baseline_weekly, window_counts
    )
    global_increase = monitor.global_increase_percent(
        baseline_counts, window_counts
    )

    attacker_records = [
        r for r in world.sms.records if r.client.actor_class == SMS_PUMPER
    ]
    delivered = sum(1 for r in attacker_records if r.delivered)
    countries_targeted = len(
        {r.country_code for r in attacker_records if r.delivered}
    )

    detection_time: Optional[float] = None
    for entry in app.log.iter_entries():
        if entry.path == BOARDING_PASS_SMS and entry.status == 429:
            detection_time = entry.time
            break

    ledger = build_attacker_ledger(
        app, proxy_pools=[proxy_pool], attacker_actors=[bot.name]
    )

    return CaseCResult(
        config=config,
        surge_table=surge_table,
        surge_table_expected=surge_table_expected,
        global_increase_percent=global_increase,
        sms_baseline_total=sum(baseline_counts.values()),
        sms_window_total=sum(window_counts.values()),
        countries_targeted=countries_targeted,
        attacker_sms_delivered=delivered,
        attacker_sms_attempts_blocked=bot.rate_limits_encountered,
        detection_time=detection_time,
        feature_disabled_at=(
            feature_disabled_at[0] if feature_disabled_at else None
        ),
        defender_sms_cost=world.telco.total_app_owner_cost(),
        attacker_ledger=ledger,
        world=world,
        bot=bot,
    )
