"""Case D — OTP abuse via disposable-number cycling.

The Case C pumper abused the boarding-pass feature with a handful of
long-lived identities; Case D models the next iteration the
disposable-number ecosystem enables: rent a virtual number in a
colluding high-termination-fee market, collect a batch of OTP
deliveries on it (the login endpoint texts any number, account or not),
discard it, rent the next — rotating the browser fingerprint with every
number so per-fingerprint velocity rules never accumulate evidence.

The defense is the **number-reputation family**
(:class:`~repro.core.detection.numbers.NumberReputationScorer`):
reuse-window detection on the destination number — the one artifact the
attacker cannot rotate away, because monetisation requires concentrating
deliveries on numbers they pay rent on.  Wired streaming
(:class:`~repro.stream.sms_records.NumberReputationAdapter` →
fusion → :class:`~repro.core.mitigation.online.OnlineVerdictSink`), a
conviction lands after ``reuse_threshold`` deliveries and blocks the
identity mid-number.

The economics are the scenario's headline.  Each rental costs real
money up front and only amortises across the OTPs it survives to
receive: uncapped, ``otps_per_number`` deliveries comfortably clear the
rental; capped at ``reuse_threshold`` by the defense, the per-number
revenue falls below the rental price and the campaign ROI goes
negative — the defense wins by economics, not by perfect blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..common import LEGIT, OTP_ABUSER
from ..core.mitigation.online import OnlineVerdictSink
from ..economics.ledger import Ledger, NUMBER_RENTAL
from ..economics.reports import build_attacker_ledger
from ..identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from ..identity.ip import ResidentialProxyPool
from ..sim.clock import DAY, HOUR
from ..sms.countries import high_cost_codes
from ..sms.gateway import OTP
from ..sms.rental import NumberRentalService
from ..stream import NumberReputationAdapter, RecordFeed, StreamReport
from ..traffic.otp_abuser import OtpAbuseBot, OtpAbuserConfig
from ..traffic.sms_baseline import BaselineSmsConfig, BaselineSmsTraffic
from ..web.request import BLOCKED
from .streaming import build_stream_pipeline
from .world import World, WorldConfig, build_world

# Protection variants.
UNPROTECTED = "unprotected"
NUMBER_REPUTATION_DEFENSE = "number-reputation"

_VARIANTS = (UNPROTECTED, NUMBER_REPUTATION_DEFENSE)


@dataclass
class CaseDConfig:
    """Scenario parameters for the number-cycling campaign."""

    seed: int = 11
    variant: str = UNPROTECTED
    duration: float = 2 * DAY
    attack_start: float = 6 * HOUR
    # -- legitimate background ----------------------------------------
    baseline_sms_per_hour: float = 60.0
    otp_fraction: float = 0.35
    arrival_block_size: int = 256
    # -- campaign -----------------------------------------------------
    otp_per_hour: float = 120.0
    #: Deliveries the attacker plans to amortise each rental across.
    otps_per_number: int = 16
    #: Rental price per disposable number.  Receive-capable numbers in
    #: premium markets are the expensive half of the supply chain —
    #: this is what the reuse-window cap turns into a losing trade.
    rental_cost_per_number: float = 0.40
    #: False runs the same world without the campaign (sharding arm).
    attack_enabled: bool = True
    # -- defense ------------------------------------------------------
    reuse_threshold: int = 5
    reuse_window: float = 1 * HOUR

    def __post_init__(self) -> None:
        if self.variant not in _VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; expected {_VARIANTS}"
            )
        if self.attack_start >= self.duration:
            raise ValueError(
                f"attack_start {self.attack_start} must precede "
                f"duration {self.duration}"
            )


@dataclass
class CaseDResult:
    """Everything the Case D tests and benchmarks assert on."""

    config: CaseDConfig
    attacker_otps_delivered: int
    numbers_rented: int
    rental_cost_total: float
    attacker_revenue: float
    attacker_ledger: Ledger
    #: Deliveries per rented number actually achieved — the quantity
    #: the reuse-window defense caps.
    mean_otps_per_number: float
    legit_otps_delivered: int
    legit_requests_blocked: int
    #: Legit fingerprints convicted / legit fingerprints seen.
    legit_fp_conviction_rate: float
    time_to_first_block: Optional[float]
    online_actions: int
    burned_numbers: int
    report: Optional[StreamReport]
    world: World
    bot: OtpAbuseBot

    @property
    def attacker_roi(self) -> float:
        return self.attacker_ledger.roi()


def run_case_d(
    config: Optional[CaseDConfig] = None,
    on_world: Optional[Callable[[World], None]] = None,
) -> CaseDResult:
    """Run the number-cycling campaign in the chosen variant."""
    config = config or CaseDConfig()

    world = build_world(
        WorldConfig(
            seed=config.seed,
            flights=[],
            colluding_countries=tuple(high_cost_codes()),
        )
    )
    if on_world is not None:
        on_world(world)
    loop, rngs, app = world.loop, world.rngs, world.app

    # -- defense wiring (before any traffic: the pipeline must see the
    # -- record stream from the first entry) --------------------------
    pipeline = None
    sink: Optional[OnlineVerdictSink] = None
    scorer_adapter: Optional[NumberReputationAdapter] = None
    if config.variant == NUMBER_REPUTATION_DEFENSE:
        sink = OnlineVerdictSink(app)
        scorer_adapter = NumberReputationAdapter(
            feed=RecordFeed(world.sms.records),
            reuse_threshold=config.reuse_threshold,
            reuse_window=config.reuse_window,
        )
        pipeline = build_stream_pipeline(
            adapters=[scorer_adapter], sink=sink
        )
        pipeline.attach(app.log)

    # -- traffic ------------------------------------------------------
    baseline = BaselineSmsTraffic(
        loop,
        app,
        rngs.stream("traffic.sms-baseline"),
        BaselineSmsConfig(
            sms_per_hour=config.baseline_sms_per_hour,
            otp_fraction=config.otp_fraction,
            arrival_block_size=config.arrival_block_size,
        ),
        arrival_rng=rngs.numpy_stream("traffic.sms-baseline.arrivals"),
    )
    baseline.start(at=0.0)

    rental = NumberRentalService(
        cost_per_number=config.rental_cost_per_number
    )
    proxy_pool = ResidentialProxyPool()
    bot = OtpAbuseBot(
        loop,
        app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(mean_interval=None, rotate_on_block=True),
            rngs.stream("attacker.otp-abuser.identity"),
        ),
        proxy_pool,
        rental,
        rngs.stream("attacker.otp-abuser"),
        OtpAbuserConfig(
            otps_per_number=config.otps_per_number,
            otp_per_hour=config.otp_per_hour,
        ),
    )
    if config.attack_enabled:
        bot.start(at=config.attack_start)

    world.run_until(config.duration)
    report = pipeline.finish() if pipeline is not None else None

    # -- harvest ------------------------------------------------------
    attacker_otp = [
        r
        for r in world.sms.records
        if r.kind == OTP and r.client.actor_class == OTP_ABUSER
    ]
    delivered = sum(1 for r in attacker_otp if r.delivered)
    legit_otp_delivered = sum(
        1
        for r in world.sms.records
        if r.kind == OTP and r.delivered and r.client.actor_class == LEGIT
    )
    legit_blocked = 0
    legit_fps: set = set()
    for entry in app.log.iter_entries():
        if entry.client.actor_class == LEGIT:
            legit_fps.add(entry.client.fingerprint_id)
            if entry.status == BLOCKED:
                legit_blocked += 1
    convicted = (
        set(scorer_adapter.convicted_fingerprints)
        if scorer_adapter is not None
        else set()
    )
    legit_fp_rate = (
        len(convicted & legit_fps) / len(legit_fps) if legit_fps else 0.0
    )

    ledger = build_attacker_ledger(
        app, proxy_pools=[proxy_pool], attacker_actors=[bot.name]
    )
    if rental.total_cost > 0:
        ledger.expense(
            NUMBER_RENTAL,
            rental.total_cost,
            memo=f"{rental.numbers_rented} numbers",
        )

    return CaseDResult(
        config=config,
        attacker_otps_delivered=delivered,
        numbers_rented=rental.numbers_rented,
        rental_cost_total=rental.total_cost,
        attacker_revenue=world.telco.total_attacker_revenue(),
        attacker_ledger=ledger,
        mean_otps_per_number=(
            delivered / rental.numbers_rented
            if rental.numbers_rented
            else 0.0
        ),
        legit_otps_delivered=legit_otp_delivered,
        legit_requests_blocked=legit_blocked,
        legit_fp_conviction_rate=legit_fp_rate,
        time_to_first_block=(
            sink.first_block_time - config.attack_start
            if sink is not None and sink.first_block_time is not None
            else None
        ),
        online_actions=sink.actions_taken if sink is not None else 0,
        burned_numbers=(
            len(scorer_adapter.scorer.flagged_numbers)
            if scorer_adapter is not None
            else 0
        ),
        report=report,
        world=world,
        bot=bot,
    )


def case_d_cell(config: CaseDConfig) -> Dict[str, object]:
    """Picklable sweep-cell entry point for Case D (plain data only)."""
    result = run_case_d(config)
    ttfb = result.time_to_first_block
    return {
        "metrics": {
            "attacker_otps_delivered": float(
                result.attacker_otps_delivered
            ),
            "numbers_rented": float(result.numbers_rented),
            "rental_cost_total": result.rental_cost_total,
            "attacker_revenue": result.attacker_revenue,
            "attacker_net": result.attacker_ledger.net,
            "attacker_roi": result.attacker_roi,
            "mean_otps_per_number": result.mean_otps_per_number,
            "legit_otps_delivered": float(result.legit_otps_delivered),
            "legit_requests_blocked": float(
                result.legit_requests_blocked
            ),
            "legit_fp_conviction_rate": result.legit_fp_conviction_rate,
            "time_to_first_block": ttfb if ttfb is not None else -1.0,
            "online_actions": float(result.online_actions),
            "burned_numbers": float(result.burned_numbers),
        },
        "info": {
            "variant": result.config.variant,
            "rentals_by_country": dict(
                sorted(
                    result.bot.rental.rentals_by_country.items()
                )
            )
            if result.bot is not None
            else {},
        },
        "recorder": result.world.metrics.snapshot(),
    }
