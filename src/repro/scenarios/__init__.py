"""Pre-wired scenarios reproducing the paper's case studies.

* :mod:`~repro.scenarios.world` — platform builder shared by all,
* :mod:`~repro.scenarios.case_a` — Seat Spinning / Fig. 1 / the 5.3 h
  fingerprint arms race (Section IV-A),
* :mod:`~repro.scenarios.case_b` — automated vs manual spinning and the
  passenger-detail heuristics (Section IV-B),
* :mod:`~repro.scenarios.case_c` — advanced SMS Pumping / Table I
  (Section IV-C),
* :mod:`~repro.scenarios.case_d` — OTP abuse via disposable-number
  cycling (number-reputation defense),
* :mod:`~repro.scenarios.case_e` — agent-based amplification against a
  victim destination (destination-surge defense),
* :mod:`~repro.scenarios.portfolio` — the adaptive attacker moving
  budget across all channels vs single-case and layered defenses,
* :mod:`~repro.scenarios.detectors` — detector-family comparison
  (Section III).
"""

from .behavioural import (
    BehaviouralConfig,
    BehaviouralResult,
    BehaviouralRun,
    run_behavioural_stack,
)
from .case_a import CaseAConfig, CaseAResult, TARGET_FLIGHT, run_case_a
from .case_b import (
    AIRLINE_B_FLIGHT,
    AIRLINE_C_FLIGHT,
    CaseBConfig,
    CaseBResult,
    run_case_b,
)
from .case_c import (
    CaseCConfig,
    CaseCResult,
    PATH_LIMIT,
    PER_REF,
    TABLE1_ORDER,
    TABLE1_SURGES,
    UNPROTECTED,
    case_c_attack_totals,
    case_c_attack_weights,
    case_c_baseline_weekly,
    run_case_c,
)
from .case_d import CaseDConfig, CaseDResult, run_case_d
from .case_e import CaseEConfig, CaseEResult, run_case_e
from .detectors import (
    DetectorComparisonConfig,
    DetectorComparisonResult,
    DetectorRun,
    run_detector_comparison,
)
from .portfolio import (
    DEFENSES,
    PortfolioConfig,
    PortfolioResult,
    SINGLE_DEFENSES,
    run_portfolio,
)
from .world import (
    FlightSpec,
    World,
    WorldConfig,
    build_world,
    default_flight_schedule,
)

__all__ = [
    "BehaviouralConfig",
    "BehaviouralResult",
    "BehaviouralRun",
    "run_behavioural_stack",
    "CaseAConfig",
    "CaseAResult",
    "TARGET_FLIGHT",
    "run_case_a",
    "AIRLINE_B_FLIGHT",
    "AIRLINE_C_FLIGHT",
    "CaseBConfig",
    "CaseBResult",
    "run_case_b",
    "CaseCConfig",
    "CaseCResult",
    "PATH_LIMIT",
    "PER_REF",
    "TABLE1_ORDER",
    "TABLE1_SURGES",
    "UNPROTECTED",
    "case_c_attack_totals",
    "case_c_attack_weights",
    "case_c_baseline_weekly",
    "run_case_c",
    "CaseDConfig",
    "CaseDResult",
    "run_case_d",
    "CaseEConfig",
    "CaseEResult",
    "run_case_e",
    "DEFENSES",
    "PortfolioConfig",
    "PortfolioResult",
    "SINGLE_DEFENSES",
    "run_portfolio",
    "DetectorComparisonConfig",
    "DetectorComparisonResult",
    "DetectorRun",
    "run_detector_comparison",
    "FlightSpec",
    "World",
    "WorldConfig",
    "build_world",
    "default_flight_schedule",
]
