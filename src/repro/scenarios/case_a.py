"""Case A — Seat Spinning on Airline A (paper Section IV-A, Fig. 1).

Three simulated weeks:

* **week 1** — the average week: legitimate traffic only;
* **week 2** — the attack week: an automated seat spinner holds a block
  of the target flight at its preferred NiP (6), re-holding on every
  expiry, with no NiP limitation in place;
* **week 3** — the mitigation week: the defender caps NiP at 4 (the
  paper's temporary restriction); the attacker probes the cap and
  continues at NiP 4; legitimate groups above the cap re-book at 4.

Throughout weeks 2-3 the mitigation controller hunts the attacker's
fingerprints and deploys block rules; the attacker rotates past each
one, reproducing the 5.3 h arms race.  The attack stops
``stop_before_departure`` (2 days) before the flight leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.distributions import nip_counts, nip_shares
from ..core.detection.rotation import LinkedEntity, link_booking_records
from ..core.mitigation.blocking import RuleEffectiveness
from ..core.mitigation.controller import (
    ControllerConfig,
    MitigationAction,
    MitigationController,
)
from ..core.mitigation.policies import NipCapPolicy
from ..common import SEAT_SPINNER
from ..identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from ..identity.ip import ResidentialProxyPool
from ..sim.clock import DAY, HOUR, WEEK
from ..traffic.legitimate import (
    AVERAGE_WEEK_NIP_MIXTURE,
    LegitimateConfig,
    LegitimatePopulation,
)
from ..traffic.seat_spinner import (
    GIBBERISH,
    SeatSpinnerBot,
    SeatSpinnerConfig,
)
from .world import (
    FlightSpec,
    World,
    WorldConfig,
    build_world,
    default_flight_schedule,
)

TARGET_FLIGHT = "AirlineA-TARGET"


@dataclass
class CaseAConfig:
    """Scenario parameters (defaults reproduce the paper's setting)."""

    seed: int = 7
    visitor_rate_per_hour: float = 12.0
    #: Arrival-gap block size for the vectorized traffic generators;
    #: the run is bit-identical for any value (1 = scalar reference).
    arrival_block_size: int = 256
    #: Seat-hold duration ("30 minutes to several hours" in the paper).
    #: Because the attacker re-holds in waves synchronised on the TTL,
    #: this also sets the cadence of the rotation arms race.
    hold_ttl: float = 5 * HOUR
    target_capacity: int = 200
    #: Seats the attacker tries to keep held on the target flight.
    attacker_target_seats: int = 120
    preferred_nip: int = 6
    passenger_style: str = GIBBERISH
    attack_start: float = 1 * WEEK
    #: Scripted NiP cap (the paper's temporary restriction); None
    #: disables the mitigation entirely (ablation mode).
    cap_at: Optional[float] = 2 * WEEK
    cap_value: int = 4
    #: Fingerprint-block arms race on/off.
    controller_enabled: bool = True
    controller_interval: float = 1 * HOUR
    controller_window: float = 6 * HOUR
    holds_per_fingerprint_threshold: int = 5
    #: Attacker rotation policy.
    rotation_mean_interval: Optional[float] = None
    rotate_on_block: bool = True
    #: Departure set so the attack's 2-day stop margin lands just past
    #: the third Fig. 1 week.
    departure_time: float = 3 * WEEK + 2.5 * DAY
    stop_before_departure: float = 2 * DAY
    honeypot_mode: bool = False


@dataclass
class CaseAResult:
    """Everything the Fig. 1 / Case A benchmarks assert on."""

    config: CaseAConfig
    #: NiP share dicts for (average, attack, post-cap) weeks.
    week_shares: Tuple[Dict[int, float], ...]
    week_counts: Tuple[Dict[int, int], ...]
    cap_applied_at: Optional[float]
    attacker_holds_created: int
    attacker_rotations: int
    attacker_blocks_encountered: int
    attacker_nip_adaptations: List[Tuple[float, int]]
    attacker_final_nip: int
    last_attack_hold_time: Optional[float]
    departure_time: float
    rule_effectiveness: List[RuleEffectiveness]
    mean_rule_window: Optional[float]
    #: Defender-side rotation estimate from the identity linker.
    linked_entity: Optional[LinkedEntity]
    controller_timeline: List[MitigationAction]
    legit_holds_total: int
    target_availability_end: int
    #: Seats on the target flight actually sold to legitimate customers
    #: — the quantity a DoI attack suppresses and a honeypot restores.
    target_legit_confirmed_seats: int
    shadow_seats_absorbed: int
    proxy_pool: ResidentialProxyPool
    world: World
    bot: SeatSpinnerBot

    @property
    def measured_rotation_interval(self) -> Optional[float]:
        """Mean time between attacker fingerprint rotations over the
        attack's lifetime — the statistic the paper reports as 5.3 h."""
        if self.attacker_rotations == 0 or self.last_attack_hold_time is None:
            return None
        span = self.last_attack_hold_time - self.config.attack_start
        return span / self.attacker_rotations


def case_a_cell(config: CaseAConfig) -> Dict[str, object]:
    """Picklable sweep-cell entry point for Case A.

    A pure function of ``config`` returning only plain data — scalar
    ``metrics``, a JSON-able ``info`` dict, and the world's metrics
    ``recorder`` snapshot — so :mod:`repro.runner` can run it in a
    worker process and ship the result back across the pickle boundary
    (a full :class:`CaseAResult` holds the event loop and is not
    picklable).
    """
    from ..economics.reports import attacker_seat_seconds

    result = run_case_a(config)
    displaced = attacker_seat_seconds(
        result.world.reservations, TARGET_FLIGHT
    )
    attempts = (
        result.attacker_holds_created + result.attacker_blocks_encountered
    )
    interval = result.measured_rotation_interval
    return {
        "metrics": {
            "attacker_holds_created": float(result.attacker_holds_created),
            "attacker_rotations": float(result.attacker_rotations),
            "attacker_blocks_encountered": float(
                result.attacker_blocks_encountered
            ),
            "blocked_fraction": (
                result.attacker_blocks_encountered / attempts
                if attempts
                else 0.0
            ),
            "rules_deployed": float(len(result.rule_effectiveness)),
            "attacker_seat_hours": displaced.attacker_seat_hours,
            "legit_holds_total": float(result.legit_holds_total),
            "target_availability_end": float(
                result.target_availability_end
            ),
            "target_legit_confirmed_seats": float(
                result.target_legit_confirmed_seats
            ),
            "attacker_final_nip": float(result.attacker_final_nip),
            "measured_rotation_interval": (
                interval if interval is not None else 0.0
            ),
        },
        "info": {
            "week_counts": [
                {str(nip): count for nip, count in week.items()}
                for week in result.week_counts
            ],
            "cap_applied_at": result.cap_applied_at,
            "last_attack_hold_time": result.last_attack_hold_time,
        },
        "recorder": result.world.metrics.snapshot(),
    }


def run_case_a(
    config: Optional[CaseAConfig] = None,
    on_world: Optional[Callable[[World], None]] = None,
) -> CaseAResult:
    """Run the full three-week Case A scenario.

    ``on_world`` runs right after the world is built, before any actor
    starts — the hook streaming consumers (trace capture, the online
    detection pipeline) use to attach to ``world.app.log``.
    """
    config = config or CaseAConfig()

    flights = default_flight_schedule(
        count=40, horizon=config.departure_time, capacity=220
    )
    flights.append(
        FlightSpec(
            flight_id=TARGET_FLIGHT,
            departure_time=config.departure_time,
            capacity=config.target_capacity,
        )
    )
    world = build_world(
        WorldConfig(
            seed=config.seed,
            flights=flights,
            hold_ttl=config.hold_ttl,
        )
    )
    if on_world is not None:
        on_world(world)
    loop, rngs, app = world.loop, world.rngs, world.app

    population = LegitimatePopulation(
        loop,
        app,
        rngs.stream("traffic.legit"),
        LegitimateConfig(
            visitor_rate_per_hour=config.visitor_rate_per_hour,
            arrival_block_size=config.arrival_block_size,
        ),
        arrival_rng=rngs.numpy_stream("traffic.legit.arrivals"),
    )
    population.start(at=0.0)

    proxy_pool = ResidentialProxyPool()
    identity = BotIdentity(
        FingerprintForge(MIMICRY),
        RotationPolicy(
            mean_interval=config.rotation_mean_interval,
            rotate_on_block=config.rotate_on_block,
        ),
        rngs.stream("attacker.identity"),
    )
    bot = SeatSpinnerBot(
        loop,
        app,
        identity,
        proxy_pool,
        rngs.stream("attacker.spinner"),
        SeatSpinnerConfig(
            target_flight=TARGET_FLIGHT,
            preferred_nip=config.preferred_nip,
            target_seats=config.attacker_target_seats,
            passenger_style=config.passenger_style,
            stop_before_departure=config.stop_before_departure,
        ),
    )
    bot.start(at=config.attack_start)

    controller: Optional[MitigationController] = None
    if config.controller_enabled:
        controller = MitigationController(
            loop,
            app,
            ControllerConfig(
                interval=config.controller_interval,
                window=config.controller_window,
                baseline_nip=AVERAGE_WEEK_NIP_MIXTURE,
                # The NiP cap is scripted below to keep the Fig. 1 week
                # boundaries crisp; the controller handles fingerprints.
                enable_nip_cap=False,
                holds_per_fingerprint_threshold=(
                    config.holds_per_fingerprint_threshold
                ),
                honeypot_mode=config.honeypot_mode,
            ),
        )
        controller.start(at=1 * HOUR)

    cap_applied_at: List[float] = []
    if config.cap_at is not None:
        cap_time = config.cap_at

        def apply_cap() -> None:
            NipCapPolicy(config.cap_value).apply(app)
            cap_applied_at.append(loop.now)

        loop.schedule_at(cap_time, apply_cap, label="scripted-nip-cap")

    world.run_until(config.departure_time)

    # -- harvest ------------------------------------------------------------

    records = world.reservations.records
    week_counts = tuple(
        nip_counts(records, start, start + WEEK)
        for start in (0.0, WEEK, 2 * WEEK)
    )
    week_shares = tuple(nip_shares(counts) for counts in week_counts)

    attack_records = [
        r
        for r in records
        if r.outcome == "held" and r.client.actor_class == SEAT_SPINNER
    ]
    last_attack = max((r.time for r in attack_records), default=None)
    legit_holds = sum(
        1
        for r in records
        if r.outcome == "held" and not r.client.is_attacker
    )

    # Defender-side identity linking over the target flight's holds
    # during the attack window.
    window_records = [
        r
        for r in records
        if r.outcome == "held"
        and r.flight_id == TARGET_FLIGHT
        and r.time >= config.attack_start
    ]
    entities = link_booking_records(window_records, min_cluster=5)
    linked = entities[0] if entities else None

    effectiveness: List[RuleEffectiveness] = []
    mean_window: Optional[float] = None
    timeline: List[MitigationAction] = []
    shadow_seats = 0
    if controller is not None:
        effectiveness = controller.blocks.effectiveness()
        mean_window = controller.blocks.mean_effective_window()
        timeline = controller.timeline
        shadow_seats = controller.honeypot.shadow_seats_absorbed()

    return CaseAResult(
        config=config,
        week_shares=week_shares,
        week_counts=week_counts,
        cap_applied_at=cap_applied_at[0] if cap_applied_at else None,
        attacker_holds_created=bot.holds_created,
        attacker_rotations=identity.rotations,
        attacker_blocks_encountered=bot.blocks_encountered,
        attacker_nip_adaptations=list(bot.nip_adaptations),
        attacker_final_nip=bot.current_nip,
        last_attack_hold_time=last_attack,
        departure_time=config.departure_time,
        rule_effectiveness=effectiveness,
        mean_rule_window=mean_window,
        linked_entity=linked,
        controller_timeline=timeline,
        legit_holds_total=legit_holds,
        target_availability_end=world.reservations.availability(
            TARGET_FLIGHT
        ),
        target_legit_confirmed_seats=sum(
            hold.nip
            for hold in world.reservations.holds.all_holds()
            if hold.flight_id == TARGET_FLIGHT
            and hold.status == "confirmed"
            and not hold.client.is_attacker
        ),
        shadow_seats_absorbed=shadow_seats,
        proxy_pool=proxy_pool,
        world=world,
        bot=bot,
    )
