"""Learned-vs-hand-tuned comparison on evasive Case A variants.

The acceptance experiment for :mod:`repro.ml` (``repro train`` /
``repro predict`` / the ``bench_learned`` benchmark): train the model
ladder on simulated worlds and require the learned arm to beat the
hand-tuned session stack exactly where hand tuning struggles —

* **rotated** — the graph experiment's Case A: a mimicry-forge seat
  spinner rotating identity every ~3 hours, so per-session volume
  stays under every threshold;
* **stealth** — the Section IV-A low-NiP attacker: party size 2 inside
  the dominant legitimate mass, plus rotation, so neither volume nor
  the NiP distribution stands out.

Training data never comes from the evaluation world: each training
world's seed is derived from the master seed via the same
:func:`~repro.sim.rng.derive_seed` scheme the simulator uses, and its
sessions are captured by a :class:`~repro.ml.store.FeatureStoreAdapter`
riding the *streaming* pipeline — the learned detector trains behind
the identical sessionizer it is later judged behind.

The comparison is deliberately strict: the hand-tuned arm is the same
volume + k-means + fingerprint fusion the graph experiment uses as its
session arm, and the learned arm must post strictly higher recall at
an equal-or-lower false-positive rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.evaluation import (
    BinaryEvaluation,
    evaluate_verdicts,
    recall_by_class,
)
from ..core.detection.clustering import ClusteringDetector
from ..core.detection.fusion import DEFAULT_WEIGHTS, FusionDetector
from ..core.detection.verdict import Verdict
from ..core.detection.volume import VolumeDetector
from ..ml.data import Dataset
from ..ml.detector import LearnedSessionDetector
from ..ml.store import FeatureStore, FeatureStoreAdapter
from ..ml.train import TrainConfig, TrainResult, train_model
from ..sim.clock import DAY, HOUR
from ..sim.rng import derive_seed
from ..stream.pipeline import StreamPipeline
from ..traffic.seat_spinner import FIXED_NAME_ROTATING_DOB
from ..web.logs import Session, sessionize
from .case_a import CaseAConfig, run_case_a
from .graph_case import _fingerprint_session_verdicts
from .world import World

ROTATED = "rotated"
STEALTH = "stealth"
LEARNED_VARIANTS: Tuple[str, ...] = (ROTATED, STEALTH)


@dataclass
class LearnedCaseConfig:
    """One train-and-compare run."""

    seed: int = 7
    variant: str = ROTATED
    #: Ladder rung to train (see :data:`repro.ml.train.MODEL_CHOICES`).
    model: str = "encoder"
    #: Disjoint-seed worlds pooled into the training set.
    training_worlds: int = 2
    #: Decision threshold is calibrated to this FPR on training legits.
    #: The hand-tuned arm posts *zero* false positives on these
    #: variants, so "equal-or-lower FPR" forces the learned threshold
    #: essentially above every legitimate training score — a strict
    #: target picks ``allowed = 0`` at the pooled training size.
    target_fpr: float = 0.0002
    #: ``None`` = the rung's default epoch count.
    epochs: Optional[int] = None
    #: Compressed timeline for smoke/CI runs.
    ticks_short: bool = False

    def __post_init__(self) -> None:
        if self.variant not in LEARNED_VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; "
                f"expected {LEARNED_VARIANTS}"
            )


def variant_case_config(
    variant: str, seed: int, ticks_short: bool
) -> CaseAConfig:
    """The evasive Case A world for one variant.

    Both variants disable mitigation (pure-detection comparison, like
    the graph experiment) and rotate identity; stealth additionally
    drops the party size to 2 so the NiP footprint vanishes into the
    legitimate mixture.
    """
    params: Dict[str, object] = dict(
        seed=seed,
        visitor_rate_per_hour=8.0,
        target_capacity=160,
        attacker_target_seats=80,
        preferred_nip=4,
        passenger_style=FIXED_NAME_ROTATING_DOB,
        attack_start=1 * DAY,
        cap_at=None,
        controller_enabled=False,
        rotation_mean_interval=3 * HOUR,
        departure_time=6 * DAY,
        stop_before_departure=1 * DAY,
    )
    if variant == STEALTH:
        params.update(
            preferred_nip=2,
            attacker_target_seats=40,
            rotation_mean_interval=2 * HOUR,
        )
    if ticks_short:
        params.update(
            visitor_rate_per_hour=5.0,
            target_capacity=120,
            attacker_target_seats=(
                30 if variant == STEALTH else 60
            ),
            attack_start=0.5 * DAY,
            departure_time=3 * DAY,
            stop_before_departure=0.5 * DAY,
        )
    return CaseAConfig(**params)


def capture_training_store(
    case_config: CaseAConfig, store: Optional[FeatureStore] = None
) -> FeatureStore:
    """Run one world with a feature-store adapter on the live stream."""
    adapter = FeatureStoreAdapter(store=store, with_truth=True)
    pipeline = StreamPipeline(adapters=[adapter])

    run_case_a(
        case_config,
        on_world=lambda world: pipeline.attach(world.app.log),
    )
    pipeline.finish()
    return adapter.store


def build_training_store(config: LearnedCaseConfig) -> FeatureStore:
    """Pool streamed sessions from ``training_worlds`` disjoint worlds."""
    store = FeatureStore()
    for index in range(config.training_worlds):
        world_seed = derive_seed(
            config.seed, f"ml.train-world.{config.variant}.{index}"
        )
        capture_training_store(
            variant_case_config(
                config.variant, world_seed, config.ticks_short
            ),
            store=store,
        )
    return store


def build_training_dataset(config: LearnedCaseConfig) -> Dataset:
    return build_training_store(config).to_dataset()


@dataclass
class ArmScores:
    """One arm's session-level evaluation."""

    arm: str
    evaluation: BinaryEvaluation
    recall_by_class: Dict[str, float]


@dataclass
class LearnedCaseResult:
    """Hand-tuned vs learned vs combined fusion on one eval world."""

    config: LearnedCaseConfig
    train: TrainResult
    sessions: List[Session]
    hand_tuned: ArmScores
    learned: ArmScores
    #: Seventh-family fusion: the hand-tuned families plus the learned
    #: arm, fused with the default weight table.
    combined: ArmScores
    world: World

    @property
    def learned_beats_hand_tuned(self) -> bool:
        """The pinned acceptance property: strictly higher recall at
        an equal-or-lower false-positive rate."""
        hand = self.hand_tuned.evaluation
        learned = self.learned.evaluation
        return (
            learned.recall > hand.recall
            and learned.false_positive_rate <= hand.false_positive_rate
        )


def _score(
    arm: str, sessions: List[Session], verdicts: List[Verdict]
) -> ArmScores:
    return ArmScores(
        arm=arm,
        evaluation=evaluate_verdicts(sessions, verdicts),
        recall_by_class=recall_by_class(sessions, verdicts),
    )


def run_learned_case(
    config: Optional[LearnedCaseConfig] = None,
) -> LearnedCaseResult:
    """Train on disjoint worlds, then compare arms on the eval world."""
    config = config or LearnedCaseConfig()

    dataset = build_training_dataset(config)
    train = train_model(
        dataset,
        TrainConfig(
            model=config.model,
            master_seed=config.seed,
            target_fpr=config.target_fpr,
            epochs=config.epochs,
        ),
    )

    eval_config = variant_case_config(
        config.variant, config.seed, config.ticks_short
    )
    world = run_case_a(eval_config).world
    sessions = sessionize(world.app.log)

    # Hand-tuned arm: identical to the graph experiment's session arm.
    volume = VolumeDetector().judge_all(sessions)
    kmeans = ClusteringDetector(
        world.rngs.numpy_stream("detector.kmeans")
    ).judge_all(sessions)
    fingerprint = _fingerprint_session_verdicts(world, sessions)
    hand_families = [volume, kmeans, fingerprint]
    hand_fused = FusionDetector().fuse(hand_families)

    learned_verdicts = LearnedSessionDetector(train.model).judge_all(
        sessions
    )
    combined_fused = FusionDetector(
        weights=dict(DEFAULT_WEIGHTS)
    ).fuse(hand_families + [learned_verdicts])

    return LearnedCaseResult(
        config=config,
        train=train,
        sessions=sessions,
        hand_tuned=_score("hand-tuned-fusion", sessions, hand_fused),
        learned=_score("learned-sequence", sessions, learned_verdicts),
        combined=_score("combined-fusion", sessions, combined_fused),
        world=world,
    )


def learned_case_cell(config: LearnedCaseConfig) -> Dict[str, object]:
    """Picklable sweep-cell entry point (plain data only)."""
    result = run_learned_case(config)
    return {
        "metrics": {
            "hand_recall": result.hand_tuned.evaluation.recall,
            "hand_fpr": result.hand_tuned.evaluation.false_positive_rate,
            "learned_recall": result.learned.evaluation.recall,
            "learned_fpr": result.learned.evaluation.false_positive_rate,
            "combined_recall": result.combined.evaluation.recall,
            "combined_fpr": (
                result.combined.evaluation.false_positive_rate
            ),
            "learned_beats_hand_tuned": float(
                result.learned_beats_hand_tuned
            ),
            "training_sessions": float(result.train.meta["training_sessions"]),
            "training_accuracy": result.train.report.training_accuracy,
            "threshold": result.train.threshold,
        },
        "info": {
            "variant": result.config.variant,
            "model": result.config.model,
            "weights_digest": result.train.meta["weights_digest"],
            "config_hash": result.train.meta["config_hash"],
        },
        "recorder": result.world.metrics.snapshot(),
    }
