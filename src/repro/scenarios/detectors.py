"""E6 — detector-family comparison on mixed traffic (Section III).

One world, four simultaneous attack campaigns plus legitimate traffic:

* a classic high-volume **scraper** (raw headless browser, datacenter
  IPs) — the attacker conventional defenses were built for;
* a low-volume **seat spinner** (mimicry fingerprints, rotating
  identity, Case B passenger pattern);
* an **SMS pumper** whose per-request geo-matched proxy exits shred
  sessionization into single-request sessions;
* a **manual seat spinner** (human cadence, genuine devices).

Six detector families judge the same logs:

1. session-volume thresholds,
2. supervised logistic regression over session features (trained on a
   disjoint world),
3. unsupervised k-means clustering,
4. fingerprint rules (artifacts + inconsistencies),
5. the paper-informed pipeline: passenger-detail heuristics for DoI
   plus booking-reference identity linking for SMS pumping,
6. the campaign graph: the other families' (mostly sub-threshold)
   scores seeded onto the entity graph and amplified into
   campaign-level convictions (:mod:`repro.graph`).

The result table is the paper's Section III argument in numbers: the
first four families catch the scraper and miss the functional-abuse
attacks; the fifth and sixth catch what the others miss — the sixth
without needing the fifth's domain-specific heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.evaluation import (
    BinaryEvaluation,
    evaluate_verdicts,
    recall_by_class,
)
from ..core.detection.classifier import LogisticSessionClassifier
from ..core.detection.clustering import ClusteringDetector
from ..core.detection.fingerprint_rules import FingerprintDetector
from ..core.detection.passenger_details import PassengerDetailAnalyzer
from ..core.detection.rotation import link_sms_records
from ..core.detection.session_index import SessionIndex
from ..core.detection.verdict import Verdict
from ..core.detection.volume import VolumeDetector
from ..graph.campaigns import Campaign
from ..graph.detector import GraphDetector, GraphDetectorConfig
from ..identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RAW_HEADLESS,
    RotationPolicy,
)
from ..identity.ip import ResidentialProxyPool
from ..ml.data import build_dataset_columnar
from ..ml.detector import LearnedSessionDetector
from ..ml.train import TrainConfig, train_model
from ..sim.clock import DAY, HOUR
from ..traffic.legitimate import LegitimateConfig, LegitimatePopulation
from ..traffic.manual_spinner import ManualSeatSpinner, ManualSpinnerConfig
from ..traffic.scraper import ScraperBot, ScraperConfig
from ..traffic.seat_spinner import (
    FIXED_NAME_ROTATING_DOB,
    SeatSpinnerBot,
    SeatSpinnerConfig,
)
from ..traffic.sms_baseline import BaselineSmsConfig, BaselineSmsTraffic
from ..traffic.sms_pumper import SmsPumperBot, SmsPumperConfig
from ..web.logs import Session
from .world import (
    FlightSpec,
    World,
    WorldConfig,
    build_world,
    default_flight_schedule,
)

SPINNER_FLIGHT = "MIX-SPIN-TARGET"
MANUAL_FLIGHT = "MIX-MANUAL-TARGET"
PUMPER_FLIGHT = "MIX-PUMP-SETUP"


@dataclass
class DetectorComparisonConfig:
    """Mixed-traffic world parameters."""

    seed: int = 31
    duration: float = 4 * DAY
    visitor_rate_per_hour: float = 25.0
    scraper_requests_per_hour: float = 1200.0
    scraper_duration: float = 12 * HOUR
    pumper_sms_per_hour: float = 30.0
    baseline_sms_per_hour: float = 40.0


@dataclass
class DetectorRun:
    """One detector family's scores on the shared session set."""

    detector: str
    evaluation: BinaryEvaluation
    recall_by_class: Dict[str, float]


@dataclass
class DetectorComparisonResult:
    """Comparison table across detector families."""

    config: DetectorComparisonConfig
    runs: Dict[str, DetectorRun]
    sessions: List[Session]
    session_counts_by_class: Dict[str, int]
    world: World
    #: Campaigns the graph family recovered (empty for the others).
    campaigns: List[Campaign] = field(default_factory=list)

    def run_for(self, detector: str) -> DetectorRun:
        return self.runs[detector]


def _build_mixed_world(
    config: DetectorComparisonConfig, seed: int
) -> Tuple[World, SessionIndex]:
    """Stand up one mixed-traffic world and return its session index."""
    flights = default_flight_schedule(
        count=25, horizon=config.duration, capacity=200
    )
    for flight_id in (SPINNER_FLIGHT, MANUAL_FLIGHT, PUMPER_FLIGHT):
        flights.append(
            FlightSpec(
                flight_id=flight_id,
                departure_time=config.duration + 2 * DAY,
                capacity=160,
            )
        )
    world = build_world(
        WorldConfig(seed=seed, flights=flights, hold_ttl=2 * HOUR)
    )
    loop, rngs, app = world.loop, world.rngs, world.app

    LegitimatePopulation(
        loop,
        app,
        rngs.stream("traffic.legit"),
        LegitimateConfig(visitor_rate_per_hour=config.visitor_rate_per_hour),
        arrival_rng=rngs.numpy_stream("traffic.legit.arrivals"),
    ).start(at=0.0)

    BaselineSmsTraffic(
        loop,
        app,
        rngs.stream("traffic.sms-baseline"),
        BaselineSmsConfig(sms_per_hour=config.baseline_sms_per_hour),
        arrival_rng=rngs.numpy_stream("traffic.sms-baseline.arrivals"),
    ).start(at=0.0)

    ScraperBot(
        loop,
        app,
        BotIdentity(
            FingerprintForge(RAW_HEADLESS),
            RotationPolicy(mean_interval=3 * HOUR, rotate_on_block=True),
            rngs.stream("attacker.scraper.identity"),
        ),
        rngs.stream("attacker.scraper"),
        ScraperConfig(
            requests_per_hour=config.scraper_requests_per_hour,
            duration=config.scraper_duration,
        ),
    ).start(at=0.5 * DAY)

    # A *stealth* spinner: small party size, modest seat block, and a
    # 2-hour identity rotation that keeps every reconstructed session
    # down to a handful of hold requests — the low-footprint operation
    # the paper says modern DoI attackers run.
    SeatSpinnerBot(
        loop,
        app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(mean_interval=2 * HOUR, rotate_on_block=True),
            rngs.stream("attacker.spinner.identity"),
        ),
        ResidentialProxyPool(),
        rngs.stream("attacker.spinner"),
        SeatSpinnerConfig(
            target_flight=SPINNER_FLIGHT,
            preferred_nip=2,
            target_seats=30,
            passenger_style=FIXED_NAME_ROTATING_DOB,
            stop_before_departure=1 * DAY,
        ),
    ).start(at=0.5 * DAY)

    ManualSeatSpinner(
        loop,
        app,
        rngs.stream("attacker.manual"),
        ManualSpinnerConfig(target_flight=MANUAL_FLIGHT),
    ).start(at=0.5 * DAY)

    SmsPumperBot(
        loop,
        app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(mean_interval=5.3 * HOUR, rotate_on_block=True),
            rngs.stream("attacker.pumper.identity"),
        ),
        ResidentialProxyPool(),
        rngs.stream("attacker.pumper"),
        SmsPumperConfig(
            setup_flight=PUMPER_FLIGHT,
            sms_per_hour=config.pumper_sms_per_hour,
        ),
    ).start(at=1 * DAY)

    world.run_until(config.duration)
    return world, SessionIndex.from_log(world.app.log)


def _identity_pairs_to_verdicts(
    sessions: List[Session],
    flagged_pairs: Set[Tuple[str, str]],
    detector: str,
) -> List[Verdict]:
    """Turn a set of flagged (ip, fingerprint) identities into session
    verdicts."""
    verdicts = []
    for session in sessions:
        flagged = (
            session.ip_address,
            session.fingerprint_id,
        ) in flagged_pairs
        verdicts.append(
            Verdict(
                subject_id=session.session_id,
                detector=detector,
                score=1.0 if flagged else 0.0,
                is_bot=flagged,
                reasons=("linked-identity",) if flagged else (),
            )
        )
    return verdicts


def run_detector_comparison(
    config: Optional[DetectorComparisonConfig] = None,
) -> DetectorComparisonResult:
    """Run the mixed world and score all five detector families."""
    config = config or DetectorComparisonConfig()
    world, index = _build_mixed_world(config, config.seed)
    # Matrix families judge straight off the columnar index; Session
    # objects are materialised once for the consumers that need
    # per-entry data (evaluation, identity heuristics, the graph).
    sessions = index.sessions()

    runs: Dict[str, DetectorRun] = {}
    family_verdicts: Dict[str, List[Verdict]] = {}

    def score(name: str, verdicts: List[Verdict]) -> None:
        family_verdicts[name] = verdicts
        runs[name] = DetectorRun(
            detector=name,
            evaluation=evaluate_verdicts(sessions, verdicts),
            recall_by_class=recall_by_class(sessions, verdicts),
        )

    # 1. Volume thresholds.
    score("volume", VolumeDetector().judge_index(index))

    # 2. Supervised classifier, trained on a disjoint world.
    training_world, training_index = _build_mixed_world(
        config, config.seed + 1000
    )
    del training_world
    classifier = LogisticSessionClassifier()
    classifier.fit_matrix(training_index.matrix, training_index.is_attacker)
    score("logistic", classifier.judge_index(index))

    # 3. Unsupervised clustering.
    clustering = ClusteringDetector(
        world.rngs.numpy_stream("detector.kmeans")
    )
    score("kmeans", clustering.judge_index(index))

    # 4. Fingerprint rules: a session inherits its fingerprint's verdict.
    fingerprint_detector = FingerprintDetector()
    fingerprint_verdicts = []
    judged_fingerprints: Dict[str, bool] = {}
    for session_id, fingerprint_id in zip(
        index.session_ids, index.fingerprints
    ):
        is_bot = judged_fingerprints.get(fingerprint_id)
        if is_bot is None:
            fingerprint = world.app.fingerprints_seen.get(fingerprint_id)
            is_bot = (
                fingerprint is not None
                and fingerprint_detector.judge(fingerprint).is_bot
            )
            judged_fingerprints[fingerprint_id] = is_bot
        fingerprint_verdicts.append(
            Verdict(
                subject_id=session_id,
                detector="fingerprint",
                score=1.0 if is_bot else 0.0,
                is_bot=is_bot,
            )
        )
    score("fingerprint", fingerprint_verdicts)

    # 5. The paper-informed pipeline: passenger-detail heuristics plus
    #    booking-reference identity linking.
    held = [
        r for r in world.reservations.records if r.outcome == "held"
    ]
    analyzer = PassengerDetailAnalyzer()
    flagged_holds = analyzer.flagged_hold_ids(held)
    flagged_pairs: Set[Tuple[str, str]] = {
        (r.client.ip_address, r.client.fingerprint_id)
        for r in held
        if r.hold_id in flagged_holds
    }
    sms_entities = link_sms_records(
        world.sms.delivered_records(), min_cluster=10
    )
    delivered = world.sms.delivered_records()
    for entity in sms_entities:
        if not entity.rotates_identity:
            continue
        for record_index in entity.record_indices:
            record = delivered[record_index]
            flagged_pairs.add(
                (record.client.ip_address, record.client.fingerprint_id)
            )
    score(
        "abuse-pipeline",
        _identity_pairs_to_verdicts(sessions, flagged_pairs, "abuse-pipeline"),
    )

    # 6. Campaign graph: every other family's verdicts become weak
    #    seeds on the entity graph; propagation and campaign
    #    extraction turn shared infrastructure into convictions.  Seed
    #    trust mirrors each family's precision — k-means emits binary
    #    1.0 scores at a double-digit false-positive rate, so its hits
    #    seed weakly and only corroborated clusters survive.
    graph_detector = GraphDetector(
        GraphDetectorConfig(
            seed_weights={
                "volume-threshold": 0.9,
                "logistic-behaviour": 0.6,
                "kmeans-behaviour": 0.05,
                "fingerprint": 0.9,
                "abuse-pipeline": 0.95,
            }
        )
    )
    seed_verdicts = [
        verdict
        for family in (
            "volume",
            "logistic",
            "kmeans",
            "fingerprint",
            "abuse-pipeline",
        )
        for verdict in family_verdicts[family]
    ]
    score(
        "campaign-graph",
        graph_detector.judge_all(
            sessions,
            bookings=world.reservations.records,
            sms=world.sms.delivered_records(),
            seed_verdicts=seed_verdicts,
        ),
    )

    # 7. The learned arm (repro.ml): the MLP rung of the model ladder,
    #    trained on the same disjoint world as the logistic family but
    #    class-weighted and with its threshold calibrated on the
    #    training world's legitimate sessions.  ~25% of the training
    #    rows are the pumper's single-request sessions — bot-labelled
    #    but featureless, so the weighted loss never converges on them
    #    (training accuracy plateaus near 0.57); the long epoch budget
    #    is what lets the six scraper rows carve out their island
    #    against that irreducible mass.
    learned_train = train_model(
        build_dataset_columnar(training_index, with_truth=True),
        TrainConfig(model="mlp", master_seed=config.seed, epochs=4000),
    )
    score(
        "learned",
        LearnedSessionDetector(learned_train.model).judge_index(index),
    )

    session_counts: Dict[str, int] = {}
    for session in sessions:
        label = session.actor_class
        session_counts[label] = session_counts.get(label, 0) + 1

    return DetectorComparisonResult(
        config=config,
        runs=runs,
        sessions=sessions,
        session_counts_by_class=session_counts,
        world=world,
        campaigns=graph_detector.campaigns,
    )
