"""The scale world: a lean, high-throughput background population.

``scale-world`` exists to answer one question — *how many visitors per
second, in how much memory* — so it carries no attacker, no
mitigation controller and no detection: just Poisson booking funnels
hammering the web edge, with the columnar log store soaking up the
requests.  The ``bench_scale`` workload drives it to a million
visitors (sharded via ``run_sweep(shards=K)``), pins events/sec and
peak-RSS floors, and the ``scale-smoke`` CI job runs a reduced tick
count at K∈{1,4}.

Parameters are phrased in *totals* (``visitors`` over ``duration``),
not rates, so the sharder can split the population exactly: K shards
at ``visitors/K`` arrivals superpose to the same expected load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim.clock import DAY, HOUR
from ..traffic.legitimate import LegitimateConfig, LegitimatePopulation
from .world import FlightSpec, WorldConfig, build_world

#: Drain margin after the arrival window: lets in-flight funnels (pay
#: delays, boarding passes) finish so the log captures whole visits.
DRAIN = 4 * HOUR


@dataclass
class ScaleConfig:
    """Parameters for one scale world (or one shard of it)."""

    seed: int = 0
    #: Expected visitor arrivals over ``duration``.
    visitors: int = 50_000
    duration: float = 7 * DAY
    arrival_block_size: int = 4096
    #: Background flights available to book.
    flights: int = 8
    flight_capacity: int = 100_000
    hold_ttl: float = 2 * HOUR

    def __post_init__(self) -> None:
        if self.visitors < 1:
            raise ValueError(f"visitors must be >= 1: {self.visitors}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.flights < 1:
            raise ValueError(f"flights must be >= 1: {self.flights}")

    @property
    def visitor_rate_per_hour(self) -> float:
        return self.visitors / (self.duration / HOUR)


@dataclass
class ScaleResult:
    """What one scale run produced (see cell metrics for the digest)."""

    config: ScaleConfig
    visitors_spawned: int
    log_entries: int
    events_processed: int
    log_store_bytes: int
    world: object


def run_scale(config: ScaleConfig) -> ScaleResult:
    """Run the population for ``duration`` plus a drain margin."""
    world = build_world(
        WorldConfig(
            seed=config.seed,
            flights=[
                FlightSpec(
                    flight_id=f"SC-{index:03d}",
                    departure_time=config.duration + DRAIN + DAY,
                    capacity=config.flight_capacity,
                )
                for index in range(config.flights)
            ],
            hold_ttl=config.hold_ttl,
        )
    )
    population = LegitimatePopulation(
        world.loop,
        world.app,
        world.rngs.stream("traffic.legit"),
        LegitimateConfig(
            visitor_rate_per_hour=config.visitor_rate_per_hour,
            arrival_block_size=config.arrival_block_size,
        ),
        arrival_rng=world.rngs.numpy_stream("traffic.legit.arrivals"),
    )
    population.start(at=0.0)
    world.run_until(config.duration)
    population.stop()
    world.run_until(config.duration + DRAIN)

    log = world.app.log
    store = getattr(log, "_store", None)
    return ScaleResult(
        config=config,
        visitors_spawned=population.visitors_spawned,
        log_entries=len(log),
        events_processed=world.loop.events_processed,
        log_store_bytes=store.nbytes() if store is not None else 0,
        world=world,
    )


def scale_cell(config: ScaleConfig) -> Dict[str, object]:
    """Picklable sweep-cell entry point (plain data only)."""
    result = run_scale(config)
    return {
        "metrics": {
            "visitors_spawned": float(result.visitors_spawned),
            "log_entries": float(result.log_entries),
            "events_processed": float(result.events_processed),
            "log_store_bytes": float(result.log_store_bytes),
            "holds_created": result.world.metrics.counter(
                "booking.holds_created"
            ),
            "web_requests": result.world.metrics.counter("web.requests"),
        },
        "info": {
            "visitor_rate_per_hour": result.config.visitor_rate_per_hour,
        },
        # The full recorder would ship one series point per request;
        # at millions of visitors that defeats the columnar store's
        # purpose, so scale cells return counters/gauges only.
        "recorder": {
            "counters": dict(
                result.world.metrics.snapshot()["counters"]
            ),
            "gauges": dict(result.world.metrics.snapshot()["gauges"]),
            "series": {},
        },
    }
