"""E11 (extension) — the Section V behavioural-detection stack.

The paper's closing recommendation: "recent work in bot detection has
explored local behavioral modeling, such as graph-based navigation
analysis and biometric indicators (e.g., mouse trajectory tracking).
These approaches could be adapted to functional abuse detection."

This scenario adapts them.  One world with legitimate traffic plus
three campaigns that defeat the conventional stack:

* an **evasive scraper** (human-paced, session-budgeted, trap-aware) —
  invisible to volume, clustering and navigation analysis;
* an **automated seat spinner** — low-volume but *teleports* straight
  to ``/hold``, which the navigation model finds improbable;
* a **manual seat spinner** — a real human, so biometrics pass, but
  their navigation is the same teleport-to-hold pattern.

Each session then gets the pointer data its actor would produce (humans
move like humans; headless bots emit nothing; the evasive scraper
replays a synthetic curve), and three detectors vote: volume,
navigation-graph, mouse-biometrics — fused with noisy-OR.

The punchline the benchmark asserts: each campaign evades at least one
behavioural detector, *no campaign evades the fusion*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.evaluation import (
    BinaryEvaluation,
    evaluate_verdicts,
    recall_by_class,
)
from ..common import LEGIT, MANUAL_SPINNER, SCRAPER, SEAT_SPINNER
from ..core.detection.fusion import FusionDetector
from ..core.detection.navigation import (
    NavigationDetector,
    NavigationDetectorConfig,
)
from ..core.detection.verdict import Verdict
from ..core.detection.volume import VolumeDetector
from ..identity.biometrics import (
    BiometricDetector,
    BotMotionModel,
    HumanMotionModel,
    MouseTrajectory,
    NO_MOUSE,
    SYNTHETIC_CURVE,
)
from ..identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from ..identity.ip import ResidentialProxyPool
from ..sim.clock import DAY, HOUR
from ..traffic.evasive_scraper import (
    EvasiveScraperBot,
    EvasiveScraperConfig,
)
from ..traffic.legitimate import LegitimateConfig, LegitimatePopulation
from ..traffic.manual_spinner import ManualSeatSpinner, ManualSpinnerConfig
from ..traffic.seat_spinner import (
    FIXED_NAME_ROTATING_DOB,
    SeatSpinnerBot,
    SeatSpinnerConfig,
)
from ..web.logs import Session, sessionize
from .world import (
    FlightSpec,
    World,
    WorldConfig,
    build_world,
    default_flight_schedule,
)

SPIN_FLIGHT = "BEH-SPIN-TARGET"
MANUAL_FLIGHT = "BEH-MANUAL-TARGET"

#: Pointer-data profile per ground-truth actor class: what a client-
#: side biometric collector would capture from each.
_MOTION_BY_CLASS: Dict[str, str] = {
    LEGIT: "human",
    MANUAL_SPINNER: "human",        # a human attacker moves like one
    SCRAPER: SYNTHETIC_CURVE,       # the evasive scraper fakes curves
    SEAT_SPINNER: NO_MOUSE,         # headless automation
}


@dataclass
class BehaviouralConfig:
    """Scenario parameters."""

    seed: int = 41
    duration: float = 3 * DAY
    visitor_rate_per_hour: float = 20.0
    #: Trajectories captured per session request (capped per session).
    max_trajectories_per_session: int = 8


@dataclass
class BehaviouralRun:
    """One detector's scores in this scenario."""

    detector: str
    evaluation: BinaryEvaluation
    recall_by_class: Dict[str, float]


@dataclass
class BehaviouralResult:
    config: BehaviouralConfig
    runs: Dict[str, BehaviouralRun]
    sessions: List[Session]
    session_counts_by_class: Dict[str, int]
    world: World

    def run_for(self, detector: str) -> BehaviouralRun:
        return self.runs[detector]


def _build_world(config: BehaviouralConfig, seed: int) -> World:
    flights = default_flight_schedule(
        count=20, horizon=config.duration, capacity=200
    )
    flights.append(
        FlightSpec(SPIN_FLIGHT, config.duration + 2 * DAY, capacity=160)
    )
    flights.append(
        FlightSpec(MANUAL_FLIGHT, config.duration + 2 * DAY, capacity=160)
    )
    world = build_world(
        WorldConfig(seed=seed, flights=flights, hold_ttl=2 * HOUR)
    )
    LegitimatePopulation(
        world.loop,
        world.app,
        world.rngs.stream("traffic.legit"),
        LegitimateConfig(visitor_rate_per_hour=config.visitor_rate_per_hour),
        arrival_rng=world.rngs.numpy_stream("traffic.legit.arrivals"),
    ).start(at=0.0)
    return world


def _add_attacks(world: World, config: BehaviouralConfig) -> None:
    EvasiveScraperBot(
        world.loop,
        world.app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(),
            world.rngs.stream("evasive.identity"),
        ),
        world.rngs.stream("evasive"),
        EvasiveScraperConfig(duration=config.duration),
    ).start(at=2 * HOUR)

    SeatSpinnerBot(
        world.loop,
        world.app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(mean_interval=6 * HOUR),
            world.rngs.stream("spinner.identity"),
        ),
        ResidentialProxyPool(),
        world.rngs.stream("spinner"),
        SeatSpinnerConfig(
            target_flight=SPIN_FLIGHT,
            preferred_nip=2,
            target_seats=50,
            passenger_style=FIXED_NAME_ROTATING_DOB,
            stop_before_departure=1 * DAY,
        ),
    ).start(at=2 * HOUR)

    ManualSeatSpinner(
        world.loop,
        world.app,
        world.rngs.stream("manual"),
        ManualSpinnerConfig(target_flight=MANUAL_FLIGHT),
    ).start(at=2 * HOUR)


def _simulate_pointer_data(
    session: Session,
    config: BehaviouralConfig,
    rng: random.Random,
) -> Sequence[Optional[MouseTrajectory]]:
    """Generate the pointer captures this session's actor would emit."""
    count = min(
        session.request_count, config.max_trajectories_per_session
    )
    profile = _MOTION_BY_CLASS[session.actor_class]
    if profile == "human":
        model = HumanMotionModel(rng)
        return [model.move() for _ in range(count)]
    bot = BotMotionModel(profile, rng)
    return [bot.move() for _ in range(count)]


def run_behavioural_stack(
    config: Optional[BehaviouralConfig] = None,
) -> BehaviouralResult:
    """Run the scenario and score volume / navigation / biometrics /
    fusion on the same sessions."""
    config = config or BehaviouralConfig()

    # Attack world.
    world = _build_world(config, config.seed)
    _add_attacks(world, config)
    world.run_until(config.duration)
    sessions = sessionize(world.app.log)

    # Training world: legitimate traffic only, disjoint seed — this is
    # what the navigation model learns "normal" from.
    training_world = _build_world(config, config.seed + 1000)
    training_world.run_until(config.duration)
    training_sessions = sessionize(training_world.app.log)

    runs: Dict[str, BehaviouralRun] = {}

    def score(name: str, verdicts: List[Verdict]) -> List[Verdict]:
        runs[name] = BehaviouralRun(
            detector=name,
            evaluation=evaluate_verdicts(sessions, verdicts),
            recall_by_class=recall_by_class(sessions, verdicts),
        )
        return verdicts

    volume_verdicts = score(
        "volume", VolumeDetector().judge_all(sessions)
    )

    navigation = NavigationDetector(
        NavigationDetectorConfig(calibration_percentile=1.0)
    )
    navigation.fit(training_sessions)
    navigation_verdicts = score(
        "navigation", navigation.judge_all(sessions)
    )

    biometrics = BiometricDetector()
    pointer_rng = world.rngs.stream("pointer-capture")
    biometric_verdicts = score(
        "biometrics",
        [
            biometrics.judge_subject(
                session.session_id,
                _simulate_pointer_data(session, config, pointer_rng),
            )
            for session in sessions
        ],
    )

    fusion = FusionDetector()
    score(
        "fusion",
        fusion.fuse(
            [volume_verdicts, navigation_verdicts, biometric_verdicts]
        ),
    )

    session_counts: Dict[str, int] = {}
    for session in sessions:
        label = session.actor_class
        session_counts[label] = session_counts.get(label, 0) + 1

    return BehaviouralResult(
        config=config,
        runs=runs,
        sessions=sessions,
        session_counts_by_class=session_counts,
        world=world,
    )
