"""Case B — automated vs manual Seat Spinning (paper Section IV-B).

Two campaigns against two flights in one world:

* **Airline B (October 2024 pattern)** — an automated bot whose first
  passenger keeps a fixed name and surname while the birthdate rotates
  systematically; companion passengers reuse a small overlapping name
  pool with varying birthdates.
* **Airline C (December 2024 pattern)** — a *manual* attacker reusing a
  fixed set of passenger names in different orders across bookings,
  with occasional misspellings, from many IPs but one or two genuine
  personal devices, at human cadence.

The question the case study answers: which signals catch which
campaign?  Behaviour-based volume detection fires on neither (both are
low-volume); the passenger-detail heuristics catch both — repeated
names + birthdate rotation for the bot, name-set permutation +
misspelling clusters for the human.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from ..common import LEGIT, MANUAL_SPINNER, SEAT_SPINNER
from ..core.detection.passenger_details import (
    AnalyzerConfig,
    PassengerDetailAnalyzer,
    PassengerFinding,
)
from ..core.detection.volume import VolumeDetector
from ..identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from ..identity.ip import ResidentialProxyPool
from ..sim.clock import DAY, HOUR
from ..traffic.legitimate import LegitimateConfig, LegitimatePopulation
from ..traffic.manual_spinner import ManualSeatSpinner, ManualSpinnerConfig
from ..traffic.seat_spinner import (
    FIXED_NAME_ROTATING_DOB,
    SeatSpinnerBot,
    SeatSpinnerConfig,
)
from ..web.logs import Session, sessionize
from .world import (
    FlightSpec,
    World,
    WorldConfig,
    build_world,
    default_flight_schedule,
)

AIRLINE_B_FLIGHT = "AirlineB-TARGET"
AIRLINE_C_FLIGHT = "AirlineC-TARGET"


@dataclass
class CaseBConfig:
    """Scenario parameters."""

    seed: int = 11
    duration: float = 10 * DAY
    visitor_rate_per_hour: float = 10.0
    #: Arrival-gap block size for the vectorized traffic generators;
    #: the run is bit-identical for any value (1 = scalar reference).
    arrival_block_size: int = 256
    hold_ttl: float = 4 * HOUR
    automated_attack_start: float = 2 * DAY
    automated_nip: int = 3
    automated_target_seats: int = 60
    manual_attack_start: float = 2 * DAY
    manual_name_pool: int = 6
    manual_misspell_probability: float = 0.12


@dataclass
class CaseBResult:
    """Detection outcomes for both campaigns."""

    config: CaseBConfig
    findings: List[PassengerFinding]
    finding_kinds: Set[str]
    #: Fraction of each campaign's holds covered by any finding.
    automated_coverage: float
    manual_coverage: float
    #: Fraction of *legitimate* holds swept into findings.
    legit_false_positive_rate: float
    #: Volume-detector session recall per ground-truth class.
    volume_recall: Dict[str, float]
    automated_holds: int
    manual_holds: int
    legit_holds: int
    sessions: List[Session]
    world: World


def _coverage(hold_ids: Set[str], flagged: Set[str]) -> float:
    if not hold_ids:
        return 0.0
    return len(hold_ids & flagged) / len(hold_ids)


def case_b_cell(config: CaseBConfig) -> Dict[str, object]:
    """Picklable sweep-cell entry point for Case B.

    Pure function of ``config`` returning plain data only (scalar
    metrics + recorder snapshot) so :mod:`repro.runner` workers can
    return it across the pickle boundary.
    """
    result = run_case_b(config)
    return {
        "metrics": {
            "automated_coverage": result.automated_coverage,
            "manual_coverage": result.manual_coverage,
            "legit_false_positive_rate": result.legit_false_positive_rate,
            "automated_holds": float(result.automated_holds),
            "manual_holds": float(result.manual_holds),
            "legit_holds": float(result.legit_holds),
            "findings": float(len(result.findings)),
            "sessions": float(len(result.sessions)),
            "volume_recall_automated": result.volume_recall.get(
                SEAT_SPINNER, 0.0
            ),
            "volume_recall_manual": result.volume_recall.get(
                MANUAL_SPINNER, 0.0
            ),
        },
        "info": {"finding_kinds": sorted(result.finding_kinds)},
        "recorder": result.world.metrics.snapshot(),
    }


def run_case_b(
    config: Optional[CaseBConfig] = None,
    on_world: Optional[Callable[[World], None]] = None,
) -> CaseBResult:
    """Run both campaigns and the passenger-detail analysis.

    ``on_world`` runs right after world construction, before any actor
    starts (streaming/trace wiring hook).
    """
    config = config or CaseBConfig()

    flights = default_flight_schedule(
        count=30, horizon=config.duration, capacity=200
    )
    flights.append(
        FlightSpec(
            flight_id=AIRLINE_B_FLIGHT,
            departure_time=config.duration + 2 * DAY,
            capacity=150,
            airline="AirlineB",
        )
    )
    flights.append(
        FlightSpec(
            flight_id=AIRLINE_C_FLIGHT,
            departure_time=config.duration + 2 * DAY,
            capacity=150,
            airline="AirlineC",
        )
    )
    world = build_world(
        WorldConfig(
            seed=config.seed, flights=flights, hold_ttl=config.hold_ttl
        )
    )
    if on_world is not None:
        on_world(world)
    loop, rngs, app = world.loop, world.rngs, world.app

    population = LegitimatePopulation(
        loop,
        app,
        rngs.stream("traffic.legit"),
        LegitimateConfig(
            visitor_rate_per_hour=config.visitor_rate_per_hour,
            arrival_block_size=config.arrival_block_size,
        ),
        arrival_rng=rngs.numpy_stream("traffic.legit.arrivals"),
    )
    population.start(at=0.0)

    automated = SeatSpinnerBot(
        loop,
        app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(mean_interval=6 * HOUR, rotate_on_block=True),
            rngs.stream("attacker.automated.identity"),
        ),
        ResidentialProxyPool(),
        rngs.stream("attacker.automated"),
        SeatSpinnerConfig(
            target_flight=AIRLINE_B_FLIGHT,
            preferred_nip=config.automated_nip,
            target_seats=config.automated_target_seats,
            passenger_style=FIXED_NAME_ROTATING_DOB,
            stop_before_departure=1 * DAY,
        ),
        name="airline-b-bot",
    )
    automated.start(at=config.automated_attack_start)

    manual = ManualSeatSpinner(
        loop,
        app,
        rngs.stream("attacker.manual"),
        ManualSpinnerConfig(
            target_flight=AIRLINE_C_FLIGHT,
            name_pool_size=config.manual_name_pool,
            misspell_probability=config.manual_misspell_probability,
        ),
        name="airline-c-manual",
    )
    manual.start(at=config.manual_attack_start)

    world.run_until(config.duration)

    # -- analysis -------------------------------------------------------------

    records = world.reservations.records
    held = [r for r in records if r.outcome == "held"]
    analyzer = PassengerDetailAnalyzer(AnalyzerConfig())
    findings = analyzer.analyze(held)
    flagged = analyzer.flagged_hold_ids(held)

    automated_ids = {
        r.hold_id for r in held if r.client.actor_class == SEAT_SPINNER
    }
    manual_ids = {
        r.hold_id for r in held if r.client.actor_class == MANUAL_SPINNER
    }
    legit_ids = {
        r.hold_id for r in held if r.client.actor_class == LEGIT
    }

    sessions = sessionize(app.log)
    volume = VolumeDetector()
    verdicts = volume.judge_all(sessions)
    from ..analysis.evaluation import recall_by_class

    return CaseBResult(
        config=config,
        findings=findings,
        finding_kinds={finding.kind for finding in findings},
        automated_coverage=_coverage(automated_ids, flagged),
        manual_coverage=_coverage(manual_ids, flagged),
        legit_false_positive_rate=_coverage(legit_ids, flagged),
        volume_recall=recall_by_class(sessions, verdicts),
        automated_holds=len(automated_ids),
        manual_holds=len(manual_ids),
        legit_holds=len(legit_ids),
        sessions=sessions,
        world=world,
    )
