"""Case E — agent-based amplification against a victim destination.

A swarm of agents feeds the open ``/notify`` flight-status endpoint the
*victim's* phone number, converting the airline's SMS pipeline into a
harassment cannon (Jakobsson & Menczer's "cluster bomb", pointed the
other way: many requests through one service rather than one request
through many).  Nothing about any individual request is anomalous — the
flood only exists at the *destination* aggregation.

The defense is the **destination-surge family**
(:class:`~repro.core.detection.surge.DestinationSurgeScorer`) run
streaming: per-destination windowed counts with an absolute flood floor
plus EWMA baselines.  Sender convictions block each flooding identity,
and the operational response — the Section V-style surgical control —
installs a per-destination rate cap
(:func:`~repro.web.ratelimit.key_by_destination`) on the notify path
once a surge opens, strangling the flood at the one dimension the
attacker cannot rotate: the victim's number itself.

Collateral damage is a first-class output: legitimate notifications
ride the same endpoint, so the result reports how many legit requests
the defense blocked or capped and what fraction of legitimate
fingerprints it convicted (the fixed-FPR condition the benchmarks pin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..common import AMPLIFIER, LEGIT
from ..core.mitigation.online import OnlineVerdictSink
from ..economics.ledger import AMPLIFICATION_CONTRACT, Ledger
from ..economics.reports import build_attacker_ledger
from ..identity.forge import (
    BotIdentity,
    FingerprintForge,
    MIMICRY,
    RotationPolicy,
)
from ..identity.ip import ResidentialProxyPool
from ..sim.clock import DAY, HOUR, MINUTE
from ..sms.gateway import NOTIFICATION
from ..sms.numbers import PhoneNumber, sample_number
from ..stream import DestinationSurgeAdapter, RecordFeed, StreamReport
from ..traffic.amplifier import AmplifierBot, AmplifierConfig
from ..traffic.sms_baseline import BaselineSmsConfig, BaselineSmsTraffic
from ..web.ratelimit import RateLimitRule, key_by_destination
from ..web.request import BLOCKED, NOTIFY
from .streaming import build_stream_pipeline
from .world import World, WorldConfig, build_world

# Protection variants.
UNPROTECTED = "unprotected"
DESTINATION_SURGE_DEFENSE = "destination-surge"

_VARIANTS = (UNPROTECTED, DESTINATION_SURGE_DEFENSE)

DESTINATION_CAP_RULE = "notify-per-destination"


@dataclass
class CaseEConfig:
    """Scenario parameters for the amplification flood."""

    seed: int = 13
    variant: str = UNPROTECTED
    duration: float = 1 * DAY
    attack_start: float = 4 * HOUR
    # -- legitimate background ----------------------------------------
    baseline_sms_per_hour: float = 80.0
    otp_fraction: float = 0.25
    #: Legit flight-status notifications share the abused endpoint —
    #: they are the collateral the defense must not destroy.
    notification_fraction: float = 0.25
    arrival_block_size: int = 256
    # -- flood --------------------------------------------------------
    notifications_per_hour: float = 600.0
    #: What the flood's sponsor pays per message landed on the victim.
    value_per_delivered: float = 0.01
    victim_country: str = "GB"
    attack_enabled: bool = True
    # -- defense ------------------------------------------------------
    surge_window: float = 600.0
    flood_threshold: int = 30
    #: Messages per destination per day once the surge response
    #: installs the cap (legit destinations never come near it).
    destination_cap: int = 5
    #: How often the responder polls the scorer for open surges.
    response_poll: float = 5 * MINUTE

    def __post_init__(self) -> None:
        if self.variant not in _VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; expected {_VARIANTS}"
            )
        if self.attack_start >= self.duration:
            raise ValueError(
                f"attack_start {self.attack_start} must precede "
                f"duration {self.duration}"
            )


@dataclass
class CaseEResult:
    """Everything the Case E tests and benchmarks assert on."""

    config: CaseEConfig
    victim_number: PhoneNumber
    #: Flood messages actually landed on the victim.
    victim_messages_delivered: int
    amplifier_attempts: int
    amplifier_blocked: int
    amplifier_rate_limited: int
    attacker_ledger: Ledger
    legit_notifications_delivered: int
    legit_requests_blocked: int
    legit_fp_conviction_rate: float
    time_to_first_block: Optional[float]
    online_actions: int
    surge_events: int
    #: When the per-destination cap went in (None = never / unprotected).
    cap_installed_at: Optional[float]
    report: Optional[StreamReport]
    world: World
    bot: AmplifierBot

    @property
    def attacker_roi(self) -> float:
        return self.attacker_ledger.roi()


def run_case_e(
    config: Optional[CaseEConfig] = None,
    on_world: Optional[Callable[[World], None]] = None,
) -> CaseEResult:
    """Run the amplification flood in the chosen variant."""
    config = config or CaseEConfig()

    world = build_world(WorldConfig(seed=config.seed, flights=[]))
    if on_world is not None:
        on_world(world)
    loop, rngs, app = world.loop, world.rngs, world.app

    victim = sample_number(
        rngs.stream("case-e.victim"), config.victim_country
    )

    # -- defense wiring ----------------------------------------------
    pipeline = None
    sink: Optional[OnlineVerdictSink] = None
    surge_adapter: Optional[DestinationSurgeAdapter] = None
    cap_installed_at: List[float] = []
    if config.variant == DESTINATION_SURGE_DEFENSE:
        sink = OnlineVerdictSink(app)
        surge_adapter = DestinationSurgeAdapter(
            feed=RecordFeed(world.sms.records),
            window=config.surge_window,
            flood_threshold=config.flood_threshold,
        )
        pipeline = build_stream_pipeline(
            adapters=[surge_adapter], sink=sink
        )
        pipeline.attach(app.log)

        def respond_to_surges() -> None:
            # The operational loop: sender blocks come from the sink
            # instantly; the destination cap is the responder's call.
            if surge_adapter.scorer.surging_destinations:
                app.ratelimits.add_rule(
                    RateLimitRule(
                        rule_id=DESTINATION_CAP_RULE,
                        key_fn=key_by_destination,
                        limit=config.destination_cap,
                        window=1 * DAY,
                        paths=(NOTIFY,),
                    )
                )
                cap_installed_at.append(loop.now)
                return  # installed; stop polling
            loop.schedule_in(config.response_poll, respond_to_surges)

        loop.schedule_in(config.response_poll, respond_to_surges)

    # -- traffic ------------------------------------------------------
    baseline = BaselineSmsTraffic(
        loop,
        app,
        rngs.stream("traffic.sms-baseline"),
        BaselineSmsConfig(
            sms_per_hour=config.baseline_sms_per_hour,
            otp_fraction=config.otp_fraction,
            notification_fraction=config.notification_fraction,
            arrival_block_size=config.arrival_block_size,
        ),
        arrival_rng=rngs.numpy_stream("traffic.sms-baseline.arrivals"),
    )
    baseline.start(at=0.0)

    proxy_pool = ResidentialProxyPool()
    bot = AmplifierBot(
        loop,
        app,
        BotIdentity(
            FingerprintForge(MIMICRY),
            RotationPolicy(mean_interval=None, rotate_on_block=True),
            rngs.stream("attacker.amplifier.identity"),
        ),
        proxy_pool,
        [victim],
        rngs.stream("attacker.amplifier"),
        AmplifierConfig(
            notifications_per_hour=config.notifications_per_hour,
        ),
    )
    if config.attack_enabled:
        bot.start(at=config.attack_start)

    world.run_until(config.duration)
    report = pipeline.finish() if pipeline is not None else None

    # -- harvest ------------------------------------------------------
    victim_delivered = sum(
        1
        for r in world.sms.records
        if r.kind == NOTIFICATION
        and r.delivered
        and r.number.e164 == victim.e164
        and r.client.actor_class == AMPLIFIER
    )
    legit_notify_delivered = sum(
        1
        for r in world.sms.records
        if r.kind == NOTIFICATION
        and r.delivered
        and r.client.actor_class == LEGIT
    )
    legit_blocked = 0
    legit_fps: set = set()
    for entry in app.log.iter_entries():
        if entry.client.actor_class == LEGIT:
            legit_fps.add(entry.client.fingerprint_id)
            if entry.status == BLOCKED:
                legit_blocked += 1
    convicted = (
        set(surge_adapter.convicted_fingerprints)
        if surge_adapter is not None
        else set()
    )
    legit_fp_rate = (
        len(convicted & legit_fps) / len(legit_fps) if legit_fps else 0.0
    )

    # Victim numbers are not attacker-controlled, so no carrier
    # kickbacks flow; the income line is the amplification contract.
    ledger = build_attacker_ledger(
        app, proxy_pools=[proxy_pool], attacker_actors=[bot.name]
    )
    if victim_delivered > 0:
        ledger.income(
            AMPLIFICATION_CONTRACT,
            victim_delivered * config.value_per_delivered,
            memo=f"{victim_delivered} messages landed",
        )

    return CaseEResult(
        config=config,
        victim_number=victim,
        victim_messages_delivered=victim_delivered,
        amplifier_attempts=(
            bot.notifications_delivered
            + bot.blocks_encountered
            + bot.rate_limits_encountered
        ),
        amplifier_blocked=bot.blocks_encountered,
        amplifier_rate_limited=bot.rate_limits_encountered,
        attacker_ledger=ledger,
        legit_notifications_delivered=legit_notify_delivered,
        legit_requests_blocked=legit_blocked,
        legit_fp_conviction_rate=legit_fp_rate,
        time_to_first_block=(
            sink.first_block_time - config.attack_start
            if sink is not None and sink.first_block_time is not None
            else None
        ),
        online_actions=sink.actions_taken if sink is not None else 0,
        surge_events=(
            len(surge_adapter.scorer.surge_events)
            if surge_adapter is not None
            else 0
        ),
        cap_installed_at=(
            cap_installed_at[0] if cap_installed_at else None
        ),
        report=report,
        world=world,
        bot=bot,
    )


def case_e_cell(config: CaseEConfig) -> Dict[str, object]:
    """Picklable sweep-cell entry point for Case E (plain data only)."""
    result = run_case_e(config)
    ttfb = result.time_to_first_block
    return {
        "metrics": {
            "victim_messages_delivered": float(
                result.victim_messages_delivered
            ),
            "amplifier_attempts": float(result.amplifier_attempts),
            "amplifier_blocked": float(result.amplifier_blocked),
            "amplifier_rate_limited": float(
                result.amplifier_rate_limited
            ),
            "attacker_net": result.attacker_ledger.net,
            "attacker_roi": result.attacker_roi,
            "legit_notifications_delivered": float(
                result.legit_notifications_delivered
            ),
            "legit_requests_blocked": float(
                result.legit_requests_blocked
            ),
            "legit_fp_conviction_rate": result.legit_fp_conviction_rate,
            "time_to_first_block": ttfb if ttfb is not None else -1.0,
            "online_actions": float(result.online_actions),
            "surge_events": float(result.surge_events),
            "cap_installed": (
                1.0 if result.cap_installed_at is not None else 0.0
            ),
        },
        "info": {
            "variant": result.config.variant,
            "victim": result.victim_number.e164,
        },
        "recorder": result.world.metrics.snapshot(),
    }
