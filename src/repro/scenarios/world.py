"""World construction: one airline platform wired end to end.

Every scenario and benchmark starts from :func:`build_world`, which
assembles the substrates around a single deterministic event loop:
reservation system, SMS gateway + telco network, and the web
application edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..booking.flight import Flight
from ..booking.reservation import ReservationSystem
from ..sim.clock import DAY, HOUR, WEEK
from ..sim.events import EventLoop
from ..sim.metrics import MetricsRecorder
from ..sim.rng import RngRegistry
from ..sms.gateway import SmsGateway
from ..sms.telco import LocalCarrier, TelcoNetwork
from ..web.application import WebApplication


@dataclass(frozen=True)
class FlightSpec:
    """One flight to create in the world."""

    flight_id: str
    departure_time: float
    capacity: int = 180
    airline: str = "AirlineA"
    origin: str = "NCE"
    destination: str = "CDG"


def default_flight_schedule(
    count: int = 40,
    horizon: float = 4 * WEEK,
    capacity: int = 200,
    airline: str = "AirlineA",
) -> List[FlightSpec]:
    """An evenly spread schedule departing *after* the horizon, so
    background flights never sell out mid-scenario."""
    return [
        FlightSpec(
            flight_id=f"{airline}-{index:03d}",
            departure_time=horizon + DAY + index * (6 * HOUR),
            capacity=capacity,
            airline=airline,
        )
        for index in range(count)
    ]


@dataclass
class WorldConfig:
    """Everything needed to stand up one airline platform."""

    seed: int = 0
    flights: Optional[List[FlightSpec]] = None
    hold_ttl: float = 2 * HOUR
    max_nip: int = 9
    sms_weekly_quota: Optional[int] = None
    #: Countries whose terminating carrier colludes with attackers,
    #: with the revenue share kicked back per termination fee.
    colluding_countries: Tuple[str, ...] = ()
    attacker_revenue_share: float = 0.5


@dataclass
class World:
    """A fully wired platform plus its RNG registry."""

    loop: EventLoop
    rngs: RngRegistry
    metrics: MetricsRecorder
    reservations: ReservationSystem
    telco: TelcoNetwork
    sms: SmsGateway
    app: WebApplication

    @property
    def now(self) -> float:
        return self.loop.now

    def run_until(self, until: float) -> None:
        self.loop.run_until(until)
        self.reservations.expire_due()


def build_world(config: WorldConfig) -> World:
    """Assemble all substrates around one event loop."""
    loop = EventLoop()
    rngs = RngRegistry(config.seed)
    metrics = MetricsRecorder()

    reservations = ReservationSystem(
        loop.clock,
        metrics=metrics,
        hold_ttl=config.hold_ttl,
        max_nip=config.max_nip,
    )
    flights = (
        config.flights
        if config.flights is not None
        else default_flight_schedule()
    )
    for spec in flights:
        reservations.add_flight(
            Flight(
                flight_id=spec.flight_id,
                airline=spec.airline,
                origin=spec.origin,
                destination=spec.destination,
                departure_time=spec.departure_time,
                capacity=spec.capacity,
            )
        )

    telco = TelcoNetwork()
    for country in config.colluding_countries:
        telco.register_carrier(
            LocalCarrier(
                carrier_id=f"shady-{country.lower()}",
                country_code=country,
                colluding=True,
                attacker_revenue_share=config.attacker_revenue_share,
            )
        )
    sms = SmsGateway(
        loop.clock,
        telco=telco,
        metrics=metrics,
        weekly_quota=config.sms_weekly_quota,
    )
    app = WebApplication(
        loop.clock,
        reservations,
        sms,
        rngs.stream("web.app"),
        metrics=metrics,
    )
    return World(
        loop=loop,
        rngs=rngs,
        metrics=metrics,
        reservations=reservations,
        telco=telco,
        sms=sms,
        app=app,
    )
